"""Connectivity-aware Table-I benchmark: per-topology CNOT/SWAP/depth overhead.

For the two fast deterministic Table-I cases (full-UCCSD H2 and the 4-term
HMP2 selection for water) this script compiles every registered backend
against each standard topology family and reports, per (case, topology,
backend):

* the all-to-all gate-level CNOT count of the synthesized circuit (the
  connectivity-free reference),
* the *steered* routed circuit (topology-aware parity ladders, zero SWAPs)
  with CNOT count, depth and two-qubit depth,
* the *naive* nearest-neighbour ladder routing of the all-to-all circuit
  (swap in along a shortest path, execute, swap back) — the overhead bound
  any routing subsystem must beat,
* the SABRE-style router on the same circuit as a mid-point.

The acceptance bar (enforced, exit 1 on failure) is that for the ``adv``
backend on the ``line`` topology the steered routed CNOT count is no worse
than the naive nearest-neighbour ladder routing.  Results are written to
``BENCH_routing.json`` (uploaded as a CI artifact).

Usage:
    PYTHONPATH=src python benchmarks/bench_routing.py [--output BENCH_routing.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.api import (
    CompileRequest,
    CompilerConfig,
    compiled_rotation_sequence,
    get_backend,
)
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.circuits import exponential_sequence_circuit, optimize_circuit
from repro.hardware import naive_route_circuit, route_circuit, topology_for
from repro.vqe import hmp2_ranked_terms

#: (case name, molecule, frozen spatial orbitals, number of HMP2 terms or None).
CASES = [
    ("H2", "H2", 0, None),
    ("HMP2-small", "H2O", 1, 4),
]

TOPOLOGY_KINDS = ("all-to-all", "line", "ring", "grid", "heavy-hex")

BACKENDS = ("jw", "bk", "gt", "adv")

#: Deterministic fast settings (matches tools/make_golden.py).
BASE_CONFIG = CompilerConfig(
    gamma_steps=20, sorting_population=16, sorting_generations=20, seed=0
)


def case_terms(molecule_name: str, n_frozen: int, n_terms):
    scf = run_rhf(make_molecule(molecule_name))
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=n_frozen)
    ranked = hmp2_ranked_terms(hamiltonian)
    terms = ranked if n_terms is None else ranked[:n_terms]
    return tuple(terms), hamiltonian.n_spin_orbitals


def bench_case(name: str, molecule: str, n_frozen: int, n_terms) -> list:
    terms, n_qubits = case_terms(molecule, n_frozen, n_terms)
    rows = []
    for kind in TOPOLOGY_KINDS:
        topology = topology_for(kind, n_qubits)
        config = BASE_CONFIG.replace(topology=topology)
        for backend_name in BACKENDS:
            start = time.perf_counter()
            result = get_backend(backend_name).compile(
                CompileRequest(terms=terms, n_qubits=n_qubits, config=config)
            )
            sequence = compiled_rotation_sequence(result, terms)
            reference = optimize_circuit(
                exponential_sequence_circuit(sequence, n_qubits=n_qubits)
            )
            naive = naive_route_circuit(reference, topology)
            sabre = route_circuit(reference, topology, seed=0)
            steered = result.routing
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "case": name,
                    "molecule": molecule,
                    "n_terms": len(terms),
                    "n_qubits": n_qubits,
                    "topology": topology.name,
                    "topology_kind": kind,
                    "backend": backend_name,
                    "table1_cnot_count": result.cnot_count,
                    "reference_cnot_count": reference.cnot_count,
                    "steered": {
                        "cnot_count": steered.cnot_count,
                        "n_swaps": steered.n_swaps,
                        "depth": steered.depth,
                        "two_qubit_depth": steered.two_qubit_depth,
                        "gate_histogram": dict(steered.gate_histogram),
                    },
                    "naive_ladder": {
                        "cnot_count": naive.metrics().cnot_count,
                        "n_swaps": naive.n_swaps,
                        "depth": naive.metrics().depth,
                        "two_qubit_depth": naive.metrics().two_qubit_depth,
                    },
                    "sabre": {
                        "cnot_count": sabre.metrics().cnot_count,
                        "n_swaps": sabre.n_swaps,
                        "depth": sabre.metrics().depth,
                        "two_qubit_depth": sabre.metrics().two_qubit_depth,
                    },
                    "steered_overhead_percent": (
                        100.0 * (steered.cnot_count / reference.cnot_count - 1.0)
                        if reference.cnot_count
                        else 0.0
                    ),
                    "seconds": elapsed,
                }
            )
            row = rows[-1]
            print(
                f"{name:<11}{topology.name:<15}{backend_name:<5}"
                f"ref={row['reference_cnot_count']:>5}  "
                f"steered={row['steered']['cnot_count']:>5}  "
                f"naive={row['naive_ladder']['cnot_count']:>5} "
                f"(+{row['naive_ladder']['n_swaps']} swaps)  "
                f"sabre={row['sabre']['cnot_count']:>5} "
                f"(+{row['sabre']['n_swaps']} swaps)  [{elapsed:.1f}s]"
            )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", type=Path, default=Path("BENCH_routing.json"))
    args = parser.parse_args()

    header = (
        f"{'case':<11}{'topology':<15}{'bk.':<5}{'reference':>9}  "
        f"{'steered':>7}  {'naive-ladder':>12}  {'sabre':>6}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for name, molecule, n_frozen, n_terms in CASES:
        rows.extend(bench_case(name, molecule, n_frozen, n_terms))

    # Acceptance bar: on the line topology the advanced backend's steered
    # routing must be no worse than the naive nearest-neighbour ladder bound.
    failures = []
    for row in rows:
        if row["backend"] == "adv" and row["topology_kind"] == "line":
            steered = row["steered"]["cnot_count"]
            naive = row["naive_ladder"]["cnot_count"]
            status = "PASS" if steered <= naive else "FAIL"
            print(
                f"line/adv bar [{row['case']}]: steered {steered} <= "
                f"naive {naive}: {status}"
            )
            if steered > naive:
                failures.append(row["case"])

    payload = {
        "metadata": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cases": [name for name, *_ in CASES],
            "bar": "line/adv steered <= naive nearest-neighbour ladder",
            "bar_ok": not failures,
        },
        "rows": rows,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"Wrote {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
