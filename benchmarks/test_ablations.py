"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation switches one ingredient of the advanced pipeline off — by
replacing the relevant :class:`~repro.api.CompilerConfig` field or by
substituting a pipeline stage (:meth:`~repro.core.AdvancedPipeline.with_stage`)
— and measures the CNOT count on the same LiH / H2O ansatz, quantifying what
each technique buys:

* hybrid encoding on/off (Sec. III-A),
* GTSP advanced sorting vs naive per-term ordering (Sec. III-B),
* per-string target freedom vs shared targets (Sec. III-B),
* block-diagonal Γ simulated annealing vs identity transformation vs the
  baseline's PSO-searched upper-triangular matrix (Sec. III-C).
"""

import numpy as np
import pytest

from repro.api import CompileRequest, CompilerConfig, get_backend
from repro.core import (
    AdvancedPipeline,
    advanced_sort,
    baseline_order_cnot_count,
    greedy_sort,
    naive_sort_stage,
    terms_to_rotations,
)
from repro.transforms import JordanWignerTransform

BASE_CONFIG = CompilerConfig(
    gamma_steps=15, sorting_population=14, sorting_generations=15, seed=0
)


def make_pipeline(**overrides):
    return AdvancedPipeline(BASE_CONFIG.replace(**overrides))


@pytest.fixture(scope="module")
def lih_case(molecule_data):
    hamiltonian, ranked = molecule_data("LiH")
    return hamiltonian, ranked[:6]


@pytest.fixture(scope="module")
def water_case(molecule_data):
    hamiltonian, ranked = molecule_data("H2O")
    return hamiltonian, ranked[:6]


class TestHybridEncodingAblation:
    def test_hybrid_encoding_reduces_cnots(self, benchmark, lih_case):
        hamiltonian, terms = lih_case
        n_qubits = hamiltonian.n_spin_orbitals

        def run():
            full = make_pipeline().run(terms, n_qubits=n_qubits).cnot_count
            no_hybrid = make_pipeline(use_hybrid_encoding=False).run(
                terms, n_qubits=n_qubits
            ).cnot_count
            return full, no_hybrid

        full, no_hybrid = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\n[Ablation/hybrid] LiH(6): with hybrid={full}, without hybrid={no_hybrid}")
        assert full <= no_hybrid


class TestSortingAblation:
    def test_gtsp_not_worse_than_greedy_or_naive(self, benchmark, water_case):
        hamiltonian, terms = water_case
        transform = JordanWignerTransform(hamiltonian.n_spin_orbitals)
        fermionic = [t for t in terms if t.encoding_class != "bosonic"]
        rotations = terms_to_rotations(fermionic, transform)

        result = benchmark.pedantic(
            advanced_sort,
            args=(rotations,),
            kwargs={
                "population_size": 14,
                "generations": 15,
                "rng": np.random.default_rng(0),
            },
            rounds=1,
            iterations=1,
        )
        greedy = greedy_sort(rotations).cnot_count
        naive = baseline_order_cnot_count(rotations)
        print(
            f"\n[Ablation/sorting] H2O rotations={len(rotations)}: "
            f"naive={naive}, greedy={greedy}, GTSP={result.cnot_count}"
        )
        assert result.cnot_count <= naive
        assert greedy <= naive

    def test_advanced_sort_stage_not_worse_than_naive_stage(self, water_case):
        """Stage substitution: swapping the GTSP sort for the naive-order stage
        must never improve the full pipeline."""
        hamiltonian, terms = water_case
        n_qubits = hamiltonian.n_spin_orbitals
        pipeline = make_pipeline()
        full = pipeline.run(terms, n_qubits=n_qubits).cnot_count
        naive = pipeline.with_stage("sort", naive_sort_stage).run(
            terms, n_qubits=n_qubits
        ).cnot_count
        print(f"\n[Ablation/sort-stage] H2O(6): GTSP stage={full}, naive stage={naive}")
        assert full <= naive

    def test_target_freedom_matters(self, water_case):
        """Compare the advanced pipeline against a shared-target baseline on the
        same uncompressed term set (no compression in either flow)."""
        hamiltonian, terms = water_case
        n_qubits = hamiltonian.n_spin_orbitals
        advanced = make_pipeline(
            use_bosonic_encoding=False, use_hybrid_encoding=False, use_gamma_search=False
        ).run(terms, n_qubits=n_qubits).cnot_count
        shared_target = get_backend("baseline").compile(
            CompileRequest(
                terms=tuple(terms),
                n_qubits=n_qubits,
                config=BASE_CONFIG.replace(use_bosonic_encoding=False),
            )
        ).cnot_count
        print(f"\n[Ablation/targets] H2O(6): per-string targets={advanced}, "
              f"shared targets={shared_target}")
        assert advanced <= shared_target


class TestGammaAblation:
    def test_gamma_search_not_worse_than_identity(self, benchmark, lih_case):
        hamiltonian, terms = lih_case
        n_qubits = hamiltonian.n_spin_orbitals

        def run():
            with_gamma = make_pipeline().run(terms, n_qubits=n_qubits).cnot_count
            without_gamma = make_pipeline(use_gamma_search=False).run(
                terms, n_qubits=n_qubits
            ).cnot_count
            return with_gamma, without_gamma

        with_gamma, without_gamma = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\n[Ablation/gamma] LiH(6): SA-searched Γ={with_gamma}, identity Γ={without_gamma}")
        assert with_gamma <= without_gamma

    def test_sa_gamma_not_worse_than_pso_baseline_search(self, lih_case):
        hamiltonian, terms = lih_case
        n_qubits = hamiltonian.n_spin_orbitals
        advanced = make_pipeline().run(terms, n_qubits=n_qubits).cnot_count

        pso_request = CompileRequest(
            terms=tuple(terms),
            n_qubits=n_qubits,
            config=BASE_CONFIG.replace(
                baseline_pso_particles=6, baseline_pso_iterations=4
            ),
        )
        baseline_count = get_backend("baseline").compile(pso_request).cnot_count
        print(f"\n[Ablation/gamma-vs-pso] LiH(6): advanced(SA Γ)={advanced}, "
              f"baseline(PSO upper-triangular Γ)={baseline_count}")
        assert advanced <= baseline_count
