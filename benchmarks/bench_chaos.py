"""Chaos benchmark: the resilience gate for the compile service.

Runs a pinned-seed :mod:`repro.faults` plan — 20 % ``disk.read`` /
``disk.write`` / ``compute`` error injection plus byte corruption and small
delays — against a 50-job mixed-priority workload on a 1-worker
:class:`~repro.service.CompileService` and enforces the resilience
contract.  Each site's fault *draw sequence* is an exact function of the
pinned seed; the op-level interleaving still shifts a little run to run
because the breaker's reset timeout is wall-clock (a lookup landing just
inside vs. outside the window is skipped vs. probed), so every gate below
is a threshold, not an exact count:

* **completion** — every job finishes successfully despite the injection
  (retries absorb compute faults; the breaker degrades disk faults): the
  completion rate must be exactly 100 %;
* **correctness** — every chaos-run result is bit-identical (pickle bytes)
  to the fault-free run of the same workload: faults may slow a job, never
  corrupt an answer;
* **breaker cycle** — the disk-tier circuit breaker must both *open* under
  the fault burst and *recover* (close) afterwards, proving degradation and
  re-admission both happen;
* **deadline liveness** — jobs submitted with a deadline resolve within
  deadline + slack; nothing hangs;
* **bounded retry cost** — the p99 total latency added by the chaos run over
  the clean run stays under ``P99_ADDED_CEILING_MS``;
* **zero disabled overhead** — with no plan active, a ``faults.fire()`` call
  must cost under ``DISABLED_OVERHEAD_CEILING_NS`` on top of a no-op call,
  preserving the ``repro.obs``-style disabled-path contract.

A second scenario gates the *batch* robustness layer: a 50-job
:func:`~repro.api.compile_batch` run on a 2-worker process pool is killed
mid-run by a pinned ``pool.worker`` kill schedule (workers die via
``os._exit``), then resumed over the same checkpoint directory with faults
off.  Gates: the resume completes every job (rate exactly 100 %), recompiles
**zero** journaled jobs (ceiling 0) and at most the jobs the kill lost
(ceiling = kill victims), and the merged outcome is bit-identical to an
uninterrupted run.  The scenario needs the ``fork`` start method (pool
children inherit the active plan); elsewhere it is reported as skipped and
its gates don't apply.

The chaos run executes under an enabled tracer; the span forest (including
``service.retry`` and ``service.breaker`` events) is exported as a Chrome
trace to ``TRACE_chaos.json`` and the metric report to ``BENCH_chaos.json``;
the ``chaos-bench`` CI job uploads both and fails on any violated gate.

Usage:
    PYTHONPATH=src python benchmarks/bench_chaos.py [--output BENCH_chaos.json]
                                                    [--trace TRACE_chaos.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import pickle
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import faults  # noqa: E402
from repro.api import CompileRequest, CompilerConfig, compile_batch  # noqa: E402
from repro.faults import inject  # noqa: E402
from repro.obs import chrome_trace, validate_chrome_trace  # noqa: E402
from repro.obs.tracer import tracing  # noqa: E402
from repro.service import (  # noqa: E402
    CircuitBreaker,
    CompileService,
    PersistentCompileCache,
    RetryPolicy,
)
from repro.vqe import ExcitationTerm  # noqa: E402

#: Pinned plan seed: the whole fault schedule (and hence the report) replays.
CHAOS_SEED = 13

#: 20 % error injection on the disk and compute sites, plus corruption/delay.
CHAOS_SPEC = (
    "disk.read=error:0.2;disk.read=corrupt:0.1;"
    "disk.write=error:0.2;disk.write=corrupt:0.1;"
    "compute=error:0.2;compute=delay:0.2:0.002"
)

#: The workload: 50 jobs over 10 distinct requests, priorities 0-2.
N_JOBS = 50
N_DISTINCT = 10
#: Every 7th job carries this deadline; all must finish well inside it.
DEADLINE_S = 30.0
DEADLINE_SLACK_S = 1.0

#: Gate ceilings.
P99_ADDED_CEILING_MS = 500.0
DISABLED_OVERHEAD_CEILING_NS = 1000.0

#: Retry/breaker tuning for the chaos run (also part of the pinned schedule).
RETRY_POLICY = RetryPolicy(max_attempts=6, base_delay_s=0.002, max_delay_s=0.02)
BREAKER = dict(failure_threshold=2, reset_timeout_s=0.01, probe_successes=1)

#: Batch-resume scenario: pinned kill schedule for the 2-worker process pool.
#: With this seed every forked worker dies at the start of its 7th job, so a
#: deterministic slice of the batch survives (and is journaled) before the
#: pool breaks.
BATCH_N_JOBS = 50
BATCH_KILL_SEED = 2
BATCH_KILL_SPEC = f"seed={BATCH_KILL_SEED};pool.worker=kill:0.15"


def workload_requests():
    """10 distinct fast requests (small config sizes keep the gate quick)."""
    config = CompilerConfig(
        gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0
    )
    return [
        CompileRequest(
            terms=(
                ExcitationTerm(creation=(10, 11), annihilation=(0, 1)),
                ExcitationTerm(creation=(6 + index,), annihilation=(index % 6,)),
            ),
            n_qubits=16,
            config=config,
        )
        for index in range(N_DISTINCT)
    ]


def workload_slots():
    """(request index, priority, deadline) per job slot — fixed, mixed.

    Jobs run in waves of ``N_DISTINCT`` (each wave awaited before the next is
    submitted), so repeat waves are served by the *disk* tier rather than
    collapsing into one deduplicated in-flight group — which is exactly the
    traffic the circuit breaker must see to be exercised.
    """
    return [
        (slot % N_DISTINCT, slot % 3, DEADLINE_S if slot % 7 == 0 else None)
        for slot in range(N_JOBS)
    ]


def result_payload(result) -> bytes:
    """The semantically meaningful result bytes, for bit-identity checks.

    ``CompileResult`` carries compare-excluded volatile fields
    (``wall_time_s``, ``stage_timings``, backend-native ``details``) that
    legitimately differ run to run; correctness is identity of everything
    the caller consumes: counts, breakdown and routing metrics.
    """
    return pickle.dumps(
        (
            result.backend,
            result.cnot_count,
            result.n_qubits,
            sorted(result.breakdown.items()),
            result.routing,
        )
    )


async def run_workload(cache_dir: str, plan_spec: str = None) -> dict:
    """Run the 50-job workload; returns outcomes + service metrics."""
    requests = workload_requests()
    service = CompileService(
        disk_cache=PersistentCompileCache(cache_dir),
        use_memory_cache=False,  # every job exercises the disk tier
        n_workers=1,  # single worker: jobs (and their fault draws) run in order
        max_queue=N_JOBS + 1,
        retry_policy=RETRY_POLICY,
        breaker=CircuitBreaker(**BREAKER),
    )
    outcomes, elapsed = [], []
    async with service:
        async def drive():
            slots = workload_slots()
            for wave_start in range(0, N_JOBS, N_DISTINCT):
                wave = slots[wave_start : wave_start + N_DISTINCT]
                job_ids = []
                for index, priority, deadline_s in wave:
                    job_ids.append(
                        await service.submit(
                            requests[index],
                            priority=priority,
                            deadline_s=deadline_s,
                        )
                    )
                for job_id in job_ids:
                    start = time.perf_counter()
                    try:
                        outcomes.append(await service.result(job_id))
                    except Exception as exc:  # typed failure, still a resolution
                        outcomes.append(exc)
                    elapsed.append(time.perf_counter() - start)

        if plan_spec is None:
            await asyncio.wait_for(drive(), timeout=600)
        else:
            with inject(plan_spec, seed=CHAOS_SEED) as plan:
                await asyncio.wait_for(drive(), timeout=600)
        snapshot = service.snapshot()
    report = {
        "outcomes": outcomes,
        "elapsed_s": elapsed,
        "metrics": snapshot["metrics"],
    }
    if plan_spec is not None:
        report["faults_fired"] = {
            f"{site}.{action}": count
            for (site, action), count in sorted(plan.fired.items())
        }
    return report


def batch_requests():
    """50 distinct tiny advanced-pipeline jobs (distinct seeds, shared terms)."""
    config = CompilerConfig(
        gamma_steps=1, sorting_population=2, sorting_generations=1, coloring_orders=1
    )
    terms = (
        ExcitationTerm(creation=(4, 7), annihilation=(0, 3)),
        ExcitationTerm(creation=(6,), annihilation=(2,)),
    )
    return [
        CompileRequest(terms=terms, n_qubits=8, config=config.replace(seed=index))
        for index in range(BATCH_N_JOBS)
    ]


def run_batch_scenario():
    """Kill a checkpointed pool batch mid-run, resume it, gate the outcome.

    Returns the scenario report, or ``None`` when the platform's process
    start method isn't ``fork`` (the kill schedule can't reach pool children
    there, so the scenario — and its gates — don't apply).
    """
    if multiprocessing.get_start_method() != "fork":
        return None
    requests = batch_requests()
    with tempfile.TemporaryDirectory(prefix="bench-chaos-batch-") as checkpoint_dir:
        with inject(BATCH_KILL_SPEC):
            killed = compile_batch(
                requests,
                backends="advanced",
                workers=2,
                checkpoint_dir=checkpoint_dir,
                on_error="collect",
            )
        resumed = compile_batch(
            requests,
            backends="advanced",
            workers=2,
            checkpoint_dir=checkpoint_dir,
            on_error="collect",
        )
    clean = compile_batch(requests, backends="advanced", workers=1)

    rows_complete = sum(1 for row in resumed.results if "advanced" in row)
    bit_identical = rows_complete == BATCH_N_JOBS and all(
        result_payload(resumed_row["advanced"]) == result_payload(clean_row["advanced"])
        for resumed_row, clean_row in zip(resumed.results, clean.results)
    )
    #: Journaled jobs the resume re-executed anyway — must be zero.
    journaled_recompiles = len(
        set(killed.report.compiled) - set(resumed.report.skipped)
    )
    return {
        "n_jobs": BATCH_N_JOBS,
        "survived_kill": len(killed.report.compiled),
        "failed_by_kill": len(killed.report.failed),
        "resume_skipped": len(resumed.report.skipped),
        "resume_recompiled": len(resumed.report.compiled),
        "resume_failed": len(resumed.report.failed),
        "journaled_recompiles": journaled_recompiles,
        "completion_rate": rows_complete / BATCH_N_JOBS,
        "bit_identical_to_clean": bit_identical,
    }


def measure_disabled_overhead(calls: int = 200_000) -> float:
    """Per-call ns cost of faults.fire() with no active plan, minus a no-op."""
    assert faults.active_plan() is None

    def noop(site):
        pass

    def time_loop(fn):
        start = time.perf_counter_ns()
        for _ in range(calls):
            fn("compute")
        return (time.perf_counter_ns() - start) / calls

    time_loop(noop)  # warm both paths
    time_loop(faults.fire)
    baseline_ns = min(time_loop(noop) for _ in range(3))
    fire_ns = min(time_loop(faults.fire) for _ in range(3))
    return max(0.0, fire_ns - baseline_ns)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="write the JSON report here")
    parser.add_argument("--trace", default=None, help="write the Chrome trace here")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bench-chaos-clean-") as clean_dir:
        clean = asyncio.run(run_workload(clean_dir))
    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as chaos_dir:
        with tracing() as tracer:
            chaos = asyncio.run(run_workload(chaos_dir, plan_spec=CHAOS_SPEC))
        trace = chrome_trace(tracer, process_name="bench_chaos")
    n_trace_events = validate_chrome_trace(trace)

    successes = [o for o in chaos["outcomes"] if not isinstance(o, Exception)]
    completion_rate = len(successes) / N_JOBS
    bit_identical = all(
        isinstance(chaos_out, Exception)
        or result_payload(chaos_out) == result_payload(clean_out)
        for chaos_out, clean_out in zip(chaos["outcomes"], clean["outcomes"])
    )
    deadline_elapsed = [
        chaos["elapsed_s"][slot]
        for slot, (_, _, deadline_s) in enumerate(workload_slots())
        if deadline_s is not None
    ]
    deadline_ok = max(deadline_elapsed) <= DEADLINE_S + DEADLINE_SLACK_S

    resilience = chaos["metrics"]["resilience"]
    clean_p99 = clean["metrics"]["latency"]["total"]["p99_ms"]
    chaos_p99 = chaos["metrics"]["latency"]["total"]["p99_ms"]
    added_p99_ms = chaos_p99 - clean_p99
    overhead_ns = measure_disabled_overhead()
    batch = run_batch_scenario()

    report = {
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "plan": {"seed": CHAOS_SEED, "spec": CHAOS_SPEC, "breaker": BREAKER,
                 "retry_max_attempts": RETRY_POLICY.max_attempts},
        "workload": {"n_jobs": N_JOBS, "n_distinct": N_DISTINCT,
                     "deadline_s": DEADLINE_S},
        "clean": {"metrics": clean["metrics"]},
        "chaos": {
            "metrics": chaos["metrics"],
            "faults_fired": chaos["faults_fired"],
        },
        "trace_events": n_trace_events,
        "summary": {
            "completion_rate": completion_rate,
            "bit_identical_to_clean": bit_identical,
            "breaker_opens": resilience["breaker_opens"],
            "breaker_closes": resilience["breaker_closes"],
            "retries": resilience["retries"],
            "disk_faults": resilience["disk_faults"],
            "disk_degraded": resilience["disk_degraded"],
            "deadline_jobs_within_slack": deadline_ok,
            "clean_p99_ms": clean_p99,
            "chaos_p99_ms": chaos_p99,
            "added_p99_ms": round(added_p99_ms, 3),
            "disabled_fire_overhead_ns": round(overhead_ns, 1),
        },
        "batch_resume": batch if batch is not None else {
            "skipped": "process start method is not fork"
        },
        "gates": {
            "completion_rate": 1.0,
            "added_p99_ceiling_ms": P99_ADDED_CEILING_MS,
            "disabled_overhead_ceiling_ns": DISABLED_OVERHEAD_CEILING_NS,
            "breaker_opens_min": 1,
            "breaker_closes_min": 1,
            "batch_resume_completion_rate": 1.0,
            "batch_journaled_recompiles_ceiling": 0,
            "batch_survived_kill_min": 1,
            "batch_failed_by_kill_min": 1,
        },
    }

    output = Path(args.output) if args.output else REPO_ROOT / "BENCH_chaos.json"
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    trace_path = Path(args.trace) if args.trace else REPO_ROOT / "TRACE_chaos.json"
    trace_path.write_text(json.dumps(trace) + "\n")

    summary = report["summary"]
    print(f"completion          : {completion_rate:.0%} of {N_JOBS} jobs "
          f"(retries used: {summary['retries']})")
    print(f"correctness         : bit-identical to clean run = {bit_identical}")
    print(f"breaker             : opened {summary['breaker_opens']}x, "
          f"closed {summary['breaker_closes']}x "
          f"({summary['disk_faults']} disk faults, "
          f"{summary['disk_degraded']} degraded lookups)")
    print(f"p99 added latency   : {summary['added_p99_ms']:9.3f} ms "
          f"(ceiling {P99_ADDED_CEILING_MS:.0f} ms)")
    print(f"disabled fire()     : {summary['disabled_fire_overhead_ns']:9.1f} ns/call "
          f"(ceiling {DISABLED_OVERHEAD_CEILING_NS:.0f} ns)")
    if batch is None:
        batch_ok = True
        print("batch resume        : skipped (process start method is not fork)")
    else:
        batch_ok = (
            batch["completion_rate"] == 1.0
            and batch["bit_identical_to_clean"]
            and batch["journaled_recompiles"] == 0
            and batch["resume_failed"] == 0
            and batch["survived_kill"] >= 1
            and batch["failed_by_kill"] >= 1
            and batch["resume_recompiled"] <= batch["failed_by_kill"]
        )
        print(f"batch resume        : {batch['survived_kill']} journaled before kill, "
              f"{batch['failed_by_kill']} lost, "
              f"{batch['resume_recompiled']} recompiled on resume "
              f"({batch['journaled_recompiles']} journaled recompiles, ceiling 0), "
              f"bit-identical = {batch['bit_identical_to_clean']}")
    print(f"wrote {output} and {trace_path} ({n_trace_events} trace events)")

    ok = (
        completion_rate == 1.0
        and bit_identical
        and deadline_ok
        and summary["breaker_opens"] >= 1
        and summary["breaker_closes"] >= 1
        and added_p99_ms <= P99_ADDED_CEILING_MS
        and overhead_ns <= DISABLED_OVERHEAD_CEILING_NS
        and batch_ok
    )
    print(f"chaos gates: {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
