"""Microbenchmark: symplectic bit-packed Pauli engine vs the label-tuple baseline.

Measures the two operator-core hot paths the compilation pipeline leans on —
pairwise commutation scans and Pauli-string products — against a faithful
copy of the seed's label-tuple implementation (per-qubit dictionary lookups),
plus the batched numpy engine (:mod:`repro.operators.symplectic`) and the
GTSP interface-cost matrix.

The acceptance bar for the symplectic rewrite is a >= 3x speedup on the
product and pairwise-commutation benchmarks; results ("before" = label
tuples, "after" = symplectic) are written to ``BENCH_pauli.json``.

Usage:
    PYTHONPATH=src python benchmarks/bench_pauli_ops.py [--output BENCH_pauli.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.operators import PackedPaulis, PauliString, commutation_matrix
from repro.operators.pauli import _PAULI_PRODUCTS
from repro.operators.symplectic import interface_reduction_matrix


# ----------------------------------------------------------------------
# The label-tuple baseline: a minimal copy of the seed implementation.
# ----------------------------------------------------------------------
class LegacyPauliString:
    """Seed-era Pauli string: tuple of labels, per-qubit dict lookups."""

    __slots__ = ("labels",)

    def __init__(self, labels):
        self.labels = tuple(labels)

    def multiply(self, other) -> Tuple[complex, "LegacyPauliString"]:
        phase = complex(1.0)
        labels = []
        for a, b in zip(self.labels, other.labels):
            factor, product = _PAULI_PRODUCTS[(a, b)]
            phase *= factor
            labels.append(product)
        return phase, LegacyPauliString(labels)

    def commutes_with(self, other) -> bool:
        anticommuting = sum(
            1
            for a, b in zip(self.labels, other.labels)
            if a != "I" and b != "I" and a != b
        )
        return anticommuting % 2 == 0


def random_labels(rng: np.random.Generator, n_strings: int, n_qubits: int) -> List[str]:
    alphabet = np.array(list("IXYZ"))
    return [
        "".join(alphabet[rng.integers(0, 4, size=n_qubits)]) for _ in range(n_strings)
    ]


def best_of(repeats: int, function) -> float:
    """Best wall time of ``repeats`` runs (minimizes scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def bench_pairwise_commutation(labels: List[str], repeats: int) -> Dict[str, float]:
    legacy = [LegacyPauliString(label) for label in labels]
    strings = [PauliString(label) for label in labels]
    packed = PackedPaulis.from_strings(strings)

    def run_legacy():
        return [[a.commutes_with(b) for b in legacy] for a in legacy]

    def run_scalar():
        return [[a.commutes_with(b) for b in strings] for a in strings]

    def run_batched():
        return commutation_matrix(packed)

    reference = np.array(run_legacy())
    assert np.array_equal(np.array(run_scalar()), reference)
    assert np.array_equal(run_batched(), reference)

    label_tuple_s = best_of(repeats, run_legacy)
    scalar_s = best_of(repeats, run_scalar)
    batched_s = best_of(repeats, run_batched)
    return {
        "label_tuple_s": label_tuple_s,
        "symplectic_scalar_s": scalar_s,
        "symplectic_batched_s": batched_s,
        "speedup_scalar": label_tuple_s / scalar_s,
        "speedup_batched": label_tuple_s / batched_s,
    }


def bench_operator_product(labels: List[str], repeats: int) -> Dict[str, float]:
    legacy = [LegacyPauliString(label) for label in labels]
    strings = [PauliString(label) for label in labels]
    pairs = list(zip(range(len(labels)), reversed(range(len(labels)))))

    def run_legacy():
        return [legacy[i].multiply(legacy[j]) for i, j in pairs]

    def run_symplectic():
        return [strings[i].multiply(strings[j]) for i, j in pairs]

    for (lp, lprod), (sp, sprod) in zip(run_legacy(), run_symplectic()):
        assert lp == sp and "".join(lprod.labels) == sprod.to_label()

    label_tuple_s = best_of(repeats, run_legacy)
    symplectic_s = best_of(repeats, run_symplectic)
    return {
        "label_tuple_s": label_tuple_s,
        "symplectic_s": symplectic_s,
        "speedup": label_tuple_s / symplectic_s,
    }


def bench_interface_matrix(labels: List[str], repeats: int) -> Dict[str, float]:
    """GTSP cost matrix: per-pair scalar ω-rule vs one batched symplectic scan."""
    from repro.circuits.interface import interface_cnot_reduction

    strings = [PauliString(label) for label in labels if PauliString(label).support]
    targets = [string.support[-1] for string in strings]

    def run_scalar():
        return [
            [
                interface_cnot_reduction(a, ta, b, tb)
                for b, tb in zip(strings, targets)
            ]
            for a, ta in zip(strings, targets)
        ]

    def run_batched():
        return interface_reduction_matrix(strings, targets)

    assert np.array_equal(np.array(run_scalar()), run_batched())
    scalar_s = best_of(repeats, run_scalar)
    batched_s = best_of(repeats, run_batched)
    return {
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=32)
    parser.add_argument("--strings", type=int, default=192, help="strings in the pairwise scans")
    parser.add_argument("--products", type=int, default=4000, help="string pairs to multiply")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_pauli.json"
    )
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    scan_labels = random_labels(rng, args.strings, args.qubits)
    product_labels = random_labels(rng, args.products, args.qubits)

    results = {
        "config": {
            "n_qubits": args.qubits,
            "n_strings_pairwise": args.strings,
            "n_product_pairs": args.products,
            "repeats": args.repeats,
            "seed": args.seed,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "pairwise_commutation": bench_pairwise_commutation(scan_labels, args.repeats),
        "operator_product": bench_operator_product(product_labels, args.repeats),
        "interface_cost_matrix": bench_interface_matrix(scan_labels, args.repeats),
    }

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    commutation = results["pairwise_commutation"]
    product = results["operator_product"]
    print(
        f"\npairwise commutation: {commutation['speedup_scalar']:.1f}x scalar, "
        f"{commutation['speedup_batched']:.0f}x batched; "
        f"products: {product['speedup']:.1f}x; "
        f"interface matrix: {results['interface_cost_matrix']['speedup']:.0f}x batched"
    )
    floor = 3.0
    ok = commutation["speedup_scalar"] >= floor and product["speedup"] >= floor
    print(f"speedup floor ({floor:.0f}x on commutation + products): {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
