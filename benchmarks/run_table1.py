"""Regenerate Table I of the paper (full sweep).

For every molecule of Table I this script selects the requested number of
HMP2-ranked UCCSD excitation terms and reports the CNOT counts of the four
compilation flows (JW, BK, prior-art baseline "GT", and this work "Adv"),
plus the improvement of Adv over GT.

The NH3 row and the deeper water progressions take several minutes in pure
Python; pass ``--quick`` to restrict the sweep to the fast rows.

Usage:
    python benchmarks/run_table1.py [--quick] [--seed 0]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.baselines import BaselineCompiler, naive_cnot_count
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.core import AdvancedCompiler
from repro.transforms import BravyiKitaevTransform, JordanWignerTransform
from repro.vqe import hmp2_ranked_terms

#: Full Table-I style sweep: (molecule, frozen core, list of Ne values).
FULL_CASES = [
    ("HF", 1, [3]),
    ("LiH", 1, [3]),
    ("BeH2", 1, [9]),
    ("NH3", 1, [12]),
    ("H2O", 1, [4, 5, 6, 8, 9, 11, 12, 14, 16, 17]),
]

QUICK_CASES = [
    ("HF", 1, [3]),
    ("LiH", 1, [3]),
    ("BeH2", 1, [6]),
    ("H2O", 1, [4, 6, 8]),
]

#: Published Table I values (JW, BK, GT, Adv) for side-by-side comparison.
PAPER_TABLE1 = {
    ("HF", 3): (30, 29, 25, 19),
    ("LiH", 3): (30, 29, 25, 19),
    ("BeH2", 9): (70, 71, 60, 53),
    ("NH3", 52): (485, 607, 478, 461),
    ("H2O", 4): (42, 50, 33, 27),
    ("H2O", 5): (44, 52, 35, 29),
    ("H2O", 6): (46, 47, 37, 31),
    ("H2O", 8): (68, 88, 63, 50),
    ("H2O", 9): (71, 89, 66, 53),
    ("H2O", 11): (93, 110, 87, 67),
    ("H2O", 12): (95, 112, 89, 70),
    ("H2O", 14): (114, 140, 111, 88),
    ("H2O", 16): (135, 166, 131, 105),
    ("H2O", 17): (137, 168, 133, 107),
}


def compile_row(hamiltonian, terms, seed: int):
    n_qubits = hamiltonian.n_spin_orbitals
    jw = naive_cnot_count(terms, JordanWignerTransform(n_qubits))
    bk = naive_cnot_count(terms, BravyiKitaevTransform(n_qubits))
    baseline = BaselineCompiler().compile(terms, n_qubits=n_qubits).cnot_count
    advanced = AdvancedCompiler(
        gamma_steps=30, sorting_population=20, sorting_generations=25, seed=seed
    ).compile(terms, n_qubits=n_qubits).cnot_count
    return jw, bk, baseline, advanced


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run only the fast rows")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=Path("benchmarks/results_table1.json"))
    args = parser.parse_args()

    cases = QUICK_CASES if args.quick else FULL_CASES
    rows = []
    header = (
        f"{'Molecule':<9}{'Ne':>4}{'JW':>7}{'BK':>7}{'GT':>7}{'Adv':>7}{'Impr%':>8}"
        f"   | paper: {'JW':>4}{'BK':>5}{'GT':>5}{'Adv':>5}{'Impr%':>7}"
    )
    print(header)
    print("-" * len(header))

    for molecule_name, frozen, term_counts in cases:
        scf = run_rhf(make_molecule(molecule_name))
        hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=frozen)
        ranked = hmp2_ranked_terms(hamiltonian)
        for n_terms in term_counts:
            terms = ranked[: min(n_terms, len(ranked))]
            start = time.time()
            jw, bk, baseline, advanced = compile_row(hamiltonian, terms, args.seed)
            elapsed = time.time() - start
            improvement = 100.0 * (1.0 - advanced / baseline) if baseline else 0.0
            paper = PAPER_TABLE1.get((molecule_name, n_terms))
            if paper:
                paper_improvement = 100.0 * (1.0 - paper[3] / paper[2])
                paper_text = (
                    f"{paper[0]:>4}{paper[1]:>5}{paper[2]:>5}{paper[3]:>5}{paper_improvement:>7.2f}"
                )
            else:
                paper_text = f"{'-':>4}{'-':>5}{'-':>5}{'-':>5}{'-':>7}"
            print(
                f"{molecule_name:<9}{len(terms):>4}{jw:>7}{bk:>7}{baseline:>7}{advanced:>7}"
                f"{improvement:>8.2f}   |        {paper_text}   [{elapsed:.1f}s]"
            )
            rows.append(
                {
                    "molecule": molecule_name,
                    "n_terms": len(terms),
                    "jw": jw,
                    "bk": bk,
                    "baseline_gt": baseline,
                    "advanced": advanced,
                    "improvement_percent": improvement,
                    "paper": paper,
                    "seconds": elapsed,
                }
            )

    args.output.write_text(json.dumps(rows, indent=2))
    print(f"\nWrote {args.output}")


if __name__ == "__main__":
    main()
