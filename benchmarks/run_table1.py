"""Regenerate Table I of the paper (full sweep) through the unified API.

For every molecule of Table I this script selects the requested number of
HMP2-ranked UCCSD excitation terms, builds one
:class:`~repro.api.CompileRequest` per row, and compiles the whole sweep with
:func:`repro.api.compile_batch` across the four Table-I backends (JW, BK,
prior-art baseline "GT", and this work "Adv"), reporting the CNOT counts and
the improvement of Adv over GT.

The NH3 row and the deeper water progressions take several minutes in pure
Python; pass ``--quick`` to restrict the sweep to the fast rows, and
``--workers N`` to fan the compilations out over N processes.

Pass ``--topology {line,ring,grid,heavy-hex,all-to-all}`` to compile every
row against the smallest device of that family covering the register
(:func:`repro.hardware.topology_for`): each backend then reports routed
CNOT/SWAP counts, depth, two-qubit depth and a gate histogram next to the
abstract Table-I numbers, and the JSON rows carry the full routing metrics.

Pass ``--trace`` to run the sweep under the :mod:`repro.obs` tracer: every
row gets a ``table1.row`` span over the full compile/route/verify span tree,
the per-stage timings of the advanced pipeline print under each row, and the
collected trace is written both as a native trace document
(``--trace-output``, default ``benchmarks/trace_table1.json``) and as a
Chrome trace-event file next to it (``*.chrome.json``, loadable in
Perfetto / ``chrome://tracing``).

Usage:
    python benchmarks/run_table1.py [--quick] [--seed 0] [--workers N]
                                    [--topology KIND] [--trace]
"""

from __future__ import annotations

import argparse
import json
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.api import (
    DEFAULT_BACKEND_NAMES,
    CompileCache,
    CompileRequest,
    CompilerConfig,
    compile_batch,
)
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.hardware import TOPOLOGY_KINDS, topology_for
from repro.obs import (
    chrome_trace,
    enable_tracing,
    get_metrics,
    get_tracer,
    trace_document,
    validate_chrome_trace,
    write_trace,
)
from repro.vqe import hmp2_ranked_terms

#: Table-I column order, by canonical backend name.
BACKENDS = tuple(DEFAULT_BACKEND_NAMES)

#: Full Table-I style sweep: (molecule, frozen core, list of Ne values).
FULL_CASES = [
    ("HF", 1, [3]),
    ("LiH", 1, [3]),
    ("BeH2", 1, [9]),
    ("NH3", 1, [12]),
    ("H2O", 1, [4, 5, 6, 8, 9, 11, 12, 14, 16, 17]),
]

QUICK_CASES = [
    ("HF", 1, [3]),
    ("LiH", 1, [3]),
    ("BeH2", 1, [6]),
    ("H2O", 1, [4, 6, 8]),
]

#: Published Table I values (JW, BK, GT, Adv) for side-by-side comparison.
PAPER_TABLE1 = {
    ("HF", 3): (30, 29, 25, 19),
    ("LiH", 3): (30, 29, 25, 19),
    ("BeH2", 9): (70, 71, 60, 53),
    ("NH3", 52): (485, 607, 478, 461),
    ("H2O", 4): (42, 50, 33, 27),
    ("H2O", 5): (44, 52, 35, 29),
    ("H2O", 6): (46, 47, 37, 31),
    ("H2O", 8): (68, 88, 63, 50),
    ("H2O", 9): (71, 89, 66, 53),
    ("H2O", 11): (93, 110, 87, 67),
    ("H2O", 12): (95, 112, 89, 70),
    ("H2O", 14): (114, 140, 111, 88),
    ("H2O", 16): (135, 166, 131, 105),
    ("H2O", 17): (137, 168, 133, 107),
}


def build_requests(cases, seed: int, topology_kind=None):
    """One ``(molecule, request)`` pair per Table-I row."""
    config = CompilerConfig(
        gamma_steps=30, sorting_population=20, sorting_generations=25, seed=seed
    )
    labeled = []
    for molecule_name, frozen, term_counts in cases:
        scf = run_rhf(make_molecule(molecule_name))
        hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=frozen)
        ranked = hmp2_ranked_terms(hamiltonian)
        row_config = config
        if topology_kind is not None:
            row_config = config.replace(
                topology=topology_for(topology_kind, hamiltonian.n_spin_orbitals)
            )
        for n_terms in term_counts:
            terms = ranked[: min(n_terms, len(ranked))]
            request = CompileRequest(
                terms=tuple(terms),
                n_qubits=hamiltonian.n_spin_orbitals,
                config=row_config,
            )
            labeled.append((molecule_name, request))
    return labeled


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run only the fast rows")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1, help="compile in N processes")
    parser.add_argument(
        "--topology",
        choices=TOPOLOGY_KINDS,
        default=None,
        help="compile against a device family and report routed metrics",
    )
    parser.add_argument("--output", type=Path, default=Path("benchmarks/results_table1.json"))
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect a repro.obs trace of the sweep and export it",
    )
    parser.add_argument(
        "--trace-output",
        type=Path,
        default=Path("benchmarks/trace_table1.json"),
        help="native trace document path (--trace only); the Chrome trace "
        "lands next to it as *.chrome.json",
    )
    args = parser.parse_args()

    if args.trace:
        enable_tracing()
    tracer = get_tracer()

    cases = QUICK_CASES if args.quick else FULL_CASES
    labeled = build_requests(cases, args.seed, topology_kind=args.topology)

    rows = []
    header = (
        f"{'Molecule':<9}{'Ne':>4}{'JW':>7}{'BK':>7}{'GT':>7}{'Adv':>7}{'Impr%':>8}"
        f"   | paper: {'JW':>4}{'BK':>5}{'GT':>5}{'Adv':>5}{'Impr%':>7}"
    )
    print(header)
    print("-" * len(header))

    # One batch per row so the multi-minute full sweep prints each Table-I
    # row as it completes; a single shared pool amortizes worker startup.
    cache = CompileCache()
    pool = ProcessPoolExecutor(max_workers=args.workers) if args.workers > 1 else None
    start = time.time()
    try:
        for molecule_name, request in labeled:
            row_start = time.time()
            with tracer.span(
                "table1.row", molecule=molecule_name, n_terms=len(request.terms)
            ):
                row = compile_batch(
                    [request], backends=BACKENDS, cache=cache, executor=pool
                ).results[0]
            elapsed = time.time() - row_start
            jw, bk, baseline, advanced = (row[name].cnot_count for name in BACKENDS)
            improvement = 100.0 * (1.0 - advanced / baseline) if baseline else 0.0
            paper = PAPER_TABLE1.get((molecule_name, len(request.terms)))
            if paper:
                paper_improvement = 100.0 * (1.0 - paper[3] / paper[2])
                paper_text = (
                    f"{paper[0]:>4}{paper[1]:>5}{paper[2]:>5}{paper[3]:>5}"
                    f"{paper_improvement:>7.2f}"
                )
            else:
                paper_text = f"{'-':>4}{'-':>5}{'-':>5}{'-':>5}{'-':>7}"
            print(
                f"{molecule_name:<9}{len(request.terms):>4}{jw:>7}{bk:>7}{baseline:>7}"
                f"{advanced:>7}{improvement:>8.2f}   |        {paper_text}   [{elapsed:.1f}s]"
            )
            routing = None
            if args.topology is not None:
                routing = {
                    name: {
                        "topology": row[name].routing.topology,
                        "cnot_count": row[name].routing.cnot_count,
                        "n_swaps": row[name].routing.n_swaps,
                        "depth": row[name].routing.depth,
                        "two_qubit_depth": row[name].routing.two_qubit_depth,
                        "gate_histogram": dict(row[name].routing.gate_histogram),
                    }
                    for name in BACKENDS
                }
                adv_routed = routing["advanced"]
                print(
                    f"{'':>13}routed on {adv_routed['topology']}: "
                    f"adv={adv_routed['cnot_count']} CNOTs, "
                    f"2q-depth={adv_routed['two_qubit_depth']}, "
                    f"swaps={adv_routed['n_swaps']}"
                )
            stage_timings = row["advanced"].stage_timings
            if args.trace and stage_timings:
                stages = "  ".join(
                    f"{stage}={seconds * 1000.0:.1f}ms"
                    for stage, seconds in stage_timings.items()
                )
                print(f"{'':>13}stages: {stages}")
            rows.append(
                {
                    "molecule": molecule_name,
                    "n_terms": len(request.terms),
                    "jw": jw,
                    "bk": bk,
                    "baseline_gt": baseline,
                    "advanced": advanced,
                    "improvement_percent": improvement,
                    "paper": paper,
                    "routing": routing,
                    "seconds": elapsed,
                    "stage_seconds": stage_timings,
                }
            )
    finally:
        if pool is not None:
            pool.shutdown()
    total_elapsed = time.time() - start
    print(
        f"\n{len(rows)} rows x {len(BACKENDS)} backends in {total_elapsed:.1f}s "
        f"(cache: {cache.hits} hits / {cache.misses} misses)"
    )
    args.output.write_text(json.dumps(rows, indent=2))
    print(f"Wrote {args.output}")

    if args.trace:
        document = trace_document(tracer, metrics=get_metrics(), label="table1")
        write_trace(args.trace_output, document)
        chrome = chrome_trace(tracer, process_name="run_table1")
        n_events = validate_chrome_trace(chrome)
        chrome_path = args.trace_output.with_suffix(".chrome.json")
        chrome_path.write_text(json.dumps(chrome))
        print(
            f"Wrote {args.trace_output} and {chrome_path} "
            f"({n_events} spans; open in Perfetto or render with "
            f"tools/trace_report.py)"
        )


if __name__ == "__main__":
    main()
