"""End-to-end compile benchmark: wall time per stage, per backend, per flow.

Where ``bench_pauli_ops.py`` micro-benchmarks the operator core and
``bench_routing.py`` measures gate counts, this harness measures **compile
latency** — the quantity the matrix-form GTSP kernels and the cached
Gaussian-integral engine optimize — and pins it in CI:

* ``gtsp_sort`` — the advanced sort stage's GTSP genetic algorithm on the
  real LiH/n_terms=12 sorting problem: the seed's scalar-``weight`` dynamic
  program (a faithful copy embedded below) vs the dense-matrix kernels now in
  :mod:`repro.optimizers.gtsp`.  The tours must be bit-identical per seed;
  the enforced floor is a >= 5x speedup.
* ``end_to_end`` — ``compile_molecule_ansatz("LiH", n_terms=12)`` cold, with
  the seed behavior reconstructed (integral caching disabled via
  :func:`repro.chemistry.set_integral_caching`, the legacy GTSP solver
  patched in) vs the optimized path.  The Table-I counts must match exactly;
  the enforced floor is a >= 3x speedup.
* ``stage_times`` — per-stage wall times of the advanced Fig. 2 pipeline;
* ``backends`` — per-backend compile wall times for H2 and LiH across
  ansatz sizes;
* ``sabre_routing`` — SABRE routing time of the advanced fermionic circuit
  on line and grid topologies.

Results are written to ``BENCH_compile.json`` (uploaded as a CI artifact) so
the compile-latency trajectory stays visible across PRs.

Usage:
    PYTHONPATH=src python benchmarks/bench_compile.py [--output BENCH_compile.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.core.advanced_sorting as advanced_sorting
from repro import compile_molecule_ansatz
from repro.api import CompileRequest, CompilerConfig, DEFAULT_BACKEND_NAMES, get_backend
from repro.chemistry import (
    build_molecular_hamiltonian,
    clear_integral_caches,
    clear_scf_cache,
    make_molecule,
    run_rhf,
    set_integral_caching,
)
from repro.core.advanced_sorting import build_sorting_problem
from repro.core.pipeline import DEFAULT_STAGES, AdvancedPipeline
from repro.hardware import route_circuit, topology_for
from repro.optimizers import GtspResult, solve_gtsp
from repro.vqe import select_ansatz_terms

#: Enforced speedup floors (optimized vs seed implementation).
SORT_SPEEDUP_FLOOR = 5.0
END_TO_END_SPEEDUP_FLOOR = 3.0


# ----------------------------------------------------------------------
# The seed GTSP solver: a faithful copy of the scalar-weight implementation
# (per-edge Python ``weight`` calls, np.argmin over Python lists), kept as
# the "before" half of the comparison exactly like bench_pauli_ops.py keeps
# the label-tuple Pauli engine.
# ----------------------------------------------------------------------
class LegacyGtspProblem:
    """Seed-era GTSP instance: clusters plus a scalar weight callable."""

    def __init__(self, clusters, weight):
        self.clusters = clusters
        self.weight = weight

    @property
    def n_clusters(self):
        return len(self.clusters)

    def tour_cost(self, tour):
        if len(tour) <= 1:
            return 0.0
        cost = 0.0
        for (_, u), (_, v) in zip(tour, list(tour[1:]) + [tour[0]]):
            cost += float(self.weight(u, v))
        return cost


class _LegacyChromosome:
    __slots__ = ("order", "choices")

    def __init__(self, order, choices):
        self.order = order
        self.choices = choices

    def tour(self, problem):
        return tuple(
            (cluster, problem.clusters[cluster][self.choices[cluster]])
            for cluster in self.order
        )


def _legacy_random_chromosome(problem, rng):
    order = list(rng.permutation(problem.n_clusters))
    choices = [int(rng.integers(len(cluster))) for cluster in problem.clusters]
    return _LegacyChromosome([int(c) for c in order], choices)


def _legacy_crossover(parent_a, parent_b, rng):
    n = len(parent_a.order)
    if n == 1:
        return _LegacyChromosome(list(parent_a.order), list(parent_a.choices))
    cut_a, cut_b = sorted(rng.choice(n, size=2, replace=False))
    segment = parent_a.order[cut_a:cut_b + 1]
    remainder = [c for c in parent_b.order if c not in segment]
    order = remainder[:cut_a] + segment + remainder[cut_a:]
    choices = [
        parent_a.choices[c] if rng.random() < 0.5 else parent_b.choices[c]
        for c in range(len(parent_a.choices))
    ]
    return _LegacyChromosome(order, choices)


def _legacy_mutate(chromosome, problem, rng, mutation_rate):
    n = problem.n_clusters
    if n >= 2 and rng.random() < mutation_rate:
        i, j = rng.choice(n, size=2, replace=False)
        chromosome.order[i], chromosome.order[j] = chromosome.order[j], chromosome.order[i]
    if rng.random() < mutation_rate:
        cluster = int(rng.integers(n))
        chromosome.choices[cluster] = int(rng.integers(len(problem.clusters[cluster])))
    if n >= 3 and rng.random() < mutation_rate:
        i, j = sorted(rng.choice(n, size=2, replace=False))
        chromosome.order[i:j + 1] = reversed(chromosome.order[i:j + 1])


def _legacy_cluster_optimization(chromosome, problem):
    order = chromosome.order
    m = len(order)
    if m == 1:
        return
    clusters = [list(problem.clusters[c]) for c in order]
    weight = problem.weight

    best_total = None
    best_assignment = None
    for start_index, start_vertex in enumerate(clusters[0]):
        costs = [float(weight(start_vertex, v)) for v in clusters[1]]
        parents = [[0] * len(clusters[1])]
        for layer in range(2, m):
            new_costs = []
            new_parents = []
            for v in clusters[layer]:
                candidate_costs = [
                    costs[k] + float(weight(u, v)) for k, u in enumerate(clusters[layer - 1])
                ]
                best_k = int(np.argmin(candidate_costs))
                new_costs.append(candidate_costs[best_k])
                new_parents.append(best_k)
            costs = new_costs
            parents.append(new_parents)
        closing = [costs[k] + float(weight(u, start_vertex)) for k, u in enumerate(clusters[-1])]
        best_k = int(np.argmin(closing))
        total = closing[best_k]
        if best_total is None or total < best_total:
            best_total = total
            assignment = [0] * m
            assignment[0] = start_index
            k = best_k
            for layer in range(m - 1, 0, -1):
                assignment[layer] = k
                k = parents[layer - 1][k]
            best_assignment = assignment

    if best_assignment is not None:
        for layer, cluster in enumerate(order):
            chromosome.choices[cluster] = best_assignment[layer]


def _legacy_chromosome_from_tour(problem, tour):
    order = []
    choices = [0] * problem.n_clusters
    for cluster, vertex in tour:
        vertices = list(problem.clusters[cluster])
        order.append(int(cluster))
        choices[cluster] = vertices.index(vertex)
    return _LegacyChromosome(order, choices)


def legacy_solve_gtsp(
    problem,
    population_size: int = 40,
    generations: int = 60,
    mutation_rate: float = 0.3,
    elite_fraction: float = 0.2,
    cluster_optimization_rate: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    initial_tours=None,
) -> GtspResult:
    """The seed ``solve_gtsp``: full per-candidate re-evaluation, scalar DP."""
    rng = rng or np.random.default_rng()

    def cost_of(chromosome):
        return problem.tour_cost(chromosome.tour(problem))

    population = [_legacy_random_chromosome(problem, rng) for _ in range(population_size)]
    if initial_tours:
        seeds = [_legacy_chromosome_from_tour(problem, tour) for tour in initial_tours]
        population[: len(seeds)] = seeds[:population_size]
    for chromosome in population:
        _legacy_cluster_optimization(chromosome, problem)
    costs = [cost_of(c) for c in population]

    n_elite = max(1, int(elite_fraction * population_size))
    best_index = int(np.argmin(costs))
    best_chromosome, best_cost = population[best_index], costs[best_index]

    for _ in range(generations):
        ranked = sorted(range(population_size), key=lambda i: costs[i])
        elites = [population[i] for i in ranked[:n_elite]]
        next_population = [
            _LegacyChromosome(list(c.order), list(c.choices)) for c in elites
        ]
        while len(next_population) < population_size:
            contenders = rng.choice(population_size, size=min(4, population_size), replace=False)
            parents = sorted(contenders, key=lambda i: costs[i])[:2]
            child = _legacy_crossover(population[parents[0]], population[parents[1]], rng)
            _legacy_mutate(child, problem, rng, mutation_rate)
            if rng.random() < cluster_optimization_rate:
                _legacy_cluster_optimization(child, problem)
            next_population.append(child)
        population = next_population
        costs = [cost_of(c) for c in population]
        generation_best = int(np.argmin(costs))
        if costs[generation_best] < best_cost:
            best_chromosome = population[generation_best]
            best_cost = costs[generation_best]

    best_chromosome = _LegacyChromosome(list(best_chromosome.order), list(best_chromosome.choices))
    _legacy_cluster_optimization(best_chromosome, problem)
    final_cost = cost_of(best_chromosome)
    if final_cost < best_cost:
        best_cost = final_cost
    return GtspResult(
        tour=best_chromosome.tour(problem), cost=best_cost, generations=generations
    )


def legacy_problem_from(problem) -> LegacyGtspProblem:
    """Seed-shaped view of a matrix-form problem: one flat dict, scalar lookups."""
    row_of = {}
    row = 0
    for cluster in problem.clusters:
        for vertex in cluster:
            row_of[vertex] = row
            row += 1
    matrix = problem.matrix

    def weight(u, v):
        return float(matrix[row_of[u], row_of[v]])

    return LegacyGtspProblem(list(problem.clusters), weight)


def legacy_solve_adapter(problem, **kwargs) -> GtspResult:
    """Drop-in ``solve_gtsp`` replacement running the seed implementation."""
    return legacy_solve_gtsp(legacy_problem_from(problem), **kwargs)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def best_of(repeats: int, function) -> float:
    """Best wall time of ``repeats`` runs (minimizes scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def table_terms(molecule_name: str, n_terms: int):
    """The HMP2-selected term list compile_molecule_ansatz would use."""
    molecule = make_molecule(molecule_name)
    frozen = 1 if molecule_name != "H2" else 0
    scf = run_rhf(molecule)
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=frozen)
    terms = select_ansatz_terms(hamiltonian, n_terms)
    return terms, hamiltonian.n_spin_orbitals


def sorting_rotations(terms, n_qubits):
    """The targeted Pauli rotations the advanced sort stage receives."""
    pipeline = AdvancedPipeline()
    context = pipeline.make_context(terms, n_qubits=n_qubits)
    for name, stage in DEFAULT_STAGES:
        if name == "sort":
            break
        stage(context)
    return context.rotations


def bench_gtsp_sort(repeats: int) -> Dict[str, object]:
    """Seed scalar GA vs matrix-form GA on the real LiH/12 sorting problem."""
    terms, n_qubits = table_terms("LiH", 12)
    rotations = sorting_rotations(terms, n_qubits)
    problem = build_sorting_problem(rotations)
    config = CompilerConfig()
    solver_kwargs = dict(
        population_size=config.sorting_population,
        generations=config.sorting_generations,
    )
    legacy_view = legacy_problem_from(problem)

    legacy = legacy_solve_gtsp(
        legacy_view, rng=np.random.default_rng(0), **solver_kwargs
    )
    matrix = solve_gtsp(problem, rng=np.random.default_rng(0), **solver_kwargs)
    identical = legacy.tour == matrix.tour and legacy.cost == matrix.cost
    assert identical, "matrix-form GTSP diverged from the seed solver"

    legacy_s = best_of(
        repeats,
        lambda: legacy_solve_gtsp(
            legacy_view, rng=np.random.default_rng(0), **solver_kwargs
        ),
    )
    matrix_s = best_of(
        repeats,
        lambda: solve_gtsp(problem, rng=np.random.default_rng(0), **solver_kwargs),
    )
    return {
        "n_clusters": problem.n_clusters,
        "n_vertices": problem.n_vertices,
        "legacy_s": legacy_s,
        "matrix_s": matrix_s,
        "speedup": legacy_s / matrix_s,
        "identical_tours": identical,
        "cost": matrix.cost,
    }


def _cold_compile():
    clear_scf_cache()
    clear_integral_caches()
    return compile_molecule_ansatz("LiH", n_terms=12)


def bench_end_to_end(repeats: int) -> Dict[str, object]:
    """Cold LiH/12 compile: reconstructed seed behavior vs the optimized path."""
    set_integral_caching(False)
    original_solver = advanced_sorting.solve_gtsp
    advanced_sorting.solve_gtsp = legacy_solve_adapter
    try:
        legacy_report = _cold_compile()
        legacy_s = best_of(repeats, _cold_compile)
    finally:
        advanced_sorting.solve_gtsp = original_solver
        set_integral_caching(True)

    optimized_report = _cold_compile()
    optimized_s = best_of(repeats, _cold_compile)

    identical = (
        legacy_report.jordan_wigner_cnot_count == optimized_report.jordan_wigner_cnot_count
        and legacy_report.bravyi_kitaev_cnot_count == optimized_report.bravyi_kitaev_cnot_count
        and legacy_report.baseline_cnot_count == optimized_report.baseline_cnot_count
        and legacy_report.advanced_cnot_count == optimized_report.advanced_cnot_count
    )
    assert identical, "optimized compile changed the Table-I counts"
    return {
        "molecule": "LiH",
        "n_terms": 12,
        "legacy_s": legacy_s,
        "optimized_s": optimized_s,
        "speedup": legacy_s / optimized_s,
        "identical_counts": identical,
        "cnot_counts": {
            "jordan-wigner": optimized_report.jordan_wigner_cnot_count,
            "bravyi-kitaev": optimized_report.bravyi_kitaev_cnot_count,
            "baseline": optimized_report.baseline_cnot_count,
            "advanced": optimized_report.advanced_cnot_count,
        },
    }


def bench_stage_times(terms, n_qubits) -> Dict[str, float]:
    """Wall time of every advanced-pipeline stage (optimized path)."""
    times: Dict[str, float] = {}

    def timed(name, stage):
        def run(context):
            start = time.perf_counter()
            stage(context)
            times[name] = time.perf_counter() - start
        return run

    stages = [(name, timed(name, stage)) for name, stage in DEFAULT_STAGES]
    AdvancedPipeline(stages=stages).run(terms, n_qubits=n_qubits)
    return times


def bench_backends(cases: Sequence[Tuple[str, int]]) -> Dict[str, Dict[str, object]]:
    """Per-backend wall times across molecules and ansatz sizes."""
    out: Dict[str, Dict[str, object]] = {}
    for molecule_name, n_terms in cases:
        terms, n_qubits = table_terms(molecule_name, n_terms)
        request = CompileRequest(
            terms=tuple(terms), n_qubits=n_qubits, config=CompilerConfig(seed=0)
        )
        row: Dict[str, object] = {"n_qubits": n_qubits}
        for backend_name in DEFAULT_BACKEND_NAMES:
            result = get_backend(backend_name).compile(request)
            row[backend_name] = {
                "wall_time_s": result.wall_time_s,
                "cnot_count": result.cnot_count,
            }
        out[f"{molecule_name}/{n_terms}"] = row
    return out


def bench_sabre_routing(repeats: int) -> Dict[str, object]:
    """SABRE routing time of the advanced fermionic circuit on line/grid."""
    terms, n_qubits = table_terms("LiH", 8)
    request = CompileRequest(
        terms=tuple(terms), n_qubits=n_qubits, config=CompilerConfig(seed=0)
    )
    circuit = get_backend("advanced").compile(request).details.fermionic_circuit()
    out: Dict[str, object] = {"n_qubits": circuit.n_qubits, "n_gates": len(circuit.gates)}
    for kind in ("line", "grid"):
        topology = topology_for(kind, circuit.n_qubits)
        routed = route_circuit(circuit, topology, seed=0)
        out[kind] = {
            "topology": topology.name,
            "route_s": best_of(repeats, lambda: route_circuit(circuit, topology, seed=0)),
            "n_swaps": routed.n_swaps,
            "routed_cnot_count": routed.routed_cnot_count,
        }
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_compile.json",
    )
    args = parser.parse_args()

    gtsp = bench_gtsp_sort(args.repeats)
    end_to_end = bench_end_to_end(args.repeats)
    terms, n_qubits = table_terms("LiH", 12)
    results = {
        "config": {
            "repeats": args.repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "floors": {
                "gtsp_sort_speedup": SORT_SPEEDUP_FLOOR,
                "end_to_end_speedup": END_TO_END_SPEEDUP_FLOOR,
            },
        },
        "gtsp_sort": gtsp,
        "end_to_end": end_to_end,
        "stage_times": bench_stage_times(terms, n_qubits),
        "backends": bench_backends([("H2", 3), ("LiH", 4), ("LiH", 8), ("LiH", 12)]),
        "sabre_routing": bench_sabre_routing(args.repeats),
    }

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(
        f"\ngtsp sort stage: {gtsp['speedup']:.1f}x (floor {SORT_SPEEDUP_FLOOR:.0f}x); "
        f"end-to-end LiH/12: {end_to_end['speedup']:.1f}x "
        f"(floor {END_TO_END_SPEEDUP_FLOOR:.0f}x)"
    )
    ok = (
        gtsp["speedup"] >= SORT_SPEEDUP_FLOOR
        and end_to_end["speedup"] >= END_TO_END_SPEEDUP_FLOOR
    )
    print(f"speedup floors: {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
