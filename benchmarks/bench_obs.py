"""Observability benchmark: tracing overhead ceiling + trace schema checks.

The :mod:`repro.obs` tracer promises two things this harness enforces:

* **Disabled is free (enough).**  A compile with the tracer disabled must
  not slow down against the same compile before the instrumentation
  existed; we bound the *enabled* path instead, which dominates it: the
  median traced LiH compile must stay within ``OVERHEAD_CEILING`` times the
  median untraced compile.  The disabled path is additionally checked to
  collect exactly zero spans.
* **Enabled traces are well-formed.**  The traced compile must produce a
  span tree covering all six advanced-pipeline stages, and its Chrome
  trace-event export must pass :func:`repro.obs.validate_chrome_trace`.

Results go to ``BENCH_obs.json``; the native and Chrome traces of the last
traced compile are written next to it (``trace_obs.json`` /
``trace_obs.chrome.json``) and uploaded as CI artifacts by the ``obs-bench``
job.  Violated floors exit non-zero and fail that job.

Usage:
    PYTHONPATH=src python benchmarks/bench_obs.py [--output BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import CompileRequest, CompilerConfig, get_backend  # noqa: E402
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf  # noqa: E402
from repro.obs import (  # noqa: E402
    chrome_trace,
    get_metrics,
    trace_document,
    tracing,
    validate_chrome_trace,
    write_trace,
)
from repro.vqe import hmp2_ranked_terms  # noqa: E402

#: Median traced compile must stay within this factor of the untraced one.
OVERHEAD_CEILING = 1.5

#: The Fig. 2 stages every traced advanced compile must cover.
PIPELINE_STAGES = (
    "pipeline.classify",
    "pipeline.schedule_hybrid",
    "pipeline.gamma_search",
    "pipeline.transform",
    "pipeline.sort",
    "pipeline.account",
)


def build_request(n_terms: int) -> CompileRequest:
    scf = run_rhf(make_molecule("LiH"))
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=1)
    terms = hmp2_ranked_terms(hamiltonian)[:n_terms]
    return CompileRequest(
        terms=tuple(terms),
        n_qubits=hamiltonian.n_spin_orbitals,
        config=CompilerConfig(gamma_steps=20, seed=0),
    )


def span_names(spans) -> set:
    names = set()
    stack = list(spans)
    while stack:
        span = stack.pop()
        names.add(span["name"])
        stack.extend(span.get("children", []))
    return names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="report JSON path")
    parser.add_argument("--n-terms", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args()

    request = build_request(args.n_terms)
    backend = get_backend("advanced")
    backend.compile(request)  # one unmeasured warmup for both arms

    untraced_ms = []
    disabled_span_count = 0
    for _ in range(args.repeats):
        with tracing(enabled=False) as tracer:
            start = time.perf_counter()
            backend.compile(request)
            untraced_ms.append((time.perf_counter() - start) * 1e3)
            disabled_span_count += len(tracer.export())

    traced_ms = []
    last_tracer = None
    for _ in range(args.repeats):
        with tracing() as tracer:
            start = time.perf_counter()
            backend.compile(request)
            traced_ms.append((time.perf_counter() - start) * 1e3)
            last_tracer = tracer

    spans = last_tracer.export()
    names = span_names(spans)
    missing_stages = [stage for stage in PIPELINE_STAGES if stage not in names]
    chrome = chrome_trace(spans, process_name="bench_obs")
    n_events = validate_chrome_trace(chrome)

    untraced = statistics.median(untraced_ms)
    traced = statistics.median(traced_ms)
    overhead = traced / untraced if untraced > 0 else float("inf")

    output = Path(args.output) if args.output else REPO_ROOT / "BENCH_obs.json"
    write_trace(
        output.parent / "trace_obs.json",
        trace_document(spans, metrics=get_metrics(), label="bench_obs"),
    )
    write_trace(output.parent / "trace_obs.chrome.json", chrome)

    report = {
        "workload": {"molecule": "LiH", "n_terms": args.n_terms, "repeats": args.repeats},
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "untraced_ms": untraced_ms,
        "traced_ms": traced_ms,
        "untraced_median_ms": untraced,
        "traced_median_ms": traced,
        "overhead_factor": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
        "disabled_span_count": disabled_span_count,
        "chrome_trace_events": n_events,
        "missing_stages": missing_stages,
    }
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"untraced compile : {untraced:9.3f} ms (median of {args.repeats})")
    print(f"traced compile   : {traced:9.3f} ms (median of {args.repeats})")
    print(f"overhead         : {overhead:9.2f}x (ceiling {OVERHEAD_CEILING:.1f}x)")
    print(f"disabled spans   : {disabled_span_count} (must be 0)")
    print(f"chrome events    : {n_events} (schema valid)")
    print(f"stage coverage   : {len(PIPELINE_STAGES) - len(missing_stages)}"
          f"/{len(PIPELINE_STAGES)}")
    print(f"wrote {output}")

    ok = (
        overhead <= OVERHEAD_CEILING
        and disabled_span_count == 0
        and not missing_stages
        and n_events > 0
    )
    print(f"obs floors: {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
