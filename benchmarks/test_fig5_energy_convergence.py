"""Benchmark regenerating Fig. 5: water energy convergence vs ansatz size.

Fig. 5 of the paper shows that the ground-state energy estimates obtained with
the advanced compilation are indistinguishable from the prior art's — the
optimizations reduce CNOT counts "with no loss of accuracy" — and that both
flows reach chemical accuracy with the same number of excitation terms.

In this reproduction the ansatz state is prepared by exact statevector
simulation, so the energy depends only on the excitation terms and parameters,
not on how the circuit was compiled; the benchmark therefore (a) regenerates
the energy-vs-M series, (b) asserts it is monotonically improving and reaches
chemical accuracy, and (c) verifies that compiling the very same ansatz with
the baseline and with the advanced pipeline changes the CNOT count but not the
prepared state's energy.

The pytest benchmark uses a reduced (10-spin-orbital) active space of water to
stay fast; ``python benchmarks/run_fig5.py`` runs the larger progression.
"""

import numpy as np
import pytest

from repro.baselines import BaselineCompiler
from repro.core import AdvancedCompiler
from repro.simulator import CHEMICAL_ACCURACY, fci_ground_state_energy
from repro.vqe import adaptive_vqe

#: Number of active spatial orbitals for the fast benchmark (10 spin orbitals).
N_ACTIVE_SPATIAL = 5

#: Largest ansatz considered in the fast benchmark.
MAX_TERMS = 8


@pytest.fixture(scope="module")
def water_series(molecule_data):
    hamiltonian, ranked = molecule_data("H2O", N_ACTIVE_SPATIAL)
    exact = fci_ground_state_energy(hamiltonian)
    result = adaptive_vqe(hamiltonian, ranked, max_terms=MAX_TERMS, exact_energy=exact)
    return hamiltonian, ranked, exact, result


def test_fig5_energy_series(benchmark, molecule_data):
    hamiltonian, ranked = molecule_data("H2O", N_ACTIVE_SPATIAL)
    exact = fci_ground_state_energy(hamiltonian)

    result = benchmark.pedantic(
        adaptive_vqe,
        args=(hamiltonian, ranked),
        kwargs={"max_terms": MAX_TERMS, "exact_energy": exact},
        rounds=1,
        iterations=1,
    )

    print("\n[Fig. 5] H2O energy vs number of ansatz terms "
          f"({hamiltonian.n_spin_orbitals} spin orbitals)")
    print(f"{'M':>4}{'E_VQE (Ha)':>16}{'error (mHa)':>14}")
    for m, energy in zip(result.n_terms, result.energies):
        print(f"{m:>4}{energy:>16.6f}{1000 * abs(energy - exact):>14.3f}")
    print(f"exact (FCI): {exact:.6f} Ha; chemical accuracy at M = {result.n_terms[-1]}")

    # Monotone improvement and eventual chemical accuracy (the Fig. 5 shape).
    assert all(a >= b - 1e-8 for a, b in zip(result.energies, result.energies[1:]))
    assert result.converged
    assert abs(result.final_energy - exact) <= CHEMICAL_ACCURACY
    # Energies are variational: never below the exact ground state.
    assert all(energy >= exact - 1e-8 for energy in result.energies)


def test_fig5_energies_unaffected_by_compilation(water_series):
    """The advanced compilation changes CNOT counts, not energies (the paper's
    'no loss of accuracy / no hidden cost' claim)."""
    hamiltonian, ranked, exact, result = water_series
    terms = result.terms
    n_qubits = hamiltonian.n_spin_orbitals

    baseline = BaselineCompiler().compile(terms, n_qubits=n_qubits)
    advanced = AdvancedCompiler(
        gamma_steps=10, sorting_population=12, sorting_generations=10, seed=0
    ).compile(terms, n_qubits=n_qubits)

    print(f"\n[Fig. 5 companion] same ansatz, M={len(terms)}: "
          f"baseline={baseline.cnot_count} CNOTs, advanced={advanced.cnot_count} CNOTs, "
          f"energy={result.final_energy:.6f} Ha in both cases")

    assert advanced.cnot_count <= baseline.cnot_count
    # The energy estimate is a property of the ansatz, not of the compilation.
    assert abs(result.final_energy - exact) <= CHEMICAL_ACCURACY


def test_fig5_term_count_matches_between_flows(water_series):
    """Both flows use the same HMP2 ordering, so the number of terms needed to
    reach chemical accuracy is identical by construction (17 for the paper's
    full water simulation; fewer here in the reduced active space)."""
    hamiltonian, ranked, exact, result = water_series
    rerun = adaptive_vqe(hamiltonian, ranked, max_terms=MAX_TERMS, exact_energy=exact)
    assert rerun.n_terms[-1] == result.n_terms[-1]
    assert rerun.converged == result.converged
