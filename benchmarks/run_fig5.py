"""Regenerate Fig. 5 of the paper: water energy estimate vs number of ansatz terms.

Runs the adaptive VQE loop (Fig. 1) on the water molecule with the HMP2 term
ordering and prints the energy estimate for every ansatz size M, together with
the error against the exact (FCI) ground state of the active space and the
chemical-accuracy flag.  The series corresponds to the orange curve of Fig. 5
(this work); the blue prior-art curve is numerically identical here because
both flows prepare the same ansatz state — the paper's point being exactly
that the circuit optimizations cost no accuracy.

The paper simulates the full 14-spin-orbital water system and reaches chemical
accuracy at M = 17.  That takes a while in pure Python; the default here is a
12-spin-orbital frozen-core active space.  Use ``--active 5`` for a fast run
or ``--active 6`` (the default) for the fuller progression.

Usage:
    python benchmarks/run_fig5.py [--active 6] [--max-terms 17]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.simulator import CHEMICAL_ACCURACY, fci_ground_state_energy
from repro.vqe import adaptive_vqe, hmp2_ranked_terms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--active", type=int, default=6, help="active spatial orbitals")
    parser.add_argument("--max-terms", type=int, default=17)
    parser.add_argument("--output", type=Path, default=Path("benchmarks/results_fig5.json"))
    args = parser.parse_args()

    start = time.time()
    scf = run_rhf(make_molecule("H2O"))
    hamiltonian = build_molecular_hamiltonian(
        scf, n_frozen_spatial_orbitals=1, n_active_spatial_orbitals=args.active
    )
    exact = fci_ground_state_energy(hamiltonian)
    print(f"H2O STO-3G: HF = {scf.energy:.6f} Ha, active space = "
          f"{hamiltonian.n_spin_orbitals} spin orbitals, FCI = {exact:.6f} Ha")

    ranked = hmp2_ranked_terms(hamiltonian)
    result = adaptive_vqe(hamiltonian, ranked, max_terms=args.max_terms, exact_energy=exact)

    print(f"\n{'M':>4}{'E_VQE (Ha)':>16}{'error (mHa)':>14}{'chem. acc.':>12}")
    print("-" * 46)
    series = []
    for m, energy in zip(result.n_terms, result.energies):
        error = abs(energy - exact)
        accurate = error <= CHEMICAL_ACCURACY
        print(f"{m:>4}{energy:>16.6f}{1000 * error:>14.3f}{'yes' if accurate else 'no':>12}")
        series.append({"n_terms": m, "energy": energy, "error": error})

    print(f"\nChemical accuracy reached at M = {result.n_terms[-1]}"
          f" ({'converged' if result.converged else 'not converged'});"
          f" paper (full 14-orbital water): M = 17."
          f"  [total {time.time() - start:.1f}s]")

    args.output.write_text(
        json.dumps(
            {
                "active_spatial_orbitals": args.active,
                "exact_energy": exact,
                "hartree_fock_energy": scf.energy,
                "series": series,
                "converged": result.converged,
            },
            indent=2,
        )
    )
    print(f"Wrote {args.output}")


if __name__ == "__main__":
    main()
