"""Shared fixtures for the benchmark harnesses.

Hartree-Fock solutions and HMP2 term lists are computed once per session and
cached, so individual benchmarks measure only the compilation / simulation
stage they target.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.vqe import hmp2_ranked_terms


BENCHMARKS_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ as slow (the tier-2 marker split).

    Tier-1 unit tests run with ``pytest -m "not slow"`` (or ``pytest tests``);
    the full suite including these harnesses runs with a plain ``pytest``.
    The hook sees the whole session's items, so filter to this directory.
    """
    for item in items:
        if BENCHMARKS_DIR in Path(item.fspath).parents:
            item.add_marker(pytest.mark.slow)

#: Frozen-core settings per molecule (H2 has no core to freeze).
FROZEN_CORE = {"H2": 0, "LiH": 1, "HF": 1, "BeH2": 1, "H2O": 1, "NH3": 1}


@pytest.fixture(scope="session")
def molecule_data():
    """Factory returning (hamiltonian, ranked_terms) per molecule, cached."""
    cache = {}

    def build(name: str, n_active_spatial_orbitals=None):
        key = (name, n_active_spatial_orbitals)
        if key not in cache:
            scf = run_rhf(make_molecule(name))
            hamiltonian = build_molecular_hamiltonian(
                scf,
                n_frozen_spatial_orbitals=FROZEN_CORE[name],
                n_active_spatial_orbitals=n_active_spatial_orbitals,
            )
            cache[key] = (hamiltonian, hmp2_ranked_terms(hamiltonian))
        return cache[key]

    return build
