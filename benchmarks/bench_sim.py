"""Simulation-engine benchmark: tensor-contraction vs the legacy embed engine.

Where ``bench_compile.py`` measures compile latency, this harness measures the
**verification** core — dense unitary construction and statevector
application, the operations every differential harness, hypothesis suite and
golden check in this repo runs through — and pins the tensor-contraction
engine's speedup in CI:

* ``unitary_build`` — ``Circuit.to_unitary`` on a 10-qubit, 200-gate circuit:
  the seed's per-gate ``_embed`` + dense-matmul engine (a faithful copy kept
  below, exactly like ``bench_compile.py`` keeps the scalar GTSP solver) vs
  the fused tensordot engine.  The circuit draws only from gates whose matrix
  entries lie in ``{0, ±1, ±i}``, so every intermediate product is exact and
  the two engines must agree **bit-identically**; the enforced floor is a
  >= 10x speedup.
* ``generic_engine`` — an 8-qubit circuit including H and rotations:
  unitaries agree to 1e-10 and the statevector paths have fidelity 1.
* ``statevector_apply`` — ``apply_to_statevector`` vs multiplying by the
  legacy dense unitary.
* ``metric_caching`` — warm vs cold ``depth``/``two_qubit_depth``/
  ``gate_histogram``/``cnot_count`` on a routed-size circuit (the memoized
  metrics RoutingMetrics and run_table1 hammer).

Results are written to ``BENCH_sim.json`` (uploaded as a CI artifact) so the
verification-latency trajectory stays visible across PRs.

Usage:
    PYTHONPATH=src python benchmarks/bench_sim.py [--output BENCH_sim.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.circuits import Circuit, Gate

#: Enforced speedup floor: tensor engine vs legacy embed engine, 10q/200g unitary.
UNITARY_SPEEDUP_FLOOR = 10.0

#: Gates whose matrix entries lie in {0, ±1, ±i}: all products are exactly
#: representable and every GEMM sum has a single non-zero term, so the legacy
#: and tensor engines must produce bit-identical unitaries.
EXACT_SINGLE_QUBIT = ["X", "Y", "Z", "S", "SDG"]
EXACT_TWO_QUBIT = ["CNOT", "CZ", "SWAP"]


# ----------------------------------------------------------------------
# The seed simulation engine: every gate embedded into a dense 2**n x 2**n
# matrix by pure-Python bit loops, composed by full dense matmuls.  A
# faithful copy of the seed ``Circuit._embed`` / ``Circuit.to_unitary``,
# kept as the "before" half of the comparison.
# ----------------------------------------------------------------------
def legacy_embed(n_qubits: int, gate: Gate) -> np.ndarray:
    """Embed a gate matrix into the full register (seed implementation)."""
    dim = 2 ** n_qubits
    small = gate.matrix()
    k = len(gate.qubits)
    embedded = np.zeros((dim, dim), dtype=complex)
    for basis in range(dim):
        bits = [(basis >> (n_qubits - 1 - q)) & 1 for q in range(n_qubits)]
        col_sub = 0
        for q in gate.qubits:
            col_sub = (col_sub << 1) | bits[q]
        for row_sub in range(2 ** k):
            amplitude = small[row_sub, col_sub]
            if amplitude == 0:
                continue
            new_bits = list(bits)
            for position, q in enumerate(gate.qubits):
                new_bits[q] = (row_sub >> (k - 1 - position)) & 1
            row = 0
            for q in range(n_qubits):
                row = (row << 1) | new_bits[q]
            embedded[row, basis] += amplitude
    return embedded


def legacy_to_unitary(circuit: Circuit) -> np.ndarray:
    """Seed ``Circuit.to_unitary``: one embedded matrix + dense matmul per gate."""
    dim = 2 ** circuit.n_qubits
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit:
        unitary = legacy_embed(circuit.n_qubits, gate) @ unitary
    return unitary


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def best_of(repeats: int, function) -> float:
    """Best wall time of ``repeats`` runs (minimizes scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def exact_gate_circuit(n_qubits: int, n_gates: int, seed: int) -> Circuit:
    """Random circuit over the exact-entry gate set (bit-identical engines)."""
    rng = np.random.default_rng(seed)
    gates: List[Gate] = []
    for _ in range(n_gates):
        if rng.random() < 0.5:
            name = EXACT_SINGLE_QUBIT[int(rng.integers(len(EXACT_SINGLE_QUBIT)))]
            gates.append(Gate(name, (int(rng.integers(n_qubits)),)))
        else:
            a, b = rng.choice(n_qubits, size=2, replace=False)
            name = EXACT_TWO_QUBIT[int(rng.integers(len(EXACT_TWO_QUBIT)))]
            gates.append(Gate(name, (int(a), int(b))))
    return Circuit(n_qubits, gates)


def generic_circuit(n_qubits: int, n_gates: int, seed: int) -> Circuit:
    """Random circuit including H and rotations (allclose-level agreement)."""
    rng = np.random.default_rng(seed)
    gates: List[Gate] = []
    for _ in range(n_gates):
        draw = rng.random()
        if draw < 0.35:
            gates.append(Gate("H", (int(rng.integers(n_qubits)),)))
        elif draw < 0.65:
            name = ["RZ", "RX", "RY"][int(rng.integers(3))]
            gates.append(Gate(name, (int(rng.integers(n_qubits)),), float(rng.normal())))
        else:
            a, b = rng.choice(n_qubits, size=2, replace=False)
            gates.append(Gate("CNOT", (int(a), int(b))))
    return Circuit(n_qubits, gates)


def bench_unitary_build(repeats: int) -> Dict[str, object]:
    """Legacy embed engine vs tensor engine, 10 qubits / 200 gates, bit-identical."""
    circuit = exact_gate_circuit(10, 200, seed=7)
    tensor_unitary = circuit.to_unitary()

    start = time.perf_counter()
    legacy_unitary = legacy_to_unitary(circuit)  # ~25s — timed once, not best-of
    legacy_s = time.perf_counter() - start

    identical = np.array_equal(legacy_unitary, tensor_unitary)
    assert identical, "tensor engine diverged bit-identically from the seed engine"
    tensor_s = best_of(repeats, circuit.to_unitary)
    return {
        "n_qubits": circuit.n_qubits,
        "n_gates": len(circuit),
        "legacy_s": legacy_s,
        "tensor_s": tensor_s,
        "speedup": legacy_s / tensor_s,
        "bit_identical": identical,
    }


def bench_generic_engine(repeats: int) -> Dict[str, object]:
    """Generic (H/rotation) circuit: engines agree numerically, fidelity 1."""
    circuit = generic_circuit(8, 160, seed=11)
    legacy_unitary = legacy_to_unitary(circuit)
    tensor_unitary = circuit.to_unitary()
    max_error = float(np.abs(legacy_unitary - tensor_unitary).max())
    assert max_error < 1e-10, f"engines disagree by {max_error}"

    rng = np.random.default_rng(3)
    probe = rng.normal(size=2 ** circuit.n_qubits) + 1j * rng.normal(
        size=2 ** circuit.n_qubits
    )
    probe /= np.linalg.norm(probe)
    via_legacy = legacy_unitary @ probe
    via_tensor = circuit.apply_to_statevector(probe)
    fidelity = float(abs(np.vdot(via_legacy, via_tensor)) ** 2)
    assert abs(fidelity - 1.0) < 1e-10, f"statevector fidelity {fidelity}"

    return {
        "n_qubits": circuit.n_qubits,
        "n_gates": len(circuit),
        "max_unitary_error": max_error,
        "statevector_fidelity": fidelity,
        "tensor_unitary_s": best_of(repeats, circuit.to_unitary),
        "statevector_apply_s": best_of(
            repeats, lambda: circuit.apply_to_statevector(probe)
        ),
    }


def bench_metric_caching(repeats: int) -> Dict[str, object]:
    """Cold vs warm circuit metrics on a routed-size circuit."""
    circuit = exact_gate_circuit(12, 2000, seed=5)

    def all_metrics(target: Circuit):
        return (
            target.cnot_count,
            target.depth(),
            target.two_qubit_depth(),
            target.gate_histogram(),
        )

    # Fresh (empty-cache) circuits prepared outside the timed region, so
    # cold_s measures only the metric walks, not circuit.copy() overhead.
    fresh = [circuit.copy() for _ in range(repeats)]

    def cold():
        return all_metrics(fresh.pop())

    circuit_warm = circuit.copy()
    all_metrics(circuit_warm)
    cold_s = best_of(repeats, cold)
    warm_s = best_of(repeats, lambda: all_metrics(circuit_warm))
    return {
        "n_gates": len(circuit),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sim.json",
    )
    args = parser.parse_args()

    unitary = bench_unitary_build(args.repeats)
    results = {
        "config": {
            "repeats": args.repeats,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "floors": {"unitary_build_speedup": UNITARY_SPEEDUP_FLOOR},
        },
        "unitary_build": unitary,
        "generic_engine": bench_generic_engine(args.repeats),
        "metric_caching": bench_metric_caching(args.repeats),
    }

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(
        f"\nunitary build 10q/200g: {unitary['speedup']:.1f}x "
        f"(floor {UNITARY_SPEEDUP_FLOOR:.0f}x), bit-identical"
    )
    ok = unitary["speedup"] >= UNITARY_SPEEDUP_FLOOR
    print(f"speedup floors: {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
