"""Verification-engine benchmark: routed equivalence at 30 qubits, in budget.

Dense ``to_unitary`` comparison is physically impossible at 30 qubits (a
2^30 x 2^30 matrix), so this harness measures what the ``repro.verify``
dispatcher was built for — full routed-vs-unrouted equivalence proofs on
registers far past the dense ceiling, cheap enough for every CI run:

* ``routed_30q`` — a random bounded-weight rotation sequence on a 30-qubit
  line is synthesized unrouted, then steered along the topology and
  peephole-optimized; ``check_equivalence`` must prove the pair equivalent
  through the Pauli-propagation engine (``engine == "pauli"``, exact), and
  the whole verification must finish under ``VERIFY_WALL_CEILING_S``.
  A SABRE-routed + permutation-undone variant runs the same contract.
* ``clifford_48q`` — a random 48-qubit Clifford circuit against a
  gate-order-perturbed but equal rewrite of itself, proved equivalent by
  the bit-packed stabilizer tableau engine.
* ``small_n_differential`` — at 3-5 qubits, where the dense engine is an
  oracle, random circuit pairs (identical copies and angle-perturbed
  mutants) are judged by every applicable engine; the forced ``pauli`` and
  ``sparse`` verdicts must be **bit-identical** to the dense ones.  Any
  mismatch fails the job — this is the check that keeps the scalable
  engines honest release over release.

Results (per-section wall times, engine tags, differential counts) are
written to ``BENCH_verify.json`` and uploaded as a CI artifact by the
``verify-bench`` job; the floors above fail the job when violated.

Usage:
    PYTHONPATH=src python benchmarks/bench_verify.py [--output BENCH_verify.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.circuits import (  # noqa: E402
    Circuit,
    Gate,
    exponential_sequence_circuit,
    optimize_circuit,
)
from repro.hardware import (  # noqa: E402
    Topology,
    route_circuit,
    routed_exponential_sequence_circuit,
)
from repro.operators import PauliString  # noqa: E402
from repro.verify import check_equivalence  # noqa: E402

#: The 30-qubit routed-equivalence proof must finish within this budget.
VERIFY_WALL_CEILING_S = 5.0
#: Qubits in the routed-equivalence section (past any dense ceiling).
ROUTED_QUBITS = 30
#: Rotation terms in the routed workload.
ROUTED_TERMS = 12
#: Qubits in the Clifford tableau section.
CLIFFORD_QUBITS = 48
#: Random circuit pairs per register size in the differential section.
DIFFERENTIAL_TRIALS = 6

_GATE_POOL = ("H", "S", "SDG", "T", "CNOT", "CZ", "RZ", "RX", "RY")


def random_rotation_sequence(n_qubits, n_terms, seed, max_weight=5):
    """Random ``(P, theta, target)`` rotation terms with bounded support."""
    rng = random.Random(seed)
    sequence = []
    for _ in range(n_terms):
        support = rng.sample(range(n_qubits), rng.randrange(2, max_weight + 1))
        labels = {q: rng.choice("XYZ") for q in support}
        sequence.append(
            (PauliString.from_dict(n_qubits, labels), rng.uniform(-2.0, 2.0), None)
        )
    return sequence


def random_circuit(n_qubits, n_gates, rng):
    circuit = Circuit(n_qubits)
    for _ in range(n_gates):
        name = rng.choice(_GATE_POOL)
        if name in ("CNOT", "CZ"):
            a, b = rng.sample(range(n_qubits), 2)
            circuit.append(Gate(name, (a, b)))
        elif name in ("RZ", "RX", "RY"):
            circuit.append(Gate(name, (rng.randrange(n_qubits),),
                                rng.uniform(-2.0, 2.0)))
        else:
            circuit.append(Gate(name, (rng.randrange(n_qubits),)))
    return circuit


def random_clifford_circuit(n_qubits, n_gates, rng):
    circuit = Circuit(n_qubits)
    for _ in range(n_gates):
        name = rng.choice(("H", "S", "SDG", "X", "Z", "CNOT", "CZ", "SWAP"))
        if name in ("CNOT", "CZ", "SWAP"):
            a, b = rng.sample(range(n_qubits), 2)
            circuit.append(Gate(name, (a, b)))
        else:
            circuit.append(Gate(name, (rng.randrange(n_qubits),)))
    return circuit


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def bench_routed_30q() -> dict:
    """Steered + SABRE routed equivalence at 30 qubits under the dispatcher."""
    topology = Topology.line(ROUTED_QUBITS)
    sequence = random_rotation_sequence(ROUTED_QUBITS, ROUTED_TERMS, seed=30)
    unrouted = exponential_sequence_circuit(sequence, n_qubits=ROUTED_QUBITS)

    start = time.perf_counter()
    steered = optimize_circuit(
        routed_exponential_sequence_circuit(sequence, topology)
    )
    synth_s = time.perf_counter() - start

    start = time.perf_counter()
    steered_report = check_equivalence(steered, unrouted)
    steered_verify_s = time.perf_counter() - start

    routed = route_circuit(optimize_circuit(unrouted.copy()), topology, seed=0)
    undone = routed.circuit.compose(routed.undo_permutation_circuit())
    start = time.perf_counter()
    sabre_report = check_equivalence(undone, unrouted)
    sabre_verify_s = time.perf_counter() - start

    return {
        "n_qubits": ROUTED_QUBITS,
        "n_terms": ROUTED_TERMS,
        "topology": topology.name,
        "steered_cnots": steered.cnot_count,
        "synthesis_s": round(synth_s, 4),
        "steered": {
            "equivalent": steered_report.equivalent,
            "engine": steered_report.engine,
            "exact": steered_report.exact,
            "verify_s": round(steered_verify_s, 4),
        },
        "sabre": {
            "equivalent": sabre_report.equivalent,
            "engine": sabre_report.engine,
            "exact": sabre_report.exact,
            "verify_s": round(sabre_verify_s, 4),
        },
    }


def bench_clifford_48q() -> dict:
    """Tableau proof on a 48-qubit Clifford pair (4 x 64-bit words wide)."""
    rng = random.Random(48)
    circuit = random_clifford_circuit(CLIFFORD_QUBITS, 400, rng)
    # An equal rewrite: commute a disjoint-support prefix past itself.
    rewrite = optimize_circuit(circuit.copy())
    start = time.perf_counter()
    report = check_equivalence(circuit, rewrite)
    verify_s = time.perf_counter() - start
    return {
        "n_qubits": CLIFFORD_QUBITS,
        "n_gates": len(circuit),
        "equivalent": report.equivalent,
        "engine": report.engine,
        "exact": report.exact,
        "verify_s": round(verify_s, 4),
    }


def bench_small_n_differential() -> dict:
    """Dense-oracle cross-validation: scalable engines must match verdicts."""
    trials = 0
    mismatches = []
    for n_qubits in (3, 4, 5):
        for seed in range(DIFFERENTIAL_TRIALS):
            rng = random.Random(1000 * n_qubits + seed)
            circuit = random_circuit(n_qubits, 12, rng)
            mutant = Circuit(n_qubits)
            perturbed = False
            for gate in circuit:
                if not perturbed and gate.parameter is not None:
                    gate = Gate(gate.name, gate.qubits, gate.parameter + 0.37)
                    perturbed = True
                mutant.append(gate)
            if not perturbed:
                mutant.append(Gate("RZ", (0,), 0.37))
            for other, expected in ((circuit.copy(), True), (mutant, False)):
                dense = check_equivalence(circuit, other, engine="dense")
                if dense.equivalent is not expected:
                    mismatches.append(
                        {"n": n_qubits, "seed": seed, "engine": "dense",
                         "got": dense.equivalent, "expected": expected}
                    )
                for engine in ("pauli", "sparse"):
                    report = check_equivalence(circuit, other, engine=engine)
                    trials += 1
                    if report.equivalent is not dense.equivalent:
                        mismatches.append(
                            {"n": n_qubits, "seed": seed, "engine": engine,
                             "got": report.equivalent,
                             "expected": dense.equivalent}
                        )
    return {
        "trials": trials,
        "mismatches": mismatches,
        "mismatch_count": len(mismatches),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="write JSON here")
    args = parser.parse_args()

    routed = bench_routed_30q()
    clifford = bench_clifford_48q()
    differential = bench_small_n_differential()

    total_verify_s = (
        routed["steered"]["verify_s"] + routed["sabre"]["verify_s"]
    )

    report = {
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "routed_30q": routed,
        "clifford_48q": clifford,
        "small_n_differential": differential,
        "summary": {
            "routed_verify_total_s": round(total_verify_s, 4),
            "clifford_verify_s": clifford["verify_s"],
            "differential_mismatches": differential["mismatch_count"],
        },
        "floors": {
            "verify_wall_ceiling_s": VERIFY_WALL_CEILING_S,
            "differential_mismatches": 0,
        },
    }

    output = Path(args.output) if args.output else REPO_ROOT / "BENCH_verify.json"
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"routed 30q steered  : {routed['steered']['verify_s']:8.3f} s "
          f"(engine={routed['steered']['engine']}, "
          f"exact={routed['steered']['exact']})")
    print(f"routed 30q sabre    : {routed['sabre']['verify_s']:8.3f} s "
          f"(engine={routed['sabre']['engine']}, "
          f"exact={routed['sabre']['exact']})")
    print(f"clifford 48q        : {clifford['verify_s']:8.3f} s "
          f"(engine={clifford['engine']}, {clifford['n_gates']} gates)")
    print(f"differential        : {differential['trials']} engine verdicts, "
          f"{differential['mismatch_count']} mismatch(es) vs dense oracle")
    print(f"wall-time ceiling   : {total_verify_s:8.3f} s "
          f"(budget {VERIFY_WALL_CEILING_S:.1f} s)")
    print(f"wrote {output}")

    ok = (
        routed["steered"]["equivalent"]
        and routed["steered"]["engine"] == "pauli"
        and routed["steered"]["exact"]
        and routed["sabre"]["equivalent"]
        and routed["sabre"]["engine"] == "pauli"
        and routed["sabre"]["exact"]
        and clifford["equivalent"]
        and clifford["engine"] == "tableau"
        and clifford["exact"]
        and total_verify_s <= VERIFY_WALL_CEILING_S
        and differential["mismatch_count"] == 0
    )
    print(f"verify floors: {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
