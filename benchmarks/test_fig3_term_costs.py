"""Benchmark for the per-term CNOT costs quoted in Sec. III-A / Fig. 3.

The paper quotes three per-term costs for a double excitation:

* 13 CNOTs — best known uncompressed implementation ([8]),
* 7 CNOTs — hybrid (one pair compressed, Fig. 3(a)),
* 2 CNOTs — bosonic (both pairs compressed, [8]).

This harness (a) certifies the 2-CNOT bosonic cost from first principles via
the two-qubit canonical invariants (the compressed bosonic term is a Givens
rotation, whose minimal CNOT cost is exactly 2), (b) checks the constants the
pipeline uses, and (c) compiles a generic uncompressed double excitation with
the advanced sorting to show it indeed costs far more than either compressed
form (our interface-cancellation compilation lands above the hand-optimized
13-CNOT circuit of [8], which exploits structure beyond pairwise
cancellation).
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.circuits import cnot_cost
from repro.core import (
    BOSONIC_TERM_CNOT_COST,
    HYBRID_TERM_CNOT_COST,
    advanced_sort,
    terms_to_rotations,
)
from repro.operators import PauliString
from repro.transforms import JordanWignerTransform
from repro.vqe import ExcitationTerm

#: Best known CNOT count of an uncompressed double excitation, from [8].
FERMIONIC_DOUBLE_REFERENCE = 13


def bosonic_givens_unitary(theta: float) -> np.ndarray:
    """Compressed bosonic double excitation exp(θ(σ+σ- - σ-σ+)) on two qubits."""
    generator = 0.5j * theta * (
        PauliString("YX").to_dense() - PauliString("XY").to_dense()
    )
    return expm(generator)


class TestPerTermCosts:
    @pytest.mark.parametrize("theta", [0.17, 0.73, 1.91])
    def test_bosonic_term_costs_exactly_two_cnots(self, theta):
        assert cnot_cost(bosonic_givens_unitary(theta)) == 2

    def test_pipeline_constants(self):
        assert BOSONIC_TERM_CNOT_COST == 2
        assert HYBRID_TERM_CNOT_COST == 7
        assert BOSONIC_TERM_CNOT_COST < HYBRID_TERM_CNOT_COST < FERMIONIC_DOUBLE_REFERENCE

    def test_uncompressed_double_is_much_more_expensive(self, benchmark):
        term = ExcitationTerm(creation=(4, 6), annihilation=(0, 2))
        rotations = terms_to_rotations([term], JordanWignerTransform(8))

        result = benchmark.pedantic(
            advanced_sort,
            args=(rotations,),
            kwargs={"rng": np.random.default_rng(0)},
            rounds=1,
            iterations=1,
        )
        print(
            f"\n[Fig. 3 costs] bosonic=2, hybrid=7, "
            f"uncompressed double (this compiler)={result.cnot_count}, "
            f"uncompressed double ([8], hand-optimized)=13"
        )
        # Eight weight-4 strings cost at most 48 CNOTs uncancelled; the sorter
        # must stay at or below that and above the hand-optimized 13 of [8].
        assert FERMIONIC_DOUBLE_REFERENCE <= result.cnot_count <= 48
        assert result.cnot_count > HYBRID_TERM_CNOT_COST
