"""Compile-service benchmark: tier hit rates, tail latency, dedup, backpressure.

Where ``bench_compile.py`` measures single-call compile latency, this harness
measures the **service** quantities the ``repro.service`` layer exists for —
what repeat traffic costs once results persist across processes:

* ``cold`` — a fresh :class:`~repro.service.CompileService` over an empty
  cache directory compiles a workload of distinct requests (tier =
  ``compute``); the per-job backend compile time is the baseline.
* ``memory_warm`` — the same session resubmits the workload and must serve
  it entirely from the in-memory tier.
* ``disk_warm`` — a **second process** (a subprocess of this script with
  ``--child``) opens the now-populated cache directory with a cold memory
  cache and replays the workload.  Enforced floors: at least
  ``DISK_HIT_RATE_FLOOR`` of its jobs are served from the disk tier, at a
  mean latency at least ``WARM_SPEEDUP_FLOOR`` times faster than the cold
  backend compile.
* ``dedup`` — ``DEDUP_SUBMITTERS`` identical requests submitted
  concurrently against an empty service must trigger **exactly one** backend
  compile; the rest join the in-flight future (tier = ``dedup``).
* ``backpressure`` — a 1-worker service with a tiny queue receives a burst;
  the overflow must be rejected with ``ServiceOverloadedError``, not
  buffered.

Results (latency histograms with p50/p95/p99 per section, queue depth,
cache counters) are written to ``BENCH_service.json`` and uploaded as a CI
artifact by the ``service-bench`` job; the floors above fail the job when
violated.

Usage:
    PYTHONPATH=src python benchmarks/bench_service.py [--output BENCH_service.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import CompileCache, CompileRequest, CompilerConfig  # noqa: E402
from repro.service import (  # noqa: E402
    CompileService,
    PersistentCompileCache,
    ServiceOverloadedError,
)
from repro.vqe import ExcitationTerm  # noqa: E402

#: Warm disk hits must be at least this many times faster than cold compiles.
WARM_SPEEDUP_FLOOR = 10.0
#: Fraction of the second process's repeat workload the disk tier must serve.
DISK_HIT_RATE_FLOOR = 0.9
#: Identical concurrent submits that must collapse into exactly one compile.
DEDUP_SUBMITTERS = 12

#: Requests in the repeat workload (distinct molecules/configs stand-ins).
N_DISTINCT = 5


def workload_requests(n_distinct: int = N_DISTINCT):
    """Distinct, deterministic 12-qubit requests at the default config sizes.

    The double excitations are shared; one single excitation varies per
    request, so every request has a distinct fingerprint but comparable
    compile cost (a few hundred ms cold — the regime the Table-I molecules
    occupy after PR 4/5).
    """
    config = CompilerConfig(seed=0)
    requests = []
    for index in range(n_distinct):
        terms = (
            ExcitationTerm(creation=(6, 7), annihilation=(0, 1)),
            ExcitationTerm(creation=(6, 9), annihilation=(0, 3)),
            ExcitationTerm(creation=(8, 11), annihilation=(2, 5)),
            ExcitationTerm(creation=(6 + index % 6,), annihilation=(index % 6,)),
        )
        requests.append(CompileRequest(terms=terms, n_qubits=12, config=config))
    return requests


async def run_workload(service: CompileService, requests) -> list:
    job_ids = [await service.submit(request) for request in requests]
    return [await service.result(job_id) for job_id in job_ids]


# ----------------------------------------------------------------------
# Child mode: the "second process" of the disk_warm section.
# ----------------------------------------------------------------------
async def child_replay(cache_dir: str, n_distinct: int) -> dict:
    """Replay the workload over a populated cache dir with cold memory."""
    disk = PersistentCompileCache(cache_dir)
    async with CompileService(
        disk_cache=disk, memory_cache=CompileCache()
    ) as service:
        results = await run_workload(service, workload_requests(n_distinct))
        metrics = service.metrics
        served = metrics.served
        return {
            "jobs": served,
            "tiers": dict(metrics.tier_counts),
            "disk_hit_rate": metrics.hit_rate("disk"),
            "latency_total": metrics.total.summary(),
            "cnot_counts": [result.cnot_count for result in results],
        }


# ----------------------------------------------------------------------
# Parent sections
# ----------------------------------------------------------------------
async def bench_cold_and_memory(cache_dir: str) -> tuple:
    requests = workload_requests()
    disk = PersistentCompileCache(cache_dir)
    async with CompileService(disk_cache=disk) as service:
        cold_results = await run_workload(service, requests)
        cold = {
            "jobs": service.metrics.served,
            "tiers": dict(service.metrics.tier_counts),
            "compute_latency": service.metrics.compute.summary(),
            "total_latency": service.metrics.total.summary(),
            "cnot_counts": [result.cnot_count for result in cold_results],
        }
        before = dict(service.metrics.tier_counts)
        warm_results = await run_workload(service, requests)
        warm_tiers = {
            tier: count - before[tier]
            for tier, count in service.metrics.tier_counts.items()
        }
        memory_warm = {
            "jobs": sum(warm_tiers.values()),
            "tiers": warm_tiers,
            "cnot_counts": [result.cnot_count for result in warm_results],
        }
    return cold, memory_warm


def bench_disk_warm(cache_dir: str) -> dict:
    """Spawn the second process and collect its replay report."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = Path(handle.name)
    try:
        subprocess.run(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--child",
                "--cache-dir",
                cache_dir,
                "--n-distinct",
                str(N_DISTINCT),
                "--child-out",
                str(out_path),
            ],
            check=True,
            timeout=600,
        )
        return json.loads(out_path.read_text())
    finally:
        out_path.unlink(missing_ok=True)


async def bench_dedup() -> dict:
    request = workload_requests(1)[0]
    async with CompileService() as service:
        job_ids = await asyncio.gather(
            *[service.submit(request) for _ in range(DEDUP_SUBMITTERS)]
        )
        results = await asyncio.gather(
            *[service.result(job_id) for job_id in job_ids]
        )
        metrics = service.metrics
        return {
            "submitters": DEDUP_SUBMITTERS,
            "compiles": metrics.tier_counts["compute"],
            "dedup_joins": metrics.tier_counts["dedup"],
            "distinct_results": len({result.cnot_count for result in results}),
        }


async def bench_backpressure() -> dict:
    requests = workload_requests()
    max_queue = 2
    async with CompileService(n_workers=1, max_queue=max_queue) as service:
        accepted, rejected = [], 0
        # No await between submits: the queue fills before any worker runs.
        for request in requests:
            try:
                accepted.append(await service.submit(request))
            except ServiceOverloadedError:
                rejected += 1
        await asyncio.gather(*[service.result(job_id) for job_id in accepted])
        return {
            "burst": len(requests),
            "max_queue": max_queue,
            "accepted": len(accepted),
            "rejected": rejected,
            "rejections_counted": service.metrics.rejections,
            "queue_depth_peak": service.metrics.queue_depth_peak,
        }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, help="write JSON here")
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--n-distinct", type=int, default=N_DISTINCT,
                        help=argparse.SUPPRESS)
    parser.add_argument("--child-out", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.child:
        report = asyncio.run(child_replay(args.cache_dir, args.n_distinct))
        Path(args.child_out).write_text(json.dumps(report))
        return

    with tempfile.TemporaryDirectory(prefix="bench-service-") as cache_dir:
        cold, memory_warm = asyncio.run(bench_cold_and_memory(cache_dir))
        disk_warm = bench_disk_warm(cache_dir)
    dedup = asyncio.run(bench_dedup())
    backpressure = asyncio.run(bench_backpressure())

    cold_compile_ms = cold["compute_latency"]["mean_ms"]
    warm_total_ms = disk_warm["latency_total"]["mean_ms"]
    speedup = cold_compile_ms / warm_total_ms
    results_identical = disk_warm["cnot_counts"] == cold["cnot_counts"]

    report = {
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "workload": {"n_distinct": N_DISTINCT, "n_qubits": 12, "n_terms": 4},
        "cold": cold,
        "memory_warm": memory_warm,
        "disk_warm": disk_warm,
        "dedup": dedup,
        "backpressure": backpressure,
        "summary": {
            "cold_compile_mean_ms": cold_compile_ms,
            "disk_warm_total_mean_ms": warm_total_ms,
            "warm_speedup": round(speedup, 2),
            "disk_hit_rate": disk_warm["disk_hit_rate"],
            "results_identical_across_processes": results_identical,
        },
        "floors": {
            "warm_speedup": WARM_SPEEDUP_FLOOR,
            "disk_hit_rate": DISK_HIT_RATE_FLOOR,
            "dedup_compiles": 1,
        },
    }

    output = Path(args.output) if args.output else REPO_ROOT / "BENCH_service.json"
    output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"cold compile        : {cold_compile_ms:9.3f} ms/job "
          f"({cold['jobs']} jobs, all tier=compute)")
    print(f"second-process disk : {warm_total_ms:9.3f} ms/job "
          f"(disk hit rate {disk_warm['disk_hit_rate']:.0%}, "
          f"floor {DISK_HIT_RATE_FLOOR:.0%})")
    print(f"warm speedup        : {speedup:9.1f}x (floor {WARM_SPEEDUP_FLOOR:.0f}x)")
    print(f"dedup               : {dedup['submitters']} submits -> "
          f"{dedup['compiles']} compile(s), {dedup['dedup_joins']} joins")
    print(f"backpressure        : {backpressure['rejected']} of "
          f"{backpressure['burst']} burst submits rejected "
          f"(queue bound {backpressure['max_queue']})")
    print(f"wrote {output}")

    ok = (
        speedup >= WARM_SPEEDUP_FLOOR
        and disk_warm["disk_hit_rate"] >= DISK_HIT_RATE_FLOOR
        and dedup["compiles"] == 1
        and dedup["dedup_joins"] == DEDUP_SUBMITTERS - 1
        and results_identical
        and backpressure["rejected"] > 0
    )
    print(f"service floors: {'PASS' if ok else 'FAIL'}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
