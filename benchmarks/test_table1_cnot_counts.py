"""Benchmark regenerating Table I: CNOT counts under JW / BK / baseline / advanced.

Each benchmark compiles the HMP2-selected UCCSD ansatz of one molecule
through the unified API — one :class:`~repro.api.CompileRequest` fanned over
all four registered Table-I backends with :func:`repro.api.compile_batch` —
and prints the full Table-I row (all four columns plus the improvement
percentage).  Absolute counts differ from the published table — the
excitation-term lists and the baseline solver are regenerated from scratch —
but the qualitative structure the paper reports is asserted programmatically:

* the advanced pipeline never loses to the prior-art baseline,
* both beat the plain Jordan-Wigner and Bravyi-Kitaev compilations,
* the improvement over the baseline is positive for every molecule with
  compressible structure.

Run ``python benchmarks/run_table1.py`` for the full sweep including the
larger water progressions.
"""

import pytest

from repro.api import DEFAULT_BACKEND_NAMES, CompileRequest, CompilerConfig, compile_batch

#: Table-I column order, by canonical backend name.
BACKENDS = tuple(DEFAULT_BACKEND_NAMES)

#: (molecule, number of HMP2 terms) pairs benchmarked by default.  The larger
#: Table-I rows (NH3, H2O(17)) are exercised by the run_table1.py script.
CASES = [
    ("HF", 3),
    ("LiH", 3),
    ("BeH2", 6),
    ("H2O", 4),
    ("H2O", 6),
    ("H2O", 8),
]

CONFIG = CompilerConfig(
    gamma_steps=20, sorting_population=16, sorting_generations=20, seed=0
)


def _compile_all(hamiltonian, terms):
    request = CompileRequest(
        terms=tuple(terms), n_qubits=hamiltonian.n_spin_orbitals, config=CONFIG
    )
    row = compile_batch([request], backends=BACKENDS).results[0]
    return tuple(row[name].cnot_count for name in BACKENDS)


@pytest.mark.parametrize("molecule,n_terms", CASES, ids=[f"{m}-{n}" for m, n in CASES])
def test_table1_row(benchmark, molecule_data, molecule, n_terms):
    hamiltonian, ranked = molecule_data(molecule)
    terms = ranked[:n_terms]

    jw, bk, baseline, advanced = benchmark.pedantic(
        _compile_all, args=(hamiltonian, terms), rounds=1, iterations=1
    )

    improvement = 100.0 * (1.0 - advanced / baseline) if baseline else 0.0
    print(
        f"\n[Table I] {molecule}(Ne={len(terms)}): "
        f"JW={jw}  BK={bk}  GT={baseline}  Adv={advanced}  Improve={improvement:.2f}%"
    )

    # Structural claims of Table I.
    assert advanced <= baseline, "advanced pipeline must not lose to the prior art"
    assert advanced < min(jw, bk), "advanced pipeline must beat plain JW and BK"
    assert baseline <= max(jw, bk), "the baseline already improves on naive compilation"
    assert improvement >= 0.0


def test_table1_improvement_range(molecule_data):
    """Across the small molecules the improvement over the baseline is positive
    and of the same order as the paper's 3.5-24% range (we allow a wider band
    because the baseline re-implementation is not bit-identical to [9])."""
    improvements = []
    for molecule, n_terms in [("HF", 3), ("LiH", 3), ("H2O", 4)]:
        hamiltonian, ranked = molecule_data(molecule)
        jw, bk, baseline, advanced = _compile_all(hamiltonian, ranked[:n_terms])
        improvements.append(100.0 * (1.0 - advanced / baseline))
    assert all(value >= 0.0 for value in improvements)
    assert max(improvements) > 3.0
