"""Benchmark for Fig. 4: the target-qubit choice changes CNOT cancellations.

The paper's example uses P1 = XXXY and P2 = XXYX.  With both targets on the
fourth qubit the pair compiles to 7 CNOTs; with both targets on the first
qubit it compiles to 8.  The advanced sorting must discover the better choice
automatically.
"""

import numpy as np
import pytest

from repro.core import PauliRotation, advanced_sort
from repro.circuits import pair_cnot_count
from repro.operators import PauliString

P1 = PauliString("XXXY")
P2 = PauliString("XXYX")


def test_fig4_pair_costs():
    shared_fourth = pair_cnot_count(P1, 3, P2, 3)
    shared_first = pair_cnot_count(P1, 0, P2, 0)
    print(f"\n[Fig. 4] target=q4: {shared_fourth} CNOTs; target=q1: {shared_first} CNOTs")
    assert shared_fourth == 7
    assert shared_first == 8
    assert shared_fourth < shared_first


def test_fig4_advanced_sorting_finds_best_target(benchmark):
    rotations = [
        PauliRotation(string=P1, angle=0.3, term_index=0),
        PauliRotation(string=P2, angle=0.4, term_index=1),
    ]
    result = benchmark.pedantic(
        advanced_sort,
        args=(rotations,),
        kwargs={"rng": np.random.default_rng(0)},
        rounds=1,
        iterations=1,
    )
    print(f"\n[Fig. 4] advanced sorting result: {result.cnot_count} CNOTs "
          f"(targets {[t for _, t in result.ordered_rotations]})")
    assert result.cnot_count == 7
    # Two equally good solutions exist (shared target on the third or fourth
    # qubit); either way the targets must be shared and must avoid qubit 1,
    # whose collision pattern only reaches 8 CNOTs (the Fig. 4(b) scenario).
    targets = [target for _, target in result.ordered_rotations]
    assert targets[0] == targets[1]
    assert targets[0] in (2, 3)
