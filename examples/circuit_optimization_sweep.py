"""Table-I style sweep: CNOT counts of several molecules under all four flows.

For every requested molecule the script selects the ``n_terms`` most important
HMP2 excitation terms, builds one :class:`repro.api.CompileRequest`, and
compiles the whole sweep in a single :func:`repro.api.compile_batch` call
over the four registered backends (Jordan-Wigner, Bravyi-Kitaev, the
prior-art baseline and the paper's advanced pipeline), printing a table in
the format of Table I.  Pass ``--workers N`` to spread the compilations over
N processes.  Absolute counts differ from the published table because the
excitation-term lists are regenerated from our own Hartree-Fock/HMP2 stack
and the baseline solvers are re-implementations, but the ordering
``Adv <= GT <= min(JW, BK)`` and the size of the improvements reproduce the
paper's findings.

Run with:  python examples/circuit_optimization_sweep.py [--molecules HF LiH ...]
"""

import argparse

from repro.api import DEFAULT_BACKEND_NAMES, CompileRequest, CompilerConfig, compile_batch
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.vqe import select_ansatz_terms

#: Table-I column order.
BACKENDS = tuple(DEFAULT_BACKEND_NAMES)

#: Default (molecule, number of excitation terms) pairs, mirroring Table I's
#: "reach chemical accuracy" rows for the small molecules plus a water row.
DEFAULT_CASES = [
    ("HF", 3),
    ("LiH", 3),
    ("BeH2", 6),
    ("H2O", 5),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--molecules", nargs="*", default=None,
        help="molecule names to sweep (default: HF LiH BeH2 H2O)",
    )
    parser.add_argument("--terms", type=int, default=None, help="override the term count")
    parser.add_argument("--workers", type=int, default=1, help="compile in N processes")
    args = parser.parse_args()

    if args.molecules:
        cases = [(name, args.terms or 4) for name in args.molecules]
    else:
        cases = DEFAULT_CASES

    config = CompilerConfig(
        gamma_steps=20, sorting_population=16, sorting_generations=20, seed=0
    )
    labeled = []
    for name, n_terms in cases:
        frozen = 1 if name != "H2" else 0
        scf = run_rhf(make_molecule(name))
        hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=frozen)
        terms = select_ansatz_terms(hamiltonian, n_terms)
        labeled.append(
            (
                name,
                CompileRequest(
                    terms=tuple(terms),
                    n_qubits=hamiltonian.n_spin_orbitals,
                    config=config,
                ),
            )
        )

    batch = compile_batch(
        [request for _, request in labeled], backends=BACKENDS, workers=args.workers
    )

    header = f"{'Molecule':<10}{'Ne':>4}{'JW':>8}{'BK':>8}{'GT':>8}{'Adv':>8}{'Improve(%)':>12}"
    print(header)
    print("-" * len(header))
    for (name, request), row in zip(labeled, batch.results):
        jw, bk, baseline, advanced = (row[key].cnot_count for key in BACKENDS)
        improvement = 100.0 * (1.0 - advanced / baseline) if baseline else 0.0
        print(
            f"{name:<10}{len(request.terms):>4}{jw:>8}{bk:>8}{baseline:>8}{advanced:>8}"
            f"{improvement:>12.2f}"
        )
    print(f"\nCompiled {len(labeled)} molecules x {len(BACKENDS)} backends "
          f"in {batch.wall_time_s:.1f}s")


if __name__ == "__main__":
    main()
