"""Table-I style sweep: CNOT counts of several molecules under all four flows.

For every requested molecule the script selects the ``n_terms`` most important
HMP2 excitation terms and compiles them with Jordan-Wigner, Bravyi-Kitaev, the
prior-art baseline and the paper's advanced pipeline, printing a table in the
format of Table I.  Absolute counts differ from the published table because
the excitation-term lists are regenerated from our own Hartree-Fock/HMP2 stack
and the baseline solvers are re-implementations, but the ordering
``Adv <= GT <= min(JW, BK)`` and the size of the improvements reproduce the
paper's findings.

Run with:  python examples/circuit_optimization_sweep.py [--molecules HF LiH ...]
"""

import argparse

from repro import compile_molecule_ansatz

#: Default (molecule, number of excitation terms) pairs, mirroring Table I's
#: "reach chemical accuracy" rows for the small molecules plus a water row.
DEFAULT_CASES = [
    ("HF", 3),
    ("LiH", 3),
    ("BeH2", 6),
    ("H2O", 5),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--molecules", nargs="*", default=None,
        help="molecule names to sweep (default: HF LiH BeH2 H2O)",
    )
    parser.add_argument("--terms", type=int, default=None, help="override the term count")
    args = parser.parse_args()

    if args.molecules:
        cases = [(name, args.terms or 4) for name in args.molecules]
    else:
        cases = DEFAULT_CASES

    header = f"{'Molecule':<10}{'Ne':>4}{'JW':>8}{'BK':>8}{'GT':>8}{'Adv':>8}{'Improve(%)':>12}"
    print(header)
    print("-" * len(header))
    for name, n_terms in cases:
        report = compile_molecule_ansatz(
            name, n_terms=n_terms,
            gamma_steps=20, sorting_population=16, sorting_generations=20,
        )
        improvement = 100 * report.improvement_over_baseline
        print(
            f"{name:<10}{report.n_terms:>4}"
            f"{report.jordan_wigner_cnot_count:>8}"
            f"{report.bravyi_kitaev_cnot_count:>8}"
            f"{report.baseline_cnot_count:>8}"
            f"{report.advanced_cnot_count:>8}"
            f"{improvement:>12.2f}"
        )


if __name__ == "__main__":
    main()
