"""Water ground-state energy convergence (the scenario behind Fig. 5).

Grows a UCCSD ansatz for the water molecule one HMP2-ranked excitation term at
a time and tracks the VQE energy estimate against the exact (FCI) energy of
the active space, reporting how many terms are needed to reach chemical
accuracy — the quantity Fig. 5 of the paper reports for prior art vs this
work (both reach it with the same number of terms, since the circuit
optimizations change gate counts, not energies).

Alongside each energy the table shows the CNOT cost of compiling that ansatz
prefix with the advanced pipeline: every prefix is one
:class:`repro.api.CompileRequest`, and the whole progression compiles in a
single memoized :func:`repro.api.compile_batch` call.

The full 14-spin-orbital water simulation of the paper takes minutes on a
laptop; this example defaults to a frozen-core active space of 5 spatial
orbitals (10 qubits) so it finishes quickly.  Pass ``--full`` for the larger
active space.

Run with:  python examples/water_vqe_convergence.py [--full] [--max-terms N]
"""

import argparse

from repro.api import CompileRequest, CompilerConfig, compile_batch
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.simulator import CHEMICAL_ACCURACY, fci_ground_state_energy
from repro.vqe import adaptive_vqe, hmp2_ranked_terms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use all non-core orbitals (12 qubits)")
    parser.add_argument("--max-terms", type=int, default=8, help="largest ansatz size to try")
    args = parser.parse_args()

    molecule = make_molecule("H2O")
    scf = run_rhf(molecule)
    n_active = None if args.full else 5
    hamiltonian = build_molecular_hamiltonian(
        scf, n_frozen_spatial_orbitals=1, n_active_spatial_orbitals=n_active
    )
    print(f"Hartree-Fock energy : {scf.energy:.6f} Ha")
    print(f"Active space        : {hamiltonian.n_spin_orbitals} spin orbitals, "
          f"{hamiltonian.n_electrons} electrons")

    exact = fci_ground_state_energy(hamiltonian)
    print(f"Exact (FCI) energy  : {exact:.6f} Ha")
    print()

    terms = hmp2_ranked_terms(hamiltonian)
    result = adaptive_vqe(
        hamiltonian, terms, max_terms=args.max_terms, exact_energy=exact
    )

    config = CompilerConfig(
        gamma_steps=10, sorting_population=10, sorting_generations=10, seed=0
    )
    requests = [
        CompileRequest(
            terms=tuple(terms[:m]), n_qubits=hamiltonian.n_spin_orbitals, config=config
        )
        for m in result.n_terms
    ]
    compiled = compile_batch(requests, backends="advanced")

    print(f"{'M (ansatz terms)':>18}{'E_VQE (Ha)':>16}{'error (mHa)':>14}"
          f"{'chem. acc.':>12}{'CNOTs (Adv)':>13}")
    print("-" * 73)
    for m, energy, row in zip(result.n_terms, result.energies, compiled.results):
        error = abs(energy - exact)
        flag = "yes" if error <= CHEMICAL_ACCURACY else "no"
        cnots = row["advanced"].cnot_count
        print(f"{m:>18}{energy:>16.6f}{1000 * error:>14.3f}{flag:>12}{cnots:>13}")

    if result.converged:
        print(f"\nChemical accuracy reached with {result.n_terms[-1]} ansatz terms.")
    else:
        print(f"\nChemical accuracy not yet reached after {result.n_terms[-1]} terms "
              f"(error {1000 * abs(result.final_energy - exact):.3f} mHa).")


if __name__ == "__main__":
    main()
