"""Walk through the hybrid-encoding scheduling on the paper's Appendix A example.

Reconstructs the nine hybrid double-excitation terms of Appendix A (shifted to
0-based indices), builds the directed symmetry graph, peels sinks and sources,
colors the remaining core with the randomized greedy GVCP solver, and reports
which terms end up compressed at 7 CNOTs versus folded back into the fermionic
compilation path — reproducing S_sink = {h2, h3}, S_source = {h4, h8} and
S_color = {h0, h5, h7}.

The same scheduling runs inside the advanced backend's ``schedule_hybrid``
stage; the demo closes by compiling the nine terms through
``get_backend("advanced")`` and showing the per-segment CNOT breakdown the
:class:`repro.api.CompileResult` reports.

Run with:  python examples/hybrid_encoding_demo.py
"""

import numpy as np

from repro.api import CompileRequest, CompilerConfig, get_backend
from repro.core import (
    HYBRID_TERM_CNOT_COST,
    build_symmetry_graph,
    reduce_graph,
    schedule_hybrid_terms,
)
from repro.vqe import ExcitationTerm


def appendix_terms():
    """The nine hybrid terms of Appendix A, shifted to 0-based spin orbitals."""
    raw = {
        "h0": ((8, 11), (2, 3)),
        "h1": ((10, 11), (2, 5)),
        "h2": ((19, 20), (4, 5)),
        "h3": ((18, 21), (4, 5)),
        "h4": ((12, 15), (0, 1)),
        "h5": ((10, 13), (4, 5)),
        "h6": ((12, 13), (4, 7)),
        "h7": ((12, 15), (6, 7)),
        "h8": ((16, 17), (2, 7)),
    }
    return {
        name: ExcitationTerm(creation=creation, annihilation=annihilation)
        for name, (creation, annihilation) in raw.items()
    }


def main() -> None:
    terms = appendix_terms()
    names = list(terms)
    term_list = [terms[name] for name in names]

    print("Hybrid terms and their symmetric spin pairs:")
    for name, term in terms.items():
        print(f"  {name}: {term!r}")

    graph = build_symmetry_graph(term_list)
    print(f"\nSymmetry graph: {graph.number_of_nodes()} vertices, {graph.number_of_edges()} edges")
    for u, v in sorted(graph.edges):
        print(f"  {names[u]} -> {names[v]}   ({names[u]} breaks the symmetry {names[v]} needs)")

    sinks, sources, core = reduce_graph(graph)
    print(f"\nSinks   (implemented first): {[names[i] for i in sinks]}")
    print(f"Sources (implemented last) : {[names[i] for i in sources]}")
    print(f"Core vertices for coloring : {[names[i] for i in sorted(core.nodes)]}")

    schedule = schedule_hybrid_terms(term_list, rng=np.random.default_rng(0))
    index_of = {id(term): name for name, term in terms.items()}
    print(f"\nLargest color class (compressed): "
          f"{sorted(index_of[id(t)] for t in schedule.color_terms)}")
    print(f"Left uncompressed (folded into fermionic path): "
          f"{sorted(index_of[id(t)] for t in schedule.uncompressed_terms)}")
    print(f"\nCompressed terms: {schedule.n_compressed} x {HYBRID_TERM_CNOT_COST} CNOTs "
          f"= {schedule.compressed_cnot_count} CNOTs")
    print("Without compression each of these double excitations costs at least 13 CNOTs.")

    # The full advanced backend runs this scheduling as its schedule_hybrid
    # stage; the result's breakdown separates the compressed segments from
    # the fermionic remainder.
    request = CompileRequest(
        terms=tuple(term_list),
        config=CompilerConfig(
            gamma_steps=10, sorting_population=10, sorting_generations=10, seed=0
        ),
    )
    result = get_backend("advanced").compile(request)
    print(f"\nFull advanced compilation of the nine terms "
          f"({result.n_qubits} qubits): {result.cnot_count} CNOTs")
    print(f"Breakdown: {result.breakdown}")


if __name__ == "__main__":
    main()
