"""Routed Table I: compare the four backends across device topologies.

Table I of the paper counts CNOTs assuming all-to-all connectivity; on a real
device every two-qubit gate must land on a coupling-graph edge.  This demo
compiles the full-UCCSD H2 ansatz (and, with ``--molecule H2O``, the 4-term
HMP2 water selection) for each standard topology family and shows what
connectivity actually costs:

* the abstract Table-I CNOT count (``CompileResult.cnot_count``),
* the *steered* executable circuit — topology-aware parity ladders, zero
  SWAPs (``CompileResult.routing``, attached automatically once the
  :class:`repro.api.CompilerConfig` carries a
  :class:`repro.hardware.Topology`),
* the naive nearest-neighbour ladder routing of the all-to-all circuit, the
  overhead bound the subsystem is designed to beat.

Run with:  python examples/routed_table1.py [--molecule H2|H2O]
"""

import argparse

from repro.api import (
    DEFAULT_BACKEND_NAMES,
    CompileRequest,
    CompilerConfig,
    compile_batch,
    compiled_rotation_sequence,
)
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.circuits import exponential_sequence_circuit, optimize_circuit
from repro.hardware import TOPOLOGY_KINDS, naive_route_circuit, topology_for
from repro.vqe import hmp2_ranked_terms

BACKENDS = tuple(DEFAULT_BACKEND_NAMES)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--molecule", choices=["H2", "H2O"], default="H2")
    args = parser.parse_args()

    if args.molecule == "H2":
        scf = run_rhf(make_molecule("H2"))
        hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=0)
        terms = tuple(hmp2_ranked_terms(hamiltonian))
    else:
        scf = run_rhf(make_molecule("H2O"))
        hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=1)
        terms = tuple(hmp2_ranked_terms(hamiltonian)[:4])
    n_qubits = hamiltonian.n_spin_orbitals
    base_config = CompilerConfig(
        gamma_steps=20, sorting_population=16, sorting_generations=20, seed=0
    )

    print(
        f"{args.molecule}: {len(terms)} excitation terms on {n_qubits} qubits\n"
    )
    header = (
        f"{'topology':<15}{'backend':<15}{'Table-I':>8}{'steered':>9}"
        f"{'2q-depth':>9}{'naive ladder':>13}{'swaps':>7}"
    )
    print(header)
    print("-" * len(header))

    for kind in TOPOLOGY_KINDS:
        topology = topology_for(kind, n_qubits)
        config = base_config.replace(topology=topology)
        request = CompileRequest(terms=terms, n_qubits=n_qubits, config=config)
        row = compile_batch([request], backends=BACKENDS).results[0]
        for name in BACKENDS:
            result = row[name]
            sequence = compiled_rotation_sequence(result, terms)
            reference = optimize_circuit(
                exponential_sequence_circuit(sequence, n_qubits=n_qubits)
            )
            naive = naive_route_circuit(reference, topology)
            print(
                f"{topology.name:<15}{name:<15}{result.cnot_count:>8}"
                f"{result.routing.cnot_count:>9}{result.routing.two_qubit_depth:>9}"
                f"{naive.metrics().cnot_count:>13}{naive.n_swaps:>7}"
            )
        print()

    print(
        "steered = topology-aware parity ladders (repro.hardware.synthesis), "
        "0 SWAPs by construction;\nnaive ladder = all-to-all star circuit "
        "routed gate-by-gate along shortest paths (the bound to beat)."
    )


if __name__ == "__main__":
    main()
