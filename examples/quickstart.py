"""Quickstart: compile a small molecule's VQE ansatz through the unified API.

Runs the full stack end to end for LiH:

1. STO-3G Hartree-Fock (our own integrals, no external chemistry package),
2. HMP2 selection of the most important UCCSD excitation terms,
3. one :class:`repro.api.CompileRequest` compiled by every registered backend
   (Jordan-Wigner, Bravyi-Kitaev, the prior-art baseline and the paper's
   advanced pipeline) via :func:`repro.api.compile_batch`,
4. a printout in the spirit of one row of Table I, plus a warm-cache rerun
   showing the batch service memoizes identical requests.

Migration note: this example used to call ``compile_molecule_ansatz`` with
loose keyword options.  Those knobs now live in the frozen
:class:`repro.api.CompilerConfig`, and each flow is a named backend —
``get_backend("advanced").compile(request)`` replaces
``AdvancedCompiler(**kwargs).compile(terms)``.

Run with:  python examples/quickstart.py
"""

from repro.api import (
    DEFAULT_BACKEND_NAMES,
    CompileCache,
    CompileRequest,
    CompilerConfig,
    available_backends,
    compile_batch,
    get_backend,
)
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.vqe import select_ansatz_terms

#: Table-I column order.
BACKENDS = tuple(DEFAULT_BACKEND_NAMES)

LABELS = {
    "jordan-wigner": "Jordan-Wigner",
    "bravyi-kitaev": "Bravyi-Kitaev",
    "baseline": "Prior art (baseline)",
    "advanced": "This work (advanced)",
}


def main() -> None:
    scf = run_rhf(make_molecule("LiH"))
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=1)
    terms = select_ansatz_terms(hamiltonian, 4)

    config = CompilerConfig(
        gamma_steps=20, sorting_population=16, sorting_generations=20, seed=0
    )
    request = CompileRequest(
        terms=tuple(terms), n_qubits=hamiltonian.n_spin_orbitals, config=config
    )

    print(f"Registered backends : {available_backends()}")
    print(f"Molecule            : LiH")
    print(f"Spin orbitals       : {request.resolved_n_qubits}")
    print(f"Ansatz terms (Ne)   : {len(terms)}")
    print()

    cache = CompileCache()
    batch = compile_batch([request], backends=BACKENDS, cache=cache)
    row = batch.results[0]

    print(f"{'flow':<22}{'CNOT count':>12}{'wall time':>12}")
    print("-" * 46)
    for name in BACKENDS:
        result = row[name]
        print(f"{LABELS[name]:<22}{result.cnot_count:>12}{result.wall_time_s:>11.3f}s")

    baseline = row["baseline"].cnot_count
    advanced = row["advanced"].cnot_count
    improvement = 100.0 * (1.0 - advanced / baseline) if baseline else 0.0
    print(f"\nImprovement over the baseline: {improvement:.1f}%")
    print(f"Advanced breakdown: {row['advanced'].breakdown}")

    # A single backend, directly:
    alone = get_backend("advanced").compile(request)
    assert alone.cnot_count == advanced

    # Warm cache: the same request list costs nothing the second time.
    warm = compile_batch([request], backends=BACKENDS, cache=cache)
    print(
        f"\nWarm rerun: {warm.cache_hits} cache hits, {warm.cache_misses} misses "
        f"({warm.wall_time_s * 1000:.1f} ms vs {batch.wall_time_s * 1000:.1f} ms cold)"
    )

    print("\nExcitation terms (HMP2 order):")
    for index, term in enumerate(terms):
        print(f"  {index:2d}. {term!r}  importance={term.importance:.3e}")


if __name__ == "__main__":
    main()
