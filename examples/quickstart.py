"""Quickstart: compile a small molecule's VQE ansatz and compare CNOT counts.

Runs the full stack end to end for LiH:

1. STO-3G Hartree-Fock (our own integrals, no external chemistry package),
2. HMP2 selection of the most important UCCSD excitation terms,
3. compilation under Jordan-Wigner, Bravyi-Kitaev, the prior-art baseline and
   the paper's advanced pipeline,
4. a printout in the spirit of one row of Table I.

Run with:  python examples/quickstart.py
"""

from repro import compile_molecule_ansatz


def main() -> None:
    report = compile_molecule_ansatz(
        "LiH",
        n_terms=4,
        gamma_steps=20,
        sorting_population=16,
        sorting_generations=20,
    )

    print(f"Molecule          : {report.molecule}")
    print(f"Spin orbitals     : {report.n_qubits}")
    print(f"Ansatz terms (Ne) : {report.n_terms}")
    print()
    print(f"{'flow':<22}{'CNOT count':>12}")
    print("-" * 34)
    print(f"{'Jordan-Wigner':<22}{report.jordan_wigner_cnot_count:>12}")
    print(f"{'Bravyi-Kitaev':<22}{report.bravyi_kitaev_cnot_count:>12}")
    print(f"{'Prior art (baseline)':<22}{report.baseline_cnot_count:>12}")
    print(f"{'This work (advanced)':<22}{report.advanced_cnot_count:>12}")
    print()
    print(f"Improvement over the baseline: {100 * report.improvement_over_baseline:.1f}%")

    print("\nExcitation terms (HMP2 order):")
    for index, term in enumerate(report.terms):
        print(f"  {index:2d}. {term!r}  importance={term.importance:.3e}")


if __name__ == "__main__":
    main()
