"""Chaos property suite: seeded fault plans over a mixed-priority workload.

Hypothesis draws a fault-plan seed; for each seed a 50-job workload of mixed
priorities, deduplicated repeats and per-job deadlines runs through a
:class:`CompileService` while ``disk.read`` / ``disk.write`` / ``compute``
faults fire at the injected probabilities.  The liveness and correctness
properties the resilience layer must uphold:

* **every future resolves** — a result, a :class:`JobTimedOut`, or a typed
  error; never a hang (the whole workload is hard-capped by ``wait_for``);
* **successful results are bit-identical** to a fault-free run of the same
  workload — faults may slow or fail a job but can never corrupt an answer;
* the service survives to serve a clean job afterwards.
"""

import asyncio
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    CompileRequest,
    CompileResult,
    CompilerConfig,
    register_backend,
    unregister_backend,
)
from repro.faults import deactivate, inject
from repro.service import (
    CircuitBreaker,
    CompileService,
    JobTimedOut,
    PersistentCompileCache,
    RetryPolicy,
)
from repro.vqe import ExcitationTerm

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)

#: 50 jobs over 10 distinct requests: repeats exercise dedup/memory/disk.
N_JOBS = 50
N_DISTINCT = 10

CHAOS_SPEC = (
    "disk.read=error:0.2;disk.read=corrupt:0.1;"
    "disk.write=error:0.2;disk.write=corrupt:0.1;"
    "compute=error:0.2;compute=delay:0.2:0.002"
)


def make_request(index):
    return CompileRequest(
        terms=(
            ExcitationTerm(creation=(4, 5), annihilation=(0, 1)),
            ExcitationTerm(creation=(2 + index,), annihilation=(0,)),
        ),
        n_qubits=16,
        config=FAST,
    )


class DeterministicBackend:
    """Instant fake backend whose result is a pure function of the request."""

    name = "chaos-backend"

    def compile(self, request):
        cnot = 10 + sum(term.creation[0] for term in request.terms)
        return CompileResult(
            backend=self.name,
            cnot_count=cnot,
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": cnot},
        )


@pytest.fixture(scope="module")
def backend():
    instance = DeterministicBackend()
    register_backend(instance)
    yield instance
    unregister_backend(instance.name)


@pytest.fixture(autouse=True)
def no_leaked_faults():
    deactivate()
    yield
    deactivate()


def workload():
    """The fixed 50-job mixed-priority workload (index, priority, deadline)."""
    jobs = []
    for slot in range(N_JOBS):
        index = slot % N_DISTINCT
        priority = slot % 3
        deadline_s = 5.0 if slot % 7 == 0 else None  # generous: tests liveness
        jobs.append((index, priority, deadline_s))
    return jobs


async def run_workload(backend, tmp_path, plan_spec=None, plan_seed=0):
    """Submit the workload; returns {slot: result-or-exception}."""
    disk = PersistentCompileCache(tmp_path)
    service = CompileService(
        disk_cache=disk,
        n_workers=2,
        max_queue=N_JOBS + 1,
        retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.001, max_delay_s=0.01),
        breaker=CircuitBreaker(failure_threshold=3, reset_timeout_s=0.02),
    )
    async with service:
        async def drive():
            job_ids = []
            for index, priority, deadline_s in workload():
                job_ids.append(
                    await service.submit(
                        make_request(index),
                        backend=backend.name,
                        priority=priority,
                        deadline_s=deadline_s,
                    )
                )
            return await asyncio.gather(
                *(service.result(job_id) for job_id in job_ids),
                return_exceptions=True,
            )

        if plan_spec is None:
            outcomes = await asyncio.wait_for(drive(), timeout=60)
        else:
            with inject(plan_spec, seed=plan_seed):
                outcomes = await asyncio.wait_for(drive(), timeout=60)
        # Liveness of the service itself: a clean job still completes.
        clean = await asyncio.wait_for(
            service.compile(make_request(99), backend=backend.name), timeout=60
        )
        assert clean is not None
    return dict(enumerate(outcomes))


class TestChaos:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_every_future_resolves_and_survivors_are_bit_identical(
        self, seed, backend, tmp_path_factory
    ):
        tmp_path = tmp_path_factory.mktemp(f"chaos-{seed}")
        baseline = asyncio.run(
            run_workload(backend, tmp_path_factory.mktemp(f"clean-{seed}"))
        )
        assert all(isinstance(r, CompileResult) for r in baseline.values())

        outcomes = asyncio.run(
            run_workload(backend, tmp_path, plan_spec=CHAOS_SPEC, plan_seed=seed)
        )
        assert len(outcomes) == N_JOBS  # zero hangs: gather returned everything
        for slot, outcome in outcomes.items():
            if isinstance(outcome, CompileResult):
                # Bit-identical to the fault-free run of the same slot.
                assert pickle.dumps(outcome) == pickle.dumps(baseline[slot]), slot
            else:
                # Typed, expected failure modes only.
                assert isinstance(outcome, (OSError, JobTimedOut)), (slot, outcome)

    def test_fault_free_run_is_all_success(self, backend, tmp_path):
        outcomes = asyncio.run(run_workload(backend, tmp_path))
        assert all(isinstance(r, CompileResult) for r in outcomes.values())
        results = {}
        for slot, outcome in outcomes.items():
            results.setdefault(slot % N_DISTINCT, set()).add(pickle.dumps(outcome))
        # Dedup/caching never changes an answer: one payload per request.
        assert all(len(payloads) == 1 for payloads in results.values())
