"""Tests for the asyncio compile service: tiers, dedup, priorities, cancel."""

import asyncio
import time

import pytest

from repro.api import (
    CompileCache,
    CompileRequest,
    CompileResult,
    CompilerConfig,
    register_backend,
    unregister_backend,
)
from repro.service import (
    CompileService,
    JobCancelledError,
    JobState,
    PersistentCompileCache,
    ServiceOverloadedError,
    UnknownJobError,
)
from repro.vqe import ExcitationTerm

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)


def make_request(index=0):
    return CompileRequest(
        terms=(
            ExcitationTerm(creation=(4, 5), annihilation=(0, 1)),
            ExcitationTerm(creation=(2 + index,), annihilation=(0,)),
        ),
        n_qubits=16,
        config=FAST,
    )


class RecordingBackend:
    """Instant fake backend that records every compile it actually runs."""

    name = "svc-recording"

    def __init__(self):
        self.compiled = []
        self.delay = 0.0
        self.error = None

    def compile(self, request):
        if self.error is not None:
            raise self.error
        if self.delay:
            time.sleep(self.delay)
        self.compiled.append(request.fingerprint)
        return CompileResult(
            backend=self.name,
            cnot_count=10 + len(request.terms),
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 10 + len(request.terms)},
        )


@pytest.fixture
def backend():
    instance = RecordingBackend()
    register_backend(instance)
    yield instance
    unregister_backend(instance.name)


def run(coro):
    return asyncio.run(coro)


class TestJobApi:
    def test_submit_result_roundtrip(self, backend):
        async def scenario():
            async with CompileService() as service:
                job_id = await service.submit(make_request(), backend=backend.name)
                result = await service.result(job_id)
                status = service.status(job_id)
            return result, status

        result, status = run(scenario())
        assert result.cnot_count == 12
        assert status.state is JobState.DONE
        assert status.tier == "compute"
        assert status.backend == backend.name
        assert status.total_s is not None and status.total_s >= 0
        assert not status.deduplicated

    def test_compile_convenience(self, backend):
        async def scenario():
            async with CompileService() as service:
                return await service.compile(make_request(), backend=backend.name)

        assert run(scenario()).cnot_count == 12

    def test_unknown_job_rejected(self, backend):
        async def scenario():
            async with CompileService() as service:
                with pytest.raises(UnknownJobError):
                    service.status("job-999")
                with pytest.raises(UnknownJobError):
                    await service.result("job-999")
                assert (await service.submit(make_request(), backend.name)) == "job-0"

        run(scenario())

    def test_not_started_service_refuses_submits(self, backend):
        service = CompileService()
        with pytest.raises(RuntimeError, match="not started"):
            run(service.submit(make_request(), backend.name))

    def test_double_start_rejected(self, backend):
        async def scenario():
            async with CompileService() as service:
                with pytest.raises(RuntimeError, match="already started"):
                    await service.start()

        run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            CompileService(n_workers=0)
        with pytest.raises(ValueError, match="max_queue"):
            CompileService(max_queue=0)

    def test_close_cancels_unfinished_futures(self, backend):
        async def scenario():
            backend.delay = 0.2
            service = await CompileService(n_workers=1).start()
            first = await service.submit(make_request(0), backend.name)
            second = await service.submit(make_request(1), backend.name)
            await asyncio.sleep(0.05)  # let the worker pick up the first job
            await service.close()
            return first, second, service

        first, second, service = run(scenario())
        assert service.status(second).state is JobState.CANCELLED


class TestTieredLookup:
    def test_memory_tier_serves_repeats(self, backend):
        async def scenario():
            async with CompileService() as service:
                await service.compile(make_request(), backend.name)
                await service.compile(make_request(), backend.name)
                return service.metrics.tier_counts

        tiers = run(scenario())
        assert tiers["compute"] == 1 and tiers["memory"] == 1
        assert len(backend.compiled) == 1

    def test_disk_tier_shared_across_service_instances(self, backend, tmp_path):
        async def scenario():
            async with CompileService(
                disk_cache=PersistentCompileCache(tmp_path, version="T")
            ) as first:
                cold = await first.compile(make_request(), backend.name)
            async with CompileService(
                disk_cache=PersistentCompileCache(tmp_path, version="T")
            ) as second:
                warm = await second.compile(make_request(), backend.name)
                tiers = dict(second.metrics.tier_counts)
                # A further repeat is promoted to the memory tier.
                await second.compile(make_request(), backend.name)
                tiers_after = dict(second.metrics.tier_counts)
            return cold, warm, tiers, tiers_after

        cold, warm, tiers, tiers_after = run(scenario())
        assert warm == cold
        assert tiers["disk"] == 1 and tiers["compute"] == 0
        assert tiers_after["memory"] == 1
        assert len(backend.compiled) == 1

    def test_memory_tier_can_be_disabled(self, backend):
        async def scenario():
            async with CompileService(use_memory_cache=False) as service:
                await service.compile(make_request(), backend.name)
                await service.compile(make_request(), backend.name)
                return service.metrics.tier_counts

        tiers = run(scenario())
        assert tiers["compute"] == 2  # no cache tier between repeats
        assert len(backend.compiled) == 2

    def test_snapshot_reports_all_tiers(self, backend, tmp_path):
        async def scenario():
            async with CompileService(
                disk_cache=PersistentCompileCache(tmp_path, version="T")
            ) as service:
                await service.compile(make_request(), backend.name)
                return service.snapshot()

        snapshot = run(scenario())
        assert snapshot["metrics"]["tiers"]["compute"] == 1
        assert snapshot["memory_cache"]["entries"] == 1
        assert snapshot["disk_cache"]["version"] == "T"
        assert snapshot["metrics"]["latency"]["compute"]["count"] == 1


class TestDeduplication:
    def test_identical_inflight_submits_share_one_compile(self, backend):
        async def scenario():
            async with CompileService(n_workers=2) as service:
                job_ids = [
                    await service.submit(make_request(), backend.name)
                    for _ in range(5)
                ]
                results = [await service.result(job_id) for job_id in job_ids]
                statuses = [service.status(job_id) for job_id in job_ids]
                return results, statuses, service.metrics.tier_counts

        results, statuses, tiers = run(scenario())
        assert len(backend.compiled) == 1
        assert tiers["compute"] == 1 and tiers["dedup"] == 4
        assert len({result.cnot_count for result in results}) == 1
        assert [status.deduplicated for status in statuses] == [False] + [True] * 4
        assert {status.tier for status in statuses[1:]} == {"dedup"}

    def test_distinct_requests_do_not_dedup(self, backend):
        async def scenario():
            async with CompileService() as service:
                jobs = [
                    await service.submit(make_request(index), backend.name)
                    for index in range(3)
                ]
                for job_id in jobs:
                    await service.result(job_id)
                return service.metrics.tier_counts

        tiers = run(scenario())
        assert tiers["compute"] == 3 and tiers["dedup"] == 0

    def test_resubmit_after_completion_hits_cache_not_dedup(self, backend):
        async def scenario():
            async with CompileService() as service:
                await service.compile(make_request(), backend.name)
                await service.compile(make_request(), backend.name)
                return service.metrics.tier_counts

        tiers = run(scenario())
        assert tiers["dedup"] == 0 and tiers["memory"] == 1


class TestPriorities:
    def test_lower_priority_value_compiles_first(self, backend):
        async def scenario():
            async with CompileService(n_workers=1) as service:
                # No await-yield between submits: the queue orders all three
                # before the single worker runs.
                low = await service.submit(make_request(0), backend.name, priority=5)
                high = await service.submit(make_request(1), backend.name, priority=0)
                mid = await service.submit(make_request(2), backend.name, priority=2)
                for job_id in (low, high, mid):
                    await service.result(job_id)
            return [fp for fp in backend.compiled]

        order = run(scenario())
        expected = [
            make_request(1).fingerprint,
            make_request(2).fingerprint,
            make_request(0).fingerprint,
        ]
        assert order == expected

    def test_equal_priorities_are_fifo(self, backend):
        async def scenario():
            async with CompileService(n_workers=1) as service:
                jobs = [
                    await service.submit(make_request(index), backend.name)
                    for index in range(3)
                ]
                for job_id in jobs:
                    await service.result(job_id)

        run(scenario())
        assert backend.compiled == [make_request(i).fingerprint for i in range(3)]


class TestBackpressure:
    def test_full_queue_rejects_with_overload_error(self, backend):
        async def scenario():
            async with CompileService(n_workers=1, max_queue=2) as service:
                accepted = []
                rejected = 0
                for index in range(5):
                    try:
                        accepted.append(
                            await service.submit(make_request(index), backend.name)
                        )
                    except ServiceOverloadedError:
                        rejected += 1
                for job_id in accepted:
                    await service.result(job_id)
                return len(accepted), rejected, service.metrics.rejections

        accepted, rejected, counted = run(scenario())
        assert accepted == 2 and rejected == 3 and counted == 3

    def test_dedup_joins_do_not_consume_queue_slots(self, backend):
        async def scenario():
            async with CompileService(n_workers=1, max_queue=1) as service:
                first = await service.submit(make_request(), backend.name)
                joined = await service.submit(make_request(), backend.name)
                await service.result(first)
                await service.result(joined)
                return service.metrics.rejections

        assert run(scenario()) == 0

    def test_queue_depth_peak_recorded(self, backend):
        async def scenario():
            async with CompileService(n_workers=1, max_queue=8) as service:
                jobs = [
                    await service.submit(make_request(index), backend.name)
                    for index in range(4)
                ]
                for job_id in jobs:
                    await service.result(job_id)
                return service.metrics.queue_depth_peak, service.metrics.queue_depth

        peak, final = run(scenario())
        assert peak >= 3 and final == 0


class TestCancellation:
    def test_cancel_queued_job(self, backend):
        async def scenario():
            async with CompileService(n_workers=1) as service:
                keep = await service.submit(make_request(0), backend.name)
                drop = await service.submit(make_request(1), backend.name)
                assert service.cancel(drop) is True
                assert service.cancel(drop) is True  # idempotent
                await service.result(keep)
                await service.join()
                with pytest.raises(JobCancelledError):
                    await service.result(drop)
                return service.status(drop), service.metrics.cancellations

        status, cancellations = run(scenario())
        assert status.state is JobState.CANCELLED
        assert cancellations == 1
        assert len(backend.compiled) == 1  # the cancelled job never compiled

    def test_cancel_finished_job_returns_false(self, backend):
        async def scenario():
            async with CompileService() as service:
                job_id = await service.submit(make_request(), backend.name)
                await service.result(job_id)
                return service.cancel(job_id)

        assert run(scenario()) is False

    def test_cancelling_one_dedup_submitter_keeps_the_compile(self, backend):
        async def scenario():
            async with CompileService(n_workers=1) as service:
                primary = await service.submit(make_request(), backend.name)
                joiner = await service.submit(make_request(), backend.name)
                assert service.cancel(primary) is True
                result = await service.result(joiner)
                with pytest.raises(JobCancelledError):
                    await service.result(primary)
                return result, service.metrics.tier_counts

        result, tiers = run(scenario())
        assert result.cnot_count == 12
        assert len(backend.compiled) == 1
        assert tiers["dedup"] == 1

    def test_fully_cancelled_job_is_abandoned(self, backend):
        async def scenario():
            async with CompileService(n_workers=1) as service:
                primary = await service.submit(make_request(), backend.name)
                joiner = await service.submit(make_request(), backend.name)
                service.cancel(primary)
                service.cancel(joiner)
                await service.join()
                with pytest.raises(JobCancelledError):
                    await service.result(primary)
                return service.status(primary).state

        assert run(scenario()) is JobState.CANCELLED
        assert backend.compiled == []  # the compile never ran


class TestFailures:
    def test_backend_exception_propagates_and_is_counted(self, backend):
        async def scenario():
            backend.error = ValueError("bad molecule")
            async with CompileService() as service:
                job_id = await service.submit(make_request(), backend.name)
                with pytest.raises(ValueError, match="bad molecule"):
                    await service.result(job_id)
                return service.status(job_id), service.metrics.failures

        status, failures = run(scenario())
        assert status.state is JobState.FAILED
        assert failures == 1
        assert "bad molecule" in status.error

    def test_failure_is_not_cached(self, backend):
        async def scenario():
            backend.error = ValueError("flaky")
            async with CompileService() as service:
                job_id = await service.submit(make_request(), backend.name)
                with pytest.raises(ValueError):
                    await service.result(job_id)
                backend.error = None
                result = await service.compile(make_request(), backend.name)
                return result, service.metrics.tier_counts

        result, tiers = run(scenario())
        assert result.cnot_count == 12
        assert tiers["compute"] == 1  # retry recompiled, no poisoned cache


class TestRealBackends:
    def test_default_advanced_backend_through_the_service(self, tmp_path):
        async def scenario():
            disk = PersistentCompileCache(tmp_path, version="T")
            async with CompileService(disk_cache=disk) as service:
                first = await service.compile(make_request(), backend="advanced")
                again = await service.compile(make_request(), backend="adv")
                return first, again, service.metrics.tier_counts

        first, again, tiers = run(scenario())
        assert first == again  # alias shares the memoization key
        assert tiers["compute"] == 1 and tiers["memory"] == 1
