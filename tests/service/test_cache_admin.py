"""Smoke tests for the cache-admin and serve command-line tools."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import cache_admin  # noqa: E402
import serve  # noqa: E402

from repro.api import CompileCache, CompileRequest, CompileResult, CompilerConfig
from repro.service import PersistentCompileCache
from repro.vqe import ExcitationTerm

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)


def populate(root, n_entries=3, version="V"):
    cache = PersistentCompileCache(root, version=version)
    for index in range(n_entries):
        request = CompileRequest(
            terms=(ExcitationTerm(creation=(2 + index,), annihilation=(0,)),),
            n_qubits=8,
            config=FAST,
        )
        cache.put(
            CompileCache.key(request, "advanced"),
            CompileResult(backend="advanced", cnot_count=index, n_qubits=8),
        )
    return cache


class TestCacheAdmin:
    def test_stats_reports_entries_and_shards(self, tmp_path, capsys):
        populate(tmp_path)
        exit_code = cache_admin.main(
            ["stats", str(tmp_path), "--version-stamp", "V"]
        )
        report = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert report["entries"] == 3
        assert report["stale_entries"] == 0
        assert sum(report["shards"].values()) == 3

    def test_vacuum_removes_stale_entries(self, tmp_path, capsys):
        populate(tmp_path, version="old")
        exit_code = cache_admin.main(
            ["vacuum", str(tmp_path), "--version-stamp", "new"]
        )
        report = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert report["removed_stale_entries"] == 3
        assert report["entries"] == 0

    def test_clear_removes_everything(self, tmp_path, capsys):
        populate(tmp_path)
        exit_code = cache_admin.main(["clear", str(tmp_path)])
        report = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert report["removed_entries"] == 3
        assert report["entries"] == 0

    def test_missing_directory_fails_for_mutating_commands(self, tmp_path, capsys):
        exit_code = cache_admin.main(["vacuum", str(tmp_path / "missing")])
        assert exit_code == 1
        assert "does not exist" in capsys.readouterr().err


class TestServe:
    def test_serve_session_populates_and_reuses_the_cache(self, tmp_path, capsys):
        base = ["--molecule", "H2", "--n-terms", "2", "--cache-dir", str(tmp_path)]
        assert serve.main(base + ["--repeat", "2"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["metrics"]["tiers"]["compute"] == 2
        assert first["metrics"]["tiers"]["dedup"] == 2  # the repeat round joined
        assert len(first["jobs"]) == 4

        # A second session over the same directory serves from disk.
        assert serve.main(base + ["--repeat", "1"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["metrics"]["tiers"]["compute"] == 0
        assert second["metrics"]["tiers"]["disk"] == 2
        assert second["metrics"]["cache_hit_rate"] == 1.0
