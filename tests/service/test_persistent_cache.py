"""Tests for the sharded, versioned, bounded on-disk compile cache."""

import multiprocessing
import os
import time

import pytest

from repro.api import CompileCache, CompileRequest, CompileResult, CompilerConfig
from repro.api.batch import cache_key_digest
from repro.service import (
    CACHE_FORMAT_VERSION,
    PersistentCompileCache,
    golden_version_stamp,
)
from repro.vqe import ExcitationTerm

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)


def make_key(index=0):
    request = CompileRequest(
        terms=(
            ExcitationTerm(creation=(4, 5), annihilation=(0, 1)),
            ExcitationTerm(creation=(2 + index,), annihilation=(0,)),
        ),
        n_qubits=16,
        config=FAST,
    )
    return CompileCache.key(request, "advanced")


def make_result(cnot_count=7):
    return CompileResult(
        backend="advanced", cnot_count=cnot_count, n_qubits=16,
        breakdown={"total": cnot_count},
    )


class TestVersionStamp:
    def test_stamp_is_deterministic(self, tmp_path):
        assert golden_version_stamp() == golden_version_stamp()

    def test_stamp_tracks_golden_contents(self, tmp_path):
        (tmp_path / "table1.json").write_text('{"a": 1}')
        before = golden_version_stamp(tmp_path)
        (tmp_path / "table1.json").write_text('{"a": 2}')
        assert golden_version_stamp(tmp_path) != before

    def test_missing_golden_dir_degrades_to_format_stamp(self, tmp_path):
        stamp = golden_version_stamp(tmp_path / "nope")
        assert stamp  # still a usable stamp
        assert f"format={CACHE_FORMAT_VERSION}" not in stamp  # hashed, not raw

    def test_default_stamp_covers_the_repo_goldens(self):
        # The default stamp must differ from the bare-format fallback,
        # proving it actually folded the tests/golden files in.
        assert golden_version_stamp() != golden_version_stamp("/no/such/dir")


class TestBasicRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        key, result = make_key(), make_result()
        assert cache.get(key) is None
        cache.put(key, result)
        assert cache.get(key) == result
        assert cache.hits == 1 and cache.misses == 1
        assert key in cache and len(cache) == 1

    def test_peek_does_not_touch_counters(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        key = make_key()
        assert cache.peek(key) is None
        cache.put(key, make_result())
        assert cache.peek(key) is not None
        assert cache.hits == 0 and cache.misses == 0

    def test_entries_shard_by_digest_prefix(self, tmp_path):
        cache = PersistentCompileCache(tmp_path, shard_width=2)
        keys = [make_key(i) for i in range(4)]
        for key in keys:
            cache.put(key, make_result())
        for key in keys:
            digest = cache_key_digest(key)
            assert (tmp_path / digest[:2] / f"{digest}.pkl").is_file()

    def test_survives_reopen(self, tmp_path):
        key, result = make_key(), make_result(11)
        PersistentCompileCache(tmp_path).put(key, result)
        assert PersistentCompileCache(tmp_path).get(key) == result

    def test_stored_key_mismatch_is_a_miss(self, tmp_path):
        # A foreign file under our digest name must never be served.
        cache = PersistentCompileCache(tmp_path)
        key, other = make_key(0), make_key(1)
        cache.put(other, make_result())
        path = cache.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.entry_path(other), path)
        assert cache.get(key) is None

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="shard_width"):
            PersistentCompileCache(tmp_path, shard_width=0)
        with pytest.raises(ValueError, match="max_entries"):
            PersistentCompileCache(tmp_path, max_entries=0)

    def test_repr_names_root_and_version(self, tmp_path):
        cache = PersistentCompileCache(tmp_path, version="v1", max_entries=5)
        assert "v1" in repr(cache) and str(tmp_path) in repr(cache)


class TestVersionInvalidation:
    def test_stale_version_invalidated_on_read(self, tmp_path):
        key = make_key()
        PersistentCompileCache(tmp_path, version="A").put(key, make_result())
        cache = PersistentCompileCache(tmp_path, version="B")
        assert cache.get(key) is None
        assert cache.stale_invalidations == 1
        assert len(cache) == 0  # removed, not just skipped

    def test_vacuum_removes_stale_entries_wholesale(self, tmp_path):
        old = PersistentCompileCache(tmp_path, version="A")
        for index in range(3):
            old.put(make_key(index), make_result())
        new = PersistentCompileCache(tmp_path, version="B")
        new.put(make_key(9), make_result())
        assert new.vacuum() == 3
        assert len(new) == 1
        assert new.peek(make_key(9)) is not None

    def test_vacuum_treats_unreadable_entries_as_stale(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        cache.put(make_key(), make_result())
        path = cache.entry_path(make_key())
        path.write_bytes(b"not a pickle")
        assert cache.vacuum() == 1

    def test_corrupt_entry_removed_on_read(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        key = make_key()
        cache.put(key, make_result())
        cache.entry_path(key).write_bytes(b"\x80\x04 torn")
        assert cache.get(key) is None
        assert cache.corrupt_invalidations == 1
        assert len(cache) == 0


class TestEviction:
    def test_lru_eviction_beyond_max_entries(self, tmp_path):
        cache = PersistentCompileCache(tmp_path, max_entries=2)
        keys = [make_key(i) for i in range(3)]
        for index, key in enumerate(keys[:2]):
            cache.put(key, make_result(index))
            time.sleep(0.01)  # distinct mtimes on coarse filesystems
        assert cache.get(keys[0]) is not None  # refresh key 0's recency
        time.sleep(0.01)
        cache.put(keys[2], make_result(2))
        assert cache.evictions == 1
        assert cache.peek(keys[1]) is None  # LRU entry went
        assert cache.peek(keys[0]) is not None
        assert cache.peek(keys[2]) is not None

    def test_unbounded_by_default(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        for index in range(5):
            cache.put(make_key(index), make_result())
        assert len(cache) == 5 and cache.evictions == 0

    def test_same_second_hits_still_reorder_eviction(self, tmp_path, monkeypatch):
        """Regression: recency must survive a coarse (frozen) clock.

        With ``os.utime(path)`` stamping wall-clock mtimes, two hits inside
        the same clock tick (or on a filesystem with 1 s mtime granularity)
        tie in the eviction sort and a hot entry can be dropped.  The touch
        path must hand out strictly increasing nanosecond stamps even when
        ``time.time_ns`` never advances.
        """
        import repro.service.cache as cache_module

        cache = PersistentCompileCache(tmp_path, max_entries=2)
        key_a, key_b, key_c = make_key(0), make_key(1), make_key(2)
        cache.put(key_a, make_result(0))
        cache.put(key_b, make_result(1))

        # Freeze the clock and flatten every existing mtime onto one tick,
        # simulating same-second granularity.
        frozen_ns = time.time_ns()
        monkeypatch.setattr(cache_module.time, "time_ns", lambda: frozen_ns)
        for key in (key_a, key_b):
            os.utime(cache.entry_path(key), ns=(frozen_ns, frozen_ns))

        # Hit B then A within the frozen tick: A must end up newest.
        assert cache.get(key_b) is not None
        assert cache.get(key_a) is not None
        mtime_a = cache.entry_path(key_a).stat().st_mtime_ns
        mtime_b = cache.entry_path(key_b).stat().st_mtime_ns
        assert mtime_a > mtime_b  # strictly increasing despite the frozen clock

        cache.put(key_c, make_result(2))
        assert cache.evictions == 1
        assert cache.peek(key_b) is None  # the older hit went
        assert cache.peek(key_a) is not None  # the hot entry survived
        assert cache.peek(key_c) is not None


class TestAdmin:
    def test_stats_reports_shards_and_sizes(self, tmp_path):
        cache = PersistentCompileCache(tmp_path, version="V")
        for index in range(4):
            cache.put(make_key(index), make_result())
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["version"] == "V"
        assert stats["total_bytes"] > 0
        assert sum(stats["shards"].values()) == 4
        assert stats["stale_entries"] == 0
        assert stats["counters"]["evictions"] == 0

    def test_stats_counts_stale_entries(self, tmp_path):
        PersistentCompileCache(tmp_path, version="A").put(make_key(), make_result())
        stats = PersistentCompileCache(tmp_path, version="B").stats()
        assert stats["entries"] == 1 and stats["stale_entries"] == 1

    def test_clear_removes_everything(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        for index in range(3):
            cache.put(make_key(index), make_result())
        assert cache.clear() == 3
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Multi-process coherence (the atomic-write / shared-directory contract)
# ----------------------------------------------------------------------
N_WRITER_ROUNDS = 60
N_SHARED_KEYS = 4


def _writer_proc(root, worker_seed):
    """Hammer the same key set with atomic rewrites of valid entries."""
    cache = PersistentCompileCache(root, version="shared")
    for round_index in range(N_WRITER_ROUNDS):
        index = (worker_seed + round_index) % N_SHARED_KEYS
        cache.put(make_key(index), make_result(100 + index))


def _reader_proc(root, failures):
    """Read continuously; every hit must be a complete, correct entry."""
    cache = PersistentCompileCache(root, version="shared")
    for _ in range(N_WRITER_ROUNDS * 2):
        for index in range(N_SHARED_KEYS):
            result = cache.peek(make_key(index))
            if result is not None and result.cnot_count != 100 + index:
                failures.put((index, result.cnot_count))
    if cache.corrupt_invalidations:
        failures.put(("corrupt", cache.corrupt_invalidations))


class TestMultiProcess:
    def test_concurrent_writers_and_readers_see_only_complete_entries(self, tmp_path):
        context = multiprocessing.get_context("fork")
        failures = context.Queue()
        writers = [
            context.Process(target=_writer_proc, args=(str(tmp_path), seed))
            for seed in range(3)
        ]
        reader = context.Process(target=_reader_proc, args=(str(tmp_path), failures))
        for proc in writers + [reader]:
            proc.start()
        for proc in writers + [reader]:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        assert failures.empty(), f"reader saw torn/wrong entries: {failures.get()}"
        # Afterwards every shared key holds its final complete value.
        cache = PersistentCompileCache(tmp_path, version="shared")
        for index in range(N_SHARED_KEYS):
            assert cache.peek(make_key(index)).cnot_count == 100 + index

    def test_version_mismatch_across_processes_invalidates(self, tmp_path):
        context = multiprocessing.get_context("fork")
        writer = context.Process(target=_writer_proc, args=(str(tmp_path), 0))
        writer.start()
        writer.join(timeout=60)
        assert writer.exitcode == 0
        upgraded = PersistentCompileCache(tmp_path, version="new-goldens")
        assert upgraded.get(make_key(0)) is None
        assert upgraded.stale_invalidations == 1

    def test_no_temporary_files_left_behind(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        for index in range(4):
            cache.put(make_key(index), make_result())
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_failed_write_leaves_no_entry(self, tmp_path, monkeypatch):
        cache = PersistentCompileCache(tmp_path)

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            cache.put(make_key(), make_result())
        monkeypatch.undo()
        assert cache.peek(make_key()) is None
        assert list(tmp_path.rglob("*.tmp")) == []
        assert cache.io_errors == 1


class TestVacuumVsConcurrentWriters:
    """Regression: vacuum racing a writer must not eat mid-write temp files."""

    def _plant_tmp(self, cache, tmp_path, age_s=0.0):
        """A torn mid-write temporary, as mkstemp leaves it during put()."""
        shard = tmp_path / "ab"
        shard.mkdir(exist_ok=True)
        tmp_file = shard / "abcdef0123456789deadbeef.tmp"
        tmp_file.write_bytes(b"\x80\x04 torn mid-write")
        if age_s:
            past = time.time() - age_s
            os.utime(tmp_file, (past, past))
        return tmp_file

    def test_fresh_tmp_file_survives_vacuum(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        cache.put(make_key(), make_result())
        tmp_file = self._plant_tmp(cache, tmp_path)
        assert cache.vacuum() == 0
        assert tmp_file.exists()  # the concurrent writer keeps its file
        assert cache.peek(make_key()) is not None
        assert cache.stale_invalidations == 0

    def test_aged_tmp_orphan_is_swept(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        tmp_file = self._plant_tmp(cache, tmp_path, age_s=7200.0)
        assert cache.vacuum() == 1
        assert not tmp_file.exists()
        # Orphan sweeps are not stale-entry invalidations.
        assert cache.stale_invalidations == 0

    def test_tmp_age_threshold_is_configurable(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        tmp_file = self._plant_tmp(cache, tmp_path, age_s=10.0)
        assert cache.vacuum() == 0  # default hour-long grace
        assert tmp_file.exists()
        assert cache.vacuum(tmp_max_age_s=1.0) == 1
        assert not tmp_file.exists()


class TestIOErrorAccounting:
    def test_read_io_error_is_a_miss_that_keeps_the_entry(self, tmp_path, monkeypatch):
        from pathlib import Path

        cache = PersistentCompileCache(tmp_path)
        key = make_key()
        cache.put(key, make_result(13))
        real_read_bytes = Path.read_bytes

        def denied(self):
            raise PermissionError("injected permission flip")

        monkeypatch.setattr(Path, "read_bytes", denied)
        assert cache.get(key) is None  # degraded to a miss...
        monkeypatch.setattr(Path, "read_bytes", real_read_bytes)
        assert cache.io_errors == 1
        assert cache.corrupt_invalidations == 0
        result = cache.get(key)  # ...but the entry itself survived
        assert result is not None and result.cnot_count == 13

    def test_fault_events_totals_corruption_and_io(self, tmp_path):
        cache = PersistentCompileCache(tmp_path)
        key = make_key()
        cache.put(key, make_result())
        cache.entry_path(key).write_bytes(b"\x80\x04 torn")
        assert cache.get(key) is None
        cache.io_errors += 1  # as a service-layer OSError would count it
        assert cache.fault_events == cache.corrupt_invalidations + cache.io_errors == 2
        assert cache.stats()["counters"]["io_errors"] == 1
