"""Tests for the compile service's backend fallback chains."""

import asyncio

import pytest

from repro.api import (
    CompileCache,
    CompileRequest,
    CompileResult,
    CompilerConfig,
    StageFailure,
    register_backend,
    unregister_backend,
)
from repro.obs.tracer import tracing
from repro.service import CompileService, RetryPolicy
from repro.vqe import ExcitationTerm

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)

#: One attempt, no backoff: the fallback chain engages immediately, keeping
#: these tests fast and focused on the chain itself.
NO_RETRIES = RetryPolicy(max_attempts=1)


def make_request(index=0):
    return CompileRequest(
        terms=(
            ExcitationTerm(creation=(4, 5), annihilation=(0, 1)),
            ExcitationTerm(creation=(2 + index,), annihilation=(0,)),
        ),
        n_qubits=16,
        config=FAST,
    )


class BreakingBackend:
    """Backend whose compile always fails with the typed stage failure."""

    name = "svc-breaking"

    def __init__(self):
        self.calls = 0
        self.error = StageFailure("sort", RuntimeError("synthetic break"))

    def compile(self, request):
        self.calls += 1
        raise self.error


class RescueBackend:
    """Healthy fallback backend; records what it compiled."""

    name = "svc-rescue"

    def __init__(self, cnot=13, broken=False):
        self.compiled = []
        self.broken = broken

    def compile(self, request):
        if self.broken:
            raise StageFailure("transform", RuntimeError("rescue break"))
        self.compiled.append(request.fingerprint)
        return CompileResult(
            backend=self.name,
            cnot_count=13,
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 13},
        )


class SecondRescueBackend(RescueBackend):
    name = "svc-rescue-2"

    def compile(self, request):
        self.compiled.append(request.fingerprint)
        return CompileResult(
            backend=self.name,
            cnot_count=17,
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 17},
        )


@pytest.fixture
def breaking():
    backend = BreakingBackend()
    register_backend(backend)
    yield backend
    unregister_backend(backend.name)


@pytest.fixture
def rescue():
    backend = RescueBackend()
    register_backend(backend)
    yield backend
    unregister_backend(backend.name)


@pytest.fixture
def rescue2():
    backend = SecondRescueBackend()
    register_backend(backend)
    yield backend
    unregister_backend(backend.name)


def run(coro):
    return asyncio.run(coro)


class TestServiceFallback:
    def test_fallback_serves_every_submitter(self, breaking, rescue):
        async def scenario():
            async with CompileService(
                fallback=("svc-rescue",), retry_policy=NO_RETRIES
            ) as service:
                job_id = await service.submit(make_request(), backend="svc-breaking")
                result = await service.result(job_id)
                status = service.status(job_id)
                snapshot = service.metrics.snapshot()
            return result, status, snapshot

        result, status, snapshot = run(scenario())
        assert result.backend == "svc-rescue"
        assert result.cnot_count == 13
        assert status.tier == "compute"
        assert snapshot["resilience"]["fallbacks"] == 1
        assert snapshot["failures"] == 0
        assert breaking.calls == 1

    def test_fallback_result_cached_under_its_own_key(self, breaking, rescue):
        async def scenario():
            async with CompileService(
                fallback=("svc-rescue",), retry_policy=NO_RETRIES
            ) as service:
                await service.compile(make_request(), backend="svc-breaking")
                return service.memory_cache

        memory_cache = run(scenario())
        request = make_request()
        # Cache honesty: nothing under the failed primary backend's key.
        assert CompileCache.key(request, "svc-breaking") not in memory_cache
        assert CompileCache.key(request, "svc-rescue") in memory_cache

    def test_chain_walks_past_a_broken_fallback(self, breaking, rescue, rescue2):
        rescue.broken = True

        async def scenario():
            async with CompileService(
                fallback=("svc-rescue", "svc-rescue-2"), retry_policy=NO_RETRIES
            ) as service:
                result = await service.compile(make_request(), backend="svc-breaking")
                return result, service.metrics.fallbacks

        result, fallbacks = run(scenario())
        assert result.backend == "svc-rescue-2"
        assert fallbacks == 1  # one substitution, however long the chain walk

    def test_empty_chain_surfaces_the_primary_failure(self, breaking):
        async def scenario():
            async with CompileService(retry_policy=NO_RETRIES) as service:
                job_id = await service.submit(make_request(), backend="svc-breaking")
                with pytest.raises(StageFailure):
                    await service.result(job_id)
                return service.metrics.snapshot()

        snapshot = run(scenario())
        assert snapshot["failures"] == 1
        assert snapshot["resilience"]["fallbacks"] == 0

    def test_non_retryable_error_skips_the_chain(self, breaking, rescue):
        breaking.error = ValueError("synthetic input rejection")

        async def scenario():
            async with CompileService(
                fallback=("svc-rescue",), retry_policy=NO_RETRIES
            ) as service:
                job_id = await service.submit(make_request(), backend="svc-breaking")
                with pytest.raises(ValueError):
                    await service.result(job_id)

        run(scenario())
        assert rescue.compiled == []  # validation errors never burn the chain

    def test_exhausted_chain_reraises_the_primary_error(self, breaking, rescue):
        rescue.broken = True

        async def scenario():
            async with CompileService(
                fallback=("svc-rescue",), retry_policy=NO_RETRIES
            ) as service:
                job_id = await service.submit(make_request(), backend="svc-breaking")
                with pytest.raises(StageFailure) as info:
                    await service.result(job_id)
                return info.value.stage

        # Submitters see the primary backend's error, not the last fallback's.
        assert run(scenario()) == "sort"

    def test_fallback_emits_a_span(self, breaking, rescue):
        async def scenario():
            async with CompileService(
                fallback=("svc-rescue",), retry_policy=NO_RETRIES
            ) as service:
                await service.compile(make_request(), backend="svc-breaking")

        with tracing() as tracer:
            run(scenario())
            spans = [s for s in tracer.all_spans() if s.name == "service.fallback"]
        assert spans and spans[0].attributes["backend"] == "svc-rescue"
