"""Tests for the compile-service resilience layer.

Covers the policy objects (RetryPolicy, CircuitBreaker) in isolation and the
service-level behaviors built on them: per-job deadlines, retries of
transient compute failures, worker-crash recovery with pool replenishment,
disk-tier circuit breaking with graceful degradation, abandonment of
compilations nobody waits for anymore, draining shutdown, and the
``retry_after_s`` backpressure hint.
"""

import asyncio
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.api import (
    CompileRequest,
    CompileResult,
    CompilerConfig,
    register_backend,
    unregister_backend,
)
from repro.faults import InjectedFault, deactivate, inject
from repro.service import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CompileService,
    JobCancelledError,
    JobState,
    JobTimedOut,
    PersistentCompileCache,
    RetryPolicy,
    ServiceDrainingError,
    ServiceOverloadedError,
    WorkerCrashed,
)
from repro.vqe import ExcitationTerm

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
from serve import submit_with_backoff  # noqa: E402

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)


def make_request(index=0):
    return CompileRequest(
        terms=(
            ExcitationTerm(creation=(4, 5), annihilation=(0, 1)),
            ExcitationTerm(creation=(2 + index,), annihilation=(0,)),
        ),
        n_qubits=16,
        config=FAST,
    )


class FlakyBackend:
    """Fails the first ``fail_first`` compiles with ``error``, then succeeds."""

    name = "res-flaky"

    def __init__(self, fail_first=0, error=None, delay=0.0):
        self.fail_first = fail_first
        self.error = error if error is not None else OSError("transient")
        self.delay = delay
        self.calls = 0

    def compile(self, request):
        self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        if self.calls <= self.fail_first:
            raise self.error
        return CompileResult(
            backend=self.name,
            cnot_count=10 + len(request.terms),
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 10 + len(request.terms)},
        )


@pytest.fixture
def flaky():
    instance = FlakyBackend()
    register_backend(instance)
    yield instance
    unregister_backend(instance.name)


@pytest.fixture(autouse=True)
def no_leaked_faults():
    deactivate()
    yield
    deactivate()


def run(coro):
    return asyncio.run(coro)


async def wait_until(predicate, timeout_s=5.0):
    deadline = time.perf_counter() + timeout_s
    while not predicate():
        if time.perf_counter() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.005)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="budget"):
            RetryPolicy(budget=-1)

    def test_default_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(WorkerCrashed("died"))
        assert policy.is_retryable(OSError("disk"))
        assert policy.is_retryable(InjectedFault("compute"))
        assert policy.is_retryable(ConnectionError("reset"))
        assert not policy.is_retryable(ValueError("deterministic"))

    def test_job_timed_out_never_retryable(self):
        # Even a policy that opts into TimeoutError must not retry an
        # already-expired deadline.
        policy = RetryPolicy(retryable=(TimeoutError,))
        assert policy.is_retryable(TimeoutError("generic"))
        assert not policy.is_retryable(JobTimedOut("job-1", 0.5))

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0, jitter=0.0)
        delays = [policy.delay_s(n) for n in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic_per_token(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay_s(1, "token-a") == policy.delay_s(1, "token-a")
        assert policy.delay_s(1, "token-a") != policy.delay_s(1, "token-b")
        base = RetryPolicy(jitter=0.0).delay_s(1)
        assert base <= policy.delay_s(1, "token-a") <= base * 1.5

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError, match="retry_index"):
            RetryPolicy().delay_s(-1)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout_s"):
            CircuitBreaker(reset_timeout_s=-1)
        with pytest.raises(ValueError, match="probe_successes"):
            CircuitBreaker(probe_successes=0)

    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()  # resets the streak
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_half_open_after_reset_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN

    def test_probe_successes_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, probe_successes=2, clock=clock
        )
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_HALF_OPEN  # one probe is not enough
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0, clock=clock)
        breaker.record_failure()
        clock.now = 2.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()  # the reset clock restarted at reopen

    def test_transition_callback_sequence(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout_s=1.0,
            probe_successes=1,
            clock=clock,
            on_transition=lambda old, new: seen.append((old, new)),
        )
        breaker.record_failure()
        clock.now = 2.0
        breaker.allow()
        breaker.record_success()
        assert seen == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]

    def test_state_codes_and_repr(self):
        breaker = CircuitBreaker(failure_threshold=1)
        assert breaker.state_code == 0
        breaker.record_failure()
        assert breaker.state_code == 2
        assert "open" in repr(breaker)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_queued_job_times_out(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.3)
            slow.name = "res-slow-q"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1) as service:
                    blocker = await service.submit(make_request(0), backend=slow.name)
                    queued = await service.submit(
                        make_request(1), backend=slow.name, deadline_s=0.05
                    )
                    with pytest.raises(JobTimedOut) as info:
                        await service.result(queued)
                    assert info.value.job_id == queued
                    status = service.status(queued)
                    await service.result(blocker)  # the blocker is unaffected
                    return status, service.metrics.timeouts
            finally:
                unregister_backend(slow.name)

        status, timeouts = run(scenario())
        assert status.state is JobState.TIMED_OUT
        assert "deadline" in status.error
        assert timeouts == 1

    def test_in_flight_job_times_out(self):
        async def scenario():
            slow = FlakyBackend(delay=0.3)
            slow.name = "res-slow-f"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1) as service:
                    job = await service.submit(
                        make_request(), backend=slow.name, deadline_s=0.05
                    )
                    await wait_until(lambda: slow.calls == 1)
                    with pytest.raises(JobTimedOut):
                        await service.result(job)
                    assert service.status(job).state is JobState.TIMED_OUT
                    # The abandoned compute was disconnected from the worker:
                    # the next job must not wait the full 0.3 s blocker out.
                    assert service.metrics.abandonments == 1
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_dedup_joiner_deadline_is_independent(self):
        async def scenario():
            slow = FlakyBackend(delay=0.2)
            slow.name = "res-slow-d"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1) as service:
                    patient = await service.submit(make_request(), backend=slow.name)
                    hurried = await service.submit(
                        make_request(), backend=slow.name, deadline_s=0.05
                    )
                    assert service.status(hurried).deduplicated
                    with pytest.raises(JobTimedOut):
                        await service.result(hurried)
                    result = await service.result(patient)
                    assert result.cnot_count == 12
                    assert slow.calls == 1  # still one shared compile
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_default_deadline_applies(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.3)
            slow.name = "res-slow-def"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1, default_deadline_s=0.05) as service:
                    job = await service.submit(make_request(), backend=slow.name)
                    with pytest.raises(JobTimedOut):
                        await service.result(job)
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_deadline_validation(self, flaky):
        async def scenario():
            async with CompileService() as service:
                with pytest.raises(ValueError, match="deadline_s"):
                    await service.submit(make_request(), flaky.name, deadline_s=0.0)

        run(scenario())
        with pytest.raises(ValueError, match="default_deadline_s"):
            CompileService(default_deadline_s=-1.0)

    def test_finished_job_is_not_expired(self, flaky):
        async def scenario():
            async with CompileService(n_workers=1) as service:
                job = await service.submit(make_request(), flaky.name, deadline_s=5.0)
                result = await service.result(job)
                return result, service.metrics.timeouts

        result, timeouts = run(scenario())
        assert result.cnot_count == 12
        assert timeouts == 0


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
class TestRetries:
    def test_transient_failures_retried_to_success(self):
        async def scenario():
            backend = FlakyBackend(fail_first=2)
            backend.name = "res-flaky-2"
            register_backend(backend)
            try:
                policy = RetryPolicy(max_attempts=3, base_delay_s=0.001)
                async with CompileService(n_workers=1, retry_policy=policy) as service:
                    result = await service.compile(make_request(), backend=backend.name)
                    return result, backend.calls, service.metrics.retries
            finally:
                unregister_backend(backend.name)

        result, calls, retries = run(scenario())
        assert result.cnot_count == 12
        assert calls == 3
        assert retries == 2

    def test_exhausted_attempts_fail_with_last_error(self):
        async def scenario():
            backend = FlakyBackend(fail_first=99)
            backend.name = "res-flaky-x"
            register_backend(backend)
            try:
                policy = RetryPolicy(max_attempts=2, base_delay_s=0.001)
                async with CompileService(n_workers=1, retry_policy=policy) as service:
                    job = await service.submit(make_request(), backend=backend.name)
                    with pytest.raises(OSError, match="transient"):
                        await service.result(job)
                    return backend.calls, service.metrics.retries, service.metrics.failures
            finally:
                unregister_backend(backend.name)

        calls, retries, failures = run(scenario())
        assert calls == 2
        assert retries == 1
        assert failures == 1

    def test_deterministic_errors_not_retried(self):
        async def scenario():
            backend = FlakyBackend(fail_first=99, error=ValueError("bad molecule"))
            backend.name = "res-flaky-v"
            register_backend(backend)
            try:
                async with CompileService(n_workers=1) as service:
                    job = await service.submit(make_request(), backend=backend.name)
                    with pytest.raises(ValueError, match="bad molecule"):
                        await service.result(job)
                    return backend.calls, service.metrics.retries
            finally:
                unregister_backend(backend.name)

        calls, retries = run(scenario())
        assert calls == 1
        assert retries == 0

    def test_retry_budget_limits_service_wide_retries(self):
        async def scenario():
            backend = FlakyBackend(fail_first=99)
            backend.name = "res-flaky-b"
            register_backend(backend)
            try:
                policy = RetryPolicy(max_attempts=5, base_delay_s=0.001, budget=1)
                async with CompileService(n_workers=1, retry_policy=policy) as service:
                    for index in range(2):
                        job = await service.submit(make_request(index), backend=backend.name)
                        with pytest.raises(OSError):
                            await service.result(job)
                    snap = service.snapshot()
                    return backend.calls, service.metrics.retries, snap
            finally:
                unregister_backend(backend.name)

        calls, retries, snap = run(scenario())
        assert retries == 1  # the budget, not 2 * (max_attempts - 1)
        assert calls == 3  # job 1: try + 1 retry; job 2: single try
        assert snap["retry_policy"]["budget_remaining"] == 0

    def test_dedup_joiners_get_retried_result(self):
        async def scenario():
            backend = FlakyBackend(fail_first=1, delay=0.05)
            backend.name = "res-flaky-j"
            register_backend(backend)
            try:
                policy = RetryPolicy(max_attempts=3, base_delay_s=0.001)
                async with CompileService(n_workers=1, retry_policy=policy) as service:
                    first = await service.submit(make_request(), backend=backend.name)
                    second = await service.submit(make_request(), backend=backend.name)
                    results = await asyncio.gather(
                        service.result(first), service.result(second)
                    )
                    assert results[0] == results[1]
                    assert backend.calls == 2  # one failure + one shared success
                    assert service.metrics.tier_counts["dedup"] == 1
            finally:
                unregister_backend(backend.name)

        run(scenario())


# ----------------------------------------------------------------------
# Worker-crash recovery
# ----------------------------------------------------------------------
class CrashOnceBackend:
    """Kills its hosting process unless the sentinel file already exists.

    Registered in the parent and inherited by fork-started pool workers; the
    sentinel lives on disk so the *retried* compile (in a fresh worker of the
    replenished pool) sees that the crash already happened and succeeds.
    """

    name = "res-crash-once"

    def __init__(self, sentinel):
        self.sentinel = str(sentinel)

    def compile(self, request):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as handle:
                handle.write("crashed")
            os._exit(87)
        return CompileResult(
            backend=self.name,
            cnot_count=10 + len(request.terms),
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 10 + len(request.terms)},
        )


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="custom backends reach pool workers only under fork",
)
class TestWorkerCrashRecovery:
    def test_crash_is_scoped_retried_and_pool_replenished(self, tmp_path):
        async def scenario():
            backend = CrashOnceBackend(tmp_path / "crashed.sentinel")
            register_backend(backend)
            try:
                policy = RetryPolicy(max_attempts=3, base_delay_s=0.001)
                async with CompileService(
                    n_workers=1,
                    retry_policy=policy,
                    executor_factory=lambda: ProcessPoolExecutor(max_workers=1),
                ) as service:
                    result = await service.compile(make_request(), backend=backend.name)
                    assert result.cnot_count == 12
                    assert service.metrics.worker_crashes == 1
                    assert service.metrics.retries == 1
                    # The replenished pool keeps serving.
                    result2 = await service.compile(make_request(1), backend=backend.name)
                    assert result2.cnot_count == 12
            finally:
                unregister_backend(backend.name)

        run(scenario())

    def test_crash_without_retries_surfaces_worker_crashed(self, tmp_path):
        async def scenario():
            backend = CrashOnceBackend(tmp_path / "crash2.sentinel")
            backend.name = "res-crash-once-2"
            register_backend(backend)
            try:
                async with CompileService(
                    n_workers=1,
                    retry_policy=RetryPolicy(max_attempts=1),
                    executor_factory=lambda: ProcessPoolExecutor(max_workers=1),
                ) as service:
                    job = await service.submit(make_request(), backend=backend.name)
                    with pytest.raises(WorkerCrashed):
                        await service.result(job)
                    assert service.status(job).state is JobState.FAILED
                    # The crash poisoned neither the service nor later jobs.
                    result = await service.compile(make_request(1), backend=backend.name)
                    assert result.cnot_count == 12
            finally:
                unregister_backend(backend.name)

        run(scenario())


class TestExecutorOwnership:
    def test_executor_and_factory_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="executor_factory"):
            CompileService(
                executor=ProcessPoolExecutor(max_workers=1),
                executor_factory=lambda: ProcessPoolExecutor(max_workers=1),
            )


# ----------------------------------------------------------------------
# Disk circuit breaker
# ----------------------------------------------------------------------
class TestDiskBreaker:
    def test_breaker_opens_degrades_and_recovers(self, flaky, tmp_path):
        async def scenario():
            disk = PersistentCompileCache(tmp_path)
            breaker = CircuitBreaker(
                failure_threshold=2, reset_timeout_s=0.05, probe_successes=1
            )
            async with CompileService(
                disk_cache=disk,
                use_memory_cache=False,
                n_workers=1,
                breaker=breaker,
                retry_policy=RetryPolicy(max_attempts=1),
            ) as service:
                with inject("disk.read=error:1.0;disk.write=error:1.0", seed=3):
                    for index in range(3):
                        result = await service.compile(make_request(index), flaky.name)
                        assert result is not None  # degraded, never failed
                resilience = service.metrics.snapshot()["resilience"]
                assert resilience["breaker_opens"] >= 1
                assert resilience["disk_faults"] >= 2
                assert resilience["disk_degraded"] >= 1
                assert resilience["breaker_state"] == 2
                assert service.snapshot()["breaker"]["state"] == BREAKER_OPEN

                await asyncio.sleep(0.06)  # let the breaker half-open
                await service.compile(make_request(9), flaky.name)
                resilience = service.metrics.snapshot()["resilience"]
                assert resilience["breaker_closes"] >= 1
                assert resilience["breaker_state"] == 0

                # Healed: the disk tier serves again.
                await service.compile(make_request(9), flaky.name)
                assert service.metrics.tier_counts["disk"] == 1

        run(scenario())

    def test_corrupt_entries_count_as_disk_faults(self, flaky, tmp_path):
        async def scenario():
            disk = PersistentCompileCache(tmp_path)
            async with CompileService(
                disk_cache=disk, use_memory_cache=False, n_workers=1
            ) as service:
                await service.compile(make_request(), flaky.name)
                with inject("disk.read=corrupt:1.0", seed=5):
                    result = await service.compile(make_request(), flaky.name)
                assert result is not None
                assert service.metrics.disk_faults == 1
                assert disk.corrupt_invalidations == 1

        run(scenario())

    def test_failed_disk_write_does_not_fail_the_job(self, flaky, tmp_path):
        async def scenario():
            disk = PersistentCompileCache(tmp_path)
            async with CompileService(
                disk_cache=disk,
                use_memory_cache=False,
                n_workers=1,
                retry_policy=RetryPolicy(max_attempts=1),
            ) as service:
                with inject("disk.write=error:1.0", seed=1):
                    result = await service.compile(make_request(), flaky.name)
                assert result.cnot_count == 12
                assert service.metrics.disk_faults == 1
                assert disk.io_errors == 1
                assert len(disk) == 0  # nothing was persisted

        run(scenario())

    def test_no_breaker_without_disk_cache(self):
        assert CompileService().breaker is None

    def test_user_transition_callback_is_chained(self, flaky, tmp_path):
        seen = []
        breaker = CircuitBreaker(
            failure_threshold=1, on_transition=lambda old, new: seen.append(new)
        )
        service = CompileService(
            disk_cache=PersistentCompileCache(tmp_path), breaker=breaker
        )
        breaker.record_failure()
        assert seen == [BREAKER_OPEN]
        assert service.metrics.breaker_opens == 1


# ----------------------------------------------------------------------
# Cancellation, abandonment, overload and shutdown
# ----------------------------------------------------------------------
class TestAbandonment:
    def test_cancel_in_flight_submitter_detaches_it(self):
        async def scenario():
            slow = FlakyBackend(delay=0.2)
            slow.name = "res-ab-1"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1) as service:
                    keeper = await service.submit(make_request(), backend=slow.name)
                    leaver = await service.submit(make_request(), backend=slow.name)
                    await wait_until(lambda: slow.calls == 1)
                    assert service.cancel(leaver) is True  # even though in flight
                    with pytest.raises(JobCancelledError):
                        await service.result(leaver)
                    result = await service.result(keeper)
                    assert result.cnot_count == 12
                    assert service.metrics.abandonments == 0  # keeper still waited
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_cancelling_every_submitter_abandons_the_compute(self):
        async def scenario():
            slow = FlakyBackend(delay=0.3)
            slow.name = "res-ab-2"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1) as service:
                    first = await service.submit(make_request(), backend=slow.name)
                    second = await service.submit(make_request(), backend=slow.name)
                    await wait_until(lambda: slow.calls == 1)
                    assert service.cancel(first) and service.cancel(second)
                    assert service.metrics.abandonments == 1
                    assert service.metrics.cancellations == 2
                    # The worker must be free well before the 0.3 s compute
                    # would have finished: a follow-up job completes promptly.
                    start = time.perf_counter()
                    await service.compile(make_request(1), backend=slow.name)
                    assert time.perf_counter() - start < 2.0
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_queued_group_fully_cancelled_is_skipped(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.2)
            slow.name = "res-ab-3"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1) as service:
                    blocker = await service.submit(make_request(0), backend=slow.name)
                    queued = await service.submit(make_request(1), backend=slow.name)
                    assert service.cancel(queued)
                    await service.result(blocker)
                    await service.join()
                    assert slow.calls == 1  # the cancelled job never compiled
                    assert service.metrics.abandonments == 1
            finally:
                unregister_backend(slow.name)

        run(scenario())


class TestOverloadHint:
    def test_retry_after_reflects_queue_depth_and_compute_history(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.05)
            slow.name = "res-ov-1"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1, max_queue=1) as service:
                    await service.compile(make_request(0), backend=slow.name)
                    blocker = await service.submit(make_request(1), backend=slow.name)
                    await wait_until(lambda: slow.calls == 2)
                    queued = await service.submit(make_request(2), backend=slow.name)
                    with pytest.raises(ServiceOverloadedError) as info:
                        await service.submit(make_request(3), backend=slow.name)
                    assert info.value.retry_after_s is not None
                    # depth 1 × p50 ≈ 0.05 s / 1 worker, floored at 0.05.
                    assert 0.05 <= info.value.retry_after_s < 5.0
                    await asyncio.gather(service.result(blocker), service.result(queued))
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_retry_after_defaults_without_compute_history(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.1)
            slow.name = "res-ov-2"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1, max_queue=1) as service:
                    blocker = await service.submit(make_request(0), backend=slow.name)
                    await wait_until(lambda: slow.calls == 1)
                    queued = await service.submit(make_request(1), backend=slow.name)
                    with pytest.raises(ServiceOverloadedError) as info:
                        await service.submit(make_request(2), backend=slow.name)
                    assert info.value.retry_after_s == pytest.approx(0.2)
                    await asyncio.gather(service.result(blocker), service.result(queued))
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_serve_client_backs_off_and_succeeds(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.02)
            slow.name = "res-ov-3"
            register_backend(slow)
            try:
                async with CompileService(n_workers=1, max_queue=1) as service:
                    job_ids = [
                        await submit_with_backoff(service, make_request(i), slow.name)
                        for i in range(5)
                    ]
                    results = [await service.result(job_id) for job_id in job_ids]
                    assert len(results) == 5
                    assert service.metrics.rejections > 0  # backoff actually engaged
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_serve_client_gives_up_eventually(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=1.5)  # long enough to stay full through backoff
            slow.name = "res-ov-4"
            register_backend(slow)
            try:
                service = await CompileService(n_workers=1, max_queue=1).start()
                try:
                    await service.submit(make_request(0), backend=slow.name)
                    await wait_until(lambda: slow.calls == 1)  # worker picked it up
                    await service.submit(make_request(1), backend=slow.name)
                    with pytest.raises(ServiceOverloadedError, match="backoff retries"):
                        await submit_with_backoff(
                            service, make_request(2), slow.name, max_retries=2
                        )
                finally:
                    await service.close()
            finally:
                unregister_backend(slow.name)

        run(scenario())


class TestShutdown:
    def test_drain_finishes_in_flight_and_queued_work(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.05)
            slow.name = "res-sh-1"
            register_backend(slow)
            try:
                service = await CompileService(n_workers=1).start()
                running = await service.submit(make_request(0), backend=slow.name)
                queued = await service.submit(make_request(1), backend=slow.name)
                await service.shutdown(drain=True)
                for job_id in (running, queued):
                    status = service.status(job_id)
                    assert status.state is JobState.DONE, status
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_draining_service_refuses_submits(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.2)
            slow.name = "res-sh-2"
            register_backend(slow)
            try:
                service = await CompileService(n_workers=1).start()
                job = await service.submit(make_request(), backend=slow.name)
                result_task = asyncio.create_task(service.result(job))
                await wait_until(lambda: slow.calls == 1)
                drain_task = asyncio.create_task(service.shutdown(drain=True))
                await asyncio.sleep(0.01)
                with pytest.raises(ServiceDrainingError):
                    await service.submit(make_request(1), backend=slow.name)
                assert (await result_task).cnot_count == 12
                await drain_task
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_drain_timeout_cancels_stragglers(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.5)
            slow.name = "res-sh-3"
            register_backend(slow)
            try:
                service = await CompileService(n_workers=1).start()
                job = await service.submit(make_request(), backend=slow.name)
                await wait_until(lambda: slow.calls == 1)
                start = time.perf_counter()
                await service.shutdown(drain=True, timeout_s=0.05)
                assert time.perf_counter() - start < 0.4  # did not wait out 0.5 s
                assert service.status(job).state is JobState.CANCELLED
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_shutdown_without_drain_cancels_immediately(self, flaky):
        async def scenario():
            slow = FlakyBackend(delay=0.3)
            slow.name = "res-sh-4"
            register_backend(slow)
            try:
                service = await CompileService(n_workers=1).start()
                job = await service.submit(make_request(), backend=slow.name)
                await wait_until(lambda: slow.calls == 1)
                await service.shutdown(drain=False)
                assert service.status(job).state is JobState.CANCELLED
            finally:
                unregister_backend(slow.name)

        run(scenario())

    def test_queue_fault_site_fires_in_submit(self, flaky):
        async def scenario():
            async with CompileService() as service:
                with inject("queue=error:1.0", seed=1):
                    with pytest.raises(InjectedFault):
                        await service.submit(make_request(), flaky.name)
                result = await service.compile(make_request(), flaky.name)
                assert result is not None

        run(scenario())
