"""Tests for the service metrics: histograms, tier rates, snapshots."""

import pytest

from repro.service import TIERS, LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty_summary(self):
        histogram = LatencyHistogram("wait")
        assert histogram.summary() == {"count": 0}
        assert histogram.percentile(50) is None
        assert len(histogram) == 0

    def test_percentiles_nearest_rank(self):
        histogram = LatencyHistogram("total")
        for value in range(1, 101):  # 1..100 ms
            histogram.record(value / 1e3)
        assert histogram.percentile(50) == pytest.approx(0.050)
        assert histogram.percentile(95) == pytest.approx(0.095)
        assert histogram.percentile(99) == pytest.approx(0.099)
        assert histogram.percentile(0) == pytest.approx(0.001)
        assert histogram.percentile(100) == pytest.approx(0.100)

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            LatencyHistogram("x").percentile(101)

    def test_summary_fields(self):
        histogram = LatencyHistogram("compute")
        histogram.record(0.002)
        histogram.record(0.004)
        summary = histogram.summary()
        assert summary["count"] == 2
        assert summary["mean_ms"] == pytest.approx(3.0)
        assert summary["max_ms"] == pytest.approx(4.0)
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]


class TestServiceMetrics:
    def test_tier_counting_and_rates(self):
        metrics = ServiceMetrics()
        for _ in range(3):
            metrics.count_tier("memory")
        metrics.count_tier("compute")
        assert metrics.served == 4
        assert metrics.hit_rate("memory") == pytest.approx(0.75)
        assert metrics.cache_hit_rate == pytest.approx(0.75)

    def test_unknown_tier_rejected(self):
        metrics = ServiceMetrics()
        with pytest.raises(ValueError, match="unknown tier"):
            metrics.count_tier("l2")
        with pytest.raises(ValueError, match="unknown tier"):
            metrics.hit_rate("l2")

    def test_idle_rates_are_zero(self):
        metrics = ServiceMetrics()
        assert metrics.hit_rate("disk") == 0.0
        assert metrics.cache_hit_rate == 0.0

    def test_queue_depth_peak(self):
        metrics = ServiceMetrics()
        for depth in (1, 4, 2):
            metrics.record_queue_depth(depth)
        assert metrics.queue_depth == 2
        assert metrics.queue_depth_peak == 4

    def test_snapshot_is_json_shaped(self):
        import json

        metrics = ServiceMetrics()
        metrics.count_tier("disk")
        metrics.wait.record(0.001)
        metrics.total.record(0.002)
        snapshot = metrics.snapshot()
        assert set(snapshot["tiers"]) == set(TIERS)
        assert snapshot["served"] == 1
        assert snapshot["hit_rates"]["disk"] == 1.0
        assert snapshot["latency"]["wait"]["count"] == 1
        json.dumps(snapshot)  # must round-trip to JSON
