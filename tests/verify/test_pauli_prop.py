"""Unit tests for Pauli-propagation rotation-product canonicalization."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot, hadamard, rx, ry, rz, s_gate, sdg_gate
from repro.circuits.optimizer import optimize_circuit
from repro.circuits.pauli_exponential import exponential_sequence_circuit
from repro.operators import PauliString
from repro.verify import (
    PauliRotation,
    forms_equivalent,
    rotation_product_form,
    sequence_rotation_form,
)


class TestFactorization:
    def test_clifford_only_circuit_has_no_rotations(self):
        circuit = Circuit(2, [hadamard(0), cnot(0, 1), rz(1, math.pi / 2)])
        form = rotation_product_form(circuit)
        assert form.rotations == ()

    def test_single_rotation_axes(self):
        for gate, x, z in [
            (rz(1, 0.3), 0, 2),
            (rx(1, 0.3), 2, 0),
            (ry(1, 0.3), 2, 2),
        ]:
            form = rotation_product_form(Circuit(2, [gate]))
            assert form.rotations == (PauliRotation(x, z, 0.3),)

    def test_t_gate_is_quarter_z_rotation(self):
        form_t = rotation_product_form(Circuit(1, [Gate("T", (0,))]))
        form_rz = rotation_product_form(Circuit(1, [rz(0, math.pi / 4)]))
        assert forms_equivalent(form_t, form_rz)
        form_tdg = rotation_product_form(Circuit(1, [Gate("TDG", (0,))]))
        assert not forms_equivalent(form_t, form_tdg)

    def test_clifford_frame_propagates_axis(self):
        # H RZ(θ) H = RX(θ): suffix H conjugates the Z axis into X.
        a = Circuit(1, [hadamard(0), rz(0, 0.4), hadamard(0)])
        b = Circuit(1, [rx(0, 0.4)])
        assert forms_equivalent(rotation_product_form(a), rotation_product_form(b))

    def test_ry_conjugation_identity(self):
        # S RX(θ) S† = RY(θ), as circuits [SDG, RX, S].
        a = Circuit(1, [sdg_gate(0), rx(0, 0.9), s_gate(0)])
        b = Circuit(1, [ry(0, 0.9)])
        assert forms_equivalent(rotation_product_form(a), rotation_product_form(b))

    def test_cnot_frame_grows_support(self):
        # CNOT(0,1) RZ(1,θ) CNOT(0,1) = exp(-iθ/2 Z0 Z1).
        a = Circuit(2, [cnot(0, 1), rz(1, 0.5), cnot(0, 1)])
        form = rotation_product_form(a)
        assert form.rotations == (PauliRotation(0, 0b11, 0.5),)


class TestCanonicalization:
    def test_angle_two_pi_shift(self):
        a = rotation_product_form(Circuit(1, [rz(0, 0.3)]))
        b = rotation_product_form(Circuit(1, [rz(0, 0.3 + 4 * math.pi)]))
        assert forms_equivalent(a, b)

    def test_near_zero_rotation_dropped(self):
        form = rotation_product_form(Circuit(1, [rz(0, 1e-12)]))
        assert form.rotations == ()

    def test_merge_across_commuting_gap(self):
        # Two RZ(0) merged across a commuting RZ(1) rotation in between.
        a = Circuit(2, [rz(0, 0.2), rz(1, 0.7), rz(0, 0.3)])
        b = Circuit(2, [rz(0, 0.5), rz(1, 0.7)])
        assert forms_equivalent(rotation_product_form(a), rotation_product_form(b))

    def test_merged_angles_cancel(self):
        a = Circuit(1, [rx(0, 0.4), rx(0, -0.4)])
        assert rotation_product_form(a).rotations == ()

    def test_merged_angle_hits_clifford_multiple(self):
        # 0.3 + (π/2 - 0.3) = π/2: the merged rotation folds into the frame.
        a = Circuit(1, [rz(0, 0.3), rz(0, math.pi / 2 - 0.3)])
        b = Circuit(1, [s_gate(0)])
        assert forms_equivalent(rotation_product_form(a), rotation_product_form(b))

    def test_commuting_reorder_is_canonical(self):
        a = Circuit(2, [rz(0, 0.2), rz(1, 0.9)])
        b = Circuit(2, [rz(1, 0.9), rz(0, 0.2)])
        assert forms_equivalent(rotation_product_form(a), rotation_product_form(b))

    def test_non_commuting_order_preserved(self):
        a = Circuit(1, [rz(0, 0.2), rx(0, 0.9)])
        b = Circuit(1, [rx(0, 0.9), rz(0, 0.2)])
        assert not forms_equivalent(rotation_product_form(a), rotation_product_form(b))

    def test_fold_conjugates_earlier_rotations(self):
        # RZ(π/2) RX(θ) RZ(-π/2) = RY(θ): the two Clifford-angle Z rotations
        # fold away, conjugating the X rotation into a Y rotation.
        a = Circuit(1, [rz(0, -math.pi / 2), rx(0, 0.6), rz(0, math.pi / 2)])
        b = Circuit(1, [ry(0, 0.6)])
        assert forms_equivalent(rotation_product_form(a), rotation_product_form(b))

    def test_angle_mismatch_detected(self):
        a = rotation_product_form(Circuit(1, [rz(0, 0.3)]))
        b = rotation_product_form(Circuit(1, [rz(0, 0.30001)]))
        assert not forms_equivalent(a, b)

    def test_frame_mismatch_detected(self):
        a = rotation_product_form(Circuit(1, [rz(0, 0.3), hadamard(0)]))
        b = rotation_product_form(Circuit(1, [rz(0, 0.3)]))
        assert not forms_equivalent(a, b)

    def test_register_mismatch_detected(self):
        a = rotation_product_form(Circuit(1, [rz(0, 0.3)]))
        b = rotation_product_form(Circuit(2, [rz(0, 0.3)]))
        assert not forms_equivalent(a, b)


class TestSequenceForm:
    def test_matches_synthesized_circuit(self):
        n = 5
        terms = [
            (PauliString("XYZII"), 0.7),
            (PauliString("IIZZX"), -0.4),
            (PauliString("YIXIY"), 1.3),
        ]
        circuit = exponential_sequence_circuit([(p, a, None) for p, a in terms], n)
        assert forms_equivalent(
            sequence_rotation_form(terms, n), rotation_product_form(circuit)
        )

    def test_detects_wrong_angle(self):
        n = 3
        terms = [(PauliString("XYZ"), 0.7)]
        circuit = exponential_sequence_circuit([(PauliString("XYZ"), 0.8, None)], n)
        assert not forms_equivalent(
            sequence_rotation_form(terms, n), rotation_product_form(circuit)
        )

    def test_identity_terms_are_global_phase(self):
        n = 2
        terms = [(PauliString("II"), 0.5), (PauliString("XX"), 0.3)]
        reduced = [(PauliString("XX"), 0.3)]
        assert forms_equivalent(
            sequence_rotation_form(terms, n), sequence_rotation_form(reduced, n)
        )


class TestDifferentialAgainstDense:
    """Small-n: the canonical-form verdict must agree with dense comparison."""

    def _random_circuit(self, n, depth, rng):
        names_1q = ["H", "S", "SDG", "X", "Y", "Z", "SQRTX", "SQRTXDG", "T", "TDG"]
        circuit = Circuit(n)
        for _ in range(depth):
            u = rng.random()
            if u < 0.35 and n >= 2:
                a, b = rng.choice(n, size=2, replace=False)
                circuit.append(Gate(str(rng.choice(["CNOT", "CZ", "SWAP"])), (int(a), int(b))))
            elif u < 0.7:
                circuit.append(
                    Gate(
                        str(rng.choice(["RZ", "RX", "RY"])),
                        (int(rng.integers(n)),),
                        float(rng.uniform(-3, 3)),
                    )
                )
            else:
                circuit.append(Gate(str(rng.choice(names_1q)), (int(rng.integers(n)),)))
        return circuit

    def test_optimizer_outputs_recognized(self):
        rng = np.random.default_rng(3)
        for trial in range(20):
            n = int(rng.integers(2, 5))
            circuit = self._random_circuit(n, 12, rng)
            optimized = optimize_circuit(circuit.copy())
            assert circuit.equals_up_to_global_phase(optimized)
            assert forms_equivalent(
                rotation_product_form(circuit), rotation_product_form(optimized)
            )

    def test_soundness_on_random_pairs(self):
        # A True verdict must never contradict the dense engine.
        rng = np.random.default_rng(4)
        for trial in range(20):
            n = int(rng.integers(2, 5))
            a = self._random_circuit(n, 10, rng)
            b = self._random_circuit(n, 10, rng)
            if forms_equivalent(rotation_product_form(a), rotation_product_form(b)):
                assert a.equals_up_to_global_phase(b)
