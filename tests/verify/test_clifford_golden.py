"""Golden cross-check of Clifford conjugation rules against dense matrices.

The tableau engine (and, through the shared ``cnot_sign_flip`` rule, the
CNOT-network conjugation in :mod:`repro.transforms.clifford`) rests on a
table of per-gate sign/update rules.  A sign error there silently corrupts
every verdict of the new verifier, so this suite pins the rules exhaustively:
every supported one-qubit Clifford on *all* 16 two-qubit Pauli strings and
every two-qubit Clifford on the same 16 strings, signs included, against
direct ``U P U†`` matrix conjugation — plus hypothesis sweeps over random
packed Paulis and random Clifford words.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.operators import PauliString
from repro.transforms import conjugate_pauli_by_cnot
from repro.verify import CliffordTableau, conjugate_pauli_by_clifford_gate

ONE_QUBIT_CLIFFORDS = ["I", "X", "Y", "Z", "H", "S", "SDG", "SQRTX", "SQRTXDG"]
TWO_QUBIT_CLIFFORDS = ["CNOT", "CZ", "SWAP"]
CLIFFORD_ANGLES = [math.pi / 2, math.pi, -math.pi / 2, 3 * math.pi / 2]
ALL_TWO_QUBIT_PAULIS = ["".join(p) for p in itertools.product("IXYZ", repeat=2)]


def embed_gate(gate, n):
    """Dense unitary of a single gate on an n-qubit register."""
    return Circuit(n, [gate]).to_unitary()


def assert_golden(gate, label):
    string = PauliString(label)
    sign, image = conjugate_pauli_by_clifford_gate(string, gate)
    unitary = embed_gate(gate, string.n_qubits)
    expected = unitary @ string.to_dense() @ unitary.conj().T
    assert sign in (1, -1)
    assert np.allclose(expected, sign * image.to_dense(), atol=1e-12), (
        f"{gate} conjugating {label}: got {sign:+d}·{image.to_label()}"
    )


class TestExhaustiveGolden:
    @pytest.mark.parametrize("label", ALL_TWO_QUBIT_PAULIS)
    @pytest.mark.parametrize("name", ONE_QUBIT_CLIFFORDS)
    @pytest.mark.parametrize("qubit", [0, 1])
    def test_one_qubit_cliffords(self, name, qubit, label):
        assert_golden(Gate(name, (qubit,)), label)

    @pytest.mark.parametrize("label", ALL_TWO_QUBIT_PAULIS)
    @pytest.mark.parametrize("name", TWO_QUBIT_CLIFFORDS)
    @pytest.mark.parametrize("qubits", [(0, 1), (1, 0)])
    def test_two_qubit_cliffords(self, name, qubits, label):
        assert_golden(Gate(name, qubits), label)

    @pytest.mark.parametrize("label", ALL_TWO_QUBIT_PAULIS)
    @pytest.mark.parametrize("name", ["RZ", "RX", "RY"])
    @pytest.mark.parametrize("angle", CLIFFORD_ANGLES)
    def test_clifford_angle_rotations(self, name, angle, label):
        assert_golden(Gate(name, (0,), angle), label)

    @pytest.mark.parametrize("label", ALL_TWO_QUBIT_PAULIS)
    def test_cnot_agrees_with_transforms_engine(self, label):
        """The tableau CNOT and transforms/clifford must be bit-identical."""
        string = PauliString(label)
        tab_sign, tab_image = conjugate_pauli_by_clifford_gate(string, Gate("CNOT", (0, 1)))
        ref_sign, ref_image = conjugate_pauli_by_cnot(string, 0, 1)
        assert tab_sign == ref_sign
        assert tab_image == ref_image


@st.composite
def packed_pauli(draw, max_qubits=6):
    n = draw(st.integers(min_value=2, max_value=max_qubits))
    x = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    z = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return PauliString.from_bitmasks(n, x, z)


@st.composite
def clifford_word(draw, n):
    gates = []
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        if n >= 2 and draw(st.booleans()):
            name = draw(st.sampled_from(TWO_QUBIT_CLIFFORDS))
            a = draw(st.integers(min_value=0, max_value=n - 1))
            b = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda q: q != a))
            gates.append(Gate(name, (a, b)))
        else:
            name = draw(st.sampled_from(ONE_QUBIT_CLIFFORDS))
            gates.append(Gate(name, (draw(st.integers(min_value=0, max_value=n - 1)),)))
    return Circuit(n, gates)


class TestHypothesisGolden:
    @given(packed_pauli(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_random_pauli_through_random_gate(self, string, data):
        n = string.n_qubits
        if data.draw(st.booleans()):
            gate = Gate(
                data.draw(st.sampled_from(ONE_QUBIT_CLIFFORDS)),
                (data.draw(st.integers(min_value=0, max_value=n - 1)),),
            )
        else:
            a = data.draw(st.integers(min_value=0, max_value=n - 1))
            b = data.draw(
                st.integers(min_value=0, max_value=n - 1).filter(lambda q: q != a)
            )
            gate = Gate(data.draw(st.sampled_from(TWO_QUBIT_CLIFFORDS)), (a, b))
        sign, image = conjugate_pauli_by_clifford_gate(string, gate)
        unitary = embed_gate(gate, n)
        expected = unitary @ string.to_dense() @ unitary.conj().T
        assert np.allclose(expected, sign * image.to_dense(), atol=1e-12)

    @given(packed_pauli(max_qubits=4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_pauli_through_random_word(self, string, data):
        circuit = data.draw(clifford_word(string.n_qubits))
        tableau = CliffordTableau.from_circuit(circuit)
        sign, image = tableau.conjugate(string)
        unitary = circuit.to_unitary()
        expected = unitary @ string.to_dense() @ unitary.conj().T
        assert np.allclose(expected, sign * image.to_dense(), atol=1e-12)
