"""Tests for the equivalence-check dispatcher and assertion helpers."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot, hadamard, rx, rz
from repro.operators import PauliString
from repro.verify import (
    EquivalenceReport,
    assert_equivalent,
    assert_implements_rotations,
    check_equivalence,
    classify_circuit,
)


def _euler_xzx(a, b, c):
    """Angles (α, β, γ) with RX(α)RZ(β)RX(γ) = RZ(a)RX(b)RZ(c) up to phase.

    Conjugating by H swaps the X and Z axes, so the XZX angles of V are the
    ZXZ angles of H V H, extracted from the standard SU(2) parametrization.
    """
    def mat(name, angle):
        return Gate(name, (0,), angle).matrix()

    v = mat("RZ", a) @ mat("RX", b) @ mat("RZ", c)
    h = Gate("H", (0,)).matrix()
    w = h @ v @ h
    w = w * np.exp(-0.5j * np.angle(np.linalg.det(w)))  # project into SU(2)
    beta = 2.0 * math.atan2(abs(w[1, 0]), abs(w[0, 0]))
    alpha_plus = -2.0 * np.angle(w[0, 0])
    alpha_minus = 2.0 * (np.angle(w[1, 0]) + math.pi / 2)
    alpha = (alpha_plus + alpha_minus) / 2.0
    gamma = (alpha_plus - alpha_minus) / 2.0
    return alpha, beta, gamma


def _euler_pair(n, a=0.3, b=0.7, c=1.1):
    """Two circuits for the same 1-qubit unitary via different Euler axes."""
    alpha, beta, gamma = _euler_xzx(a, b, c)
    zxz = Circuit(n, [rz(0, c), rx(0, b), rz(0, a)])
    xzx = Circuit(n, [rx(0, gamma), rz(0, beta), rx(0, alpha)])
    return zxz, xzx


class TestClassification:
    def test_clifford_vs_rotation_product(self):
        assert classify_circuit(Circuit(2, [hadamard(0), cnot(0, 1)])) == "clifford"
        assert classify_circuit(Circuit(1, [rz(0, 0.3)])) == "rotation-product"


class TestDispatch:
    def test_register_mismatch_is_exact_false(self):
        report = check_equivalence(Circuit(2), Circuit(3))
        assert not report.equivalent
        assert report.engine == "dispatch"
        assert report.exact

    def test_clifford_pair_uses_tableau(self):
        a = Circuit(12, [hadamard(0), cnot(0, 11), rz(11, math.pi / 2)])
        report = check_equivalence(a, a.copy())
        assert report.equivalent and report.engine == "tableau" and report.exact

    def test_small_register_uses_dense(self):
        a = Circuit(3, [rz(0, 0.3), hadamard(1)])
        report = check_equivalence(a, a.copy())
        assert report.equivalent and report.engine == "dense" and report.exact

    def test_large_register_uses_pauli(self):
        a = Circuit(20, [rz(7, 0.3), cnot(7, 13)])
        report = check_equivalence(a, a.copy())
        assert report.equivalent and report.engine == "pauli" and report.exact

    def test_pauli_reject_arbitrated_by_sparse_probes(self):
        # Same unitary through genuinely different rotation axes: the
        # canonical forms differ (conservative), the probes settle it.
        zxz, xzx = _euler_pair(12)
        report = check_equivalence(zxz, xzx)
        assert report.equivalent
        assert report.engine == "sparse"
        assert not report.exact  # probabilistic accept

    def test_sparse_reject_is_exact(self):
        a = Circuit(12, [rz(0, 0.3)])
        b = Circuit(12, [rz(0, 0.3), rx(0, 0.8)])
        report = check_equivalence(a, b)
        assert not report.equivalent
        assert report.engine == "sparse"
        assert report.exact

    def test_sparse_unsupported_keeps_conservative_pauli_verdict(self):
        # Full-register Hadamards blow the sparse support budget, so the
        # conservative Pauli rejection stands, flagged non-exact.
        n = 13
        base = [hadamard(q) for q in range(n)]
        a = Circuit(n, base + [Gate("T", (0,))])
        b = Circuit(n, base + [Gate("TDG", (0,))])
        report = check_equivalence(a, b)
        assert not report.equivalent
        assert report.engine == "pauli"
        assert not report.exact
        assert "unsupported" in report.detail

    def test_dense_limit_is_tunable(self):
        a = Circuit(3, [rz(0, 0.3)])
        report = check_equivalence(a, a.copy(), dense_qubit_limit=0)
        assert report.engine == "pauli"


class TestForcedEngines:
    def test_forcing_each_engine(self):
        a = Circuit(2, [hadamard(0), cnot(0, 1)])
        for engine in ("tableau", "dense", "pauli", "sparse"):
            report = check_equivalence(a, a.copy(), engine=engine)
            assert report.equivalent
            assert report.engine == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            check_equivalence(Circuit(1), Circuit(1), engine="quantum")


class TestAssertions:
    def test_assert_equivalent_returns_report(self):
        a = Circuit(2, [hadamard(0), cnot(0, 1)])
        report = assert_equivalent(a, a.copy())
        assert isinstance(report, EquivalenceReport)
        assert bool(report)

    def test_assert_equivalent_raises_with_engine_detail(self):
        a = Circuit(2, [hadamard(0)])
        b = Circuit(2, [hadamard(1)])
        with pytest.raises(AssertionError, match="engine=tableau"):
            assert_equivalent(a, b)

    def test_assert_implements_rotations_direct_match(self):
        n = 16
        terms = [(PauliString.from_dict(n, {2: "X", 9: "Z"}), 0.6)]
        circuit = Circuit(n, [hadamard(2), cnot(2, 9), rz(9, 0.6), cnot(2, 9), hadamard(2)])
        report = assert_implements_rotations(circuit, terms)
        assert report.engine == "pauli" and report.exact

    def test_assert_implements_rotations_fallback_to_reference(self):
        # An Euler-rotated implementation: the form differs from the intended
        # product, so the check falls back to a synthesized reference circuit.
        a, b, c = 0.3, 0.7, 1.1
        _, xzx = _euler_pair(3, a, b, c)
        terms = [
            (PauliString.from_dict(3, {0: "Z"}), c),
            (PauliString.from_dict(3, {0: "X"}), b),
            (PauliString.from_dict(3, {0: "Z"}), a),
        ]
        report = assert_implements_rotations(xzx, terms)
        assert report.equivalent

    def test_assert_implements_rotations_detects_mismatch(self):
        n = 3
        terms = [(PauliString("XYZ"), 0.4)]
        wrong = Circuit(n, [rz(0, 0.4)])
        with pytest.raises(AssertionError, match="rotation product"):
            assert_implements_rotations(wrong, terms)
