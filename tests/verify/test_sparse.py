"""Unit tests for the sparse-statevector probe engine."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot, hadamard, rx, ry, rz
from repro.verify import EngineUnsupported, SparseState, sparse_probe_equivalent

ALL_GATE_SAMPLES = [
    Gate("I", (0,)),
    Gate("X", (1,)),
    Gate("Y", (0,)),
    Gate("Z", (2,)),
    Gate("H", (1,)),
    Gate("S", (0,)),
    Gate("SDG", (2,)),
    Gate("T", (1,)),
    Gate("TDG", (0,)),
    Gate("SQRTX", (2,)),
    Gate("SQRTXDG", (1,)),
    Gate("RZ", (0,), 0.37),
    Gate("RX", (1,), -1.2),
    Gate("RY", (2,), 2.4),
    Gate("CNOT", (0, 2)),
    Gate("CNOT", (2, 1)),
    Gate("CZ", (1, 2)),
    Gate("SWAP", (0, 2)),
]


def dense_state(sparse):
    return sparse.to_statevector()


class TestGateSemantics:
    """Every gate must act exactly like the dense tensor engine."""

    @pytest.mark.parametrize("gate", ALL_GATE_SAMPLES, ids=repr)
    def test_gate_matches_dense_engine(self, gate):
        n = 3
        rng = np.random.default_rng(hash(gate.name) % 2**31)
        # A random 3-term sparse state exercises coalescing paths.
        indices = rng.choice(2**n, size=3, replace=False).astype(np.int64)
        amplitudes = rng.normal(size=3) + 1j * rng.normal(size=3)
        amplitudes /= np.linalg.norm(amplitudes)
        state = SparseState(n, indices.copy(), amplitudes.copy())
        state.apply_gate(gate)

        dense = np.zeros(2**n, dtype=complex)
        dense[indices] = amplitudes
        expected = Circuit(n, [gate]).apply_to_statevector(dense)
        assert np.allclose(dense_state(state), expected, atol=1e-12)

    def test_circuit_application_matches_dense(self):
        n = 4
        circuit = Circuit(
            n,
            [
                hadamard(0),
                cnot(0, 2),
                rz(2, 0.8),
                Gate("T", (1,)),
                ry(3, 1.1),
                Gate("CZ", (1, 3)),
                cnot(2, 1),
                rx(0, -0.5),
            ],
        )
        state = SparseState(n, np.array([3], dtype=np.int64), np.array([1.0 + 0j]))
        state.apply_circuit(circuit)
        dense = np.zeros(2**n, dtype=complex)
        dense[3] = 1.0
        assert np.allclose(dense_state(state), circuit.apply_to_statevector(dense))

    def test_hadamard_pair_shrinks_support(self):
        state = SparseState(2, np.array([0], dtype=np.int64), np.array([1.0 + 0j]))
        state.apply_gate(hadamard(0))
        assert state.n_terms == 2
        state.apply_gate(hadamard(0))
        assert state.n_terms == 1  # cancelled branch pruned

    def test_register_mismatch(self):
        state = SparseState(2, np.array([0], dtype=np.int64), np.array([1.0 + 0j]))
        with pytest.raises(ValueError):
            state.apply_circuit(Circuit(3, [hadamard(0)]))


class TestBudgets:
    def test_support_budget_enforced(self):
        n = 6
        state = SparseState(
            n, np.array([0], dtype=np.int64), np.array([1.0 + 0j]), max_terms=8
        )
        circuit = Circuit(n, [hadamard(q) for q in range(n)])
        with pytest.raises(EngineUnsupported):
            state.apply_circuit(circuit)

    def test_register_size_budget(self):
        with pytest.raises(EngineUnsupported):
            SparseState(70, np.array([0], dtype=np.int64), np.array([1.0 + 0j]))

    def test_densify_guard(self):
        state = SparseState(30, np.array([0], dtype=np.int64), np.array([1.0 + 0j]))
        with pytest.raises(EngineUnsupported):
            state.to_statevector()


class TestProbeEquivalence:
    def test_identical_circuits_accepted(self):
        circuit = Circuit(3, [hadamard(0), cnot(0, 1), Gate("T", (2,)), rz(1, 0.4)])
        assert sparse_probe_equivalent(circuit, circuit.copy())

    def test_global_phase_accepted(self):
        # T = e^{iπ/8} RZ(π/4): equal only up to a global phase.
        a = Circuit(2, [Gate("T", (0,)), cnot(0, 1)])
        b = Circuit(2, [rz(0, math.pi / 4), cnot(0, 1)])
        assert sparse_probe_equivalent(a, b)

    def test_relative_phase_rejected(self):
        a = Circuit(2, [hadamard(0), Gate("T", (0,))])
        b = Circuit(2, [hadamard(0), Gate("TDG", (0,))])
        assert not sparse_probe_equivalent(a, b)

    def test_register_mismatch_rejected(self):
        assert not sparse_probe_equivalent(
            Circuit(2, [hadamard(0)]), Circuit(3, [hadamard(0)])
        )

    def test_differential_against_dense(self):
        rng = np.random.default_rng(9)
        names = ["H", "S", "T", "TDG", "X", "SQRTX"]
        for trial in range(15):
            n = int(rng.integers(2, 5))
            circuits = []
            for _ in range(2):
                circuit = Circuit(n)
                for _ in range(8):
                    if rng.random() < 0.35 and n >= 2:
                        a, b = rng.choice(n, size=2, replace=False)
                        circuit.append(Gate("CNOT", (int(a), int(b))))
                    elif rng.random() < 0.5:
                        circuit.append(
                            Gate(
                                str(rng.choice(["RZ", "RX", "RY"])),
                                (int(rng.integers(n)),),
                                float(rng.uniform(-3, 3)),
                            )
                        )
                    else:
                        circuit.append(Gate(str(rng.choice(names)), (int(rng.integers(n)),)))
                circuits.append(circuit)
            a, b = circuits
            assert sparse_probe_equivalent(a, b) == a.equals_up_to_global_phase(b)

    def test_large_register_shallow_circuit(self):
        # The dense engine cannot touch 40 qubits; the sparse probes can.
        n = 40
        a = Circuit(n, [hadamard(0), cnot(0, 20), Gate("T", (20,)), cnot(0, 20)])
        b = Circuit(n, [hadamard(0), cnot(0, 20), Gate("TDG", (20,)), cnot(0, 20)])
        assert sparse_probe_equivalent(a, a.copy())
        assert not sparse_probe_equivalent(a, b)
