"""Unit tests for the bit-packed Clifford tableau engine."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate, cnot, hadamard, rx, ry, rz, s_gate
from repro.operators import PauliString
from repro.transforms import conjugate_pauli_by_cnot_network
from repro.verify import (
    CliffordTableau,
    NotCliffordError,
    is_clifford_circuit,
    is_clifford_gate,
)
from repro.verify.tableau import elementary_gates, tableau_equivalent


class TestIdentityAndBasics:
    def test_identity_generator_images(self):
        tableau = CliffordTableau.identity(3)
        images = tableau.generator_images()
        assert images[0] == (1, PauliString("XII"))
        assert images[2] == (1, PauliString("IIX"))
        assert images[3] == (1, PauliString("ZII"))
        assert images[5] == (1, PauliString("IIZ"))

    def test_identity_requires_positive_register(self):
        with pytest.raises(ValueError):
            CliffordTableau.identity(0)

    def test_copy_is_independent(self):
        tableau = CliffordTableau.identity(2)
        clone = tableau.copy()
        clone.apply_gate(hadamard(0))
        assert tableau == CliffordTableau.identity(2)
        assert clone != tableau

    def test_eq_against_other_types(self):
        assert CliffordTableau.identity(1).__eq__(42) is NotImplemented

    def test_repr(self):
        assert "n_qubits=2" in repr(CliffordTableau.identity(2))

    def test_conjugate_register_mismatch(self):
        with pytest.raises(ValueError):
            CliffordTableau.identity(2).conjugate(PauliString("XXX"))


class TestCliffordClassification:
    def test_named_cliffords(self):
        assert is_clifford_gate(cnot(0, 1))
        assert is_clifford_gate(hadamard(0))
        assert not is_clifford_gate(Gate("T", (0,)))
        assert not is_clifford_gate(Gate("TDG", (0,)))

    def test_clifford_angle_rotations(self):
        assert is_clifford_gate(rz(0, math.pi / 2))
        assert is_clifford_gate(rx(0, -math.pi))
        assert is_clifford_gate(ry(0, 2 * math.pi))
        assert not is_clifford_gate(rz(0, 0.3))

    def test_clifford_circuit_classification(self):
        circuit = Circuit(2, [hadamard(0), cnot(0, 1), rz(1, math.pi)])
        assert is_clifford_circuit(circuit)
        circuit.append(rz(0, 0.25))
        assert not is_clifford_circuit(circuit)

    def test_elementary_decomposition_raises_on_t(self):
        with pytest.raises(NotCliffordError):
            list(elementary_gates(Gate("T", (0,))))

    def test_elementary_decomposition_raises_on_generic_angle(self):
        with pytest.raises(NotCliffordError):
            list(elementary_gates(rz(0, 0.7)))

    def test_from_circuit_raises_on_non_clifford(self):
        with pytest.raises(NotCliffordError):
            CliffordTableau.from_circuit(Circuit(1, [rz(0, 0.7)]))


class TestRotationDecompositions:
    """Clifford-angle rotations must act like their named decompositions."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    @pytest.mark.parametrize("name", ["RZ", "RX", "RY"])
    def test_rotation_matches_dense(self, name, k):
        angle = k * math.pi / 2
        rotated = Circuit(2, [Gate(name, (1,), angle)])
        tableau = CliffordTableau.from_circuit(rotated)
        unitary = rotated.to_unitary()
        for row, (sign, image) in enumerate(tableau.generator_images()):
            base = _generator_string(2, row)
            expected = unitary @ base.to_dense() @ unitary.conj().T
            assert np.allclose(expected, sign * image.to_dense())

    def test_angle_beyond_two_pi(self):
        # RZ(5π) ≡ RZ(π) up to global phase.
        a = CliffordTableau.from_circuit(Circuit(1, [rz(0, 5 * math.pi)]))
        b = CliffordTableau.from_circuit(Circuit(1, [rz(0, math.pi)]))
        assert a == b


def _generator_string(n, row):
    qubit = row % n
    label = ["I"] * n
    label[qubit] = "X" if row < n else "Z"
    return PauliString("".join(label))


class TestComposition:
    def test_from_circuit_matches_sequential_apply(self):
        circuit = Circuit(3, [hadamard(0), cnot(0, 1), s_gate(1), cnot(1, 2)])
        sequential = CliffordTableau.identity(3)
        for gate in circuit:
            sequential.apply_gate(gate)
        assert CliffordTableau.from_circuit(circuit) == sequential

    def test_append_gate_right_composes_before(self):
        # Building b then right-appending reversed(a) must equal from_circuit(a+b).
        a = Circuit(3, [hadamard(1), cnot(1, 2), s_gate(0), Gate("CZ", (0, 2))])
        b = Circuit(3, [cnot(2, 0), Gate("SQRTX", (1,)), Gate("SWAP", (0, 1))])
        composed = CliffordTableau.from_circuit(a.compose(b))
        tableau = CliffordTableau.from_circuit(b)
        for gate in reversed(list(a)):
            tableau.append_gate_right(gate)
        assert tableau == composed

    def test_append_right_rotation_decomposition(self):
        a = Circuit(2, [rz(0, math.pi / 2), ry(1, -math.pi / 2)])
        b = Circuit(2, [cnot(0, 1)])
        composed = CliffordTableau.from_circuit(a.compose(b))
        tableau = CliffordTableau.from_circuit(b)
        for gate in reversed(list(a)):
            tableau.append_gate_right(gate)
        assert tableau == composed


class TestMultiWordRegisters:
    """Registers past 64 qubits exercise the multi-word bit planes."""

    def test_cnot_network_matches_transforms_engine(self):
        n = 80
        cnots = [(3, 77), (77, 12), (64, 63), (0, 79), (63, 64), (12, 3)]
        circuit = Circuit(n, [cnot(c, t) for c, t in cnots])
        tableau = CliffordTableau.from_circuit(circuit)
        rng = np.random.default_rng(11)
        for _ in range(12):
            x = int.from_bytes(rng.bytes(10), "little") % (1 << n)
            z = int.from_bytes(rng.bytes(10), "little") % (1 << n)
            string = PauliString.from_bitmasks(n, x, z)
            expected_sign, expected = conjugate_pauli_by_cnot_network(string, cnots)
            sign, image = tableau.conjugate(string)
            assert sign == expected_sign
            assert image == expected

    def test_identity_across_word_boundary(self):
        tableau = CliffordTableau.identity(70)
        sign, image = tableau.conjugate(PauliString.from_bitmasks(70, 1 << 65, 1 << 3))
        assert sign == 1
        assert image == PauliString.from_bitmasks(70, 1 << 65, 1 << 3)

    def test_swap_across_word_boundary(self):
        n = 66
        circuit = Circuit(n, [Gate("SWAP", (2, 65))])
        tableau = CliffordTableau.from_circuit(circuit)
        sign, image = tableau.conjugate(PauliString.from_dict(n, {2: "Y"}))
        assert sign == 1
        assert image == PauliString.from_dict(n, {65: "Y"})


class TestTableauEquivalence:
    def test_equal_circuits(self):
        a = Circuit(2, [hadamard(0), cnot(0, 1)])
        assert tableau_equivalent(a, a.copy())

    def test_global_phase_invisible(self):
        # RZ(π) = -i Z: the tableau cannot see the -i.
        a = Circuit(1, [rz(0, math.pi)])
        b = Circuit(1, [Gate("Z", (0,))])
        assert tableau_equivalent(a, b)

    def test_detects_sign_difference(self):
        a = Circuit(1, [Gate("SQRTX", (0,))])
        b = Circuit(1, [Gate("SQRTXDG", (0,))])
        assert not tableau_equivalent(a, b)

    def test_register_mismatch(self):
        assert not tableau_equivalent(Circuit(1, [hadamard(0)]), Circuit(2, [hadamard(0)]))

    def test_random_clifford_differential_vs_dense(self):
        rng = np.random.default_rng(5)
        names_1q = ["H", "S", "SDG", "X", "Y", "Z", "SQRTX", "SQRTXDG"]
        for trial in range(25):
            n = int(rng.integers(2, 5))
            circuits = []
            for offset in range(2):
                circuit = Circuit(n)
                for _ in range(12):
                    if rng.random() < 0.4:
                        a, b = rng.choice(n, size=2, replace=False)
                        circuit.append(
                            Gate(str(rng.choice(["CNOT", "CZ", "SWAP"])), (int(a), int(b)))
                        )
                    else:
                        circuit.append(
                            Gate(str(rng.choice(names_1q)), (int(rng.integers(n)),))
                        )
                circuits.append(circuit)
            a, b = circuits
            assert tableau_equivalent(a, b) == a.equals_up_to_global_phase(b)
            assert tableau_equivalent(a, a.copy())
