"""Tests for the CompilerBackend protocol and the backend registry."""

import pytest

from repro.api import (
    BackendRegistrationError,
    CompilerBackend,
    CompileRequest,
    CompileResult,
    available_backends,
    canonical_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.vqe import ExcitationTerm


class StubBackend:
    """Minimal protocol-conforming backend for registry tests."""

    def __init__(self, name="stub"):
        self._name = name
        self.calls = 0

    @property
    def name(self):
        return self._name

    def compile(self, request):
        self.calls += 1
        return CompileResult(
            backend=self._name,
            cnot_count=42,
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 42},
        )


@pytest.fixture
def stub():
    backend = StubBackend()
    yield backend
    unregister_backend("stub")


def simple_request():
    return CompileRequest(terms=(ExcitationTerm(creation=(2,), annihilation=(0,)),))


class TestDefaultRegistry:
    def test_all_four_table1_flows_registered(self):
        names = available_backends()
        for expected in ("jordan-wigner", "bravyi-kitaev", "baseline", "advanced"):
            assert expected in names

    def test_aliases_resolve_to_canonical_backends(self):
        assert get_backend("jw") is get_backend("jordan-wigner")
        assert get_backend("bk") is get_backend("bravyi-kitaev")
        assert get_backend("gt") is get_backend("baseline")
        assert get_backend("adv") is get_backend("advanced")

    def test_canonical_backend_name(self):
        assert canonical_backend_name("gt") == "baseline"
        assert canonical_backend_name("advanced") == "advanced"

    def test_default_backends_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), CompilerBackend)

    def test_unknown_backend_raises_with_available_list(self):
        with pytest.raises(KeyError, match="advanced"):
            get_backend("no-such-backend")


class TestRegistrationRoundTrip:
    def test_register_lookup_unregister(self, stub):
        register_backend(stub, aliases=("st",))
        assert get_backend("stub") is stub
        assert get_backend("st") is stub
        assert "stub" in available_backends()

        result = get_backend("stub").compile(simple_request())
        assert result.cnot_count == 42
        assert result.backend == "stub"
        assert stub.calls == 1

    def test_duplicate_name_rejected(self, stub):
        register_backend(stub)
        with pytest.raises(BackendRegistrationError, match="stub"):
            register_backend(StubBackend("stub"))

    def test_duplicate_alias_rejected(self, stub):
        register_backend(stub)
        with pytest.raises(BackendRegistrationError):
            register_backend(StubBackend("other-stub"), aliases=("stub",))
        # the failed registration must not leave the other name behind
        with pytest.raises(KeyError):
            get_backend("other-stub")

    def test_clobbering_a_default_backend_rejected(self, stub):
        with pytest.raises(BackendRegistrationError):
            register_backend(StubBackend("advanced"))

    def test_replace_allows_override(self, stub):
        register_backend(stub)
        replacement = StubBackend("stub")
        register_backend(replacement, replace=True)
        assert get_backend("stub") is replacement

    def test_unregister_removes_aliases(self, stub):
        register_backend(stub, aliases=("st",))
        unregister_backend("stub")
        with pytest.raises(KeyError):
            get_backend("st")
