"""Batch hardening: fallback chains, failure isolation, checkpointed resume."""

from concurrent.futures import Future

import pytest

from repro.api import (
    CompileCache,
    CompileRequest,
    CompileResult,
    CompilerConfig,
    StageFailure,
    cache_key_digest,
    compile_batch,
    register_backend,
    unregister_backend,
)
from repro.api import batch as batch_module
from repro.faults import deactivate, inject
from repro.obs.metrics import get_metrics
from repro.obs.tracer import tracing
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)


def make_request(shift=0, config=FAST):
    terms = (
        term((4 + shift, 5 + shift), (0, 1)),
        term((4 + shift, 7 + shift), (0, 3)),
        term((6,), (0,)),
    )
    return CompileRequest(terms=terms, n_qubits=8 + shift, config=config)


class ExplodingBackend:
    """Backend whose pipeline always breaks with a typed stage failure."""

    name = "exploder"

    def __init__(self):
        self.calls = 0

    def compile(self, request):
        self.calls += 1
        raise StageFailure("sort", RuntimeError("synthetic stage break"))


class RejectingBackend:
    """Backend that rejects its input — a non-retryable validation error."""

    name = "rejecting"

    def compile(self, request):
        raise ValueError("synthetic input rejection")


class FlakyBackend:
    """Backend that fails while ``broken`` is True, then compiles normally."""

    name = "flaky"

    def __init__(self):
        self.broken = True
        self.calls = 0

    def compile(self, request):
        self.calls += 1
        if self.broken:
            raise StageFailure("gamma_search", RuntimeError("flaky break"))
        return CompileResult(
            backend=self.name,
            cnot_count=11,
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 11},
        )


class SelectiveBackend:
    """Backend that fails only requests of one size; compiles the rest."""

    name = "selective"

    def __init__(self, broken_n_qubits):
        self.broken_n_qubits = broken_n_qubits
        self.calls = 0

    def compile(self, request):
        self.calls += 1
        if request.resolved_n_qubits == self.broken_n_qubits:
            raise StageFailure("transform", RuntimeError("selective break"))
        return CompileResult(
            backend=self.name,
            cnot_count=5,
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 5},
        )


@pytest.fixture
def exploder():
    backend = ExplodingBackend()
    register_backend(backend)
    yield backend
    unregister_backend(backend.name)


@pytest.fixture
def rejecting():
    backend = RejectingBackend()
    register_backend(backend)
    yield backend
    unregister_backend(backend.name)


@pytest.fixture
def flaky():
    backend = FlakyBackend()
    register_backend(backend)
    yield backend
    unregister_backend(backend.name)


@pytest.fixture
def selective():
    backend = SelectiveBackend(broken_n_qubits=9)
    register_backend(backend)
    yield backend
    unregister_backend(backend.name)


class TestFallbackChain:
    def test_fallback_completes_the_job(self, exploder):
        cache = CompileCache()
        batch = compile_batch(
            [make_request()], backends="exploder", cache=cache, fallback=("advanced",)
        )
        row = batch.results[0]
        assert row["exploder"].backend == "advanced"  # row key stays the request's
        digest = cache_key_digest(CompileCache.key(make_request(), "exploder"))
        (record,) = batch.report.fallbacks
        assert record.digest == digest
        assert record.failed == ("exploder",)
        assert record.succeeded == "advanced"
        assert batch.report.compiled == [digest]
        assert not batch.report.failed

    def test_fallback_result_cached_under_its_own_backend_key(self, exploder):
        cache = CompileCache()
        request = make_request()
        compile_batch(
            [request], backends="exploder", cache=cache, fallback=("advanced",)
        )
        # Cache honesty: the failed primary's key must stay empty, the
        # fallback's result lives under the fallback backend's own key.
        assert CompileCache.key(request, "exploder") not in cache
        assert CompileCache.key(request, "advanced") in cache

    def test_chain_tried_in_order(self, exploder, rejecting, flaky):
        flaky.broken = False
        batch = compile_batch(
            [make_request()],
            backends="exploder",
            fallback=("rejecting", "flaky"),
        )
        (record,) = batch.report.fallbacks
        assert record.failed == ("exploder", "rejecting")
        assert record.succeeded == "flaky"
        assert batch.results[0]["exploder"].cnot_count == 11

    def test_non_retryable_error_skips_the_chain(self, rejecting, flaky):
        flaky.broken = False
        with pytest.raises(ValueError, match="synthetic input rejection"):
            compile_batch(
                [make_request()], backends="rejecting", fallback=("flaky",)
            )
        assert flaky.calls == 0  # validation errors never burn the chain

    def test_primary_backend_not_retried_as_its_own_fallback(self, exploder):
        with pytest.raises(StageFailure):
            compile_batch([make_request()], backends="exploder", fallback=("exploder",))
        assert exploder.calls == 1

    def test_exhausted_chain_collects_every_attempt(self, exploder, flaky):
        batch = compile_batch(
            [make_request()],
            backends="exploder",
            fallback=("flaky",),
            on_error="collect",
        )
        (failure,) = batch.report.failed
        assert failure.backend == "exploder"
        assert [name for name, _ in failure.attempts] == ["exploder", "flaky"]
        assert "StageFailure" in failure.error
        assert not batch.report.fallbacks

    def test_fallbacks_counted_and_traced(self, exploder):
        counter = get_metrics().counter("batch.fallbacks")
        before = counter.value
        with tracing() as tracer:
            compile_batch([make_request()], backends="exploder", fallback=("advanced",))
            spans = [s for s in tracer.all_spans() if s.name == "batch.fallback"]
        assert counter.value == before + 1
        assert spans and spans[0].attributes["backend"] == "advanced"


class TestFailureIsolation:
    def test_raise_mode_propagates_the_typed_failure(self, exploder):
        with pytest.raises(StageFailure) as info:
            compile_batch([make_request()], backends="exploder")
        assert info.value.stage == "sort"

    def test_collect_mode_finishes_the_batch(self, selective):
        requests = [make_request(), make_request(shift=1), make_request(shift=2)]
        batch = compile_batch(requests, backends="selective", on_error="collect")
        assert batch.results[0]["selective"].cnot_count == 5
        assert batch.results[2]["selective"].cnot_count == 5
        # The failed job is absent from its row, not silently filled.
        assert "selective" not in batch.results[1]
        assert batch.results[1].get("selective") is None
        (failure,) = batch.report.failed
        assert failure.digest == cache_key_digest(
            CompileCache.key(requests[1], "selective")
        )
        assert batch.report.failed_digests == (failure.digest,)
        assert len(batch.report.compiled) == 2

    def test_collect_mode_counts_failures(self, exploder):
        counter = get_metrics().counter("batch.failures")
        before = counter.value
        compile_batch([make_request()], backends="exploder", on_error="collect")
        assert counter.value == before + 1

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            compile_batch([make_request()], on_error="ignore")

    def test_report_empty_on_a_fully_cached_batch(self):
        cache = CompileCache()
        requests = [make_request()]
        compile_batch(requests, backends="advanced", cache=cache)
        warm = compile_batch(requests, backends="advanced", cache=cache)
        assert warm.cache_hits == 1
        assert not warm.report.compiled
        assert not warm.report.skipped
        assert not warm.report.failed
        assert not warm.report.fallbacks


class RecordingPool:
    """In-process stand-in for ProcessPoolExecutor that records shutdown args."""

    last = None

    def __init__(self, max_workers=None):
        type(self).last = self
        self.shutdown_calls = []

    def submit(self, fn, arg):
        future = Future()
        try:
            future.set_result(fn(arg))
        except BaseException as exc:  # delivered via future.result(), as a pool would
            future.set_exception(exc)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append({"wait": wait, "cancel_futures": cancel_futures})


@pytest.fixture
def recording_pool(monkeypatch):
    monkeypatch.setattr(batch_module, "ProcessPoolExecutor", RecordingPool)
    RecordingPool.last = None
    yield RecordingPool


class TestExecutorCleanup:
    def test_pool_shut_down_after_a_clean_batch(self, recording_pool):
        requests = [make_request(), make_request(shift=1)]
        batch = compile_batch(requests, backends="advanced", workers=2)
        assert len(batch.report.compiled) == 2
        assert recording_pool.last.shutdown_calls == [
            {"wait": True, "cancel_futures": True}
        ]

    def test_pool_shut_down_when_a_job_raises(self, recording_pool, exploder):
        requests = [make_request(), make_request(shift=1)]
        with pytest.raises(StageFailure):
            compile_batch(requests, backends="exploder", workers=2)
        # The finally-clause shutdown must cancel pending work and join.
        assert recording_pool.last.shutdown_calls == [
            {"wait": True, "cancel_futures": True}
        ]

    def test_caller_owned_executor_is_not_shut_down(self, recording_pool, exploder):
        executor = RecordingPool()
        with pytest.raises(StageFailure):
            compile_batch(
                [make_request(), make_request(shift=1)],
                backends="exploder",
                executor=executor,
            )
        assert executor.shutdown_calls == []  # the caller owns its lifecycle


class TestCheckpointResume:
    def test_resume_serves_journaled_jobs_without_recompiling(self, flaky, tmp_path):
        flaky.broken = False
        requests = [make_request(), make_request(shift=1), make_request(shift=2)]
        first = compile_batch(requests, backends="flaky", checkpoint_dir=tmp_path)
        assert flaky.calls == 3
        assert len(first.report.compiled) == 3

        resumed = compile_batch(requests, backends="flaky", checkpoint_dir=tmp_path)
        assert flaky.calls == 3  # zero recompiles: the journal served everything
        assert sorted(resumed.report.skipped) == sorted(first.report.compiled)
        assert not resumed.report.compiled
        assert [row["flaky"] for row in resumed.results] == [
            row["flaky"] for row in first.results
        ]

    def test_partial_run_resumes_only_missing_jobs(self, selective, tmp_path):
        requests = [make_request(), make_request(shift=2), make_request(shift=1)]
        # In-process jobs run in request order: two complete and journal,
        # then the third (shift=1 → 9 qubits) raises and aborts the batch.
        with pytest.raises(StageFailure):
            compile_batch(requests, backends="selective", checkpoint_dir=tmp_path)
        assert selective.calls == 3

        selective.broken_n_qubits = None  # "fixed" — resume over the same journal
        resumed = compile_batch(requests, backends="selective", checkpoint_dir=tmp_path)
        assert selective.calls == 4  # exactly the one missing job recompiled
        assert len(resumed.report.skipped) == 2
        assert len(resumed.report.compiled) == 1
        assert all(row["selective"].cnot_count == 5 for row in resumed.results)

    def test_skipped_jobs_count_into_metrics(self, flaky, tmp_path):
        flaky.broken = False
        counter = get_metrics().counter("batch.checkpoint.skipped")
        compile_batch([make_request()], backends="flaky", checkpoint_dir=tmp_path)
        before = counter.value
        compile_batch([make_request()], backends="flaky", checkpoint_dir=tmp_path)
        assert counter.value == before + 1

    def test_fallback_results_resume_under_the_primary_key(
        self, exploder, tmp_path
    ):
        requests = [make_request()]
        first = compile_batch(
            requests,
            backends="exploder",
            fallback=("advanced",),
            checkpoint_dir=tmp_path,
        )
        assert exploder.calls == 1
        resumed = compile_batch(
            requests,
            backends="exploder",
            fallback=("advanced",),
            checkpoint_dir=tmp_path,
        )
        # Resume must serve the journaled fallback result verbatim, not
        # retry the (still broken) primary backend.
        assert exploder.calls == 1
        assert not resumed.report.fallbacks
        assert resumed.report.skipped == first.report.compiled
        assert resumed.results[0]["exploder"] == first.results[0]["exploder"]
        assert resumed.results[0]["exploder"].backend == "advanced"

    def test_checkpoint_write_fault_degrades_instead_of_aborting(
        self, flaky, tmp_path
    ):
        flaky.broken = False
        counter = get_metrics().counter("batch.checkpoint.errors")
        before = counter.value
        try:
            with inject("checkpoint.write=error:1.0"):
                batch = compile_batch(
                    [make_request(), make_request(shift=1)],
                    backends="flaky",
                    checkpoint_dir=tmp_path,
                )
        finally:
            deactivate()
        # Every job still completed; only resumability was lost.
        assert len(batch.report.compiled) == 2
        assert not batch.report.failed
        assert counter.value == before + 2

        resumed = compile_batch(
            [make_request(), make_request(shift=1)],
            backends="flaky",
            checkpoint_dir=tmp_path,
        )
        assert not resumed.report.skipped  # nothing was journaled
        assert flaky.calls == 4
