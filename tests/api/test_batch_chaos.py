"""Chaos test: a batch killed mid-run resumes bit-identically from its journal.

A 50-job batch runs on a real process pool under an injected ``pool.worker``
kill schedule (workers die via ``os._exit`` at a deterministic draw), then
resumes over the same checkpoint directory with faults off.  The resumed
batch must serve every journaled job verbatim — zero recompiles — and the
merged outcome must be bit-identical to an uninterrupted run.
"""

import multiprocessing
import zlib
from random import Random

import pytest

from repro.api import CompileRequest, CompilerConfig, compile_batch
from repro.faults import deactivate, inject
from repro.vqe import ExcitationTerm

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool children inherit the active fault plan only under fork",
)

N_JOBS = 50
FAULT_SEED = 2
KILL_PROBABILITY = 0.15
CHAOS_SPEC = f"seed={FAULT_SEED};pool.worker=kill:{KILL_PROBABILITY}"

#: Tiny but real advanced-pipeline compiles; distinct seeds make 50 distinct
#: cache keys while keeping each job a few milliseconds.
TINY = CompilerConfig(
    gamma_steps=1, sorting_population=2, sorting_generations=1, coloring_orders=1
)


def make_requests():
    terms = (
        ExcitationTerm(creation=(4, 5), annihilation=(0, 1)),
        ExcitationTerm(creation=(6,), annihilation=(2,)),
    )
    return [
        CompileRequest(terms=terms, n_qubits=8, config=TINY.replace(seed=index))
        for index in range(N_JOBS)
    ]


def first_kill_draw():
    """The draw index at which the injected kill schedule first fires.

    Mirrors the per-site stream construction of ``FaultPlan``: every forked
    worker inherits the same fresh stream, so each dies at the start of its
    ``k``-th job.  The test needs ``k >= 2`` (some jobs complete before the
    pool breaks) and ``k`` small enough that not all 50 jobs finish.
    """
    rng = Random(zlib.crc32(f"{FAULT_SEED}:pool.worker".encode("utf-8")))
    return next(i for i in range(1, 1000) if rng.random() < KILL_PROBABILITY)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    deactivate()
    yield
    deactivate()


def test_kill_schedule_precondition():
    assert 2 <= first_kill_draw() <= N_JOBS // 4  # seed choice stays valid


def test_batch_killed_mid_run_resumes_bit_identical(tmp_path):
    requests = make_requests()

    with inject(CHAOS_SPEC):
        killed = compile_batch(
            requests,
            backends="advanced",
            workers=2,
            checkpoint_dir=tmp_path,
            on_error="collect",
        )
    deactivate()

    # The pool broke mid-batch: some jobs finished (and were journaled the
    # moment they did), the rest failed with the broken-pool error.
    assert killed.report.compiled, "no job survived before the kill"
    assert killed.report.failed, "the kill schedule never fired"
    assert len(killed.report.compiled) + len(killed.report.failed) == N_JOBS
    assert not killed.report.skipped

    resumed = compile_batch(
        requests,
        backends="advanced",
        workers=2,
        checkpoint_dir=tmp_path,
        on_error="collect",
    )

    # Zero recompiles of journaled jobs: exactly the survivors are skipped,
    # exactly the broken-pool victims are compiled, nothing fails.
    assert not resumed.report.failed
    assert set(resumed.report.skipped) == set(killed.report.compiled)
    assert set(resumed.report.compiled) == set(killed.report.failed_digests)

    clean = compile_batch(requests, backends="advanced", workers=1)
    assert len(resumed.results) == len(clean.results) == N_JOBS
    for resumed_row, clean_row in zip(resumed.results, clean.results):
        assert resumed_row["advanced"] == clean_row["advanced"]
        assert (
            resumed_row["advanced"].breakdown == clean_row["advanced"].breakdown
        )
        assert (
            resumed_row["advanced"].degraded is clean_row["advanced"].degraded
        )
    assert resumed.cnot_counts("advanced") == clean.cnot_counts("advanced")


def test_resume_of_a_complete_journal_compiles_nothing(tmp_path):
    requests = make_requests()[:8]
    first = compile_batch(
        requests, backends="advanced", workers=2, checkpoint_dir=tmp_path
    )
    assert len(first.report.compiled) == 8

    resumed = compile_batch(
        requests, backends="advanced", workers=2, checkpoint_dir=tmp_path
    )
    assert sorted(resumed.report.skipped) == sorted(first.report.compiled)
    assert not resumed.report.compiled
    assert resumed.cnot_counts("advanced") == first.cnot_counts("advanced")
