"""Tests for the frozen CompilerConfig."""

import dataclasses

import pytest

from repro.api import CompilerConfig


class TestDefaults:
    def test_default_matches_historical_pipeline_knobs(self):
        config = CompilerConfig()
        assert config.use_bosonic_encoding
        assert config.use_hybrid_encoding
        assert config.use_gamma_search
        assert config.use_advanced_sorting
        assert config.gamma_steps == 40
        assert config.sorting_population == 24
        assert config.sorting_generations == 30
        assert config.coloring_orders == 20
        assert config.seed == 0
        assert config.baseline_pso_iterations == 0

    def test_frozen(self):
        config = CompilerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.gamma_steps = 99


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("gamma_steps", -1),
            ("sorting_population", 1),
            ("sorting_generations", -2),
            ("coloring_orders", 0),
            ("baseline_pso_particles", 0),
            ("baseline_pso_iterations", -1),
            ("seed", -5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            CompilerConfig(**{field: value})

    def test_replace_revalidates(self):
        config = CompilerConfig()
        with pytest.raises(ValueError):
            config.replace(sorting_population=0)

    def test_population_unchecked_when_advanced_sorting_disabled(self):
        # the historical compiler accepted this combination: the GA never runs
        config = CompilerConfig(sorting_population=1, use_advanced_sorting=False)
        assert config.sorting_population == 1

    def test_seed_none_allowed(self):
        assert CompilerConfig(seed=None).seed is None


class TestHashability:
    def test_usable_as_dict_key(self):
        table = {CompilerConfig(): "default", CompilerConfig(seed=7): "seeded"}
        assert table[CompilerConfig()] == "default"
        assert table[CompilerConfig(seed=7)] == "seeded"

    def test_equality_is_field_wise(self):
        assert CompilerConfig() == CompilerConfig()
        assert CompilerConfig() != CompilerConfig(gamma_steps=41)
        assert hash(CompilerConfig()) == hash(CompilerConfig())

    def test_fingerprint_distinguishes_configs(self):
        assert CompilerConfig().fingerprint != CompilerConfig(seed=1).fingerprint

    def test_replace_returns_new_config(self):
        config = CompilerConfig()
        ablated = config.replace(use_hybrid_encoding=False)
        assert config.use_hybrid_encoding
        assert not ablated.use_hybrid_encoding
        assert ablated != config
