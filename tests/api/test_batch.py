"""Tests for the batch compilation service and its memoization cache."""

import pytest

from repro.api import (
    CompileCache,
    CompileRequest,
    CompileResult,
    CompilerConfig,
    compile_batch,
    register_backend,
    unregister_backend,
)
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)


def make_request(shift=0, config=FAST):
    terms = (
        term((4 + shift, 5 + shift), (0, 1)),
        term((4 + shift, 7 + shift), (0, 3)),
        term((6,), (0,)),
    )
    return CompileRequest(terms=terms, n_qubits=8 + shift, config=config)


class CountingBackend:
    """Backend that counts how many times it actually compiles."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def compile(self, request):
        self.calls += 1
        return CompileResult(
            backend=self.name,
            cnot_count=7,
            n_qubits=request.resolved_n_qubits,
            breakdown={"total": 7},
        )


@pytest.fixture
def counting():
    backend = CountingBackend()
    register_backend(backend)
    yield backend
    unregister_backend("counting")


class TestRequestFingerprint:
    def test_identical_requests_share_a_fingerprint(self):
        assert make_request().fingerprint == make_request().fingerprint

    def test_fingerprint_ignores_importance_metadata(self):
        plain = CompileRequest(terms=(term((2,), (0,)),))
        ranked = CompileRequest(
            terms=(ExcitationTerm(creation=(2,), annihilation=(0,), importance=0.5),)
        )
        assert plain.fingerprint == ranked.fingerprint

    def test_fingerprint_depends_on_terms_config_and_register(self):
        base = make_request()
        assert base.fingerprint != make_request(shift=1).fingerprint
        assert (
            base.fingerprint
            != make_request(config=FAST.replace(seed=1)).fingerprint
        )

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError):
            CompileRequest(terms=())

    def test_parameter_count_validated(self):
        with pytest.raises(ValueError):
            CompileRequest(terms=(term((2,), (0,)),), parameters=(1.0, 2.0))


class TestCacheHits:
    def test_warm_cache_skips_recompilation(self, counting):
        cache = CompileCache()
        requests = [make_request(), make_request(shift=1)]

        cold = compile_batch(requests, backends="counting", cache=cache)
        assert counting.calls == 2
        assert cold.cache_hits == 0
        assert cold.cache_misses == 2

        warm = compile_batch(requests, backends="counting", cache=cache)
        assert counting.calls == 2  # nothing recompiled
        assert warm.cache_hits == 2
        assert warm.cache_misses == 0
        assert warm.results[0]["counting"] == cold.results[0]["counting"]

    def test_identical_requests_deduplicate_within_one_batch(self, counting):
        batch = compile_batch(
            [make_request(), make_request()], backends="counting"
        )
        assert counting.calls == 1
        assert batch.cache_hits == 1
        assert batch.cache_misses == 1
        assert (
            batch.results[0]["counting"].cnot_count
            == batch.results[1]["counting"].cnot_count
        )

    def test_alias_and_canonical_name_share_cache_entries(self):
        cache = CompileCache()
        request = make_request()
        compile_batch([request], backends="adv", cache=cache)
        warm = compile_batch([request], backends="advanced", cache=cache)
        assert warm.cache_hits == 1
        assert warm.cache_misses == 0

    def test_warm_batch_is_faster_than_cold(self):
        cache = CompileCache()
        requests = [make_request(), make_request(shift=1)]
        cold = compile_batch(requests, backends="advanced", cache=cache)
        warm = compile_batch(requests, backends="advanced", cache=cache)
        assert warm.cache_hits == len(requests)
        assert warm.wall_time_s < cold.wall_time_s

    def test_config_blind_backends_share_cache_across_configs(self):
        cache = CompileCache()
        base = make_request()
        swept = make_request(config=FAST.replace(gamma_steps=9))
        compile_batch([base], backends=("jw", "advanced"), cache=cache)
        warm = compile_batch([swept], backends=("jw", "advanced"), cache=cache)
        # JW ignores the config, so the sweep reuses its entry; the advanced
        # flow depends on it and must recompile.
        assert warm.cache_hits == 1
        assert warm.cache_misses == 1

    def test_cache_clear_resets_counters(self, counting):
        cache = CompileCache()
        compile_batch([make_request()], backends="counting", cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0


class TestBoundedCache:
    def test_lru_eviction_beyond_max_entries(self, counting):
        cache = CompileCache(max_entries=2)
        first, second, third = (make_request(shift) for shift in range(3))
        compile_batch([first, second], backends="counting", cache=cache)
        # Touch `first` so `second` is the least recently used entry.
        assert cache.get(CompileCache.key(first, "counting")) is not None
        compile_batch([third], backends="counting", cache=cache)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert CompileCache.key(second, "counting") not in cache
        assert CompileCache.key(first, "counting") in cache

    def test_evicted_entry_recompiles(self, counting):
        cache = CompileCache(max_entries=1)
        requests = [make_request(), make_request(shift=1)]
        compile_batch(requests, backends="counting", cache=cache)
        compile_batch([make_request()], backends="counting", cache=cache)
        assert counting.calls == 3  # the first request's entry was evicted

    def test_peek_does_not_refresh_recency(self, counting):
        cache = CompileCache(max_entries=2)
        first, second = make_request(), make_request(shift=1)
        compile_batch([first, second], backends="counting", cache=cache)
        cache.peek(CompileCache.key(first, "counting"))  # no recency refresh
        compile_batch([make_request(shift=2)], backends="counting", cache=cache)
        assert CompileCache.key(first, "counting") not in cache  # still LRU

    def test_clear_resets_evictions(self, counting):
        cache = CompileCache(max_entries=1)
        compile_batch(
            [make_request(), make_request(shift=1)], backends="counting", cache=cache
        )
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0

    def test_max_entries_validated(self):
        with pytest.raises(ValueError, match="max_entries"):
            CompileCache(max_entries=0)

    def test_unbounded_cache_never_evicts(self, counting):
        cache = CompileCache()
        compile_batch(
            [make_request(shift) for shift in range(4)],
            backends="counting",
            cache=cache,
        )
        assert len(cache) == 4 and cache.evictions == 0


class TestCacheKeyDigest:
    def test_digest_is_stable_and_hex(self):
        from repro.api import cache_key_digest

        key = CompileCache.key(make_request(), "advanced")
        digest = cache_key_digest(key)
        assert digest == cache_key_digest(key)
        assert len(digest) == 64 and int(digest, 16) >= 0

    def test_digest_separates_requests_backends_and_configs(self):
        from repro.api import cache_key_digest

        base = cache_key_digest(CompileCache.key(make_request(), "advanced"))
        assert base != cache_key_digest(CompileCache.key(make_request(1), "advanced"))
        assert base != cache_key_digest(CompileCache.key(make_request(), "baseline"))
        swept = make_request(config=FAST.replace(gamma_steps=9))
        assert base != cache_key_digest(CompileCache.key(swept, "advanced"))


class TestSpawnPlatformGuard:
    def test_custom_backend_with_non_fork_workers_raises_eagerly(
        self, counting, monkeypatch
    ):
        import multiprocessing

        monkeypatch.setattr(multiprocessing, "get_start_method", lambda: "spawn")
        with pytest.raises(RuntimeError, match="counting.*workers=1"):
            compile_batch([make_request()], backends="counting", workers=2)
        assert counting.calls == 0  # raised before compiling anything

    def test_default_backends_unaffected_by_start_method(self, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(multiprocessing, "get_start_method", lambda: "spawn")
        batch = compile_batch([make_request()], backends="jw", workers=2)
        assert batch.results[0]["jw"].cnot_count > 0

    def test_custom_backend_serial_unaffected(self, counting, monkeypatch):
        import multiprocessing

        monkeypatch.setattr(multiprocessing, "get_start_method", lambda: "spawn")
        batch = compile_batch([make_request()], backends="counting", workers=1)
        assert batch.results[0]["counting"].cnot_count == 7


class TestMultiBackendBatches:
    def test_all_table1_flows_in_one_call(self):
        batch = compile_batch(
            [make_request()],
            backends=("jordan-wigner", "bravyi-kitaev", "baseline", "advanced"),
        )
        row = batch.results[0]
        assert set(row) == {"jordan-wigner", "bravyi-kitaev", "baseline", "advanced"}
        for name, result in row.items():
            assert result.backend == name
            assert result.cnot_count >= 0
            assert result.breakdown["total"] == result.cnot_count
        assert row["advanced"].cnot_count <= row["baseline"].cnot_count

    def test_cnot_counts_helper_accepts_aliases(self):
        batch = compile_batch([make_request()], backends=("gt", "adv"))
        assert batch.cnot_counts("gt") == batch.cnot_counts("baseline")

    def test_result_rows_accept_aliases(self):
        batch = compile_batch([make_request()], backends=("jw", "advanced"))
        row = batch.results[0]
        assert row["jw"] is row["jordan-wigner"]
        assert row["adv"] is row["advanced"]
        assert "jw" in row and "jordan-wigner" in row
        assert row.get("jw") is row["jordan-wigner"]
        assert row.get("no-such-backend") is None
        with pytest.raises(KeyError):
            row["no-such-backend"]

    def test_duplicate_backends_rejected(self):
        with pytest.raises(ValueError):
            compile_batch([make_request()], backends=("advanced", "adv"))

    def test_results_match_direct_backend_calls(self):
        from repro.api import get_backend

        request = make_request()
        batch = compile_batch([request], backends=("baseline", "advanced"))
        assert (
            batch.results[0]["advanced"].cnot_count
            == get_backend("advanced").compile(request).cnot_count
        )
        assert (
            batch.results[0]["baseline"].cnot_count
            == get_backend("baseline").compile(request).cnot_count
        )


class TestConvenienceApiGuards:
    def test_config_conflicts_with_legacy_keywords(self):
        from repro import compile_molecule_ansatz

        for kwargs in ({"seed": 42}, {"baseline_pso_iterations": 2}, {"gamma_steps": 3}):
            with pytest.raises(TypeError, match="config"):
                compile_molecule_ansatz(
                    "H2", n_terms=2, config=CompilerConfig(), **kwargs
                )

    def test_legacy_ablation_kwargs_do_not_move_the_baseline_column(self):
        """On the legacy path the keyword options scope to the advanced flow:
        disabling the advanced pipeline's compression must leave the GT
        column (the prior art as published) untouched."""
        from repro import compile_molecule_ansatz

        fast = dict(gamma_steps=5, sorting_population=8, sorting_generations=5)
        full = compile_molecule_ansatz("H2", n_terms=3, **fast)
        ablated = compile_molecule_ansatz(
            "H2", n_terms=3, use_bosonic_encoding=False, **fast
        )
        assert ablated.baseline_cnot_count == full.baseline_cnot_count


class TestParallelWorkers:
    def test_process_pool_matches_serial_results(self):
        requests = [make_request(), make_request(shift=1), make_request(shift=2)]
        serial = compile_batch(requests, backends="advanced")
        parallel = compile_batch(requests, backends="advanced", workers=2)
        assert serial.cnot_counts("advanced") == parallel.cnot_counts("advanced")

    def test_caller_owned_executor_is_reused_across_batches(self):
        from concurrent.futures import ProcessPoolExecutor

        requests = [make_request(), make_request(shift=1)]
        serial = compile_batch(requests, backends="advanced")
        with ProcessPoolExecutor(max_workers=2) as pool:
            first = compile_batch(requests, backends="advanced", executor=pool)
            second = compile_batch(
                [make_request(shift=2), make_request(shift=3)],
                backends="advanced",
                executor=pool,
            )
        assert first.cnot_counts("advanced") == serial.cnot_counts("advanced")
        assert all(result for row in second.results for result in row.values())
