"""Per-stage anytime budgets: degraded compiles stay valid, deterministic, observable."""

import pytest

from repro.api import CompileRequest, CompilerConfig, get_backend
from repro.core import AdvancedPipeline
from repro.obs.metrics import get_metrics
from repro.obs.tracer import tracing
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


TERMS = (
    term((4, 5), (0, 1)),
    term((4, 7), (0, 3)),
    term((6,), (0,)),
)

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)

#: Both budgets strictly below the configured effort: every budgeted stage
#: must truncate and flag itself.
BUDGETED = FAST.replace(gamma_budget_steps=2, sorting_budget_generations=1)


def compile_with(config):
    return get_backend("advanced").compile(
        CompileRequest(terms=TERMS, n_qubits=8, config=config)
    )


class TestConfigValidation:
    def test_gamma_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="gamma_budget_steps"):
            FAST.replace(gamma_budget_steps=0)

    def test_sorting_budget_must_be_non_negative(self):
        with pytest.raises(ValueError, match="sorting_budget_generations"):
            FAST.replace(sorting_budget_generations=-1)

    def test_budgets_change_the_fingerprint(self):
        assert BUDGETED.fingerprint != FAST.fingerprint


class TestDegradedFlag:
    def test_budget_hit_flags_the_compile(self):
        result = compile_with(BUDGETED)
        assert result.degraded
        assert result.degraded_stages == ("gamma_search", "sort")

    def test_unbudgeted_compile_is_not_degraded(self):
        result = compile_with(FAST)
        assert not result.degraded
        assert result.degraded_stages is None

    def test_budget_matching_the_configured_effort_is_not_degradation(self):
        exact = FAST.replace(gamma_budget_steps=5, sorting_budget_generations=5)
        result = compile_with(exact)
        assert not result.degraded
        # Spending exactly the configured effort is the unbudgeted run.
        assert result.cnot_count == compile_with(FAST).cnot_count
        assert result.breakdown == compile_with(FAST).breakdown

    def test_degraded_flag_excluded_from_result_equality(self):
        budgeted = compile_with(BUDGETED)
        clone = compile_with(BUDGETED)
        assert budgeted == clone  # compare=False fields do not break equality


class TestDegradedResultValidity:
    def test_degraded_compile_is_deterministic(self):
        one, two = compile_with(BUDGETED), compile_with(BUDGETED)
        assert one.cnot_count == two.cnot_count
        assert one.breakdown == two.breakdown

    def test_degraded_breakdown_is_internally_consistent(self):
        result = compile_with(BUDGETED)
        parts = result.breakdown
        assert parts["bosonic"] + parts["hybrid"] + parts["fermionic"] == parts["total"]
        assert result.cnot_count == parts["total"]

    def test_degraded_pipeline_result_still_emits_a_circuit(self):
        result = AdvancedPipeline(BUDGETED).run(TERMS, n_qubits=8)
        assert result.degraded
        circuit = result.fermionic_circuit()
        assert circuit.n_qubits == 8
        assert len(circuit.gates) > 0


class TestObservability:
    def test_stage_degraded_counter_counts_each_degraded_stage(self):
        counter = get_metrics().counter("stage.degraded")
        before = counter.value
        compile_with(BUDGETED)
        assert counter.value == before + 2  # gamma_search and sort

    def test_degraded_stage_spans_are_marked(self):
        with tracing() as tracer:
            AdvancedPipeline(BUDGETED).run(TERMS, n_qubits=8)
            marked = {
                span.name
                for span in tracer.all_spans()
                if span.attributes.get("degraded")
            }
        assert marked == {"pipeline.gamma_search", "pipeline.sort"}

    def test_backend_compile_span_is_marked(self):
        with tracing() as tracer:
            compile_with(BUDGETED)
            compile_spans = [
                span for span in tracer.all_spans() if span.name == "compile.advanced"
            ]
        assert compile_spans and compile_spans[0].attributes.get("degraded") is True

    def test_undegraded_spans_carry_no_flag(self):
        with tracing() as tracer:
            AdvancedPipeline(FAST).run(TERMS, n_qubits=8)
            assert not any(
                span.attributes.get("degraded") for span in tracer.all_spans()
            )
