"""Per-stage unit tests for the staged advanced pipeline."""

import numpy as np
import pytest

from repro.api import CompilerConfig
from repro.core import (
    AdvancedCompiler,
    AdvancedPipeline,
    SortingResult,
    StageContext,
    account_stage,
    classify_stage,
    gamma_search_stage,
    naive_sort_stage,
    schedule_hybrid_stage,
    sort_stage,
    transform_stage,
)
from repro.transforms import identity_matrix
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


@pytest.fixture
def mixed_terms():
    return [
        term((4, 5), (0, 1)),     # bosonic
        term((4, 5), (0, 3)),     # hybrid
        term((6, 7), (2, 3)),     # bosonic
        term((4, 7), (0, 3)),     # fermionic
        term((6,), (0,)),         # single
    ]


FAST = CompilerConfig(gamma_steps=8, sorting_population=10, sorting_generations=8, seed=0)


def make_context(terms, config=FAST, n_qubits=8):
    return AdvancedPipeline(config).make_context(terms, n_qubits=n_qubits)


def run_stages(context, *stages):
    for stage in stages:
        stage(context)
    return context


class TestClassifyStage:
    def test_partitions_and_costs_bosonic(self, mixed_terms):
        context = run_stages(make_context(mixed_terms), classify_stage)
        assert len(context.bosonic_terms) == 2
        assert len(context.hybrid_terms) == 1
        assert len(context.fermionic_terms) == 2  # fermionic double + single
        assert context.bosonic_cnot_count == 2 * 2

    def test_disabled_classes_fold_back_in_original_order(self, mixed_terms):
        config = FAST.replace(use_bosonic_encoding=False, use_hybrid_encoding=False)
        context = run_stages(make_context(mixed_terms, config), classify_stage)
        assert context.bosonic_terms == []
        assert context.hybrid_terms == []
        # Original HMP2 ordering is preserved, not fermionic-first reshuffled.
        assert context.fermionic_terms == mixed_terms
        assert context.bosonic_cnot_count == 0


class TestScheduleHybridStage:
    def test_empty_hybrid_class_schedules_nothing(self, mixed_terms):
        config = FAST.replace(use_hybrid_encoding=False)
        context = run_stages(
            make_context(mixed_terms, config), classify_stage, schedule_hybrid_stage
        )
        assert context.hybrid_schedule.n_compressed == 0
        assert context.hybrid_cnot_count == 0

    def test_compressed_hybrids_cost_seven_each(self, mixed_terms):
        context = run_stages(
            make_context(mixed_terms), classify_stage, schedule_hybrid_stage
        )
        schedule = context.hybrid_schedule
        assert schedule.n_compressed + len(schedule.uncompressed_terms) == 1
        assert context.hybrid_cnot_count == 7 * schedule.n_compressed


class TestGammaSearchStage:
    def test_disabled_search_keeps_identity(self, mixed_terms):
        config = FAST.replace(use_gamma_search=False)
        context = run_stages(
            make_context(mixed_terms, config),
            classify_stage, schedule_hybrid_stage, gamma_search_stage,
        )
        assert np.array_equal(context.gamma, identity_matrix(8))

    def test_search_returns_invertible_gamma_of_right_shape(self, mixed_terms):
        context = run_stages(
            make_context(mixed_terms),
            classify_stage, schedule_hybrid_stage, gamma_search_stage,
        )
        assert context.gamma.shape == (8, 8)
        # invertible over GF(2): LinearEncodingTransform would reject otherwise
        from repro.transforms import LinearEncodingTransform
        LinearEncodingTransform(context.gamma)


class TestTransformStage:
    def test_rotations_empty_without_fermionic_terms(self):
        bosonic_only = [term((4, 5), (0, 1)), term((6, 7), (2, 3))]
        context = run_stages(
            make_context(bosonic_only),
            classify_stage, schedule_hybrid_stage, gamma_search_stage, transform_stage,
        )
        assert context.rotations == []

    def test_rotations_generated_for_fermionic_terms(self, mixed_terms):
        context = run_stages(
            make_context(mixed_terms),
            classify_stage, schedule_hybrid_stage, gamma_search_stage, transform_stage,
        )
        assert len(context.rotations) > 0
        assert all(rotation.string.weight > 0 for rotation in context.rotations)


class TestSortStage:
    def test_sorted_count_not_worse_than_naive(self, mixed_terms):
        context = run_stages(
            make_context(mixed_terms),
            classify_stage, schedule_hybrid_stage, gamma_search_stage,
            transform_stage, sort_stage,
        )
        naive_context = run_stages(
            make_context(mixed_terms),
            classify_stage, schedule_hybrid_stage, gamma_search_stage,
            transform_stage, naive_sort_stage,
        )
        assert context.sorting.cnot_count <= naive_context.sorting.cnot_count
        assert len(context.sorting.ordered_rotations) == len(context.rotations)

    def test_seed_tours_never_lose_to_seeds(self, mixed_terms):
        """With the greedy and per-term-block tours in its starting population,
        the GTSP search cannot finish worse than either construction — even
        with a zero-generation budget."""
        from repro.core import (
            advanced_sort,
            baseline_order_cnot_count,
            greedy_sort,
            result_to_tour,
            term_block_tour,
        )
        from repro.circuits import sequence_cnot_count

        context = run_stages(
            make_context(mixed_terms),
            classify_stage, schedule_hybrid_stage, gamma_search_stage, transform_stage,
        )
        rotations = context.rotations
        greedy = greedy_sort(rotations)
        block_tour = term_block_tour(rotations)
        block_count = sequence_cnot_count(
            [(rotations[index].string, target) for index, target in block_tour]
        )
        seeded = advanced_sort(
            rotations,
            population_size=10,
            generations=0,
            rng=np.random.default_rng(0),
            seed_tours=[result_to_tour(rotations, greedy), block_tour],
        )
        assert seeded.cnot_count <= min(greedy.cnot_count, block_count)
        assert seeded.cnot_count <= baseline_order_cnot_count(rotations)


class TestAccountStage:
    def test_result_totals_segments(self, mixed_terms):
        context = run_stages(
            make_context(mixed_terms),
            classify_stage, schedule_hybrid_stage, gamma_search_stage,
            transform_stage, sort_stage, account_stage,
        )
        result = context.result
        assert result is not None
        assert result.cnot_count == (
            result.bosonic_cnot_count
            + result.hybrid_cnot_count
            + result.fermionic_cnot_count
        )
        assert result.breakdown()["total"] == result.cnot_count


class TestPipelineComposition:
    def test_run_equals_manual_stage_sequence(self, mixed_terms):
        pipeline = AdvancedPipeline(FAST)
        via_run = pipeline.run(mixed_terms, n_qubits=8)
        context = run_stages(
            pipeline.make_context(mixed_terms, n_qubits=8),
            classify_stage, schedule_hybrid_stage, gamma_search_stage,
            transform_stage, sort_stage, account_stage,
        )
        assert via_run.cnot_count == context.result.cnot_count
        assert via_run.breakdown() == context.result.breakdown()

    def test_matches_deprecated_compiler_shim(self, mixed_terms):
        shim = AdvancedCompiler(
            gamma_steps=8, sorting_population=10, sorting_generations=8, seed=0
        ).compile(mixed_terms, n_qubits=8)
        staged = AdvancedPipeline(FAST).run(mixed_terms, n_qubits=8)
        assert shim.cnot_count == staged.cnot_count
        assert shim.breakdown() == staged.breakdown()

    def test_with_stage_substitutes_one_stage(self, mixed_terms):
        recorded = {}

        def probe_sort(context):
            recorded["n_rotations"] = len(context.rotations)
            naive_sort_stage(context)

        pipeline = AdvancedPipeline(FAST).with_stage("sort", probe_sort)
        result = pipeline.run(mixed_terms, n_qubits=8)
        assert recorded["n_rotations"] > 0
        assert result.cnot_count > 0

    def test_substituted_gamma_stage_keeps_parameters(self, mixed_terms):
        """Variational parameters are resolved by transform_stage, so swapping
        the Γ stage cannot silently drop them."""
        def identity_gamma_stage(context):
            context.gamma = identity_matrix(context.n_qubits)

        pipeline = AdvancedPipeline(FAST).with_stage("gamma_search", identity_gamma_stage)
        parameters = [0.5] * len(mixed_terms)
        result = pipeline.run(mixed_terms, n_qubits=8, parameters=parameters)
        angles = {rotation.angle for rotation, _ in result.sorting.ordered_rotations}
        reference = AdvancedPipeline(FAST.replace(use_gamma_search=False)).run(
            mixed_terms, n_qubits=8, parameters=parameters
        )
        reference_angles = {r.angle for r, _ in reference.sorting.ordered_rotations}
        assert angles == reference_angles
        full_angles = {
            r.angle
            for r, _ in pipeline.run(mixed_terms, n_qubits=8).sorting.ordered_rotations
        }
        assert angles != full_angles  # parameters actually scaled the rotations

    def test_with_stage_unknown_name_raises(self):
        with pytest.raises(KeyError):
            AdvancedPipeline(FAST).with_stage("polish", lambda context: None)

    def test_dropping_account_stage_raises(self, mixed_terms):
        stages = [
            (name, stage)
            for name, stage in AdvancedPipeline(FAST).stages
            if name != "account"
        ]
        broken = AdvancedPipeline(FAST, stages=stages)
        with pytest.raises(RuntimeError, match="account"):
            broken.run(mixed_terms, n_qubits=8)

    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            AdvancedPipeline(FAST).run([])

    def test_custom_sort_stage_result_is_used(self, mixed_terms):
        def zero_sort(context):
            context.sorting = SortingResult(ordered_rotations=[], cnot_count=0)

        result = AdvancedPipeline(FAST).with_stage("sort", zero_sort).run(
            mixed_terms, n_qubits=8
        )
        assert result.fermionic_cnot_count == 0
