"""Topology-aware compilation through the unified API.

Covers the config/request plumbing (validation, fingerprints, cache keys)
and the routing metrics every backend attaches when a topology is set.
"""

import dataclasses

import pytest

from repro.api import (
    CompileCache,
    CompileRequest,
    CompilerConfig,
    compile_batch,
    get_backend,
)
from repro.hardware import RoutingMetrics, Topology
from repro.vqe import ExcitationTerm

TERMS = (
    ExcitationTerm(creation=(2, 3), annihilation=(0, 1)),
    ExcitationTerm(creation=(3,), annihilation=(0,)),
)

LINE4 = Topology.line(4)


class TestConfigField:
    def test_default_is_none(self):
        assert CompilerConfig().topology is None

    def test_topology_participates_in_fingerprint_and_hash(self):
        base = CompilerConfig(seed=0)
        routed = base.replace(topology=LINE4)
        assert base.fingerprint != routed.fingerprint
        assert hash(base) != hash(routed)
        assert routed.replace(topology=Topology.ring(4)) != routed
        # identical topologies compare equal through the config
        assert routed == CompilerConfig(seed=0, topology=Topology.line(4))

    def test_type_and_connectivity_validation(self):
        with pytest.raises(TypeError, match="Topology"):
            CompilerConfig(topology="line-4")
        disconnected = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="disconnected"):
            CompilerConfig(topology=disconnected)


class TestRequestValidation:
    def test_too_small_topology_names_both_sizes(self):
        config = CompilerConfig(topology=Topology.line(3))
        with pytest.raises(ValueError) as excinfo:
            CompileRequest(terms=TERMS, config=config)
        message = str(excinfo.value)
        assert "line-3" in message and "3 qubits" in message and "needs 4" in message

    def test_explicit_n_qubits_checked_too(self):
        config = CompilerConfig(topology=LINE4)
        with pytest.raises(ValueError, match="needs 6"):
            CompileRequest(terms=TERMS, n_qubits=6, config=config)

    def test_matching_and_larger_topologies_accepted(self):
        CompileRequest(terms=TERMS, config=CompilerConfig(topology=LINE4))
        CompileRequest(terms=TERMS, config=CompilerConfig(topology=Topology.grid(2, 3)))


@pytest.mark.parametrize("backend_name", ["jw", "bk", "gt", "adv"])
class TestBackendRoutingMetrics:
    def test_routing_attached_only_with_topology(self, backend_name):
        backend = get_backend(backend_name)
        plain = backend.compile(CompileRequest(terms=TERMS))
        assert plain.routing is None
        routed = backend.compile(
            CompileRequest(terms=TERMS, config=CompilerConfig(topology=LINE4))
        )
        metrics = routed.routing
        assert isinstance(metrics, RoutingMetrics)
        assert metrics.topology == "line-4"
        assert metrics.n_swaps == 0  # steered synthesis never swaps
        assert metrics.cnot_count > 0
        assert metrics.two_qubit_depth <= metrics.depth
        histogram = dict(metrics.gate_histogram)
        assert histogram.get("CNOT", 0) == metrics.cnot_count

    def test_routing_metrics_deterministic(self, backend_name):
        backend = get_backend(backend_name)
        request = CompileRequest(terms=TERMS, config=CompilerConfig(topology=LINE4))
        assert backend.compile(request).routing == backend.compile(request).routing


class TestCacheKeys:
    def test_config_blind_backends_key_on_topology(self):
        plain = CompileRequest(terms=TERMS)
        routed = CompileRequest(terms=TERMS, config=CompilerConfig(topology=LINE4))
        assert CompileCache.key(plain, "jw") != CompileCache.key(routed, "jw")
        # ... but still share entries across pipeline-knob sweeps
        tweaked = CompileRequest(
            terms=TERMS, config=CompilerConfig(topology=LINE4, gamma_steps=99)
        )
        assert CompileCache.key(routed, "jw") == CompileCache.key(tweaked, "jw")

    def test_batch_does_not_mix_topologies(self):
        cache = CompileCache()
        plain = CompileRequest(terms=TERMS)
        routed = CompileRequest(terms=TERMS, config=CompilerConfig(topology=LINE4))
        batch = compile_batch([plain, routed], backends="jw", cache=cache)
        assert batch.cache_misses == 2
        results = batch.results
        assert results[0]["jw"].routing is None
        assert results[1]["jw"].routing is not None
        # warm rerun serves both from the cache
        warm = compile_batch([plain, routed], backends="jw", cache=cache)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
