"""Unit tests for the crash-safe batch checkpoint journal."""

import pytest

from repro.api import BatchCheckpoint, CompileResult
from repro.faults import InjectedFault, deactivate, inject
from repro.service.cache import golden_version_stamp


@pytest.fixture(autouse=True)
def no_leaked_plan():
    deactivate()
    yield
    deactivate()


def make_result(cnot=7):
    return CompileResult(
        backend="advanced", cnot_count=cnot, n_qubits=4, breakdown={"total": cnot}
    )


#: Keys are plain primitive nests — the journal never interprets them.
KEY = (("fingerprint", 1, 2.5, None), "advanced")
OTHER = (("fingerprint", 9), "advanced")


class TestJournal:
    def test_record_lookup_roundtrip(self, tmp_path):
        checkpoint = BatchCheckpoint(tmp_path)
        assert checkpoint.lookup(KEY) is None
        checkpoint.record(KEY, make_result())
        assert checkpoint.lookup(KEY) == make_result()
        assert KEY in checkpoint
        assert OTHER not in checkpoint
        assert len(checkpoint) == 1

    def test_records_survive_a_new_checkpoint_instance(self, tmp_path):
        BatchCheckpoint(tmp_path).record(KEY, make_result())
        resumed = BatchCheckpoint(tmp_path)  # a fresh (resumed) process
        assert resumed.lookup(KEY) == make_result()

    def test_record_is_atomic_no_temp_files_linger(self, tmp_path):
        checkpoint = BatchCheckpoint(tmp_path)
        for index in range(5):
            checkpoint.record((("fingerprint", index), "advanced"), make_result(index))
        leftovers = [
            path
            for path in tmp_path.rglob("*")
            if path.is_file() and "tmp" in path.name
        ]
        assert leftovers == []

    def test_clear_drops_every_record(self, tmp_path):
        checkpoint = BatchCheckpoint(tmp_path)
        checkpoint.record(KEY, make_result())
        checkpoint.record(OTHER, make_result(9))
        assert checkpoint.clear() == 2
        assert len(checkpoint) == 0
        assert checkpoint.lookup(KEY) is None


class TestVersioning:
    def test_default_version_is_the_golden_stamp(self, tmp_path):
        assert BatchCheckpoint(tmp_path).version == golden_version_stamp()

    def test_stale_version_records_are_ignored(self, tmp_path):
        BatchCheckpoint(tmp_path, version="run-a").record(KEY, make_result())
        assert BatchCheckpoint(tmp_path, version="run-a").lookup(KEY) == make_result()
        # A checkpoint taken under a different code state never resumes; the
        # stale record is invalidated (removed) on read rather than served.
        assert BatchCheckpoint(tmp_path, version="run-b").lookup(KEY) is None
        assert BatchCheckpoint(tmp_path, version="run-a").lookup(KEY) is None


class TestWriteFaultSite:
    def test_injected_write_fault_surfaces_as_oserror(self, tmp_path):
        checkpoint = BatchCheckpoint(tmp_path)
        with inject("checkpoint.write=error:1.0") as plan:
            with pytest.raises(InjectedFault) as info:
                checkpoint.record(KEY, make_result())
        assert info.value.site == "checkpoint.write"
        assert isinstance(info.value, OSError)
        assert plan.fired_total("checkpoint.write") == 1
        # The fault fires before the write: nothing half-journaled.
        assert checkpoint.lookup(KEY) is None

    def test_fault_free_record_fires_nothing(self, tmp_path):
        checkpoint = BatchCheckpoint(tmp_path)
        with inject("checkpoint.write=error:0.0") as plan:
            checkpoint.record(KEY, make_result())
        assert plan.evaluations["checkpoint.write"] == 1
        assert plan.fired_total() == 0
