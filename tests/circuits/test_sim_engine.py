"""Differential tests: tensor-contraction engine vs the retained seed engine.

The seed simulated circuits by embedding every gate into a dense
``2**n x 2**n`` matrix with pure-Python bit loops and composing by matmul.
That implementation is retained below verbatim as the reference; the
hypothesis suite proves the fused tensordot engine matches it on random
circuits (1-6 qubits, single/two-qubit gates, rotations, empty circuits).

Also covers the memoized ``Circuit`` metrics (values stay correct across
``append``/``extend``/slicing/``compose``) and the cached gate matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, Gate, cnot, hadamard, rz
from repro.circuits.circuit import _fused_operations

SINGLE_QUBIT_NAMES = ["I", "X", "Y", "Z", "H", "S", "SDG", "T", "TDG", "SQRTX", "SQRTXDG"]
TWO_QUBIT_NAMES = ["CNOT", "CZ", "SWAP"]
ROTATION_NAMES = ["RZ", "RX", "RY"]

#: Gate names whose matrix entries lie in {0, ±1, ±i}; products of such
#: matrices stay exact in floating point, so both engines agree bit-for-bit.
EXACT_NAMES = ["X", "Y", "Z", "S", "SDG", "CNOT", "CZ", "SWAP"]


# ----------------------------------------------------------------------
# Retained copy of the seed engine (the pre-tensor Circuit._embed path).
# ----------------------------------------------------------------------
def legacy_embed(n_qubits: int, gate: Gate) -> np.ndarray:
    dim = 2 ** n_qubits
    small = gate.matrix()
    k = len(gate.qubits)
    embedded = np.zeros((dim, dim), dtype=complex)
    for basis in range(dim):
        bits = [(basis >> (n_qubits - 1 - q)) & 1 for q in range(n_qubits)]
        col_sub = 0
        for q in gate.qubits:
            col_sub = (col_sub << 1) | bits[q]
        for row_sub in range(2 ** k):
            amplitude = small[row_sub, col_sub]
            if amplitude == 0:
                continue
            new_bits = list(bits)
            for position, q in enumerate(gate.qubits):
                new_bits[q] = (row_sub >> (k - 1 - position)) & 1
            row = 0
            for q in range(n_qubits):
                row = (row << 1) | new_bits[q]
            embedded[row, basis] += amplitude
    return embedded


def legacy_to_unitary(circuit: Circuit) -> np.ndarray:
    dim = 2 ** circuit.n_qubits
    unitary = np.eye(dim, dtype=complex)
    for gate in circuit:
        unitary = legacy_embed(circuit.n_qubits, gate) @ unitary
    return unitary


def random_circuit(n_qubits: int, n_gates: int, seed: int) -> Circuit:
    rng = np.random.default_rng(seed)
    circuit = Circuit(n_qubits)
    for _ in range(n_gates):
        draw = rng.random()
        if draw < 0.4:
            name = SINGLE_QUBIT_NAMES[int(rng.integers(len(SINGLE_QUBIT_NAMES)))]
            circuit.append(Gate(name, (int(rng.integers(n_qubits)),)))
        elif draw < 0.75 and n_qubits >= 2:
            a, b = rng.choice(n_qubits, size=2, replace=False)
            name = TWO_QUBIT_NAMES[int(rng.integers(len(TWO_QUBIT_NAMES)))]
            circuit.append(Gate(name, (int(a), int(b))))
        else:
            name = ROTATION_NAMES[int(rng.integers(3))]
            circuit.append(Gate(name, (int(rng.integers(n_qubits)),), float(rng.normal())))
    return circuit


class TestDifferentialUnitary:
    @given(
        n_qubits=st.integers(1, 6),
        n_gates=st.integers(0, 25),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_seed_engine(self, n_qubits, n_gates, seed):
        circuit = random_circuit(n_qubits, n_gates, seed)
        np.testing.assert_allclose(
            circuit.to_unitary(), legacy_to_unitary(circuit), atol=1e-9
        )

    @given(n_qubits=st.integers(1, 5), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_statevector_matches_unitary(self, n_qubits, seed):
        circuit = random_circuit(n_qubits, 18, seed)
        rng = np.random.default_rng(seed)
        state = rng.normal(size=2 ** n_qubits) + 1j * rng.normal(size=2 ** n_qubits)
        state /= np.linalg.norm(state)
        np.testing.assert_allclose(
            circuit.apply_to_statevector(state),
            legacy_to_unitary(circuit) @ state,
            atol=1e-9,
        )

    def test_empty_circuit_is_identity(self):
        for n_qubits in (1, 2, 4):
            circuit = Circuit(n_qubits)
            assert np.array_equal(circuit.to_unitary(), np.eye(2 ** n_qubits))
            state = np.arange(2 ** n_qubits, dtype=complex)
            assert np.array_equal(circuit.apply_to_statevector(state), state)

    def test_exact_gate_set_is_bit_identical(self):
        """Entries in {0, ±1, ±i} make both engines exact — not just close."""
        rng = np.random.default_rng(9)
        circuit = Circuit(6)
        for _ in range(80):
            name = EXACT_NAMES[int(rng.integers(len(EXACT_NAMES)))]
            if name in TWO_QUBIT_NAMES:
                a, b = rng.choice(6, size=2, replace=False)
                circuit.append(Gate(name, (int(a), int(b))))
            else:
                circuit.append(Gate(name, (int(rng.integers(6)),)))
        assert np.array_equal(circuit.to_unitary(), legacy_to_unitary(circuit))

    def test_fusion_cannot_reorder_through_blocking_gates(self):
        """Regression: a merge target must be the latest-created owner.

        With the target chosen in gate-qubit order the RZ/SWAP pair below was
        contracted before CNOT(1,2)/CNOT(2,3), which act on a shared qubit.
        """
        circuit = Circuit(
            5,
            [
                Gate("X", (0,)),
                Gate("CNOT", (1, 2)),
                Gate("CNOT", (2, 3)),
                Gate("X", (1,)),
                Gate("CNOT", (0, 1)),
            ],
        )
        np.testing.assert_allclose(
            circuit.to_unitary(), legacy_to_unitary(circuit), atol=1e-12
        )
        circuit = Circuit(
            6,
            [
                hadamard(5),
                cnot(3, 4),
                cnot(3, 2),
                rz(4, 1.04002),
                Gate("SWAP", (4, 5)),
            ],
        )
        np.testing.assert_allclose(
            circuit.to_unitary(), legacy_to_unitary(circuit), atol=1e-12
        )

    def test_fused_operations_span_at_most_two_qubits(self):
        circuit = random_circuit(5, 40, seed=3)
        for qubits, matrix in _fused_operations(list(circuit.gates)):
            assert 1 <= len(qubits) <= 2
            assert matrix.shape == (2 ** len(qubits),) * 2
            assert qubits == tuple(sorted(qubits))

    def test_single_qubit_chain_fuses_to_one_operation(self):
        circuit = Circuit(3, [hadamard(0), Gate("S", (0,)), rz(0, 0.3), hadamard(0)])
        assert len(_fused_operations(list(circuit.gates))) == 1


class TestEqualsUpToGlobalPhase:
    def test_phase_difference_accepted(self):
        a = Circuit(2, [Gate("Z", (0,)), cnot(0, 1)])
        b = Circuit(2, [rz(0, np.pi), cnot(0, 1)])
        assert a.equals_up_to_global_phase(b)

    def test_different_circuits_rejected(self):
        a = Circuit(3, [hadamard(0), cnot(0, 1)])
        b = Circuit(3, [hadamard(0), cnot(0, 2)])
        assert not a.equals_up_to_global_phase(b)

    def test_register_size_mismatch(self):
        assert not Circuit(2).equals_up_to_global_phase(Circuit(3))

    def test_near_equal_within_tolerance(self):
        a = Circuit(1, [rz(0, 0.5)])
        b = Circuit(1, [rz(0, 0.5 + 1e-12)])
        assert a.equals_up_to_global_phase(b)
        assert not a.equals_up_to_global_phase(Circuit(1, [rz(0, 0.6)]))


class TestMetricMemoization:
    def test_append_invalidates_every_metric(self):
        circuit = Circuit(3, [hadamard(0), cnot(0, 1)])
        assert circuit.cnot_count == 1
        assert circuit.depth() == 2
        assert circuit.two_qubit_depth() == 1
        assert circuit.gate_histogram() == {"H": 1, "CNOT": 1}
        assert circuit.gates == (hadamard(0), cnot(0, 1))
        assert np.allclose(circuit.to_unitary(), circuit.to_unitary())

        circuit.append(cnot(1, 2))
        assert circuit.cnot_count == 2
        assert circuit.depth() == 3
        assert circuit.two_qubit_depth() == 2
        assert circuit.gate_histogram() == {"H": 1, "CNOT": 2}
        assert circuit.gates == (hadamard(0), cnot(0, 1), cnot(1, 2))
        np.testing.assert_allclose(
            circuit.to_unitary(), legacy_to_unitary(circuit), atol=1e-12
        )

    def test_extend_invalidates(self):
        circuit = Circuit(2)
        assert circuit.two_qubit_count == 0
        circuit.extend([cnot(0, 1), cnot(1, 0), hadamard(1)])
        assert circuit.two_qubit_count == 2
        assert circuit.single_qubit_count == 1
        assert circuit.count("cnot") == 2

    def test_slice_gets_fresh_metrics(self):
        circuit = Circuit(2, [hadamard(0), cnot(0, 1), cnot(0, 1)])
        assert circuit.cnot_count == 2
        head = circuit[:2]
        assert head.cnot_count == 1
        assert head.depth() == 2
        assert circuit.cnot_count == 2

    def test_compose_and_copy_get_fresh_metrics(self):
        a = Circuit(2, [cnot(0, 1)])
        b = Circuit(2, [cnot(1, 0)])
        assert a.cnot_count == 1 and b.cnot_count == 1
        assert a.compose(b).cnot_count == 2
        clone = a.copy()
        clone.append(cnot(0, 1))
        assert clone.cnot_count == 2 and a.cnot_count == 1

    def test_histogram_copy_cannot_poison_cache(self):
        circuit = Circuit(2, [hadamard(0)])
        histogram = circuit.gate_histogram()
        histogram["H"] = 99
        assert circuit.gate_histogram() == {"H": 1}

    def test_memoized_values_are_cached_objects(self):
        circuit = Circuit(2, [hadamard(0), cnot(0, 1)])
        assert circuit.gates is circuit.gates  # same tuple until the next append
        circuit.append(hadamard(1))
        assert len(circuit.gates) == 3


class TestGateMatrixCaching:
    def test_fixed_matrices_are_shared_and_read_only(self):
        first = Gate("H", (0,)).matrix()
        second = Gate("H", (1,)).matrix()
        assert first is second
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0, 0] = 2.0

    def test_parametrized_matrices_are_memoized(self):
        first = rz(0, 0.25).matrix()
        second = rz(1, 0.25).matrix()
        assert first is second
        assert not first.flags.writeable
        assert rz(0, 0.26).matrix() is not first

    def test_cached_matrices_still_correct(self):
        theta = 0.7
        np.testing.assert_allclose(
            rz(0, theta).matrix(),
            np.diag([np.exp(-0.5j * theta), np.exp(0.5j * theta)]),
        )
