"""Unit tests for the peephole circuit optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    Gate,
    cnot,
    gates_commute,
    hadamard,
    optimize_circuit,
    optimized_cnot_count,
    remove_identity_rotations,
    rz,
    s_gate,
    sdg_gate,
)


class TestGateCommutation:
    def test_disjoint_gates_commute(self):
        assert gates_commute(hadamard(0), cnot(1, 2))

    def test_rz_commutes_with_cnot_control(self):
        assert gates_commute(rz(0, 0.3), cnot(0, 1))

    def test_rz_does_not_commute_with_cnot_target(self):
        assert not gates_commute(rz(1, 0.3), cnot(0, 1))

    def test_x_commutes_with_cnot_target(self):
        assert gates_commute(Gate("X", (1,)), cnot(0, 1))

    def test_cnots_sharing_control_commute(self):
        assert gates_commute(cnot(0, 1), cnot(0, 2))

    def test_cnots_sharing_target_commute(self):
        assert gates_commute(cnot(0, 2), cnot(1, 2))

    def test_cnots_chained_do_not_commute(self):
        assert not gates_commute(cnot(0, 1), cnot(1, 2))

    def test_hadamard_does_not_commute_with_cnot(self):
        assert not gates_commute(hadamard(0), cnot(0, 1))


class TestCancellation:
    def test_adjacent_cnot_pair_cancels(self):
        circuit = Circuit(2, [cnot(0, 1), cnot(0, 1)])
        assert len(optimize_circuit(circuit)) == 0

    def test_adjacent_hadamard_pair_cancels(self):
        circuit = Circuit(1, [hadamard(0), hadamard(0)])
        assert len(optimize_circuit(circuit)) == 0

    def test_s_sdg_cancels(self):
        circuit = Circuit(1, [s_gate(0), sdg_gate(0)])
        assert len(optimize_circuit(circuit)) == 0

    def test_cancellation_through_commuting_gates(self):
        # The Rz on the control sits between two identical CNOTs but commutes.
        circuit = Circuit(2, [cnot(0, 1), rz(0, 0.5), cnot(0, 1)])
        optimized = optimize_circuit(circuit)
        assert optimized.cnot_count == 0
        assert len(optimized) == 1

    def test_no_cancellation_through_blocking_gate(self):
        circuit = Circuit(2, [cnot(0, 1), hadamard(1), cnot(0, 1)])
        assert optimize_circuit(circuit).cnot_count == 2

    def test_rz_merge(self):
        circuit = Circuit(1, [rz(0, 0.25), rz(0, 0.5)])
        optimized = optimize_circuit(circuit)
        assert len(optimized) == 1
        assert np.isclose(optimized[0].parameter, 0.75)

    def test_rz_merge_to_identity(self):
        circuit = Circuit(1, [rz(0, 0.4), rz(0, -0.4)])
        assert len(optimize_circuit(circuit)) == 0

    def test_rz_merge_through_commuting_cnot_control(self):
        circuit = Circuit(2, [rz(0, 0.2), cnot(0, 1), rz(0, 0.3)])
        optimized = optimize_circuit(circuit)
        assert len(optimized) == 2

    def test_optimizer_preserves_cnot_ladder(self):
        # A single Pauli-exponential staircase has nothing to cancel.
        circuit = Circuit(3, [cnot(0, 2), cnot(1, 2), rz(2, 0.1), cnot(1, 2), cnot(0, 2)])
        assert optimize_circuit(circuit).cnot_count == 4

    def test_optimized_cnot_count_helper(self):
        circuit = Circuit(2, [cnot(0, 1), cnot(0, 1), cnot(1, 0)])
        assert optimized_cnot_count(circuit) == 1


class TestMergePlacement:
    def test_merged_rotation_stays_at_the_later_position(self):
        """Regression: an identity rotation commuting forward past an H must
        not pull a later non-commuting rotation back across it."""
        circuit = Circuit(
            2, [hadamard(0), hadamard(0), rz(0, 0.0), hadamard(0), rz(0, 1.0)]
        )
        optimized = optimize_circuit(circuit)
        assert circuit.equals_up_to_global_phase(optimized)

    def test_merge_across_commuting_gate_still_happens(self):
        circuit = Circuit(2, [rz(0, 0.4), cnot(0, 1), rz(0, 0.5)])
        optimized = optimize_circuit(circuit)
        assert circuit.equals_up_to_global_phase(optimized)
        merged = [g for g in optimized.gates if g.name == "RZ"]
        assert len(merged) == 1
        assert np.isclose(merged[0].parameter, 0.9)


class TestCorrectness:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_optimization_preserves_unitary(self, data):
        n_qubits = data.draw(st.integers(min_value=2, max_value=3))
        n_gates = data.draw(st.integers(min_value=1, max_value=12))
        gates = []
        for _ in range(n_gates):
            kind = data.draw(st.sampled_from(["H", "S", "X", "RZ", "CNOT"]))
            if kind == "CNOT":
                control = data.draw(st.integers(0, n_qubits - 1))
                target = data.draw(
                    st.integers(0, n_qubits - 1).filter(lambda q: q != control)
                )
                gates.append(cnot(control, target))
            elif kind == "RZ":
                qubit = data.draw(st.integers(0, n_qubits - 1))
                angle = data.draw(st.floats(min_value=-3.0, max_value=3.0))
                gates.append(rz(qubit, angle))
            else:
                qubit = data.draw(st.integers(0, n_qubits - 1))
                gates.append(Gate(kind, (qubit,)))
        circuit = Circuit(n_qubits, gates)
        optimized = optimize_circuit(circuit)
        assert optimized.cnot_count <= circuit.cnot_count
        assert len(optimized) <= len(circuit)
        assert circuit.equals_up_to_global_phase(optimized)


class TestIdentityRemoval:
    def test_remove_zero_rotation(self):
        circuit = Circuit(1, [rz(0, 0.0), hadamard(0)])
        assert len(remove_identity_rotations(circuit)) == 1

    def test_keep_finite_rotation(self):
        circuit = Circuit(1, [rz(0, 0.3)])
        assert len(remove_identity_rotations(circuit)) == 1
