"""Tests for the interface CNOT-cancellation accounting (Sec. III-B / Fig. 4)."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    best_sequence_from_cycle,
    cnot,
    cnot_cost,
    exponential_sequence_circuit,
    hadamard,
    interface_cnot_reduction,
    optimize_circuit,
    pair_cnot_count,
    s_gate,
    sdg_gate,
    sequence_cnot_count,
)
from repro.operators import PauliString


class TestFigureFourExample:
    """P1 = XXXY, P2 = XXYX from Fig. 4 of the paper."""

    P1 = PauliString("XXXY")
    P2 = PauliString("XXYX")

    def test_shared_last_qubit_target(self):
        # Scenario (a): t1 = t2 = 4th qubit; 5 CNOTs cancel, one remains at the
        # interface, so the pair costs 6 + 6 - 5 = 7 CNOTs.
        saving = interface_cnot_reduction(self.P1, 3, self.P2, 3)
        assert saving == 5
        assert pair_cnot_count(self.P1, 3, self.P2, 3) == 7

    def test_shared_first_qubit_target(self):
        # Scenario (b): t1 = t2 = 1st qubit; 4 CNOTs cancel, two remain.
        saving = interface_cnot_reduction(self.P1, 0, self.P2, 0)
        assert saving == 4
        assert pair_cnot_count(self.P1, 0, self.P2, 0) == 8

    def test_target_choice_matters(self):
        assert pair_cnot_count(self.P1, 3, self.P2, 3) < pair_cnot_count(
            self.P1, 0, self.P2, 0
        )

    def test_different_targets_save_nothing(self):
        assert interface_cnot_reduction(self.P1, 0, self.P2, 3) == 0

    def test_residual_interface_block_is_one_cnot(self):
        """Certify the ω=1 credit: the residual block on the mismatched control
        qubit (X on P1, Y on P2) and the target is locally equivalent to CNOT."""
        block = Circuit(2)
        # Closing CNOT of P1 (control=mismatched qubit 0, target 1), the
        # residual basis changes, then the opening CNOT of P2.
        block.append(cnot(0, 1))
        block.extend([hadamard(0), sdg_gate(0), hadamard(0)])  # X -> Y basis change on the control
        block.extend([hadamard(1), s_gate(1), hadamard(1)])    # Y -> X basis change on the target
        block.append(cnot(0, 1))
        assert cnot_cost(block.to_unitary()) == 1

    def test_matched_interface_fully_cancels_in_peephole(self):
        """Where the formula credits ω=2 the peephole optimizer finds the cancellation."""
        p1, p2 = PauliString("XXZ"), PauliString("XXZ")
        raw = exponential_sequence_circuit([(p1, 0.3, 2), (p2, 0.5, 2)])
        optimized = optimize_circuit(raw)
        assert optimized.cnot_count == sequence_cnot_count([(p1, 2), (p2, 2)])
        # And the optimized circuit is still correct.
        assert np.allclose(
            optimized.to_unitary() @ optimized.to_unitary().conj().T, np.eye(8)
        )


class TestReductionRules:
    def test_rejects_invalid_targets(self):
        with pytest.raises(ValueError):
            interface_cnot_reduction(PauliString("XI"), 1, PauliString("XI"), 0)
        with pytest.raises(ValueError):
            interface_cnot_reduction(PauliString("XI"), 0, PauliString("XI"), 1)

    def test_rejects_mismatched_registers(self):
        with pytest.raises(ValueError):
            interface_cnot_reduction(PauliString("X"), 0, PauliString("XX"), 0)

    def test_identical_strings_merge_into_one_exponential(self):
        string = PauliString("XYZZ")
        saving = interface_cnot_reduction(string, 3, string, 3)
        # The whole interface cancels, leaving a single exponential's CNOTs.
        assert saving == 2 * (string.weight - 1)
        assert pair_cnot_count(string, 3, string, 3) == 2 * (string.weight - 1)

    def test_disjoint_strings_save_nothing(self):
        assert interface_cnot_reduction(PauliString("XXII"), 0, PauliString("IIZZ"), 3) == 0

    def test_saving_bounded_by_interface_cnots(self):
        rng = np.random.default_rng(1)
        labels = ["IXYZ"[i] for i in range(4)]
        for _ in range(50):
            a = PauliString([str(rng.choice(labels)) for _ in range(5)])
            b = PauliString([str(rng.choice(labels)) for _ in range(5)])
            if a.weight == 0 or b.weight == 0:
                continue
            ta, tb = a.support[-1], b.support[-1]
            saving = interface_cnot_reduction(a, ta, b, tb)
            assert 0 <= saving <= (a.weight - 1) + (b.weight - 1)


class TestSequenceCost:
    def test_empty_sequence(self):
        assert sequence_cnot_count([]) == 0

    def test_single_term(self):
        assert sequence_cnot_count([(PauliString("XYZ"), 2)]) == 4

    def test_path_cost_accumulates(self):
        p1, p2, p3 = PauliString("XXZ"), PauliString("XYZ"), PauliString("ZZZ")
        sequence = [(p1, 2), (p2, 2), (p3, 2)]
        expected = (
            4 + 4 + 4
            - interface_cnot_reduction(p1, 2, p2, 2)
            - interface_cnot_reduction(p2, 2, p3, 2)
        )
        assert sequence_cnot_count(sequence) == expected

    def test_cyclic_cost_not_larger_than_path(self):
        p1, p2 = PauliString("XXZ"), PauliString("XYZ")
        path = sequence_cnot_count([(p1, 2), (p2, 2)])
        cyclic = sequence_cnot_count([(p1, 2), (p2, 2)], cyclic=True)
        assert cyclic <= path

    def test_best_sequence_from_cycle(self):
        cycle = [
            (PauliString("XXZ"), 2),
            (PauliString("ZZZ"), 2),
            (PauliString("XYZ"), 2),
        ]
        rotated, cost = best_sequence_from_cycle(cycle)
        assert sorted(p.to_label() for p, _ in rotated) == sorted(
            p.to_label() for p, _ in cycle
        )
        assert cost == sequence_cnot_count(list(rotated))
        # Cutting at the weakest edge is at least as good as any rotation.
        n = len(cycle)
        for shift in range(n):
            rotation = [cycle[(shift + k) % n] for k in range(n)]
            assert cost <= sequence_cnot_count(rotation)

    def test_empty_cycle(self):
        assert best_sequence_from_cycle([]) == (tuple(), 0)
