"""Unit tests for the Circuit container."""

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, cnot, hadamard, rz


def bell_circuit():
    return Circuit(2, [hadamard(0), cnot(0, 1)])


class TestConstruction:
    def test_empty_circuit(self):
        circuit = Circuit(3)
        assert len(circuit) == 0
        assert circuit.cnot_count == 0

    def test_invalid_register_size(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_append_validates_range(self):
        with pytest.raises(ValueError):
            Circuit(2).append(hadamard(5))

    def test_append_rejects_non_gate(self):
        with pytest.raises(TypeError):
            Circuit(2).append("H 0")

    def test_extend_and_len(self):
        circuit = Circuit(2).extend([hadamard(0), cnot(0, 1), rz(1, 0.1)])
        assert len(circuit) == 3

    def test_getitem_and_slice(self):
        circuit = bell_circuit()
        assert circuit[0].name == "H"
        assert isinstance(circuit[0:1], Circuit)
        assert len(circuit[0:1]) == 1


class TestAccounting:
    def test_cnot_count(self):
        circuit = Circuit(3, [cnot(0, 1), hadamard(2), cnot(1, 2), cnot(0, 1)])
        assert circuit.cnot_count == 3
        assert circuit.two_qubit_count == 3
        assert circuit.single_qubit_count == 1

    def test_count_by_name(self):
        circuit = bell_circuit()
        assert circuit.count("h") == 1
        assert circuit.count("CNOT") == 1

    def test_depth(self):
        circuit = Circuit(3, [hadamard(0), hadamard(1), cnot(0, 1), hadamard(2)])
        assert circuit.depth() == 2

    def test_qubits_used(self):
        circuit = Circuit(4, [hadamard(0), cnot(2, 3)])
        assert circuit.qubits_used() == (0, 2, 3)

    def test_parameters(self):
        circuit = Circuit(2, [rz(0, 0.5), rz(1, -0.25)])
        assert circuit.parameters() == (0.5, -0.25)

    def test_two_qubit_depth_ignores_single_qubit_gates(self):
        circuit = Circuit(
            3, [hadamard(0), cnot(0, 1), hadamard(1), cnot(1, 2), cnot(0, 1)]
        )
        # CNOT(0,1) -> CNOT(1,2) -> CNOT(0,1): a chain of dependent 2q layers.
        assert circuit.two_qubit_depth() == 3
        assert circuit.depth() >= circuit.two_qubit_depth()

    def test_two_qubit_depth_parallel_gates_share_a_layer(self):
        circuit = Circuit(4, [cnot(0, 1), cnot(2, 3), cnot(1, 2)])
        assert circuit.two_qubit_depth() == 2

    def test_two_qubit_depth_empty_and_single_qubit_only(self):
        assert Circuit(3).two_qubit_depth() == 0
        assert Circuit(3, [hadamard(0), rz(1, 0.3)]).two_qubit_depth() == 0

    def test_gate_histogram(self):
        circuit = Circuit(
            3, [hadamard(0), cnot(0, 1), cnot(1, 2), rz(2, 0.1), Gate("SWAP", (0, 2))]
        )
        assert circuit.gate_histogram() == {"H": 1, "CNOT": 2, "RZ": 1, "SWAP": 1}
        assert Circuit(2).gate_histogram() == {}


class TestComposition:
    def test_compose(self):
        combined = bell_circuit().compose(Circuit(2, [rz(1, 0.3)]))
        assert len(combined) == 3

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            bell_circuit().compose(Circuit(3))

    def test_add_operator(self):
        assert len(bell_circuit() + bell_circuit()) == 4

    def test_inverse_gives_identity(self):
        circuit = Circuit(2, [hadamard(0), cnot(0, 1), rz(1, 0.7), Gate("S", (0,))])
        identity = circuit.compose(circuit.inverse()).to_unitary()
        assert np.allclose(identity, np.eye(4))

    def test_copy_is_independent(self):
        circuit = bell_circuit()
        clone = circuit.copy()
        clone.append(rz(0, 0.2))
        assert len(circuit) == 2 and len(clone) == 3


class TestUnitary:
    def test_bell_state_preparation(self):
        state = bell_circuit().to_unitary() @ np.array([1, 0, 0, 0], dtype=complex)
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_unitary_matches_statevector_application(self):
        circuit = Circuit(
            3, [hadamard(0), cnot(0, 2), rz(2, 0.4), cnot(1, 0), Gate("S", (1,))]
        )
        rng = np.random.default_rng(0)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        via_matrix = circuit.to_unitary() @ state
        via_tensor = circuit.apply_to_statevector(state)
        assert np.allclose(via_matrix, via_tensor)

    def test_cnot_with_reversed_wires(self):
        # CNOT(1, 0): qubit 1 controls qubit 0.
        circuit = Circuit(2, [cnot(1, 0)])
        unitary = circuit.to_unitary()
        # |01> (qubit0=0, qubit1=1) -> |11>
        state = np.zeros(4)
        state[1] = 1.0
        assert np.allclose(unitary @ state, np.eye(4)[3])

    def test_unitary_is_unitary(self):
        circuit = Circuit(3, [hadamard(1), cnot(1, 2), rz(0, 1.1), cnot(0, 1)])
        u = circuit.to_unitary()
        assert np.allclose(u @ u.conj().T, np.eye(8))

    def test_equals_up_to_global_phase(self):
        a = Circuit(1, [Gate("Z", (0,))])
        b = Circuit(1, [rz(0, np.pi)])  # differs from Z by a global phase
        assert a.equals_up_to_global_phase(b)
        assert not a.equals_up_to_global_phase(Circuit(1, [Gate("X", (0,))]))

    def test_repr_and_summary(self):
        circuit = bell_circuit()
        assert "cnots=1" in repr(circuit)
        assert "CNOT" in circuit.summary()


class TestGlobalPhaseProbe:
    """Regression tests: the random-probe pre-check must stay decisive.

    The original threshold ``dim * tolerance + 1e-9`` exceeds the largest
    deviation a unit probe can ever show (1.0) once ``dim * tolerance`` is
    large — e.g. n >= ~27 at the default tolerance, or much earlier with a
    loose tolerance — making the pre-check vacuous and sending every
    comparison to the O(4**n) dense path.
    """

    def _distinct_pair(self, n=6):
        a = Circuit(n, [hadamard(0), cnot(0, n - 1), rz(n - 1, 0.7)])
        b = Circuit(n, [hadamard(0), cnot(0, n - 1), rz(n - 1, 2.3), Gate("X", (1,))])
        return a, b

    def test_probe_rejects_without_dense_engine(self, monkeypatch):
        # tolerance=0.05 at n=6 puts the uncapped threshold at 3.2 — vacuous.
        # With the cap, the probe path alone must reject; the dense engine is
        # booby-trapped to prove it is never consulted.
        a, b = self._distinct_pair()

        def boom(self):
            raise AssertionError("dense engine must not run for probe-rejectable pairs")

        monkeypatch.setattr(Circuit, "to_unitary", boom)
        assert a.equals_up_to_global_phase(b, tolerance=0.05) is False

    def test_probe_rejects_at_default_tolerance_without_dense(self, monkeypatch):
        a, b = self._distinct_pair()

        def boom(self):
            raise AssertionError("dense engine must not run for probe-rejectable pairs")

        monkeypatch.setattr(Circuit, "to_unitary", boom)
        assert a.equals_up_to_global_phase(b) is False

    def test_equal_pairs_still_pass_probes(self):
        # Probes must not false-reject genuinely equivalent pairs, even with
        # the loose tolerance that previously triggered the vacuous branch.
        a = Circuit(6, [Gate("T", (3,)), cnot(3, 4)])
        b = Circuit(6, [rz(3, np.pi / 4), cnot(3, 4)])  # differs by global phase
        assert a.equals_up_to_global_phase(b)
        assert a.equals_up_to_global_phase(b, tolerance=0.05)

    def test_probe_seeds_are_independent(self):
        from repro.circuits.circuit import _PROBE_SEEDS

        assert len(_PROBE_SEEDS) >= 3
        assert len(set(_PROBE_SEEDS)) == len(_PROBE_SEEDS)

    def test_threshold_is_capped(self):
        from repro.circuits.circuit import _PROBE_DEVIATION_CAP

        # The cap must sit strictly below the maximum possible deviation.
        assert 0 < _PROBE_DEVIATION_CAP < 1.0
