"""Unit tests for two-qubit invariants and minimal CNOT costs."""

import numpy as np
import pytest
from scipy.linalg import expm
from scipy.stats import unitary_group

from repro.circuits import (
    Circuit,
    cnot,
    cnot_cost,
    hadamard,
    is_local_gate,
    makhlin_invariants,
    rz,
)
from repro.circuits.gates import Gate
from repro.operators import PauliString


def random_single_qubit_unitary(rng):
    return unitary_group.rvs(2, random_state=rng)


def dress_with_locals(unitary, rng):
    """Sandwich a 4x4 unitary between random local gates."""
    before = np.kron(random_single_qubit_unitary(rng), random_single_qubit_unitary(rng))
    after = np.kron(random_single_qubit_unitary(rng), random_single_qubit_unitary(rng))
    return after @ unitary @ before


CNOT_MATRIX = Gate("CNOT", (0, 1)).matrix()
SWAP_MATRIX = Gate("SWAP", (0, 1)).matrix()
CZ_MATRIX = Gate("CZ", (0, 1)).matrix()


class TestMakhlinInvariants:
    def test_identity_invariants(self):
        g1, g2, g3 = makhlin_invariants(np.eye(4))
        assert np.allclose([g1, g2, g3], [1.0, 0.0, 3.0])

    def test_cnot_invariants(self):
        g1, g2, g3 = makhlin_invariants(CNOT_MATRIX)
        assert np.allclose([g1, g2, g3], [0.0, 0.0, 1.0], atol=1e-8)

    def test_cz_matches_cnot_class(self):
        assert np.allclose(
            makhlin_invariants(CZ_MATRIX), makhlin_invariants(CNOT_MATRIX), atol=1e-8
        )

    def test_swap_invariants(self):
        g1, g2, g3 = makhlin_invariants(SWAP_MATRIX)
        assert np.allclose([g1, g2, g3], [-1.0, 0.0, -3.0], atol=1e-8)

    def test_invariants_are_local_invariants(self):
        rng = np.random.default_rng(5)
        dressed = dress_with_locals(CNOT_MATRIX, rng)
        assert np.allclose(
            makhlin_invariants(dressed), makhlin_invariants(CNOT_MATRIX), atol=1e-7
        )

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError):
            makhlin_invariants(np.ones((4, 4)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            makhlin_invariants(np.eye(2))


class TestLocalDetection:
    def test_identity_is_local(self):
        assert is_local_gate(np.eye(4))

    def test_kron_is_local(self):
        rng = np.random.default_rng(0)
        local = np.kron(random_single_qubit_unitary(rng), random_single_qubit_unitary(rng))
        assert is_local_gate(local)

    def test_cnot_is_not_local(self):
        assert not is_local_gate(CNOT_MATRIX)


class TestCnotCost:
    def test_local_gate_costs_zero(self):
        rng = np.random.default_rng(1)
        local = np.kron(random_single_qubit_unitary(rng), random_single_qubit_unitary(rng))
        assert cnot_cost(local) == 0

    def test_cnot_costs_one(self):
        assert cnot_cost(CNOT_MATRIX) == 1

    def test_cz_costs_one(self):
        assert cnot_cost(CZ_MATRIX) == 1

    def test_dressed_cnot_costs_one(self):
        rng = np.random.default_rng(2)
        assert cnot_cost(dress_with_locals(CNOT_MATRIX, rng)) == 1

    def test_xx_quarter_rotation_costs_one(self):
        # exp(-i π/4 XX / ... ) with CNOT-equivalent strength.
        xx = PauliString("XX").to_dense()
        gate = expm(-1j * np.pi / 4 * xx)
        assert cnot_cost(gate) == 1

    def test_generic_xx_rotation_costs_two(self):
        xx = PauliString("XX").to_dense()
        gate = expm(-1j * 0.3 * xx)
        assert cnot_cost(gate) == 2

    def test_controlled_phase_costs_two(self):
        gate = np.diag([1.0, 1.0, 1.0, np.exp(0.43j)])
        assert cnot_cost(gate) == 2

    def test_two_cnot_circuit_costs_at_most_two(self):
        circuit = Circuit(2, [cnot(0, 1), rz(0, 0.3), hadamard(1), cnot(0, 1)])
        assert cnot_cost(circuit.to_unitary()) <= 2

    def test_swap_costs_three(self):
        assert cnot_cost(SWAP_MATRIX) == 3

    def test_random_unitary_costs_at_most_three(self):
        rng = np.random.default_rng(3)
        costs = [cnot_cost(unitary_group.rvs(4, random_state=rng)) for _ in range(5)]
        assert all(c <= 3 for c in costs)
        assert max(costs) == 3  # a Haar-random gate almost surely needs three
