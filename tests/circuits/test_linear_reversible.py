"""Unit tests for linear reversible (CNOT-only) circuit synthesis."""

import numpy as np
import pytest

from repro.circuits import Circuit, circuit_to_matrix, cnot, hadamard, linear_reversible_circuit
from repro.transforms import random_invertible_matrix


class TestSynthesis:
    @pytest.mark.parametrize("method", ["gaussian", "pmh", "best"])
    def test_round_trip(self, method):
        rng = np.random.default_rng(4)
        matrix = random_invertible_matrix(5, rng)
        circuit = linear_reversible_circuit(matrix, method=method)
        assert np.array_equal(circuit_to_matrix(circuit), matrix)

    def test_identity_matrix_gives_empty_circuit(self):
        circuit = linear_reversible_circuit(np.eye(4))
        assert len(circuit) == 0

    def test_best_not_worse_than_either(self):
        rng = np.random.default_rng(9)
        matrix = random_invertible_matrix(6, rng)
        best = linear_reversible_circuit(matrix, method="best").cnot_count
        gaussian = linear_reversible_circuit(matrix, method="gaussian").cnot_count
        pmh = linear_reversible_circuit(matrix, method="pmh").cnot_count
        assert best == min(gaussian, pmh)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            linear_reversible_circuit(np.eye(2), method="magic")

    def test_circuit_to_matrix_rejects_non_cnot(self):
        circuit = Circuit(2, [hadamard(0), cnot(0, 1)])
        with pytest.raises(ValueError):
            circuit_to_matrix(circuit)

    def test_state_action_matches_gf2_arithmetic(self):
        """The synthesized circuit permutes computational basis states as Γ does."""
        rng = np.random.default_rng(2)
        matrix = random_invertible_matrix(3, rng)
        circuit = linear_reversible_circuit(matrix)
        unitary = circuit.to_unitary()
        for basis in range(8):
            bits = np.array([(basis >> (2 - q)) & 1 for q in range(3)])
            image_bits = (matrix @ bits) % 2
            image = sum(int(b) << (2 - q) for q, b in enumerate(image_bits))
            state = np.zeros(8)
            state[basis] = 1.0
            out = unitary @ state
            assert np.isclose(abs(out[image]), 1.0)
