"""Unit tests for gate primitives."""

import numpy as np
import pytest

from repro.circuits import Gate, cnot, hadamard, rx, ry, rz, s_gate, sdg_gate


class TestConstruction:
    def test_name_uppercased(self):
        assert Gate("h", (0,)).name == "H"

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError):
            Gate("FOO", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Gate("CNOT", (0,))
        with pytest.raises(ValueError):
            Gate("H", (0, 1))

    def test_repeated_qubits_rejected(self):
        with pytest.raises(ValueError):
            Gate("CNOT", (1, 1))

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValueError):
            Gate("RZ", (0,))

    def test_constructors(self):
        assert cnot(0, 1).qubits == (0, 1)
        assert hadamard(2).name == "H"
        assert rz(1, 0.3).parameter == 0.3


class TestClassification:
    def test_cnot_properties(self):
        gate = cnot(2, 5)
        assert gate.is_cnot and gate.is_two_qubit and not gate.is_single_qubit
        assert gate.control == 2 and gate.target == 5

    def test_single_qubit_has_no_control(self):
        with pytest.raises(ValueError):
            _ = hadamard(0).control

    def test_diagonal_classification(self):
        assert rz(0, 0.1).is_z_diagonal
        assert s_gate(0).is_z_diagonal
        assert rx(0, 0.1).is_x_diagonal
        assert not hadamard(0).is_z_diagonal

    def test_commutes_disjointly(self):
        assert cnot(0, 1).commutes_disjointly_with(hadamard(2))
        assert not cnot(0, 1).commutes_disjointly_with(hadamard(1))


class TestMatrices:
    @pytest.mark.parametrize(
        "gate",
        [
            Gate("H", (0,)),
            Gate("X", (0,)),
            Gate("Y", (0,)),
            Gate("Z", (0,)),
            Gate("S", (0,)),
            Gate("SDG", (0,)),
            Gate("T", (0,)),
            Gate("SQRTX", (0,)),
            Gate("CNOT", (0, 1)),
            Gate("CZ", (0, 1)),
            Gate("SWAP", (0, 1)),
            rz(0, 0.7),
            rx(0, -1.3),
            ry(0, 2.1),
        ],
    )
    def test_matrices_are_unitary(self, gate):
        matrix = gate.matrix()
        assert np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]))

    def test_rz_matrix(self):
        theta = 0.5
        matrix = rz(0, theta).matrix()
        assert np.allclose(matrix, np.diag([np.exp(-0.5j * theta), np.exp(0.5j * theta)]))

    def test_s_is_sqrt_z(self):
        assert np.allclose(
            s_gate(0).matrix() @ s_gate(0).matrix(), Gate("Z", (0,)).matrix()
        )

    def test_cnot_matrix_flips_target(self):
        matrix = Gate("CNOT", (0, 1)).matrix()
        # |10> -> |11>
        assert matrix[3, 2] == 1 and matrix[2, 3] == 1


class TestInverses:
    @pytest.mark.parametrize(
        "gate",
        [
            hadamard(0),
            s_gate(0),
            sdg_gate(0),
            Gate("T", (0,)),
            Gate("SQRTX", (0,)),
            rz(0, 0.9),
            rx(0, -0.4),
            ry(0, 1.7),
            cnot(0, 1),
            Gate("SWAP", (0, 1)),
        ],
    )
    def test_inverse_matrix(self, gate):
        product = gate.matrix() @ gate.inverse().matrix()
        assert np.allclose(product, np.eye(product.shape[0]))

    def test_is_inverse_of(self):
        assert s_gate(0).is_inverse_of(sdg_gate(0))
        assert rz(0, 0.5).is_inverse_of(rz(0, -0.5))
        assert not rz(0, 0.5).is_inverse_of(rz(0, 0.5))
        assert not s_gate(0).is_inverse_of(s_gate(1))
        assert cnot(0, 1).is_inverse_of(cnot(0, 1))
        assert not cnot(0, 1).is_inverse_of(cnot(1, 0))

    def test_gate_is_immutable(self):
        gate = hadamard(0)
        with pytest.raises(Exception):
            gate.name = "X"
