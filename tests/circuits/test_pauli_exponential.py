"""Unit tests for Pauli-exponential circuit synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.circuits import (
    exponential_sequence_circuit,
    pauli_exponential_circuit,
    pauli_exponential_cnot_count,
)
from repro.operators import PauliString


def exact_exponential(string, angle):
    return expm(-0.5j * angle * string.to_dense())


class TestSingleExponential:
    @pytest.mark.parametrize("label", ["Z", "X", "Y"])
    def test_single_qubit_rotations(self, label):
        angle = 0.731
        circuit = pauli_exponential_circuit(PauliString(label), angle)
        assert circuit.cnot_count == 0
        assert np.allclose(circuit.to_unitary(), exact_exponential(PauliString(label), angle))

    @pytest.mark.parametrize(
        "label", ["ZZ", "XX", "YY", "XY", "ZX", "XYZ", "YZX", "XXYY", "IZXI"]
    )
    def test_multi_qubit_exponentials(self, label):
        angle = -1.234
        string = PauliString(label)
        circuit = pauli_exponential_circuit(string, angle)
        assert np.allclose(circuit.to_unitary(), exact_exponential(string, angle))
        assert circuit.cnot_count == pauli_exponential_cnot_count(string)

    def test_identity_string_gives_empty_circuit(self):
        circuit = pauli_exponential_circuit(PauliString("II"), 0.4)
        assert len(circuit) == 0

    def test_cnot_count_formula(self):
        assert pauli_exponential_cnot_count(PauliString("XYZI")) == 4
        assert pauli_exponential_cnot_count(PauliString("IZII")) == 0
        assert pauli_exponential_cnot_count(PauliString("IIII")) == 0

    @given(
        st.text(alphabet="IXYZ", min_size=2, max_size=4).filter(
            lambda s: any(c != "I" for c in s)
        ),
        st.floats(min_value=-np.pi, max_value=np.pi),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_target_choice_is_correct(self, label, angle, data):
        string = PauliString(label)
        target = data.draw(st.sampled_from(string.support))
        circuit = pauli_exponential_circuit(string, angle, target=target)
        assert np.allclose(
            circuit.to_unitary(), exact_exponential(string, angle), atol=1e-8
        )


class TestTargetAndControlOrder:
    def test_default_target_is_last_support_qubit(self):
        circuit = pauli_exponential_circuit(PauliString("XIZ"), 0.3)
        rz_gates = [g for g in circuit if g.name == "RZ"]
        assert rz_gates[0].qubits == (2,)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            pauli_exponential_circuit(PauliString("XIZ"), 0.3, target=1)

    def test_control_order_respected(self):
        circuit = pauli_exponential_circuit(
            PauliString("XYZ"), 0.3, target=2, control_order=[1, 0]
        )
        cnots = [g for g in circuit if g.is_cnot]
        assert cnots[0].control == 1 and cnots[1].control == 0

    def test_invalid_control_order_rejected(self):
        with pytest.raises(ValueError):
            pauli_exponential_circuit(
                PauliString("XYZ"), 0.3, target=2, control_order=[0, 2]
            )

    def test_control_order_preserves_unitary(self):
        string = PauliString("XYZX")
        angle = 0.9
        default = pauli_exponential_circuit(string, angle, target=0)
        permuted = pauli_exponential_circuit(
            string, angle, target=0, control_order=[3, 1, 2]
        )
        assert np.allclose(default.to_unitary(), permuted.to_unitary())


class TestSequences:
    def test_sequence_circuit_matches_product(self):
        terms = [
            (PauliString("XXYI"), 0.4, 1),
            (PauliString("IZZX"), -0.7, 2),
            (PauliString("YIIZ"), 0.2, 0),
        ]
        circuit = exponential_sequence_circuit(terms)
        expected = np.eye(16, dtype=complex)
        for string, angle, _ in terms:
            expected = exact_exponential(string, angle) @ expected
        assert np.allclose(circuit.to_unitary(), expected)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            exponential_sequence_circuit([])

    def test_mismatched_register_rejected(self):
        with pytest.raises(ValueError):
            exponential_sequence_circuit(
                [(PauliString("XX"), 0.1, None), (PauliString("XXX"), 0.1, None)]
            )
