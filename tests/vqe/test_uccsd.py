"""Unit tests for UCCSD excitation terms and their classification."""

import pytest

from repro.operators import FermionOperator
from repro.vqe import ExcitationTerm, is_spin_pair, uccsd_excitation_terms


class TestSpinPairs:
    def test_same_spatial_orbital_pairs(self):
        assert is_spin_pair(0, 1)
        assert is_spin_pair(5, 4)
        assert not is_spin_pair(1, 2)
        assert not is_spin_pair(0, 2)


class TestExcitationTerm:
    def test_indices_sorted(self):
        term = ExcitationTerm(creation=(5, 2), annihilation=(1, 0))
        assert term.creation == (2, 5)
        assert term.annihilation == (0, 1)

    def test_single_and_double_flags(self):
        assert ExcitationTerm(creation=(2,), annihilation=(0,)).is_single
        assert ExcitationTerm(creation=(2, 3), annihilation=(0, 1)).is_double

    def test_validation(self):
        with pytest.raises(ValueError):
            ExcitationTerm(creation=(1, 2, 3), annihilation=(0, 4, 5))
        with pytest.raises(ValueError):
            ExcitationTerm(creation=(1, 1), annihilation=(0, 2))
        with pytest.raises(ValueError):
            ExcitationTerm(creation=(1,), annihilation=(1,))
        with pytest.raises(ValueError):
            ExcitationTerm(creation=(1, 2), annihilation=(0,))

    def test_encoding_classes(self):
        bosonic = ExcitationTerm(creation=(2, 3), annihilation=(0, 1))
        hybrid = ExcitationTerm(creation=(2, 3), annihilation=(0, 5))
        fermionic = ExcitationTerm(creation=(2, 5), annihilation=(0, 7))
        single = ExcitationTerm(creation=(2,), annihilation=(0,))
        assert bosonic.encoding_class == "bosonic"
        assert hybrid.encoding_class == "hybrid"
        assert fermionic.encoding_class == "fermionic"
        assert single.encoding_class == "fermionic"

    def test_paper_hybrid_example(self):
        """Appendix A: h0 = a†_9 a†_12 a_3 a_4 is hybrid via its (3,4)… pair?

        With 0-indexed interleaved spin orbitals the paper's pairs are the
        (even, even+1) pairs; a†_2 a†_3 c_5 c_6 from Fig. 3(a) is hybrid when
        only the creation pair is a spin pair.
        """
        term = ExcitationTerm(creation=(2, 3), annihilation=(5, 8))
        assert term.creation_is_spin_pair
        assert not term.annihilation_is_spin_pair
        assert term.encoding_class == "hybrid"

    def test_generator_is_anti_hermitian(self):
        term = ExcitationTerm(creation=(2, 3), annihilation=(0, 1))
        generator = term.generator(0.7)
        assert (generator + generator.hermitian_conjugate()).normal_ordered().is_zero

    def test_excitation_operator_structure(self):
        term = ExcitationTerm(creation=(4,), annihilation=(1,))
        assert term.excitation_operator(2.0) == FermionOperator.single_excitation(4, 1, 2.0)

    def test_spin_orbitals_and_max(self):
        term = ExcitationTerm(creation=(2, 7), annihilation=(0, 1))
        assert term.spin_orbitals == (0, 1, 2, 7)
        assert term.max_spin_orbital() == 7


class TestTermEnumeration:
    def test_h2_counts(self):
        terms = uccsd_excitation_terms(4, 2)
        singles = [t for t in terms if t.is_single]
        doubles = [t for t in terms if t.is_double]
        # Spin-preserving: 2 singles (0->2, 1->3) and 1 double (01 -> 23).
        assert len(singles) == 2
        assert len(doubles) == 1

    def test_excludes_spin_flips(self):
        terms = uccsd_excitation_terms(4, 2)
        assert all(
            sum(i % 2 for i in t.creation) == sum(i % 2 for i in t.annihilation)
            for t in terms
        )

    def test_non_spin_preserving_enumeration_is_larger(self):
        preserving = uccsd_excitation_terms(6, 2)
        free = uccsd_excitation_terms(6, 2, spin_preserving=False)
        assert len(free) > len(preserving)

    def test_singles_can_be_excluded(self):
        terms = uccsd_excitation_terms(6, 2, include_singles=False)
        assert all(t.is_double for t in terms)

    def test_invalid_electron_count(self):
        with pytest.raises(ValueError):
            uccsd_excitation_terms(4, 9)
