"""Integration-style tests for HMP2 ordering and the adaptive VQE loop."""

import numpy as np
import pytest

from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.simulator import CHEMICAL_ACCURACY, fci_ground_state_energy
from repro.vqe import (
    UccAnsatz,
    adaptive_vqe,
    hamiltonian_sparse_matrix,
    hmp2_ranked_terms,
    optimize_ansatz,
    select_ansatz_terms,
)


@pytest.fixture(scope="module")
def h2_hamiltonian():
    return build_molecular_hamiltonian(run_rhf(make_molecule("H2")))


@pytest.fixture(scope="module")
def lih_hamiltonian():
    scf = run_rhf(make_molecule("LiH"))
    return build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=1)


class TestHmp2Ordering:
    def test_h2_dominant_term_is_the_double(self, h2_hamiltonian):
        terms = hmp2_ranked_terms(h2_hamiltonian)
        assert terms[0].is_double
        assert terms[0].creation == (2, 3)
        assert terms[0].annihilation == (0, 1)

    def test_importances_weakly_decreasing_for_doubles(self, lih_hamiltonian):
        doubles = [t for t in hmp2_ranked_terms(lih_hamiltonian) if t.is_double and t.importance > 0]
        importances = [t.importance for t in doubles]
        assert importances == sorted(importances, reverse=True)

    def test_select_ansatz_terms_truncates(self, lih_hamiltonian):
        assert len(select_ansatz_terms(lih_hamiltonian, 5)) == 5

    def test_select_rejects_negative(self, lih_hamiltonian):
        with pytest.raises(ValueError):
            select_ansatz_terms(lih_hamiltonian, -1)

    def test_full_pool_covers_all_spin_preserving_doubles(self, lih_hamiltonian):
        from repro.vqe import uccsd_excitation_terms

        pool = hmp2_ranked_terms(lih_hamiltonian)
        doubles_in_pool = {(t.creation, t.annihilation) for t in pool if t.is_double}
        enumerated = {
            (t.creation, t.annihilation)
            for t in uccsd_excitation_terms(
                lih_hamiltonian.n_spin_orbitals,
                lih_hamiltonian.n_electrons,
                include_singles=False,
            )
        }
        assert enumerated <= doubles_in_pool


class TestAnsatz:
    def test_reference_energy_is_hartree_fock(self, h2_hamiltonian):
        ansatz = UccAnsatz(n_qubits=4, n_electrons=2, terms=[])
        matrix = hamiltonian_sparse_matrix(h2_hamiltonian)
        result = optimize_ansatz(ansatz, matrix)
        assert np.isclose(result.energy, h2_hamiltonian.hartree_fock_energy, atol=1e-8)

    def test_parameter_count_validation(self, h2_hamiltonian):
        terms = hmp2_ranked_terms(h2_hamiltonian)[:1]
        ansatz = UccAnsatz(n_qubits=4, n_electrons=2, terms=list(terms))
        with pytest.raises(ValueError):
            ansatz.prepare_state([0.1, 0.2])

    def test_term_outside_register_rejected(self, h2_hamiltonian):
        from repro.vqe import ExcitationTerm

        ansatz = UccAnsatz(n_qubits=4, n_electrons=2, terms=[])
        with pytest.raises(ValueError):
            ansatz.add_term(ExcitationTerm(creation=(9,), annihilation=(0,)))

    def test_prepared_state_normalized(self, h2_hamiltonian):
        terms = hmp2_ranked_terms(h2_hamiltonian)[:1]
        ansatz = UccAnsatz(n_qubits=4, n_electrons=2, terms=list(terms))
        state = ansatz.prepare_state([0.3])
        assert np.isclose(np.linalg.norm(state), 1.0)


class TestAdaptiveVqe:
    def test_h2_one_term_reaches_fci(self, h2_hamiltonian):
        terms = hmp2_ranked_terms(h2_hamiltonian)
        result = adaptive_vqe(h2_hamiltonian, terms, max_terms=3, threshold=1e-7)
        assert result.converged
        assert result.n_terms[-1] == 1
        assert np.isclose(result.final_energy, result.exact_energy, atol=1e-6)

    def test_energies_monotone_nonincreasing(self, lih_hamiltonian):
        terms = hmp2_ranked_terms(lih_hamiltonian)
        result = adaptive_vqe(
            lih_hamiltonian, terms, max_terms=3, threshold=1e-9, maxiter=100
        )
        assert all(a >= b - 1e-8 for a, b in zip(result.energies, result.energies[1:]))

    def test_variational_bound(self, lih_hamiltonian):
        terms = hmp2_ranked_terms(lih_hamiltonian)
        result = adaptive_vqe(lih_hamiltonian, terms, max_terms=2, threshold=1e-9)
        exact = fci_ground_state_energy(lih_hamiltonian)
        assert all(energy >= exact - 1e-8 for energy in result.energies)

    def test_lih_reaches_chemical_accuracy(self, lih_hamiltonian):
        terms = hmp2_ranked_terms(lih_hamiltonian)
        result = adaptive_vqe(lih_hamiltonian, terms, max_terms=6)
        assert result.converged
        assert abs(result.final_energy - result.exact_energy) <= CHEMICAL_ACCURACY

    def test_errors_reported(self, h2_hamiltonian):
        terms = hmp2_ranked_terms(h2_hamiltonian)
        result = adaptive_vqe(h2_hamiltonian, terms, max_terms=1, threshold=1e-9)
        assert len(result.errors()) == len(result.energies)
        assert all(error >= 0 for error in result.errors())
