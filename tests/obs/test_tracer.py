"""Tracer/Span semantics: nesting, contextvars, no-op path, export/adopt."""

import asyncio
import pickle

import pytest

from repro.obs import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    tracing,
    tracing_enabled,
)
from repro.obs.tracer import _NULL_CONTEXT, TRACE_ENV_VAR, _env_enabled
from repro.obs import span as global_span


class TestSpanNesting:
    def test_sibling_and_child_structure(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("a.child"):
                    pass
            with tracer.span("b"):
                pass
        assert [r.name for r in tracer.roots] == ["root"]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a.child"]

    def test_spans_carry_attributes_and_set_attribute(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", n=3) as s:
            s.set_attribute("extra", "x")
        assert s.attributes == {"n": 3, "extra": "x"}

    def test_timestamps_are_monotone_and_closed(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_open_span_duration_uses_now(self):
        tracer = Tracer(enabled=True)
        with tracer.span("open") as s:
            assert s.end is None
            assert s.duration_s >= 0.0
            assert "open" in repr(s)
        assert "ms" in repr(s)

    def test_exception_records_error_attribute_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.roots[0].attributes["error"] == "ValueError"
        assert tracer.roots[0].end is not None

    def test_current_span_tracks_the_stack(self):
        tracer = Tracer(enabled=True)
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_walk_is_depth_first(self):
        tracer = Tracer(enabled=True)
        with tracer.span("r"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        names = [s.name for s in tracer.all_spans()]
        assert names == ["r", "a", "a1", "b"]


class TestDisabledPath:
    def test_disabled_tracer_collects_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible", n=1) as s:
            with tracer.span("also.invisible"):
                pass
        assert tracer.roots == []
        assert tracer.all_spans() == []
        assert tracer.export() == []
        assert s is NULL_SPAN

    def test_disabled_span_is_one_shared_context_manager(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b", attr=1) is _NULL_CONTEXT

    def test_null_span_is_inert(self):
        assert NULL_SPAN.set_attribute("k", "v") is NULL_SPAN
        assert NULL_SPAN.attributes == {}
        assert list(NULL_SPAN.walk()) == []
        assert NULL_SPAN.duration_s == 0.0

    def test_disabled_adopt_is_a_no_op(self):
        tracer = Tracer(enabled=False)
        exported = [{"name": "w", "start_s": 0.0, "end_s": 1.0, "children": []}]
        assert tracer.adopt(exported) == []
        assert tracer.roots == []


class TestAsyncPropagation:
    def test_concurrent_tasks_get_independent_span_stacks(self):
        tracer = Tracer(enabled=True)

        async def worker(name):
            with tracer.span(name):
                await asyncio.sleep(0)
                with tracer.span(f"{name}.child"):
                    await asyncio.sleep(0)

        async def main():
            with tracer.span("parent"):
                await asyncio.gather(worker("t1"), worker("t2"))

        asyncio.run(main())
        (parent,) = tracer.roots
        assert parent.name == "parent"
        children = sorted(c.name for c in parent.children)
        assert children == ["t1", "t2"]
        for child in parent.children:
            assert [g.name for g in child.children] == [f"{child.name}.child"]


class TestExportAdopt:
    def test_export_is_relative_to_origin_and_picklable(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", k=1):
            with tracer.span("child"):
                pass
        (exported,) = pickle.loads(pickle.dumps(tracer.export()))
        assert exported["name"] == "root"
        assert exported["attributes"] == {"k": 1}
        assert 0.0 <= exported["start_s"] <= exported["end_s"]
        (child,) = exported["children"]
        assert exported["start_s"] <= child["start_s"] <= child["end_s"] <= exported["end_s"]

    def test_adopt_rebases_onto_explicit_anchor(self):
        worker = Tracer(enabled=True)
        with worker.span("work"):
            pass
        exported = worker.export()
        duration = exported[0]["end_s"] - exported[0]["start_s"]

        parent = Tracer(enabled=True)
        with parent.span("dispatch") as dispatch:
            (adopted,) = parent.adopt(exported, at=dispatch.start + 0.5)
        assert adopted.name == "work"
        assert adopted in dispatch.children
        assert adopted.start == pytest.approx(dispatch.start + 0.5 + exported[0]["start_s"])
        assert adopted.duration_s == pytest.approx(duration)

    def test_adopt_defaults_to_parent_start(self):
        worker = Tracer(enabled=True)
        with worker.span("work"):
            pass
        parent = Tracer(enabled=True)
        with parent.span("dispatch") as dispatch:
            (adopted,) = parent.adopt(worker.export())
        assert adopted.start >= dispatch.start

    def test_adopt_outside_any_span_becomes_a_root(self):
        worker = Tracer(enabled=True)
        with worker.span("work"):
            pass
        parent = Tracer(enabled=True)
        (adopted,) = parent.adopt(worker.export())
        assert adopted in parent.roots

    def test_adopt_empty_list_is_a_no_op(self):
        tracer = Tracer(enabled=True)
        assert tracer.adopt([]) == []

    def test_from_dict_round_trip(self):
        span = Span("s", 10.0, {"a": 1})
        span.end = 11.0
        child = Span("c", 10.2)
        child.end = 10.8
        span.children.append(child)
        rebuilt = Span.from_dict(span.to_dict(origin=10.0), at=100.0)
        assert rebuilt.name == "s"
        assert rebuilt.start == pytest.approx(100.0)
        assert rebuilt.end == pytest.approx(101.0)
        assert rebuilt.attributes == {"a": 1}
        assert rebuilt.children[0].start == pytest.approx(100.2)

    def test_clear_drops_spans_and_reanchors(self):
        tracer = Tracer(enabled=True)
        with tracer.span("x"):
            pass
        old_origin = tracer.origin
        tracer.clear()
        assert tracer.roots == []
        assert tracer.origin >= old_origin


class TestGlobalTracer:
    def test_tracing_scope_swaps_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
            with global_span("inside"):
                assert current_span().name == "inside"
        assert get_tracer() is before

    def test_tracing_scope_can_be_disabled(self):
        with tracing(enabled=False) as tracer:
            with global_span("nope"):
                pass
            assert not tracing_enabled()
            assert tracer.roots == []

    def test_enable_disable_toggle(self):
        with tracing(enabled=False):
            enable_tracing()
            assert tracing_enabled()
            with global_span("kept"):
                pass
            disable_tracing()
            assert not tracing_enabled()
            assert [s.name for s in get_tracer().roots] == ["kept"]

    def test_enable_tracing_clears_by_default(self):
        with tracing() as tracer:
            with global_span("old"):
                pass
            enable_tracing()
            assert tracer.roots == []

    def test_tracing_scope_resets_the_current_span_stack(self):
        # A forked pool worker inherits the parent's open span through the
        # contextvar; a fresh tracing() scope must not let new spans attach
        # to it (they would never reach the fresh tracer's exportable roots).
        outer = Tracer(enabled=True)
        previous = set_tracer(outer)
        try:
            with outer.span("parent") as parent:
                with tracing() as worker:
                    assert worker.current() is None
                    with global_span("work"):
                        pass
                assert [s.name for s in worker.roots] == ["work"]
                assert parent.children == []
                assert outer.current() is parent
        finally:
            set_tracer(previous)

    def test_set_tracer_returns_previous(self):
        fresh = Tracer(enabled=True)
        previous = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(previous)

    def test_repr(self):
        assert "disabled" in repr(Tracer())
        assert "enabled" in repr(Tracer(enabled=True))


class TestEnvEnable:
    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", "anything"])
    def test_truthy_values(self, value):
        assert _env_enabled({TRACE_ENV_VAR: value})

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", " FALSE "])
    def test_falsy_values(self, value):
        assert not _env_enabled({TRACE_ENV_VAR: value})

    def test_unset(self):
        assert not _env_enabled({})

    def test_fresh_interpreter_honors_env(self):
        import subprocess
        import sys

        code = (
            "from repro.obs import tracing_enabled, get_tracer\n"
            "assert tracing_enabled()\n"
            "with get_tracer().span('from-env'):\n"
            "    pass\n"
            "assert [s.name for s in get_tracer().roots] == ['from-env']\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", TRACE_ENV_VAR: "1", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
