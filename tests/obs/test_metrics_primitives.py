"""Counter/Gauge/Histogram primitives, the reservoir bound, the registry."""

import random

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricsRegistry,
    get_metrics,
)
from repro.obs.metrics import DEFAULT_MAX_SAMPLES


class TestCounter:
    def test_inc_reset_snapshot(self):
        counter = Counter("c")
        assert counter.inc() == 1
        assert counter.inc(5) == 6
        assert counter.snapshot() == 6
        counter.reset()
        assert counter.value == 0
        assert "c" in repr(counter)


class TestGauge:
    def test_set_tracks_peak(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.peak == 7
        assert gauge.snapshot() == {"value": 2, "peak": 7}
        gauge.reset()
        assert (gauge.value, gauge.peak) == (0, 0)
        assert "g" in repr(gauge)


class TestHistogramExact:
    """Below the cap: every sample stored, percentiles exact nearest-rank."""

    def make(self, values, **kwargs):
        histogram = Histogram("h", **kwargs)
        for value in values:
            histogram.record(value)
        return histogram

    def test_basic_accounting(self):
        histogram = self.make([3.0, 1.0, 2.0])
        assert histogram.count == 3
        assert len(histogram) == 3
        assert histogram.sum == pytest.approx(6.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean == pytest.approx(2.0)
        assert "count=3" in repr(histogram)

    def test_empty(self):
        histogram = Histogram("h")
        assert histogram.mean is None
        assert histogram.percentile(50) is None
        assert histogram.summary() == {"count": 0}
        assert histogram.min is None and histogram.max is None

    def test_percentile_bounds_checked(self):
        histogram = self.make([1.0])
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    # Nearest-rank: rank = clamp(ceil(q/100 * N), 1, N), 1-indexed.  The
    # .5-boundary cases below are exactly where the old round()-based
    # formula went wrong (banker's rounding: round(1.0 + 0.5) == round(2.5)
    # == 2 but round(0.5) == 0), giving inconsistent p50 picks.
    def test_p50_of_two_samples_is_the_lower(self):
        assert self.make([1.0, 2.0]).percentile(50) == 1.0

    def test_p50_of_four_samples_is_the_second(self):
        assert self.make([1.0, 2.0, 3.0, 4.0]).percentile(50) == 2.0

    def test_p50_of_five_samples_is_the_median(self):
        assert self.make([1.0, 2.0, 3.0, 4.0, 5.0]).percentile(50) == 3.0

    def test_p25_of_two_samples(self):
        # ceil(0.5) = 1 -> first sample; round() would have picked rank 0.
        assert self.make([1.0, 2.0]).percentile(25) == 1.0

    def test_p0_is_the_minimum_and_p100_the_maximum(self):
        histogram = self.make([5.0, 1.0, 3.0])
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 5.0

    def test_single_sample_every_percentile(self):
        histogram = self.make([42.0])
        for q in (0, 25, 50, 75, 100):
            assert histogram.percentile(q) == 42.0

    def test_nearest_rank_on_1_to_100(self):
        # The ServiceMetrics latency convention: seconds in, known quantiles.
        histogram = self.make([i / 1000.0 for i in range(1, 101)])
        assert histogram.percentile(50) == pytest.approx(0.050)
        assert histogram.percentile(95) == pytest.approx(0.095)
        assert histogram.percentile(99) == pytest.approx(0.099)

    def test_summary_shape(self):
        summary = self.make([0.001, 0.002, 0.003]).summary()
        assert summary["count"] == 3
        assert summary["mean_ms"] == pytest.approx(2.0)
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["max_ms"] == pytest.approx(3.0)
        assert set(summary) == {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"}

    def test_reset(self):
        histogram = self.make([1.0, 2.0])
        histogram.reset()
        assert histogram.count == 0
        assert len(histogram) == 0
        assert histogram.summary() == {"count": 0}


class TestHistogramReservoir:
    """Beyond the cap: storage bounded, exact aggregates, sane percentiles."""

    def test_storage_is_bounded_but_count_exact(self):
        histogram = Histogram("bounded", max_samples=16)
        for i in range(1000):
            histogram.record(float(i))
        assert len(histogram) == 16
        assert histogram.count == 1000
        assert histogram.sum == pytest.approx(sum(range(1000)))
        assert histogram.min == 0.0
        assert histogram.max == 999.0
        assert histogram.mean == pytest.approx(499.5)

    def test_default_cap(self):
        assert Histogram("h").max_samples == DEFAULT_MAX_SAMPLES

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h", max_samples=0)

    def test_exact_until_the_cap(self):
        histogram = Histogram("h", max_samples=10)
        for i in range(10):
            histogram.record(float(i))
        assert sorted(histogram.samples) == [float(i) for i in range(10)]
        assert histogram.percentile(100) == 9.0

    def test_reservoir_holds_only_recorded_values(self):
        histogram = Histogram("h", max_samples=8)
        values = [random.Random(7).uniform(0, 1) for _ in range(500)]
        for value in values:
            histogram.record(value)
        assert all(sample in values for sample in histogram.samples)
        percentile = histogram.percentile(50)
        assert min(values) <= percentile <= max(values)

    def test_reservoir_is_deterministic_per_name(self):
        def fill(name):
            histogram = Histogram(name, max_samples=8)
            for i in range(200):
                histogram.record(float(i))
            return histogram.samples

        assert fill("same") == fill("same")

    def test_reservoir_is_roughly_uniform(self):
        # With a 128-slot reservoir over 0..9999 the sample mean should land
        # near the population mean — a coarse sanity bound, not a sharp one.
        histogram = Histogram("uniformity", max_samples=128)
        for i in range(10000):
            histogram.record(float(i))
        mean_of_samples = sum(histogram.samples) / len(histogram.samples)
        assert abs(mean_of_samples - 4999.5) < 1500


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        assert registry.counter("a") is counter
        gauge = registry.gauge("b")
        assert registry.gauge("b") is gauge
        histogram = registry.histogram("c", max_samples=4)
        assert registry.histogram("c") is histogram

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_reset_zeroes_in_place_preserving_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("lat")
        counter.inc(5)
        histogram.record(1.0)
        registry.reset()
        assert registry.counter("hits") is counter
        assert counter.value == 0
        assert histogram.count == 0

    def test_names_len_contains_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1)
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry and "missing" not in registry
        snapshot = registry.snapshot()
        assert snapshot["b"] == 2
        assert snapshot["a"] == {"value": 1, "peak": 1}

    def test_global_registry_is_a_singleton(self):
        assert get_metrics() is get_metrics()
        assert isinstance(get_metrics(), MetricsRegistry)

    def test_latency_histogram_is_the_histogram(self):
        assert LatencyHistogram is Histogram
