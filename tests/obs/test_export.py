"""Exporters: native documents, Chrome trace schema, lanes, text tree."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    load_trace_document,
    render_span_tree,
    trace_document,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.export import TRACE_DOCUMENT_VERSION


def span_dict(name, start, end, children=(), **attributes):
    return {
        "name": name,
        "start_s": start,
        "end_s": end,
        "attributes": attributes,
        "children": list(children),
    }


def sample_tracer():
    tracer = Tracer(enabled=True)
    with tracer.span("compile.advanced", n_terms=3):
        with tracer.span("pipeline.run"):
            with tracer.span("pipeline.sort"):
                pass
    return tracer


class TestTraceDocument:
    def test_document_shape_and_round_trip(self, tmp_path):
        tracer = sample_tracer()
        metrics = MetricsRegistry()
        metrics.counter("hits").inc(2)
        document = trace_document(tracer, metrics=metrics, label="test")
        assert document["version"] == TRACE_DOCUMENT_VERSION
        assert document["label"] == "test"
        assert document["metrics"] == {"hits": 2}
        assert document["spans"][0]["name"] == "compile.advanced"

        path = tmp_path / "trace.json"
        write_trace(path, document)
        loaded = load_trace_document(json.loads(path.read_text()))
        assert loaded == document

    def test_document_without_metrics(self):
        assert trace_document([])["metrics"] == {}

    def test_document_accepts_span_dicts(self):
        spans = [span_dict("s", 0.0, 1.0)]
        assert trace_document(spans)["spans"] == spans

    def test_load_rejects_non_documents(self):
        with pytest.raises(ValueError, match="missing 'spans'"):
            load_trace_document({"version": 1})
        with pytest.raises(ValueError, match="missing 'spans'"):
            load_trace_document([1, 2])

    def test_load_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            load_trace_document({"version": 999, "spans": []})


class TestChromeTrace:
    def test_metadata_event_then_complete_events(self):
        chrome = chrome_trace(sample_tracer(), process_name="unit")
        events = chrome["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"] == {"name": "unit"}
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == [
            "compile.advanced",
            "pipeline.run",
            "pipeline.sort",
        ]
        assert validate_chrome_trace(chrome) == 3

    def test_microsecond_units_and_category(self):
        spans = [span_dict("pipeline.sort", 0.5, 1.5, n=2)]
        (meta, event) = chrome_trace(spans)["traceEvents"]
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(1.0e6)
        assert event["cat"] == "pipeline"
        assert event["args"] == {"n": 2}

    def test_overlapping_roots_get_distinct_lanes(self):
        overlapping = [
            span_dict("job-a", 0.0, 2.0),
            span_dict("job-b", 1.0, 3.0),  # overlaps job-a
            span_dict("job-c", 2.5, 4.0),  # fits after job-a on lane 0
        ]
        events = [e for e in chrome_trace(overlapping)["traceEvents"] if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["job-a"] != tids["job-b"]
        assert tids["job-c"] == tids["job-a"]

    def test_children_share_the_root_lane(self):
        root = span_dict("root", 0.0, 2.0, children=[span_dict("child", 0.5, 1.0)])
        events = [e for e in chrome_trace([root])["traceEvents"] if e["ph"] == "X"]
        assert events[0]["tid"] == events[1]["tid"]

    def test_empty_forest_is_valid(self):
        chrome = chrome_trace([])
        assert validate_chrome_trace(chrome) == 0


class TestValidateChromeTrace:
    def test_rejects_non_objects(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_missing_keys(self):
        with pytest.raises(ValueError, match="missing 'ph'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "pid": 1, "tid": 0}]}
            )

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Q", "pid": 1, "tid": 0}]}
            )

    def test_rejects_complete_event_without_timing(self):
        with pytest.raises(ValueError, match="ts and dur"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0}]}
            )

    def test_rejects_negative_timing(self):
        event = {"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 2}
        with pytest.raises(ValueError, match="negative"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_unserializable_payloads(self):
        event = {
            "name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 1,
            "args": {"bad": object()},
        }
        with pytest.raises(TypeError):
            validate_chrome_trace({"traceEvents": [event]})


class TestRenderSpanTree:
    def test_renders_names_durations_attributes(self):
        text = render_span_tree(sample_tracer())
        lines = text.splitlines()
        assert lines[0].startswith("compile.advanced")
        assert "[n_terms=3]" in lines[0]
        assert lines[1].startswith("  pipeline.run")
        assert lines[2].startswith("    pipeline.sort")
        assert all("ms" in line for line in lines)
        assert "(100.0%)" in lines[0]

    def test_percentages_are_relative_to_the_root(self):
        root = span_dict("root", 0.0, 2.0, children=[span_dict("half", 0.0, 1.0)])
        text = render_span_tree([root])
        assert "( 50.0%)" in text

    def test_zero_duration_root_renders_without_percentages(self):
        text = render_span_tree([span_dict("instant", 1.0, 1.0)])
        assert "%" not in text

    def test_empty_forest(self):
        assert render_span_tree([]) == "(no spans collected)"
        assert render_span_tree(Tracer(enabled=True)) == "(no spans collected)"
