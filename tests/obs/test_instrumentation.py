"""End-to-end instrumentation: spans/counters from compile, route, verify, serve."""

import asyncio

import pytest

from repro.api import (
    CompileCache,
    CompileRequest,
    CompilerConfig,
    compile_batch,
    get_backend,
)
from repro.api.batch import _compile_job_traced
from repro.chemistry import (
    build_molecular_hamiltonian,
    clear_scf_cache,
    make_molecule,
    run_rhf,
)
from repro.circuits import Circuit
from repro.circuits.gates import cnot
from repro.hardware import route_circuit, topology_for
from repro.hardware.routing import naive_route_circuit
from repro.hardware.synthesis import routed_exponential_sequence_circuit
from repro.obs import get_metrics, tracing
from repro.operators import PauliString
from repro.service import CompileService
from repro.verify import check_equivalence
from repro.vqe import ExcitationTerm

FAST = CompilerConfig(gamma_steps=5, sorting_population=8, sorting_generations=5, seed=0)

#: The six Fig. 2 stages the pipeline must cover in every trace.
PIPELINE_STAGES = (
    "pipeline.classify",
    "pipeline.schedule_hybrid",
    "pipeline.gamma_search",
    "pipeline.transform",
    "pipeline.sort",
    "pipeline.account",
)


def small_request(index=0):
    return CompileRequest(
        terms=(
            ExcitationTerm(creation=(4, 5), annihilation=(0, 1)),
            ExcitationTerm(creation=(2 + index,), annihilation=(0,)),
        ),
        n_qubits=8,
        config=FAST,
    )


def names_of(tracer):
    return [span.name for span in (s for root in tracer.roots for s in root.walk())]


class TestCompileSpans:
    def test_advanced_compile_covers_all_six_stages(self):
        with tracing() as tracer:
            result = get_backend("advanced").compile(small_request())
        names = names_of(tracer)
        assert names[0] == "compile.advanced"
        assert "pipeline.run" in names
        for stage in PIPELINE_STAGES:
            assert stage in names, stage
        (root,) = tracer.roots
        assert root.attributes["cnot_count"] == result.cnot_count

    def test_stage_timings_on_the_result(self):
        result = get_backend("advanced").compile(small_request())
        assert result.stage_timings is not None
        assert sorted(result.stage_timings) == sorted(
            stage.split(".", 1)[1] for stage in PIPELINE_STAGES
        )
        assert all(seconds >= 0.0 for seconds in result.stage_timings.values())

    def test_naive_and_baseline_backends_open_spans(self):
        request = small_request()
        with tracing() as tracer:
            get_backend("jw").compile(request)
            get_backend("baseline").compile(request)
        roots = [root.name for root in tracer.roots]
        assert roots == ["compile.jordan-wigner", "compile.baseline"]

    def test_disabled_tracer_collects_no_spans(self):
        """The no-op regression: an untraced compile must add zero spans."""
        with tracing(enabled=False) as tracer:
            result = get_backend("advanced").compile(small_request())
        assert tracer.roots == []
        assert tracer.export() == []
        assert result.stage_timings  # timings are collected regardless

    def test_compile_batch_span_counts_jobs(self):
        with tracing() as tracer:
            compile_batch([small_request()], backends=("jw", "advanced"))
        (root,) = tracer.roots
        assert root.name == "batch.compile_batch"
        assert root.attributes["n_requests"] == 1
        assert root.attributes["n_jobs"] == 2
        assert root.attributes["backends"] == "jordan-wigner,advanced"
        children = [child.name for child in root.children]
        assert children == ["compile.jordan-wigner", "compile.advanced"]

    def test_compile_batch_collects_worker_spans_from_the_pool(self):
        requests = [small_request(0), small_request(1)]
        with tracing() as tracer:
            batch = compile_batch(requests, backends="advanced", workers=2)
        assert len(batch.results) == 2
        (root,) = tracer.roots
        adopted = [child.name for child in root.children]
        assert adopted == ["compile.advanced", "compile.advanced"]
        for child in root.children:
            assert root.start <= child.start
            assert any(g.name == "pipeline.run" for g in child.walk())

    def test_compile_job_traced_exports_the_worker_forest(self):
        result, spans = _compile_job_traced(("advanced", small_request()))
        assert result.backend == "advanced"
        assert [span["name"] for span in spans] == ["compile.advanced"]
        assert spans[0]["start_s"] >= 0.0


class TestChemistryInstrumentation:
    def test_scf_span_carries_cache_deltas(self):
        with tracing() as tracer:
            run_rhf(make_molecule("H2"), use_cache=False)
        scf_spans = [s for root in tracer.roots for s in root.walk() if s.name == "chemistry.scf"]
        (span,) = scf_spans
        assert span.attributes["molecule"] == "H2"
        assert span.attributes["converged"] is True
        assert span.attributes["n_iterations"] >= 1
        assert any(key.startswith("integrals.") for key in span.attributes)

    def test_scf_cache_counters(self):
        hits = get_metrics().counter("chemistry.scf.cache_hits")
        misses = get_metrics().counter("chemistry.scf.cache_misses")
        clear_scf_cache()
        hits_before, misses_before = hits.value, misses.value
        run_rhf(make_molecule("H2"))
        run_rhf(make_molecule("H2"))
        assert misses.value == misses_before + 1
        assert hits.value == hits_before + 1

    def test_hamiltonian_span_and_counters(self):
        hits = get_metrics().counter("chemistry.hamiltonian.cache_hits")
        hits_before = hits.value
        scf = run_rhf(make_molecule("H2"), use_cache=False)
        with tracing() as tracer:
            first = build_molecular_hamiltonian(scf)
            second = build_molecular_hamiltonian(scf)
        assert second is first
        assert hits.value == hits_before + 1
        (span,) = [s for r in tracer.roots for s in r.walk() if s.name == "chemistry.hamiltonian"]
        assert span.attributes["molecule"] == "H2"
        assert span.attributes["n_frozen"] == 0


class TestHardwareInstrumentation:
    def circuit(self):
        circuit = Circuit(4)
        circuit.append(cnot(0, 3))
        circuit.append(cnot(1, 2))
        return circuit

    def test_route_span_and_counters(self):
        calls = get_metrics().counter("hardware.route.calls")
        swaps = get_metrics().counter("hardware.route.swaps")
        calls_before, swaps_before = calls.value, swaps.value
        topology = topology_for("line", 4)
        with tracing() as tracer:
            sabre = route_circuit(self.circuit(), topology)
            naive = naive_route_circuit(self.circuit(), topology)
        spans = {s.attributes["strategy"]: s for r in tracer.roots for s in r.walk()}
        assert set(spans) == {"sabre", "naive"}
        assert spans["sabre"].name == spans["naive"].name == "hardware.route"
        assert spans["sabre"].attributes["n_swaps"] == sabre.n_swaps
        assert spans["naive"].attributes["n_swaps"] == naive.n_swaps
        assert spans["sabre"].attributes["topology"] == "line-4"
        assert calls.value == calls_before + 2
        assert swaps.value == swaps_before + sabre.n_swaps + naive.n_swaps

    def test_steered_synthesis_span(self):
        topology = topology_for("line", 4)
        sequence = [(PauliString("ZZZZ"), 0.3, None)]
        with tracing() as tracer:
            circuit = routed_exponential_sequence_circuit(sequence, topology)
        (span,) = [s for r in tracer.roots for s in r.walk()]
        assert span.name == "hardware.steered_synthesis"
        assert span.attributes["n_terms"] == 1
        assert span.attributes["n_gates"] == len(circuit.gates)


class TestVerifyInstrumentation:
    def test_span_and_counters_follow_the_dispatch(self):
        verdicts = get_metrics().counter("verify.verdict.equivalent")
        tableau = get_metrics().counter("verify.engine.tableau")
        verdicts_before, tableau_before = verdicts.value, tableau.value
        a = Circuit(3)
        a.append(cnot(0, 1))
        b = Circuit(3)
        b.append(cnot(0, 1))
        with tracing() as tracer:
            report = check_equivalence(a, b)
        assert report.equivalent
        (span,) = [s for r in tracer.roots for s in r.walk()]
        assert span.name == "verify.check"
        assert span.attributes["engine"] == report.engine == "tableau"
        assert span.attributes["equivalent"] is True
        assert span.attributes["requested"] == "auto"
        assert tableau.value == tableau_before + 1
        assert verdicts.value == verdicts_before + 1

    def test_forced_engine_recorded(self):
        a = Circuit(2)
        b = Circuit(2)
        with tracing() as tracer:
            check_equivalence(a, b, engine="dense")
        (span,) = tracer.roots
        assert span.attributes["requested"] == "dense"
        assert span.attributes["engine"] == "dense"
        different = get_metrics().counter("verify.verdict.different")
        before = different.value
        check_equivalence(Circuit(2), Circuit(3))
        assert different.value == before + 1


class TestServiceInstrumentation:
    def run(self, coro):
        return asyncio.run(coro)

    def test_traced_job_covers_lookup_compute_and_worker_spans(self):
        async def main():
            with tracing() as tracer:
                async with CompileService() as service:
                    job = await service.submit(small_request(), backend="advanced")
                    await service.result(job)
                    repeat = await service.submit(small_request(), backend="advanced")
                    await service.result(repeat)
            return tracer

        tracer = self.run(main())
        jobs = [root for root in tracer.roots if root.name == "service.job"]
        assert len(jobs) == 2
        cold, warm = jobs
        assert cold.attributes["tier"] == "compute"
        assert warm.attributes["tier"] == "memory"
        cold_children = [child.name for child in cold.children]
        assert cold_children == ["service.lookup", "service.compute"]
        compute = cold.children[1]
        adopted = [child.name for child in compute.children]
        assert adopted == ["compile.advanced"]
        assert any(s.name == "pipeline.sort" for s in compute.walk())
        assert [child.name for child in warm.children] == ["service.lookup"]

    def test_untraced_service_collects_nothing(self):
        async def main():
            with tracing(enabled=False) as tracer:
                async with CompileService() as service:
                    result = await service.compile(small_request(), backend="advanced")
            return tracer, result

        tracer, result = self.run(main())
        assert tracer.roots == []
        assert result.cnot_count > 0
