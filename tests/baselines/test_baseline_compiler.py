"""Tests for the prior-art baseline compiler (GT column of Table I)."""

import numpy as np
import pytest

from repro.baselines import (
    BOSONIC_TERM_CNOT_COST,
    BaselineCompiler,
    naive_cnot_count,
)
from repro.transforms import (
    BravyiKitaevTransform,
    JordanWignerTransform,
    is_upper_triangular,
)
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


@pytest.fixture
def mixed_terms():
    return [
        term((4, 5), (0, 1)),     # bosonic
        term((4, 5), (0, 3)),     # hybrid
        term((4, 7), (0, 3)),     # fermionic
        term((6,), (0,)),         # single
    ]


class TestNaiveCompilation:
    def test_empty_terms(self):
        assert naive_cnot_count([], JordanWignerTransform(4)) == 0

    def test_single_bosonic_double_under_jw(self):
        # One double excitation expands to eight weight-4 strings; consecutive
        # strings with a shared target cancel heavily but the result is
        # strictly positive and bounded by the un-cancelled cost.
        count = naive_cnot_count([term((2, 3), (0, 1))], JordanWignerTransform(4))
        assert 0 < count <= 8 * 6

    def test_jw_and_bk_generally_differ(self, mixed_terms):
        jw = naive_cnot_count(mixed_terms, JordanWignerTransform(8))
        bk = naive_cnot_count(mixed_terms, BravyiKitaevTransform(8))
        assert jw > 0 and bk > 0

    def test_count_grows_with_more_terms(self, mixed_terms):
        transform = JordanWignerTransform(8)
        shorter = naive_cnot_count(mixed_terms[:2], transform)
        longer = naive_cnot_count(mixed_terms, transform)
        assert longer > shorter


class TestBaselineCompiler:
    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            BaselineCompiler().compile([])

    def test_bosonic_terms_compressed(self, mixed_terms):
        result = BaselineCompiler().compile(mixed_terms, n_qubits=8)
        assert result.n_compressed_terms == 1
        assert result.bosonic_cnot_count == BOSONIC_TERM_CNOT_COST

    def test_compression_can_be_disabled(self, mixed_terms):
        with_compression = BaselineCompiler().compile(mixed_terms, n_qubits=8)
        without = BaselineCompiler(use_bosonic_encoding=False).compile(mixed_terms, n_qubits=8)
        assert without.n_compressed_terms == 0
        assert without.cnot_count >= with_compression.cnot_count

    def test_baseline_not_worse_than_naive_jw(self, mixed_terms):
        baseline = BaselineCompiler().compile(mixed_terms, n_qubits=8).cnot_count
        naive = naive_cnot_count(mixed_terms, JordanWignerTransform(8))
        assert baseline <= naive

    def test_identity_transform_by_default(self, mixed_terms):
        result = BaselineCompiler().compile(mixed_terms, n_qubits=8)
        assert np.array_equal(result.transform_matrix, np.eye(8, dtype=np.uint8))

    def test_explicit_transform_used(self, mixed_terms):
        gamma = np.eye(8, dtype=np.uint8)
        gamma[0, 3] = 1
        result = BaselineCompiler(transform_matrix=gamma).compile(mixed_terms, n_qubits=8)
        assert np.array_equal(result.transform_matrix, gamma)

    def test_rotations_have_valid_targets(self, mixed_terms):
        result = BaselineCompiler().compile(mixed_terms, n_qubits=8)
        for string, target in result.ordered_rotations:
            assert target in string.support

    def test_cnot_count_is_sum_of_segments(self, mixed_terms):
        result = BaselineCompiler().compile(mixed_terms, n_qubits=8)
        assert result.cnot_count == result.bosonic_cnot_count + result.rotation_cnot_count


class TestPsoTransformSearch:
    def test_search_returns_upper_triangular_invertible(self, mixed_terms):
        compiler = BaselineCompiler()
        gamma = compiler.search_transform(
            mixed_terms, n_qubits=8, n_particles=4, iterations=2,
            rng=np.random.default_rng(0),
        )
        assert is_upper_triangular(gamma)
        assert np.all(np.diag(gamma) == 1)

    def test_search_does_not_hurt(self, mixed_terms):
        reference = BaselineCompiler().compile(mixed_terms, n_qubits=8).cnot_count
        compiler = BaselineCompiler()
        compiler.search_transform(
            mixed_terms, n_qubits=8, n_particles=4, iterations=3,
            rng=np.random.default_rng(1),
        )
        searched = compiler.compile(mixed_terms, n_qubits=8).cnot_count
        # PSO is seeded with the identity, so the best found is never worse.
        assert searched <= reference
