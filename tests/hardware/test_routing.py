"""Router invariants: connectivity-legality, unitary equivalence, determinism.

The two hard guarantees of ``repro.hardware.routing`` (see the ISSUE
acceptance criteria):

* every two-qubit gate of a routed circuit lies on a topology edge;
* the routed circuit is unitary-equivalent to the unrouted one up to the
  reported logical-to-physical permutation — checked on dense unitaries for
  random circuits of up to 6 qubits and for the H2 UCCSD ansatz.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, cnot, hadamard, rz
from repro.circuits.gates import Gate
from repro.hardware import (
    SWAP_CNOT_COST,
    Topology,
    decompose_swaps,
    naive_route_circuit,
    route_circuit,
)

TOPOLOGIES_4 = [Topology.line(4), Topology.ring(4), Topology.grid(2, 2)]


def random_circuit(n_qubits: int, n_gates: int, seed: int) -> Circuit:
    rng = np.random.default_rng(seed)
    circuit = Circuit(n_qubits)
    for _ in range(n_gates):
        kind = rng.integers(0, 3)
        if kind == 0:
            circuit.append(hadamard(int(rng.integers(n_qubits))))
        elif kind == 1:
            circuit.append(rz(int(rng.integers(n_qubits)), float(rng.uniform(0, 2))))
        else:
            a, b = rng.choice(n_qubits, size=2, replace=False)
            circuit.append(cnot(int(a), int(b)))
    return circuit


def assert_connectivity_legal(circuit: Circuit, topology: Topology):
    for gate in circuit:
        if gate.is_two_qubit:
            assert topology.is_edge(*gate.qubits), f"{gate} off the coupling graph"


def assert_routed_equivalent(result, original: Circuit):
    """Routed circuit + permutation undo == original (embedded), exactly."""
    undone = result.circuit.compose(result.undo_permutation_circuit())
    n_physical = result.circuit.n_qubits
    embedded = Circuit(n_physical, list(original.gates))
    assert undone.equals_up_to_global_phase(embedded)


class TestRouteCircuit:
    @pytest.mark.parametrize("topology", TOPOLOGIES_4, ids=lambda t: t.name)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_circuits_legal_and_equivalent(self, topology, seed):
        original = random_circuit(4, 24, seed)
        result = route_circuit(original, topology, seed=0)
        assert_connectivity_legal(result.circuit, topology)
        assert_routed_equivalent(result, original)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_six_qubit_line_routing(self, seed):
        original = random_circuit(6, 20, seed)
        result = route_circuit(original, Topology.line(6), seed=0)
        assert_connectivity_legal(result.circuit, Topology.line(6))
        assert_routed_equivalent(result, original)

    def test_already_legal_circuit_needs_no_swaps(self):
        line = Topology.line(4)
        original = Circuit(4, [cnot(0, 1), cnot(1, 2), rz(2, 0.4), cnot(2, 3)])
        result = route_circuit(original, line)
        assert result.n_swaps == 0
        assert result.final_layout == result.initial_layout == (0, 1, 2, 3)
        assert [g for g in result.circuit] == [g for g in original]

    def test_all_to_all_never_swaps(self):
        original = random_circuit(5, 30, seed=7)
        result = route_circuit(original, Topology.all_to_all(5))
        assert result.n_swaps == 0

    def test_deterministic_for_fixed_seed(self):
        original = random_circuit(5, 30, seed=3)
        line = Topology.line(5)
        first = route_circuit(original, line, seed=42)
        second = route_circuit(original, line, seed=42)
        assert first.circuit.gates == second.circuit.gates
        assert first.final_layout == second.final_layout
        # seed None is pinned to seed 0: routing never draws entropy
        assert (
            route_circuit(original, line, seed=None).circuit.gates
            == route_circuit(original, line, seed=0).circuit.gates
        )

    def test_larger_physical_register(self):
        original = random_circuit(3, 12, seed=5)
        grid = Topology.grid(2, 3)
        result = route_circuit(original, grid)
        assert result.circuit.n_qubits == 6
        assert_connectivity_legal(result.circuit, grid)
        assert_routed_equivalent(result, original)

    def test_custom_initial_layout(self):
        original = Circuit(3, [cnot(0, 2), cnot(1, 0)])
        line = Topology.line(3)
        result = route_circuit(original, line, initial_layout=[2, 1, 0])
        assert result.initial_layout == (2, 1, 0)
        assert_connectivity_legal(result.circuit, line)
        # undo returns logical qubits to the *initial* layout, so compare
        # against the original conjugated onto that placement.
        undone = result.circuit.compose(result.undo_permutation_circuit())
        placed = Circuit(3, [Gate("SWAP", (0, 2))]).compose(
            Circuit(3, list(original.gates))
        ).compose(Circuit(3, [Gate("SWAP", (0, 2))]))
        assert undone.equals_up_to_global_phase(placed)

    def test_invalid_inputs_rejected(self):
        line = Topology.line(2)
        with pytest.raises(ValueError, match="has 2 qubits"):
            route_circuit(random_circuit(4, 4, 0), line)
        split = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="disconnected"):
            route_circuit(random_circuit(4, 4, 0), split)
        with pytest.raises(ValueError, match="initial_layout"):
            route_circuit(random_circuit(3, 4, 0), Topology.line(3), initial_layout=[0, 1])
        with pytest.raises(ValueError, match="not an injection"):
            route_circuit(
                random_circuit(3, 4, 0), Topology.line(3), initial_layout=[0, 1, 1]
            )

    def test_stall_escape_still_terminates(self):
        # Absurdly low stall threshold forces the shortest-path fallback.
        original = random_circuit(5, 25, seed=11)
        ring = Topology.ring(5)
        result = route_circuit(original, ring, max_stall=1)
        assert_connectivity_legal(result.circuit, ring)
        assert_routed_equivalent(result, original)


class TestNaiveRouter:
    @pytest.mark.parametrize("topology", TOPOLOGIES_4, ids=lambda t: t.name)
    def test_legal_equivalent_and_permutation_free(self, topology):
        original = random_circuit(4, 20, seed=2)
        result = naive_route_circuit(original, topology)
        assert_connectivity_legal(result.circuit, topology)
        assert result.final_layout == result.initial_layout
        embedded = Circuit(result.circuit.n_qubits, list(original.gates))
        assert result.circuit.equals_up_to_global_phase(embedded)

    def test_swap_count_accounting(self):
        line = Topology.line(4)
        original = Circuit(4, [cnot(0, 3)])
        result = naive_route_circuit(original, line)
        # distance 3 -> 2 swaps in, 2 swaps back out
        assert result.n_swaps == 4
        assert result.routed_cnot_count == 1 + SWAP_CNOT_COST * 4

    def test_size_validation(self):
        with pytest.raises(ValueError, match="has 2 qubits"):
            naive_route_circuit(random_circuit(3, 3, 0), Topology.line(2))


class TestMetricsAndDecomposition:
    def test_decompose_swaps_preserves_unitary(self):
        circuit = Circuit(3, [Gate("SWAP", (0, 2)), cnot(0, 1), hadamard(2)])
        decomposed = decompose_swaps(circuit)
        assert decomposed.count("SWAP") == 0
        assert decomposed.cnot_count == 3 + 1
        assert decomposed.equals_up_to_global_phase(circuit)

    def test_metrics_reflect_decomposed_circuit(self):
        original = Circuit(4, [cnot(0, 3), cnot(1, 2)])
        result = route_circuit(original, Topology.line(4))
        metrics = result.metrics()
        decomposed = result.decomposed()
        assert metrics.topology == "line-4"
        assert metrics.n_swaps == result.n_swaps
        assert metrics.cnot_count == decomposed.cnot_count
        assert metrics.cnot_count == result.routed_cnot_count
        assert metrics.depth == decomposed.depth()
        assert metrics.two_qubit_depth == decomposed.two_qubit_depth()
        assert dict(metrics.gate_histogram) == decomposed.gate_histogram()

    def test_metrics_hashable(self):
        result = route_circuit(Circuit(3, [cnot(0, 2)]), Topology.line(3))
        assert hash(result.metrics()) is not None


class TestInverseLayout:
    def test_inverse_layouts_invert_the_layouts(self):
        original = random_circuit(3, 15, seed=8)
        result = route_circuit(original, Topology.grid(2, 3), seed=0)
        for layout, inverse in [
            (result.initial_layout, result.initial_inverse_layout),
            (result.final_layout, result.final_inverse_layout),
        ]:
            assert len(inverse) == 6
            for logical, physical in enumerate(layout):
                assert inverse[physical] == logical
            occupied = set(layout)
            for physical in range(6):
                if physical not in occupied:
                    assert inverse[physical] == -1

    def test_identity_layout_round_trip(self):
        result = naive_route_circuit(random_circuit(4, 10, seed=1), Topology.line(4))
        assert result.initial_inverse_layout == (0, 1, 2, 3)
        assert result.final_inverse_layout == (0, 1, 2, 3)
