"""Topology model: constructors, BFS caches, validation, hashability."""

import numpy as np
import pytest

from repro.hardware import TOPOLOGY_KINDS, Topology, topology_for


def brute_force_distances(topology: Topology) -> np.ndarray:
    """Floyd-Warshall reference for the BFS distance matrix."""
    n = topology.n_qubits
    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0)
    for a, b in topology.edges:
        dist[a, b] = dist[b, a] = 1
    for k in range(n):
        dist = np.minimum(dist, dist[:, k, None] + dist[None, k, :])
    return np.where(np.isinf(dist), -1, dist).astype(np.int64)


class TestConstructors:
    def test_line(self):
        line = Topology.line(5)
        assert line.n_qubits == 5
        assert line.edges == ((0, 1), (1, 2), (2, 3), (3, 4))
        assert line.distance(0, 4) == 4

    def test_ring_wraps_around(self):
        ring = Topology.ring(6)
        assert ring.n_edges == 6
        assert ring.distance(0, 5) == 1
        assert ring.distance(0, 3) == 3

    def test_ring_of_two_has_single_edge(self):
        assert Topology.ring(2).edges == ((0, 1),)

    def test_grid_shape_and_distances(self):
        grid = Topology.grid(3, 4)
        assert grid.n_qubits == 12
        # interior qubit 5 touches 1, 4, 6, 9
        assert grid.neighbors(5) == (1, 4, 6, 9)
        assert grid.distance(0, 11) == 5  # manhattan distance

    def test_all_to_all(self):
        full = Topology.all_to_all(5)
        assert full.n_edges == 10
        off_diagonal = ~np.eye(5, dtype=bool)
        assert np.all(full.distance_matrix[off_diagonal] == 1)

    def test_heavy_hex_is_connected_with_degree_at_most_three(self):
        for rows, cols in [(1, 1), (1, 2), (2, 2), (3, 2)]:
            hh = Topology.heavy_hex(rows, cols)
            assert hh.is_connected
            assert max(hh.degree(q) for q in range(hh.n_qubits)) <= 3

    def test_heavy_hex_larger_tilings_reach_degree_three(self):
        hh = Topology.heavy_hex(2, 2)
        assert max(hh.degree(q) for q in range(hh.n_qubits)) == 3

    def test_from_edges_normalizes_duplicates_and_order(self):
        topology = Topology.from_edges(3, [(1, 0), (0, 1), (2, 1)], name="demo")
        assert topology.edges == ((0, 1), (1, 2))
        assert topology.name == "demo"

    def test_invalid_edges_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Topology.from_edges(3, [(1, 1)])
        with pytest.raises(ValueError, match="outside"):
            Topology.from_edges(3, [(0, 3)])
        with pytest.raises(ValueError, match="exactly two"):
            Topology.from_edges(3, [(0, 1, 2)])
        with pytest.raises(ValueError, match="at least one qubit"):
            Topology(n_qubits=0, edges=())
        with pytest.raises(ValueError, match="positive"):
            Topology.grid(0, 3)
        with pytest.raises(ValueError, match="positive"):
            Topology.heavy_hex(0, 1)


class TestGraphQueries:
    @pytest.mark.parametrize(
        "topology",
        [
            Topology.line(7),
            Topology.ring(6),
            Topology.grid(3, 3),
            Topology.heavy_hex(1, 1),
            Topology.all_to_all(5),
        ],
        ids=lambda t: t.name,
    )
    def test_distance_matrix_matches_floyd_warshall(self, topology):
        np.testing.assert_array_equal(
            topology.distance_matrix, brute_force_distances(topology)
        )

    @pytest.mark.parametrize(
        "topology",
        [Topology.line(6), Topology.grid(2, 4), Topology.heavy_hex(1, 1)],
        ids=lambda t: t.name,
    )
    def test_shortest_paths_are_valid_and_shortest(self, topology):
        for a in range(topology.n_qubits):
            for b in range(topology.n_qubits):
                path = topology.shortest_path(a, b)
                assert path[0] == a and path[-1] == b
                assert len(path) - 1 == topology.distance(a, b)
                for u, v in zip(path, path[1:]):
                    assert topology.is_edge(u, v)

    def test_disconnected_topology_detected(self):
        split = Topology.from_edges(4, [(0, 1), (2, 3)])
        assert not split.is_connected
        assert split.distance(0, 3) == -1
        with pytest.raises(ValueError, match="disconnected"):
            split.require_connected()
        with pytest.raises(ValueError, match="disconnected"):
            split.shortest_path(0, 2)

    def test_is_edge_and_degree(self):
        line = Topology.line(4)
        assert line.is_edge(1, 2) and line.is_edge(2, 1)
        assert not line.is_edge(0, 2)
        assert not line.is_edge(1, 1)
        assert line.degree(0) == 1 and line.degree(1) == 2

    def test_qubit_validation(self):
        line = Topology.line(3)
        with pytest.raises(ValueError, match="outside"):
            line.neighbors(3)
        with pytest.raises(ValueError, match="outside"):
            line.distance(-1, 0)

    def test_distance_matrix_is_read_only(self):
        line = Topology.line(3)
        with pytest.raises(ValueError):
            line.distance_matrix[0, 1] = 99


class TestHashingAndEquality:
    def test_equal_topologies_hash_equal(self):
        a = Topology.line(4)
        b = Topology.from_edges(4, [(0, 1), (1, 2), (2, 3)], name="line-4")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_edges_differ(self):
        assert Topology.line(4) != Topology.ring(4)

    def test_usable_as_dict_key(self):
        cache = {Topology.line(4): "line", Topology.grid(2, 2): "grid"}
        assert cache[Topology.line(4)] == "line"

    def test_repr_mentions_name_and_size(self):
        text = repr(Topology.grid(2, 3))
        assert "grid-2x3" in text and "n_qubits=6" in text


class TestTopologyFor:
    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    @pytest.mark.parametrize("n", [1, 2, 4, 9, 12])
    def test_covers_requested_size_and_connected(self, kind, n):
        topology = topology_for(kind, n)
        assert topology.n_qubits >= n
        assert topology.is_connected

    def test_exact_kinds(self):
        assert topology_for("line", 5) == Topology.line(5)
        assert topology_for("ring", 5) == Topology.ring(5)
        assert topology_for("all-to-all", 5) == Topology.all_to_all(5)
        grid = topology_for("grid", 12)
        assert grid.n_qubits == 12  # 3x4 exactly covers 12

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            topology_for("torus", 4)
        with pytest.raises(ValueError, match="positive"):
            topology_for("line", 0)
