"""Steered Pauli-exponential synthesis: legality, exactness, cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import pauli_exponential_circuit, pauli_exponential_cnot_count
from repro.hardware import (
    Topology,
    routed_exponential_sequence_circuit,
    routed_pauli_exponential_circuit,
    routed_pauli_exponential_cnot_count,
    steiner_parent_map,
)
from repro.operators import PauliString

TOPOLOGIES = {
    "line": Topology.line(5),
    "ring": Topology.ring(5),
    "grid": Topology.grid(2, 3),
    "all-to-all": Topology.all_to_all(5),
}


def rotation_unitary(string: PauliString, angle: float) -> np.ndarray:
    dim = 2 ** string.n_qubits
    return (
        np.cos(angle / 2.0) * np.eye(dim, dtype=complex)
        - 1j * np.sin(angle / 2.0) * string.to_dense()
    )


def embedded_reference(string: PauliString, angle: float, n_physical: int) -> np.ndarray:
    padded = string.padded(n_physical)
    return rotation_unitary(padded, angle)


def non_identity_labels(n: int):
    return st.text(alphabet="IXYZ", min_size=n, max_size=n).filter(
        lambda s: set(s) != {"I"}
    )


class TestSteeredExponential:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES), ids=str)
    @pytest.mark.parametrize("label", ["XZYXI", "ZIIIZ", "YIXIY", "XXXXX", "IZZII"])
    def test_unitary_and_legality(self, name, label):
        topology = TOPOLOGIES[name]
        string = PauliString(label)
        circuit = routed_pauli_exponential_circuit(string, 0.7, topology)
        assert circuit.n_qubits == topology.n_qubits
        for gate in circuit:
            if gate.is_two_qubit:
                assert topology.is_edge(*gate.qubits)
        np.testing.assert_allclose(
            circuit.to_unitary(),
            embedded_reference(string, 0.7, topology.n_qubits),
            atol=1e-9,
        )

    @given(label=non_identity_labels(5), angle=st.floats(-3.0, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_property_line_synthesis_is_exact(self, label, angle):
        topology = TOPOLOGIES["line"]
        string = PauliString(label)
        circuit = routed_pauli_exponential_circuit(string, angle, topology)
        for gate in circuit:
            if gate.is_two_qubit:
                assert topology.is_edge(*gate.qubits)
        np.testing.assert_allclose(
            circuit.to_unitary(), embedded_reference(string, angle, 5), atol=1e-9
        )

    def test_all_to_all_reduces_to_template_cost(self):
        full = Topology.all_to_all(5)
        for label in ["XZYXI", "ZZZZZ", "IIXYI"]:
            string = PauliString(label)
            assert (
                routed_pauli_exponential_cnot_count(string, full)
                == pauli_exponential_cnot_count(string)
            )
            routed = routed_pauli_exponential_circuit(string, 0.3, full)
            template = pauli_exponential_circuit(string, 0.3)
            assert routed.cnot_count == template.cnot_count

    def test_cost_matches_synthesized_circuit(self):
        for name, topology in TOPOLOGIES.items():
            for label in ["XZYXI", "ZIIIZ", "YIXIY"]:
                string = PauliString(label)
                circuit = routed_pauli_exponential_circuit(string, 0.9, topology)
                assert circuit.cnot_count == routed_pauli_exponential_cnot_count(
                    string, topology
                ), (name, label)

    def test_relay_qubits_cost_two_cnots_per_hop(self):
        # Z..Z across a 5-qubit line: three relay qubits, ladder = 1 + 2*3.
        string = PauliString("ZIIIZ")
        assert routed_pauli_exponential_cnot_count(string, TOPOLOGIES["line"]) == 14
        # Same string on the ring routes the short way round (no relays... one hop via 0-4 edge).
        assert routed_pauli_exponential_cnot_count(string, TOPOLOGIES["ring"]) == 2

    def test_identity_and_weight_one(self):
        line = TOPOLOGIES["line"]
        assert len(routed_pauli_exponential_circuit(PauliString("IIIII"), 0.5, line)) == 0
        single = routed_pauli_exponential_circuit(PauliString("IIZII"), 0.5, line)
        assert single.cnot_count == 0
        np.testing.assert_allclose(
            single.to_unitary(), embedded_reference(PauliString("IIZII"), 0.5, 5),
            atol=1e-9,
        )

    def test_explicit_target(self):
        line = TOPOLOGIES["line"]
        string = PauliString("XIZII")
        circuit = routed_pauli_exponential_circuit(string, 0.4, line, target=0)
        assert circuit.count("RZ") == 1
        rz_gate = next(g for g in circuit if g.name == "RZ")
        assert rz_gate.qubits == (0,)
        np.testing.assert_allclose(
            circuit.to_unitary(), embedded_reference(string, 0.4, 5), atol=1e-9
        )

    def test_too_small_topology_rejected(self):
        with pytest.raises(ValueError, match="has 3 qubits"):
            routed_pauli_exponential_circuit(PauliString("XXXX"), 0.1, Topology.line(3))

    def test_disconnected_support_rejected(self):
        split = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="cannot reach"):
            routed_pauli_exponential_circuit(PauliString("XIIX"), 0.1, split)


class TestSteinerParentMap:
    def test_paths_union_forms_tree_toward_root(self):
        grid = Topology.grid(2, 3)
        parent = steiner_parent_map(grid, [0, 2, 5], root=4)
        # every terminal walks parent pointers to the root
        for terminal in (0, 2, 5):
            node, hops = terminal, 0
            while node != 4:
                node = parent[node]
                hops += 1
                assert hops <= grid.n_qubits
        # parent edges are topology edges
        for child, up in parent.items():
            assert grid.is_edge(child, up)

    def test_root_validation(self):
        with pytest.raises(ValueError, match="outside"):
            steiner_parent_map(Topology.line(3), [0], root=5)


class TestSequenceSynthesis:
    def test_sequence_matches_rotation_product(self):
        line = Topology.line(4)
        sequence = [
            (PauliString("XZYI"), 0.3, None),
            (PauliString("IZZX"), -0.8, 3),
            (PauliString("ZIIZ"), 0.5, None),
        ]
        circuit = routed_exponential_sequence_circuit(sequence, line)
        for gate in circuit:
            if gate.is_two_qubit:
                assert line.is_edge(*gate.qubits)
        reference = np.eye(2 ** 4, dtype=complex)
        for string, angle, _ in sequence:
            reference = rotation_unitary(string, angle) @ reference
        np.testing.assert_allclose(circuit.to_unitary(), reference, atol=1e-9)

    def test_empty_sequence(self):
        circuit = routed_exponential_sequence_circuit([], Topology.line(3))
        assert len(circuit) == 0 and circuit.n_qubits == 3
