"""Unit tests for simulated annealing."""

import numpy as np
import pytest

from repro.optimizers import AnnealingSchedule, simulated_annealing


class TestSchedule:
    def test_temperature_endpoints(self):
        schedule = AnnealingSchedule(initial_temperature=2.0, final_temperature=0.01, n_steps=100)
        assert np.isclose(schedule.temperature(0), 2.0)
        assert np.isclose(schedule.temperature(99), 0.01)

    def test_temperature_monotone_decreasing(self):
        schedule = AnnealingSchedule(n_steps=50)
        temps = [schedule.temperature(s) for s in range(50)]
        assert all(a >= b for a, b in zip(temps, temps[1:]))

    def test_invalid_schedules(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=-1.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(final_temperature=5.0, initial_temperature=1.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(n_steps=0)

    def test_single_step_schedule(self):
        schedule = AnnealingSchedule(n_steps=1)
        assert schedule.temperature(0) == schedule.initial_temperature


class TestAnnealing:
    def test_minimizes_quadratic_over_integers(self):
        def energy(x):
            return (x - 7) ** 2

        def neighbor(x, rng):
            return x + int(rng.integers(-2, 3))

        result = simulated_annealing(
            0, energy, neighbor,
            schedule=AnnealingSchedule(n_steps=3000),
            rng=np.random.default_rng(0),
        )
        assert result.best_state == 7
        assert result.best_energy == 0

    def test_minimizes_binary_objective(self):
        target = np.array([1, 0, 1, 1, 0, 1, 0, 0], dtype=np.uint8)

        def energy(x):
            return int(np.sum(x != target))

        def neighbor(x, rng):
            flipped = x.copy()
            index = int(rng.integers(len(x)))
            flipped[index] ^= 1
            return flipped

        result = simulated_annealing(
            np.zeros(8, dtype=np.uint8), energy, neighbor,
            schedule=AnnealingSchedule(n_steps=2000),
            rng=np.random.default_rng(1),
        )
        assert result.best_energy == 0
        assert np.array_equal(result.best_state, target)

    def test_never_reports_worse_than_initial(self):
        def energy(x):
            return float(x)

        def neighbor(x, rng):
            return x + float(rng.normal())

        result = simulated_annealing(
            5.0, energy, neighbor,
            schedule=AnnealingSchedule(n_steps=200),
            rng=np.random.default_rng(2),
        )
        assert result.best_energy <= 5.0

    def test_trace_recording(self):
        result = simulated_annealing(
            0,
            lambda x: x * x,
            lambda x, rng: x + int(rng.integers(-1, 2)),
            schedule=AnnealingSchedule(n_steps=50),
            rng=np.random.default_rng(3),
            record_trace=True,
        )
        assert len(result.energy_trace) == 50
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_deterministic_with_seed(self):
        def run():
            return simulated_annealing(
                0,
                lambda x: abs(x - 3),
                lambda x, rng: x + int(rng.integers(-1, 2)),
                schedule=AnnealingSchedule(n_steps=100),
                rng=np.random.default_rng(42),
            )

        assert run().best_state == run().best_state
