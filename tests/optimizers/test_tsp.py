"""Unit tests for the simple TSP heuristics."""

import numpy as np
import pytest

from repro.optimizers import nearest_neighbor_tour, solve_tsp, tour_length, two_opt


def grid_points(n):
    rng = np.random.default_rng(7)
    return [tuple(p) for p in rng.random((n, 2))]


def euclidean(a, b):
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


class TestTourLength:
    def test_empty_and_single(self):
        assert tour_length([], euclidean) == 0.0
        assert tour_length([(0, 0)], euclidean) == 0.0

    def test_square_cycle(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert np.isclose(tour_length(square, euclidean), 4.0)

    def test_open_path(self):
        square = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert np.isclose(tour_length(square, euclidean, cyclic=False), 3.0)


class TestNearestNeighbor:
    def test_visits_every_vertex_once(self):
        points = grid_points(10)
        tour = nearest_neighbor_tour(points, euclidean)
        assert sorted(tour) == sorted(points)

    def test_start_vertex_respected(self):
        points = grid_points(5)
        tour = nearest_neighbor_tour(points, euclidean, start=points[3])
        assert tour[0] == points[3]

    def test_invalid_start_rejected(self):
        with pytest.raises(ValueError):
            nearest_neighbor_tour([(0, 0)], euclidean, start=(9, 9))

    def test_empty_input(self):
        assert nearest_neighbor_tour([], euclidean) == []


class TestTwoOpt:
    def test_never_worse(self):
        points = grid_points(12)
        initial = list(points)
        improved = two_opt(initial, euclidean)
        assert tour_length(improved, euclidean) <= tour_length(initial, euclidean) + 1e-9
        assert sorted(improved) == sorted(points)

    def test_small_tours_returned_unchanged(self):
        points = grid_points(3)
        assert two_opt(points, euclidean) == list(points)

    def test_untangles_crossed_square(self):
        crossed = [(0, 0), (1, 1), (1, 0), (0, 1)]
        improved = two_opt(crossed, euclidean)
        assert np.isclose(tour_length(improved, euclidean), 4.0)


class TestSolveTsp:
    def test_square_optimal(self):
        square = [(0, 0), (1, 1), (1, 0), (0, 1)]
        tour = solve_tsp(square, euclidean, rng=np.random.default_rng(0))
        assert np.isclose(tour_length(tour, euclidean), 4.0)

    def test_empty(self):
        assert solve_tsp([], euclidean) == []

    def test_visits_all(self):
        points = grid_points(15)
        tour = solve_tsp(points, euclidean, rng=np.random.default_rng(1))
        assert sorted(tour) == sorted(points)
