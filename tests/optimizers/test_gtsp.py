"""Unit tests for the GTSP genetic algorithm."""

import numpy as np
import pytest

from repro.optimizers import GtspProblem, brute_force_gtsp, solve_gtsp


def euclidean_problem(points_by_cluster):
    """Build a GTSP instance from clusters of 2D points."""
    clusters = [list(range_start) for range_start in points_by_cluster]

    coordinates = {}
    clusters = []
    for cluster_index, points in enumerate(points_by_cluster):
        cluster = []
        for point_index, point in enumerate(points):
            vertex = (cluster_index, point_index)
            coordinates[vertex] = np.asarray(point, dtype=float)
            cluster.append(vertex)
        clusters.append(cluster)

    def weight(u, v):
        return float(np.linalg.norm(coordinates[u] - coordinates[v]))

    return GtspProblem(clusters=clusters, weight=weight)


class TestProblemValidation:
    def test_empty_clusters_rejected(self):
        with pytest.raises(ValueError):
            GtspProblem(clusters=[], weight=lambda u, v: 0.0)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            GtspProblem(clusters=[[1], []], weight=lambda u, v: 0.0)

    def test_tour_cost_checks_coverage(self):
        problem = GtspProblem(clusters=[[0], [1]], weight=lambda u, v: 1.0)
        with pytest.raises(ValueError):
            problem.tour_cost([(0, 0)])
        with pytest.raises(ValueError):
            problem.tour_cost([(0, 0), (0, 0)])

    def test_single_cluster_tour_costs_zero(self):
        problem = GtspProblem(clusters=[["a", "b"]], weight=lambda u, v: 5.0)
        assert problem.tour_cost([(0, "a")]) == 0.0


class TestSolver:
    def test_matches_brute_force_on_small_instance(self):
        problem = euclidean_problem(
            [
                [(0, 0), (0, 1)],
                [(5, 0), (5, 1)],
                [(10, 0), (10, 5)],
                [(2, 8), (3, 9)],
            ]
        )
        exact = brute_force_gtsp(problem)
        found = solve_gtsp(
            problem, population_size=30, generations=40, rng=np.random.default_rng(0)
        )
        assert found.cost <= exact.cost + 1e-9

    def test_tour_visits_every_cluster_once(self):
        problem = euclidean_problem([[(i, j) for j in range(3)] for i in range(6)])
        result = solve_gtsp(
            problem, population_size=20, generations=20, rng=np.random.default_rng(1)
        )
        visited = sorted(cluster for cluster, _ in result.tour)
        assert visited == list(range(6))

    def test_negative_weights_supported(self):
        # The advanced-sorting use case negates CNOT savings, so weights are <= 0.
        rng = np.random.default_rng(2)
        savings = rng.integers(0, 5, size=(8, 8))

        def weight(u, v):
            return -float(savings[u[1], v[1]])

        clusters = [[(c, v) for v in range(c, c + 2)] for c in range(0, 6, 2)]
        problem = GtspProblem(clusters=clusters, weight=weight)
        result = solve_gtsp(problem, population_size=16, generations=20, rng=rng)
        assert result.cost <= 0.0

    def test_single_cluster_instance(self):
        problem = GtspProblem(clusters=[["a", "b", "c"]], weight=lambda u, v: 1.0)
        result = solve_gtsp(problem, population_size=4, generations=3, rng=np.random.default_rng(0))
        assert result.cost == 0.0
        assert len(result.tour) == 1

    def test_invalid_population_size(self):
        problem = GtspProblem(clusters=[["a"]], weight=lambda u, v: 1.0)
        with pytest.raises(ValueError):
            solve_gtsp(problem, population_size=1)

    def test_brute_force_size_guard(self):
        problem = GtspProblem(clusters=[[i] for i in range(9)], weight=lambda u, v: 1.0)
        with pytest.raises(ValueError):
            brute_force_gtsp(problem)

    def test_deterministic_with_seed(self):
        problem = euclidean_problem([[(i, 0), (i, 2)] for i in range(5)])
        a = solve_gtsp(problem, population_size=12, generations=15, rng=np.random.default_rng(9))
        b = solve_gtsp(problem, population_size=12, generations=15, rng=np.random.default_rng(9))
        assert a.cost == b.cost
