"""Unit tests for the randomized greedy graph coloring solver."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizers import (
    greedy_coloring,
    is_proper_coloring,
    randomized_greedy_coloring,
)


class TestGreedyColoring:
    def test_triangle_needs_three_colors(self):
        graph = nx.cycle_graph(3)
        result = greedy_coloring(graph, [0, 1, 2])
        assert result.n_colors == 3
        assert is_proper_coloring(graph, result.colors)

    def test_path_needs_two_colors(self):
        graph = nx.path_graph(5)
        result = randomized_greedy_coloring(graph, n_orders=10, rng=np.random.default_rng(0))
        assert result.n_colors == 2
        assert is_proper_coloring(graph, result.colors)

    def test_empty_graph(self):
        result = randomized_greedy_coloring(nx.Graph(), rng=np.random.default_rng(0))
        assert result.n_colors == 0
        assert result.largest_color_class() == set()

    def test_isolated_vertices_one_color(self):
        graph = nx.empty_graph(6)
        result = randomized_greedy_coloring(graph, rng=np.random.default_rng(0))
        assert result.n_colors == 1
        assert len(result.largest_color_class()) == 6

    def test_adjacency_dict_input(self):
        adjacency = {"a": ["b"], "b": ["a", "c"], "c": ["b"]}
        result = randomized_greedy_coloring(adjacency, rng=np.random.default_rng(1))
        assert result.n_colors == 2
        assert is_proper_coloring(adjacency, result.colors)

    def test_invalid_n_orders(self):
        with pytest.raises(ValueError):
            randomized_greedy_coloring(nx.path_graph(3), n_orders=0)

    def test_color_classes_partition_vertices(self):
        graph = nx.gnp_random_graph(12, 0.4, seed=3)
        result = randomized_greedy_coloring(graph, rng=np.random.default_rng(3))
        classes = result.color_classes()
        all_vertices = set().union(*classes) if classes else set()
        assert all_vertices == set(graph.nodes)
        assert sum(len(c) for c in classes) == graph.number_of_nodes()

    def test_bipartite_graph_two_colors(self):
        graph = nx.complete_bipartite_graph(4, 5)
        result = randomized_greedy_coloring(graph, n_orders=20, rng=np.random.default_rng(5))
        assert result.n_colors == 2
        assert len(result.largest_color_class()) == 5


class TestPaperColoringExample:
    """Appendix A, Fig. 6(c): the reduced 5-vertex hybrid-term graph."""

    def graph(self):
        # Vertices h0, h1, h5, h6, h7; edges from Fig. 6(b): h0-h1, h1-h5,
        # h5-h6 and h6-h7 (a path).
        graph = nx.Graph()
        graph.add_edges_from(
            [("h0", "h1"), ("h1", "h5"), ("h5", "h6"), ("h6", "h7")]
        )
        return graph

    def test_order_one_reproduces_paper_coloring(self):
        # Order 1 in the paper (h1, h5, h0, h6, h7) uses two colors and its
        # largest color class is {h0, h5, h7} — exactly the S_color set the
        # paper compiles in compressed form.
        result = greedy_coloring(self.graph(), ["h1", "h5", "h0", "h6", "h7"])
        assert result.n_colors == 2
        assert is_proper_coloring(self.graph(), result.colors)
        assert result.largest_color_class() == {"h0", "h5", "h7"}

    def test_order_two_needs_three_colors(self):
        # Order 2 in the paper: h1, h7, h6, h5, h0 requires a third color.
        result = greedy_coloring(self.graph(), ["h1", "h7", "h6", "h5", "h0"])
        assert result.n_colors == 3

    def test_randomized_search_finds_two_coloring(self):
        result = randomized_greedy_coloring(
            self.graph(), n_orders=30, rng=np.random.default_rng(7)
        )
        assert result.n_colors == 2
        assert len(result.largest_color_class()) == 3


class TestPropertyBased:
    @given(st.integers(min_value=2, max_value=12), st.floats(min_value=0.0, max_value=0.8), st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_colorings_always_proper(self, n, p, seed):
        graph = nx.gnp_random_graph(n, p, seed=seed)
        result = randomized_greedy_coloring(graph, n_orders=5, rng=np.random.default_rng(seed))
        assert is_proper_coloring(graph, result.colors)
        assert result.n_colors <= n
