"""Frozen-schedule guard and incremental-delta tests for simulated annealing."""

import numpy as np
import pytest

from repro.optimizers import AnnealingSchedule, simulated_annealing


class _FrozenSchedule:
    """Duck-typed schedule stuck at a fixed (possibly zero) temperature."""

    def __init__(self, temperature, n_steps):
        self._temperature = temperature
        self.n_steps = n_steps

    def temperature(self, step):
        return self._temperature


def quadratic_energy(x):
    return (x - 7) ** 2


def random_step(x, rng):
    return x + int(rng.integers(-2, 3))


class TestZeroTemperature:
    def test_zero_final_temperature_is_valid(self):
        schedule = AnnealingSchedule(final_temperature=0.0, n_steps=10)
        assert schedule.temperature(9) == 0.0
        assert schedule.temperature(0) == schedule.initial_temperature

    def test_negative_temperatures_still_rejected(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(final_temperature=-1e-6)
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=0.0)

    def test_zero_temperature_does_not_divide_by_zero(self):
        result = simulated_annealing(
            0,
            quadratic_energy,
            random_step,
            schedule=_FrozenSchedule(0.0, 200),
            rng=np.random.default_rng(0),
            record_trace=True,
        )
        assert result.n_steps == 200

    def test_zero_temperature_accepts_only_improving_moves(self):
        result = simulated_annealing(
            0,
            quadratic_energy,
            random_step,
            schedule=_FrozenSchedule(0.0, 300),
            rng=np.random.default_rng(1),
            record_trace=True,
        )
        # Greedy descent: the walk's energy never increases at T = 0.
        trace = [quadratic_energy(0)] + result.energy_trace
        assert all(b <= a for a, b in zip(trace, trace[1:]))
        assert result.best_energy == min(trace)

    def test_schedule_reaching_zero_converges_greedily(self):
        schedule = AnnealingSchedule(
            initial_temperature=1.0, final_temperature=0.0, n_steps=500
        )
        result = simulated_annealing(
            0, quadratic_energy, random_step, schedule=schedule,
            rng=np.random.default_rng(2),
        )
        assert result.best_state == 7
        assert result.best_energy == 0


class TestDeltaEnergy:
    def test_delta_energy_matches_full_reevaluation(self):
        schedule = AnnealingSchedule(n_steps=400)
        full = simulated_annealing(
            0, quadratic_energy, random_step, schedule=schedule,
            rng=np.random.default_rng(3), record_trace=True,
        )
        incremental = simulated_annealing(
            0,
            quadratic_energy,
            random_step,
            schedule=schedule,
            rng=np.random.default_rng(3),
            record_trace=True,
            delta_energy=lambda current, candidate: (
                quadratic_energy(candidate) - quadratic_energy(current)
            ),
        )
        assert incremental.best_state == full.best_state
        assert incremental.best_energy == full.best_energy
        assert incremental.n_accepted == full.n_accepted
        assert incremental.energy_trace == full.energy_trace

    def test_delta_energy_skips_full_energy_calls(self):
        calls = {"energy": 0}

        def counting_energy(x):
            calls["energy"] += 1
            return quadratic_energy(x)

        simulated_annealing(
            0,
            counting_energy,
            random_step,
            schedule=AnnealingSchedule(n_steps=50),
            rng=np.random.default_rng(4),
            delta_energy=lambda current, candidate: (
                quadratic_energy(candidate) - quadratic_energy(current)
            ),
        )
        # Only the initial state is evaluated in full.
        assert calls["energy"] == 1
