"""Differential tests: matrix-form GTSP kernels vs the seed scalar-weight path.

The dense-matrix rewrite of :mod:`repro.optimizers.gtsp` claims *bit-identical*
behavior: same tour costs, same DP vertex assignments, same solver output per
seed.  This suite checks the claim against faithful copies of the seed
implementation (scalar ``weight`` calls, ``np.argmin`` over Python lists) on
hypothesis-generated random problems and on a real advanced-sorting instance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizers import GtspProblem, solve_gtsp
from repro.optimizers.gtsp import _Chromosome, _cluster_optimization


# ----------------------------------------------------------------------
# Seed reference implementation (scalar weight calls, list-based DP)
# ----------------------------------------------------------------------
def legacy_tour_cost(problem, tour):
    if len(tour) <= 1:
        return 0.0
    cost = 0.0
    for (_, u), (_, v) in zip(tour, list(tour[1:]) + [tour[0]]):
        cost += float(problem.weight(u, v))
    return cost


def legacy_cluster_optimization(order, choices, problem):
    """The seed DP; mutates ``choices`` in place exactly like the original."""
    m = len(order)
    if m == 1:
        return
    clusters = [list(problem.clusters[c]) for c in order]
    weight = problem.weight

    best_total = None
    best_assignment = None
    for start_index, start_vertex in enumerate(clusters[0]):
        costs = [float(weight(start_vertex, v)) for v in clusters[1]]
        parents = [[0] * len(clusters[1])]
        for layer in range(2, m):
            new_costs = []
            new_parents = []
            for v in clusters[layer]:
                candidate_costs = [
                    costs[k] + float(weight(u, v))
                    for k, u in enumerate(clusters[layer - 1])
                ]
                best_k = int(np.argmin(candidate_costs))
                new_costs.append(candidate_costs[best_k])
                new_parents.append(best_k)
            costs = new_costs
            parents.append(new_parents)
        closing = [
            costs[k] + float(weight(u, start_vertex))
            for k, u in enumerate(clusters[-1])
        ]
        best_k = int(np.argmin(closing))
        total = closing[best_k]
        if best_total is None or total < best_total:
            best_total = total
            assignment = [0] * m
            assignment[0] = start_index
            k = best_k
            for layer in range(m - 1, 0, -1):
                assignment[layer] = k
                k = parents[layer - 1][k]
            best_assignment = assignment

    if best_assignment is not None:
        for layer, cluster in enumerate(order):
            choices[cluster] = best_assignment[layer]


# ----------------------------------------------------------------------
# Random problem generation
# ----------------------------------------------------------------------
def random_problem_pair(seed, n_clusters, max_cluster_size, integer_weights=False):
    """The same instance twice: scalar-weight built and matrix built."""
    rng = np.random.default_rng(seed)
    clusters = [
        [(c, i) for i in range(int(rng.integers(1, max_cluster_size + 1)))]
        for c in range(n_clusters)
    ]
    n_vertices = sum(len(cluster) for cluster in clusters)
    if integer_weights:
        matrix = rng.integers(-6, 7, size=(n_vertices, n_vertices)).astype(float)
    else:
        matrix = rng.uniform(-5.0, 5.0, size=(n_vertices, n_vertices))
    row_of = {}
    row = 0
    for cluster in clusters:
        for vertex in cluster:
            row_of[vertex] = row
            row += 1

    def weight(u, v):
        return float(matrix[row_of[u], row_of[v]])

    scalar = GtspProblem(clusters=clusters, weight=weight)
    dense = GtspProblem(clusters=clusters, weight_matrix=matrix)
    return scalar, dense


problem_shapes = st.tuples(
    st.integers(min_value=0, max_value=10_000),   # rng seed for the instance
    st.integers(min_value=1, max_value=5),        # clusters
    st.integers(min_value=1, max_value=4),        # max cluster size
    st.booleans(),                                # integer weights (tie-heavy)
)


class TestTourCost:
    @settings(max_examples=60, deadline=None)
    @given(problem_shapes, st.integers(min_value=0, max_value=10_000))
    def test_matrix_tour_cost_equals_scalar_exactly(self, shape, tour_seed):
        seed, n_clusters, max_size, integer_weights = shape
        scalar, dense = random_problem_pair(seed, n_clusters, max_size, integer_weights)
        rng = np.random.default_rng(tour_seed)
        order = [int(c) for c in rng.permutation(n_clusters)]
        tour = [
            (c, scalar.clusters[c][int(rng.integers(len(scalar.clusters[c])))])
            for c in order
        ]
        expected = legacy_tour_cost(scalar, tour)
        assert scalar.tour_cost(tour) == expected
        assert dense.tour_cost(tour) == expected

    def test_matrix_problem_weight_shim(self):
        _, dense = random_problem_pair(3, 3, 3)
        u = dense.clusters[0][0]
        v = dense.clusters[2][-1]
        # The shim serves exactly the matrix entry for any vertex pair.
        assert dense.weight(u, v) == float(
            dense.matrix[dense._row_of(u), dense._row_of(v)]
        )

    def test_lazy_matrix_matches_weight_calls(self):
        scalar, dense = random_problem_pair(7, 4, 3)
        assert np.array_equal(scalar.matrix, dense.matrix)

    def test_bad_matrix_shape_rejected(self):
        with pytest.raises(ValueError):
            GtspProblem(clusters=[["a"], ["b"]], weight_matrix=np.zeros((3, 3)))

    def test_problem_without_weight_or_matrix_rejected(self):
        with pytest.raises(ValueError):
            GtspProblem(clusters=[["a"], ["b"]])

    def test_foreign_vertex_falls_back_to_weight_callable(self):
        scalar, _ = random_problem_pair(11, 2, 2)
        # Seed behavior: tour_cost accepted any vertex the weight callable
        # understood, even outside the declared cluster list.
        foreign_tour = [(0, scalar.clusters[0][0]), (1, scalar.clusters[1][0])]
        assert scalar.tour_cost(foreign_tour) == legacy_tour_cost(scalar, foreign_tour)


class TestClusterOptimization:
    @settings(max_examples=60, deadline=None)
    @given(problem_shapes, st.integers(min_value=0, max_value=10_000))
    def test_vectorized_dp_matches_scalar_dp_exactly(self, shape, chromosome_seed):
        seed, n_clusters, max_size, integer_weights = shape
        scalar, dense = random_problem_pair(seed, n_clusters, max_size, integer_weights)
        rng = np.random.default_rng(chromosome_seed)
        order = [int(c) for c in rng.permutation(n_clusters)]
        choices = [
            int(rng.integers(len(cluster))) for cluster in scalar.clusters
        ]

        legacy_choices = list(choices)
        legacy_cluster_optimization(order, legacy_choices, scalar)

        for problem in (scalar, dense):
            chromosome = _Chromosome(list(order), list(choices))
            _cluster_optimization(chromosome, problem)
            assert chromosome.choices == legacy_choices
            assert chromosome.order == order


class TestSolverSeedIdentity:
    @settings(max_examples=25, deadline=None)
    @given(problem_shapes, st.integers(min_value=0, max_value=10_000))
    def test_scalar_and_matrix_problems_solve_identically(self, shape, solver_seed):
        seed, n_clusters, max_size, integer_weights = shape
        scalar, dense = random_problem_pair(seed, n_clusters, max_size, integer_weights)
        result_scalar = solve_gtsp(
            scalar, population_size=8, generations=5, rng=np.random.default_rng(solver_seed)
        )
        result_dense = solve_gtsp(
            dense, population_size=8, generations=5, rng=np.random.default_rng(solver_seed)
        )
        assert result_scalar.tour == result_dense.tour
        assert result_scalar.cost == result_dense.cost
        # The reported cost is exactly the legacy accumulation over the tour.
        assert result_scalar.cost == legacy_tour_cost(scalar, result_scalar.tour)

    def test_all_equal_weights_tie_breaking(self):
        clusters = [[(c, i) for i in range(3)] for c in range(4)]
        n = sum(len(c) for c in clusters)
        dense = GtspProblem(clusters=clusters, weight_matrix=np.ones((n, n)))
        scalar = GtspProblem(clusters=clusters, weight=lambda u, v: 1.0)
        for seed in range(3):
            a = solve_gtsp(dense, population_size=6, generations=4,
                           rng=np.random.default_rng(seed))
            b = solve_gtsp(scalar, population_size=6, generations=4,
                           rng=np.random.default_rng(seed))
            assert a.tour == b.tour
            assert a.cost == b.cost == 4.0


class TestRealSortingProblem:
    def test_advanced_sorting_problem_solves_bit_identically(self):
        """Regression: the real Sec. III-B instance, new solver vs seed DP path.

        Builds the H2 sorting problem the advanced backend compiles, then
        cross-checks the matrix solver against a scalar-weight twin of the
        same instance for several seeds (the per-seed bit-identity the golden
        Table-I counts rely on).
        """
        from repro.core.advanced_sorting import build_sorting_problem
        from repro.core.pipeline import DEFAULT_STAGES, AdvancedPipeline
        from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
        from repro.vqe import select_ansatz_terms

        scf = run_rhf(make_molecule("H2"))
        hamiltonian = build_molecular_hamiltonian(scf)
        terms = select_ansatz_terms(hamiltonian, 3)
        pipeline = AdvancedPipeline()
        context = pipeline.make_context(terms, n_qubits=hamiltonian.n_spin_orbitals)
        for name, stage in DEFAULT_STAGES:
            if name == "sort":
                break
            stage(context)
        problem = build_sorting_problem(context.rotations)

        scalar_twin = GtspProblem(
            clusters=problem.clusters, weight=problem.weight
        )
        for seed in range(3):
            dense = solve_gtsp(
                problem, population_size=8, generations=6,
                rng=np.random.default_rng(seed),
            )
            scalar = solve_gtsp(
                scalar_twin, population_size=8, generations=6,
                rng=np.random.default_rng(seed),
            )
            assert dense.tour == scalar.tour
            assert dense.cost == scalar.cost
            assert dense.cost == legacy_tour_cost(problem, dense.tour)
