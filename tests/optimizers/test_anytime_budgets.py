"""Anytime iteration budgets of the annealing and GTSP optimizers.

Both optimizers accept an optional budget (``max_steps`` /
``max_generations``) that truncates the search while keeping it an exact
prefix of the unbudgeted walk for the same rng — the foundation of the
deterministic ``degraded`` compiles in the pipeline layer.
"""

import numpy as np
import pytest

from repro.optimizers import GtspProblem, solve_gtsp
from repro.optimizers.simulated_annealing import AnnealingSchedule, simulated_annealing


def anneal(seed=0, max_steps=None, n_steps=40):
    """Minimize |x| over the integers with ±1 moves; deterministic per seed."""
    return simulated_annealing(
        12,
        energy=lambda x: float(abs(x)),
        neighbor=lambda x, rng: x + int(rng.choice([-1, 1])),
        schedule=AnnealingSchedule(n_steps=n_steps),
        rng=np.random.default_rng(seed),
        record_trace=True,
        max_steps=max_steps,
    )


def small_problem():
    points = {
        (0, 0): (0.0, 0.0),
        (0, 1): (0.0, 1.0),
        (1, 0): (5.0, 0.0),
        (1, 1): (5.0, 1.0),
        (2, 0): (2.0, 8.0),
        (2, 1): (3.0, 9.0),
    }

    def weight(u, v):
        (ux, uy), (vx, vy) = points[u], points[v]
        return float(np.hypot(ux - vx, uy - vy))

    clusters = [[(0, 0), (0, 1)], [(1, 0), (1, 1)], [(2, 0), (2, 1)]]
    return GtspProblem(clusters=clusters, weight=weight)


class TestAnnealingBudget:
    def test_budget_truncates_and_flags(self):
        result = anneal(max_steps=7)
        assert result.truncated
        assert result.n_steps == 7

    def test_budget_at_or_above_schedule_is_not_truncation(self):
        assert not anneal(max_steps=40).truncated
        assert not anneal(max_steps=41).truncated
        assert not anneal().truncated

    def test_truncated_walk_is_exact_prefix_of_full_walk(self):
        full = anneal(seed=3)
        cut = anneal(seed=3, max_steps=11)
        assert cut.energy_trace == full.energy_trace[:11]

    def test_budgeted_run_is_deterministic(self):
        one, two = anneal(seed=5, max_steps=9), anneal(seed=5, max_steps=9)
        assert one.best_state == two.best_state
        assert one.best_energy == two.best_energy
        assert one.energy_trace == two.energy_trace

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="max_steps"):
            anneal(max_steps=0)


class TestGtspBudget:
    def test_budget_truncates_and_flags(self):
        result = solve_gtsp(
            small_problem(),
            population_size=8,
            generations=10,
            rng=np.random.default_rng(0),
            max_generations=3,
        )
        assert result.degraded
        assert result.generations == 3

    def test_budget_at_schedule_is_not_truncation(self):
        result = solve_gtsp(
            small_problem(),
            population_size=8,
            generations=10,
            rng=np.random.default_rng(0),
            max_generations=10,
        )
        assert not result.degraded
        assert result.generations == 10

    def test_zero_budget_still_returns_a_valid_tour(self):
        problem = small_problem()
        result = solve_gtsp(
            problem,
            population_size=8,
            generations=10,
            rng=np.random.default_rng(0),
            max_generations=0,
        )
        assert result.degraded
        assert result.generations == 0
        # Anytime contract: best-of-initial-population, still a legal tour.
        assert problem.tour_cost(result.tour) == pytest.approx(result.cost)

    def test_budgeted_run_is_deterministic(self):
        runs = [
            solve_gtsp(
                small_problem(),
                population_size=8,
                generations=10,
                rng=np.random.default_rng(7),
                max_generations=4,
            )
            for _ in range(2)
        ]
        assert runs[0].tour == runs[1].tour
        assert runs[0].cost == pytest.approx(runs[1].cost)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_generations"):
            solve_gtsp(
                small_problem(),
                population_size=8,
                generations=10,
                rng=np.random.default_rng(0),
                max_generations=-1,
            )
