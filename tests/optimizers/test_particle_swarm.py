"""Unit tests for binary particle swarm optimization."""

import numpy as np
import pytest

from repro.optimizers import binary_particle_swarm


class TestBinaryPso:
    def test_finds_all_ones(self):
        result = binary_particle_swarm(
            objective=lambda x: float(np.sum(1 - x)),
            n_bits=10,
            n_particles=20,
            iterations=60,
            rng=np.random.default_rng(0),
        )
        assert result.best_value == 0.0
        assert np.all(result.best_position == 1)

    def test_nearly_matches_target_pattern(self):
        # PSO is the baseline solver the paper criticises for getting trapped
        # in local minima, so we only require it to get close to the optimum.
        target = np.array([1, 0, 0, 1, 1, 0, 1, 0], dtype=np.uint8)
        result = binary_particle_swarm(
            objective=lambda x: float(np.sum(x != target)),
            n_bits=8,
            n_particles=25,
            iterations=80,
            rng=np.random.default_rng(1),
        )
        assert result.best_value <= 1.0

    def test_initial_position_seeding(self):
        target = np.zeros(12, dtype=np.uint8)
        result = binary_particle_swarm(
            objective=lambda x: float(np.sum(x != target)),
            n_bits=12,
            n_particles=5,
            iterations=1,
            rng=np.random.default_rng(2),
            initial_position=target,
        )
        assert result.best_value == 0.0

    def test_trace_monotone_nonincreasing(self):
        result = binary_particle_swarm(
            objective=lambda x: float(np.sum(x)),
            n_bits=6,
            n_particles=8,
            iterations=30,
            rng=np.random.default_rng(3),
        )
        assert all(a >= b for a, b in zip(result.value_trace, result.value_trace[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            binary_particle_swarm(lambda x: 0.0, n_bits=0)
        with pytest.raises(ValueError):
            binary_particle_swarm(lambda x: 0.0, n_bits=3, n_particles=1)
        with pytest.raises(ValueError):
            binary_particle_swarm(
                lambda x: 0.0, n_bits=3, initial_position=np.zeros(5, dtype=np.uint8)
            )
