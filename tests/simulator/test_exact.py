"""Unit tests for exact diagonalization helpers."""

import numpy as np
import pytest

from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.operators import PauliString, QubitOperator
from repro.simulator import (
    CHEMICAL_ACCURACY,
    fci_ground_state_energy,
    ground_state,
    is_chemically_accurate,
)


class TestGroundState:
    def test_single_qubit_z(self):
        result = ground_state(QubitOperator.from_label("Z"))
        assert np.isclose(result.energy, -1.0)
        assert np.isclose(abs(result.state[1]), 1.0)

    def test_transverse_field_pair(self):
        # H = -X0 X1 - Z0 - Z1 ground energy is -(1 + sqrt(2)) for two qubits? verify numerically.
        operator = (
            QubitOperator.from_label("XX", -1.0)
            + QubitOperator.from_label("ZI", -1.0)
            + QubitOperator.from_label("IZ", -1.0)
        )
        dense = np.sort(np.linalg.eigvalsh(operator.to_dense()))
        result = ground_state(operator)
        assert np.isclose(result.energy, dense[0])

    def test_particle_sector_projection(self):
        # Number operator on 2 modes: ground energy 0 overall but 1 in the
        # single-particle sector.
        from repro.operators import FermionOperator
        from repro.transforms import jordan_wigner

        number = jordan_wigner(
            FermionOperator.number(0) + FermionOperator.number(1), n_modes=2
        )
        assert np.isclose(ground_state(number).energy, 0.0)
        assert np.isclose(ground_state(number, n_particles=1).energy, 1.0)

    def test_invalid_sector(self):
        with pytest.raises(ValueError):
            ground_state(QubitOperator.from_label("ZZ"), n_particles=5)

    def test_large_register_uses_sparse_path(self):
        operator = QubitOperator.zero(7)
        for qubit in range(7):
            operator += QubitOperator.from_pauli_string(PauliString.single(7, qubit, "Z"), -1.0)
        result = ground_state(operator)
        assert np.isclose(result.energy, -7.0)


class TestChemistryReferences:
    def test_h2_fci_energy(self):
        scf = run_rhf(make_molecule("H2"))
        hamiltonian = build_molecular_hamiltonian(scf)
        assert np.isclose(fci_ground_state_energy(hamiltonian), -1.13727, atol=2e-4)

    def test_fci_below_hartree_fock(self):
        scf = run_rhf(make_molecule("LiH"))
        hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=1)
        assert fci_ground_state_energy(hamiltonian) < scf.energy

    def test_chemical_accuracy_helper(self):
        assert is_chemically_accurate(-1.0, -1.0 + 0.5 * CHEMICAL_ACCURACY)
        assert not is_chemically_accurate(-1.0, -1.0 + 2.0 * CHEMICAL_ACCURACY)
