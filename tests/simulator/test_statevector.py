"""Unit tests for the sparse statevector utilities."""

import numpy as np
import pytest

from repro.operators import FermionOperator, QubitOperator
from repro.simulator import (
    apply_exponential,
    basis_state,
    expectation_value,
    fermion_sparse,
    hartree_fock_state,
    normalize,
    particle_number,
    state_fidelity,
)


class TestBasisStates:
    def test_vacuum(self):
        state = basis_state(3, [])
        assert state[0] == 1.0 and np.count_nonzero(state) == 1

    def test_single_occupation_msb_convention(self):
        # Qubit 0 occupied -> index 4 on three qubits.
        state = basis_state(3, [0])
        assert state[4] == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            basis_state(2, [5])

    def test_hartree_fock_state(self):
        state = hartree_fock_state(4, 2)
        # Modes 0 and 1 occupied -> index 0b1100 = 12.
        assert state[12] == 1.0

    def test_hartree_fock_invalid_count(self):
        with pytest.raises(ValueError):
            hartree_fock_state(2, 5)

    def test_particle_number_of_hf_state(self):
        state = hartree_fock_state(5, 3)
        assert np.isclose(particle_number(state, 5), 3.0)


class TestExpectation:
    def test_z_expectation(self):
        operator = QubitOperator.from_label("ZI")
        assert np.isclose(expectation_value(operator, basis_state(2, [])), 1.0)
        assert np.isclose(expectation_value(operator, basis_state(2, [0])), -1.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            expectation_value(QubitOperator.from_label("Z"), basis_state(2, []))

    def test_number_operator_expectation(self):
        number_op = fermion_sparse(FermionOperator.number(1), 3)
        assert np.isclose(expectation_value(number_op, basis_state(3, [1])), 1.0)
        assert np.isclose(expectation_value(number_op, basis_state(3, [0, 2])), 0.0)


class TestExponentials:
    def test_exponential_preserves_norm(self):
        generator = fermion_sparse(
            FermionOperator.double_excitation(2, 3, 0, 1, 1.0).anti_hermitian_part(), 4
        )
        state = apply_exponential(generator, hartree_fock_state(4, 2), scale=0.37)
        assert np.isclose(np.linalg.norm(state), 1.0)

    def test_exponential_preserves_particle_number(self):
        generator = fermion_sparse(
            FermionOperator.double_excitation(2, 3, 0, 1, 1.0).anti_hermitian_part(), 4
        )
        state = apply_exponential(generator, hartree_fock_state(4, 2), scale=0.8)
        assert np.isclose(particle_number(state, 4), 2.0)

    def test_zero_angle_is_identity(self):
        generator = fermion_sparse(
            FermionOperator.single_excitation(2, 0).anti_hermitian_part(), 3
        )
        reference = hartree_fock_state(3, 1)
        assert np.allclose(apply_exponential(generator, reference, scale=0.0), reference)

    def test_rotation_angle_pi_maps_between_determinants(self):
        # exp((pi/2)(a†_1 a_0 - a†_0 a_1)) maps |10> to |01> up to phase.
        generator = fermion_sparse(
            FermionOperator.single_excitation(1, 0).anti_hermitian_part(), 2
        )
        state = apply_exponential(generator, basis_state(2, [0]), scale=np.pi / 2)
        assert np.isclose(abs(state[1]), 1.0, atol=1e-8)

    def test_dimension_mismatch(self):
        generator = fermion_sparse(FermionOperator.number(0), 2)
        with pytest.raises(ValueError):
            apply_exponential(generator, basis_state(3, []))


class TestHelpers:
    def test_normalize(self):
        state = normalize(np.array([3.0, 4.0]))
        assert np.isclose(np.linalg.norm(state), 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            normalize(np.zeros(4))

    def test_fidelity_bounds(self):
        a, b = basis_state(2, [0]), basis_state(2, [1])
        assert np.isclose(state_fidelity(a, a), 1.0)
        assert np.isclose(state_fidelity(a, b), 0.0)


class TestSparseBasisStates:
    """Regression: the sparse path must never allocate dense 2**n arrays."""

    def test_sparse_matches_dense_small(self):
        dense = basis_state(4, [0, 2])
        sparse_state = basis_state(4, [0, 2], sparse=True)
        assert sparse_state.shape == (16, 1)
        assert sparse_state.nnz == 1
        np.testing.assert_allclose(sparse_state.toarray().ravel(), dense)

    def test_hartree_fock_sparse_matches_dense(self):
        dense = hartree_fock_state(5, 3)
        sparse_state = hartree_fock_state(5, 3, sparse=True)
        np.testing.assert_allclose(sparse_state.toarray().ravel(), dense)

    def test_sparse_at_30_qubits_stays_tiny(self):
        # 2**30 complex amplitudes would be 16 GiB dense; the sparse column
        # vector must hold exactly one stored entry at the MSB-convention index.
        n_qubits = 30
        state = basis_state(n_qubits, [0, n_qubits - 1], sparse=True)
        assert state.shape == (2 ** n_qubits, 1)
        assert state.nnz == 1
        index = (1 << (n_qubits - 1)) | 1
        assert state[index, 0] == 1.0

    def test_hartree_fock_sparse_at_24_qubits(self):
        n_qubits, n_electrons = 24, 6
        state = hartree_fock_state(n_qubits, n_electrons, sparse=True)
        assert state.nnz == 1
        # First n_electrons modes filled = the n_electrons most significant bits.
        expected = ((1 << n_electrons) - 1) << (n_qubits - n_electrons)
        assert state[expected, 0] == 1.0

    def test_sparse_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            basis_state(2, [5], sparse=True)


class TestPermutationApplication:
    """apply_pauli_string / apply_qubit_operator vs explicit sparse matrices."""

    def test_apply_pauli_string_matches_matrix(self):
        from repro.operators import PauliString
        from repro.simulator import apply_pauli_string

        rng = np.random.default_rng(7)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        for label in ("IXYZ", "YYII", "ZIZX", "IIII"):
            string = PauliString(label)
            np.testing.assert_allclose(
                apply_pauli_string(string, state, 0.5 - 0.25j),
                (0.5 - 0.25j) * (string.to_sparse() @ state),
                atol=1e-12,
            )

    def test_apply_qubit_operator_matches_matrix(self):
        from repro.simulator import apply_qubit_operator

        qubit_op = QubitOperator.from_label("XYZ", 0.3) + QubitOperator.from_label(
            "ZZI", -1.2j
        ) + QubitOperator.from_label("III", 0.7)
        rng = np.random.default_rng(11)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        np.testing.assert_allclose(
            apply_qubit_operator(qubit_op, state),
            qubit_op.to_sparse() @ state,
            atol=1e-12,
        )

    def test_expectation_value_qubit_operator_is_matrix_free(self):
        qubit_op = QubitOperator.from_label("ZI", 1.5) + QubitOperator.from_label(
            "IZ", -0.5
        )
        # Qubit 0 occupied: <ZI> = -1 and <IZ> = +1.
        state = basis_state(2, [0])
        assert expectation_value(qubit_op, state) == pytest.approx(-1.5 - 0.5)
