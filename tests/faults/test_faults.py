"""Tests for the deterministic fault-injection subsystem (repro.faults)."""

import os
import pickle
import time

import pytest

from repro import faults
from repro.faults import (
    ACTIONS,
    FAULTS_ENV_VAR,
    KILL_EXIT_CODE,
    SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    activate,
    active_plan,
    deactivate,
    inject,
    parse_plan,
    plan_from_env,
)
from repro.faults import plan as plan_module


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """Every test starts and ends with fault injection disabled."""
    deactivate()
    yield
    deactivate()


class TestFaultRule:
    def test_valid_rule(self):
        rule = FaultRule(site="disk.read", action="error", probability=0.5)
        assert rule.site == "disk.read"

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="disk.nope", action="error", probability=0.5)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="disk.read", action="explode", probability=0.5)

    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_probability_bounds(self, probability):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="disk.read", action="error", probability=probability)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule(site="compute", action="delay", probability=1.0, delay_s=-1)

    def test_max_fires_validation(self):
        with pytest.raises(ValueError, match="max_fires"):
            FaultRule(site="compute", action="error", probability=1.0, max_fires=0)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        rule = FaultRule(site="disk.read", action="error", probability=0.5)
        one = FaultPlan([rule], seed=7)
        two = FaultPlan([rule], seed=7)
        draws = [one._should_fire(rule) for _ in range(64)]
        assert draws == [two._should_fire(rule) for _ in range(64)]
        assert any(draws) and not all(draws)

    def test_different_seeds_differ(self):
        rule = FaultRule(site="disk.read", action="error", probability=0.5)
        one = FaultPlan([rule], seed=1)
        two = FaultPlan([rule], seed=2)
        assert [one._should_fire(rule) for _ in range(64)] != [
            two._should_fire(rule) for _ in range(64)
        ]

    def test_sites_draw_from_independent_streams(self):
        # Traffic at one site must not perturb another site's schedule.
        read = FaultRule(site="disk.read", action="error", probability=0.5)
        write = FaultRule(site="disk.write", action="error", probability=0.5)
        quiet = FaultPlan([read, write], seed=3)
        noisy = FaultPlan([read, write], seed=3)
        for _ in range(100):  # extra disk.write draws on the noisy plan only
            noisy._should_fire(write)
        assert [quiet._should_fire(read) for _ in range(64)] == [
            noisy._should_fire(read) for _ in range(64)
        ]


class TestFire:
    def test_error_action_raises_injected_fault(self):
        plan = FaultPlan([FaultRule("queue", "error", 1.0)])
        with pytest.raises(InjectedFault) as info:
            plan.fire("queue")
        assert info.value.site == "queue"
        assert isinstance(info.value, OSError)  # disk-fault realism contract

    def test_zero_probability_never_fires(self):
        plan = FaultPlan([FaultRule("queue", "error", 0.0)])
        for _ in range(100):
            plan.fire("queue")
        assert plan.fired_total() == 0
        assert plan.evaluations["queue"] == 100

    def test_max_fires_caps_activations(self):
        plan = FaultPlan([FaultRule("queue", "error", 1.0, max_fires=2)])
        fired = 0
        for _ in range(10):
            try:
                plan.fire("queue")
                fired += 0
            except InjectedFault:
                fired += 1
        assert fired == 2
        assert plan.fired_total("queue") == 2

    def test_delay_action_sleeps(self):
        plan = FaultPlan([FaultRule("compute", "delay", 1.0, delay_s=0.02)])
        start = time.perf_counter()
        plan.fire("compute")
        assert time.perf_counter() - start >= 0.02

    def test_unknown_site_rejected(self):
        plan = FaultPlan([])
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.fire("nope")

    def test_kill_suppressed_in_main_process(self):
        plan = FaultPlan([FaultRule("pool.worker", "kill", 1.0)])
        plan.fire("pool.worker")  # must not take the test runner down
        assert plan.fired[("pool.worker", "kill-suppressed")] == 1

    def test_kill_exits_pool_children(self, monkeypatch):
        exits = []
        monkeypatch.setattr(plan_module, "_in_pool_child", lambda: True)
        monkeypatch.setattr(os, "_exit", lambda code: exits.append(code))
        plan = FaultPlan([FaultRule("pool.worker", "kill", 1.0)])
        plan.fire("pool.worker")
        assert exits == [KILL_EXIT_CODE]


class TestMangle:
    def test_corrupt_mangles_bytes_unpicklably(self):
        plan = FaultPlan([FaultRule("disk.write", "corrupt", 1.0)])
        payload = pickle.dumps({"answer": 42})
        mangled = plan.mangle("disk.write", payload)
        assert mangled != payload
        assert len(mangled) < len(payload)
        with pytest.raises(Exception):
            pickle.loads(mangled)  # never a plausible-but-wrong payload

    def test_corrupt_leaves_empty_data_alone(self):
        plan = FaultPlan([FaultRule("disk.write", "corrupt", 1.0)])
        assert plan.mangle("disk.write", b"") == b""

    def test_non_corrupt_rules_ignored_by_mangle(self):
        plan = FaultPlan([FaultRule("disk.write", "error", 1.0)])
        assert plan.mangle("disk.write", b"data") == b"data"

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan([]).mangle("nope", b"data")


class TestSpecParsing:
    def test_full_grammar(self):
        plan = parse_plan("seed=7; disk.read=error:0.2 ;compute=delay:0.3:0.05")
        assert plan.seed == 7
        assert len(plan.rules) == 2
        assert plan.rules[1].action == "delay"
        assert plan.rules[1].delay_s == pytest.approx(0.05)

    def test_seed_argument_overridden_by_clause(self):
        assert parse_plan("seed=9;queue=error:1.0", seed=1).seed == 9
        assert parse_plan("queue=error:1.0", seed=1).seed == 1

    def test_empty_clauses_skipped(self):
        assert parse_plan(";;queue=error:1.0;;").rules[0].site == "queue"

    @pytest.mark.parametrize(
        "spec", ["gibberish", "disk.read=error", "disk.read=error:0.1:0.2:0.3"]
    )
    def test_bad_clause_rejected(self, spec):
        with pytest.raises(ValueError, match="bad fault clause"):
            parse_plan(spec)

    def test_plan_from_env(self):
        assert plan_from_env({}) is None
        assert plan_from_env({FAULTS_ENV_VAR: "  "}) is None
        plan = plan_from_env({FAULTS_ENV_VAR: "seed=3;disk.read=error:0.5"})
        assert plan is not None and plan.seed == 3


class TestActivation:
    def test_hooks_are_noops_when_disabled(self):
        assert active_plan() is None
        faults.fire("queue")  # nothing active: must not raise
        data = b"payload"
        assert faults.mangle("disk.read", data) is data  # identity, not a copy

    def test_activate_and_deactivate_return_previous(self):
        plan = FaultPlan([])
        assert activate(plan) is None
        assert active_plan() is plan
        assert deactivate() is plan
        assert active_plan() is None

    def test_inject_scopes_and_restores(self):
        outer = FaultPlan([])
        activate(outer)
        with inject("queue=error:1.0", seed=5) as plan:
            assert active_plan() is plan
            with pytest.raises(InjectedFault):
                faults.fire("queue")
        assert active_plan() is outer

    def test_inject_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with inject(FaultPlan([])):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_inject_accepts_ready_plan(self):
        plan = FaultPlan([FaultRule("queue", "error", 1.0)], seed=11)
        with inject(plan) as active:
            assert active is plan

    def test_fired_total_breaks_down_by_site(self):
        plan = FaultPlan(
            [FaultRule("queue", "error", 1.0), FaultRule("compute", "delay", 1.0)]
        )
        with pytest.raises(InjectedFault):
            plan.fire("queue")
        plan.fire("compute")
        assert plan.fired_total("queue") == 1
        assert plan.fired_total("compute") == 1
        assert plan.fired_total() == 2
        assert "fired=2" in repr(plan)

    def test_registry_constants_are_consistent(self):
        assert set(SITES) == {
            "disk.read",
            "disk.write",
            "compute",
            "pool.worker",
            "queue",
            "scf",
            "stage.gamma",
            "stage.sort",
            "checkpoint.write",
        }
        assert set(ACTIONS) == {"error", "corrupt", "delay", "kill"}


class TestSiteIntegration:
    """The batch-robustness sites fire inside the code paths they name."""

    def test_every_new_site_parses(self):
        plan = parse_plan(
            "scf=error:1.0;stage.gamma=error:1.0;"
            "stage.sort=error:1.0;checkpoint.write=error:1.0"
        )
        assert [rule.site for rule in plan.rules] == [
            "scf",
            "stage.gamma",
            "stage.sort",
            "checkpoint.write",
        ]

    def test_scf_site_fires_in_run_rhf(self):
        from repro.chemistry import make_molecule, run_rhf

        with inject("scf=error:1.0"):
            with pytest.raises(InjectedFault) as info:
                run_rhf(make_molecule("H2"), use_cache=False)
        assert info.value.site == "scf"

    def test_stage_gamma_site_surfaces_as_a_stage_failure(self):
        from repro.api import CompilerConfig
        from repro.core import AdvancedPipeline, StageFailure
        from repro.vqe import ExcitationTerm

        # Non-adjacent index pairs: classifies fermionic, so the Γ-search and
        # sort stages actually run (bosonic/hybrid terms bypass them).
        terms = (ExcitationTerm(creation=(4, 7), annihilation=(0, 3)),)
        config = CompilerConfig(
            gamma_steps=2, sorting_population=2, sorting_generations=1, seed=0
        )
        with inject("stage.gamma=error:1.0"):
            with pytest.raises(StageFailure) as info:
                AdvancedPipeline(config).run(terms, n_qubits=8)
        assert info.value.stage == "gamma_search"
        assert isinstance(info.value.__cause__, InjectedFault)

    def test_stage_sort_site_surfaces_as_a_stage_failure(self):
        from repro.api import CompilerConfig
        from repro.core import AdvancedPipeline, StageFailure
        from repro.vqe import ExcitationTerm

        # Non-adjacent index pairs: classifies fermionic, so the Γ-search and
        # sort stages actually run (bosonic/hybrid terms bypass them).
        terms = (ExcitationTerm(creation=(4, 7), annihilation=(0, 3)),)
        config = CompilerConfig(
            gamma_steps=2, sorting_population=2, sorting_generations=1, seed=0
        )
        with inject("stage.sort=error:1.0"):
            with pytest.raises(StageFailure) as info:
                AdvancedPipeline(config).run(terms, n_qubits=8)
        assert info.value.stage == "sort"
        assert isinstance(info.value.__cause__, InjectedFault)

    def test_stage_failure_pickles_across_process_boundaries(self):
        from repro.core import StageFailure

        original = StageFailure("sort", RuntimeError("boom"))
        restored = pickle.loads(pickle.dumps(original))
        assert isinstance(restored, StageFailure)
        assert restored.stage == "sort"
        assert restored.args == original.args
