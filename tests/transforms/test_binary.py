"""Unit tests for GF(2) linear algebra and CNOT-network synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import binary


class TestBasicOperations:
    def test_identity(self):
        assert np.array_equal(binary.identity_matrix(3), np.eye(3, dtype=np.uint8))

    def test_as_gf2_reduces_mod_2(self):
        assert np.array_equal(binary.as_gf2([[2, 3], [4, 5]]), [[0, 1], [0, 1]])

    def test_as_gf2_rejects_vectors(self):
        with pytest.raises(ValueError):
            binary.as_gf2([1, 0, 1])

    def test_matmul(self):
        a = [[1, 1], [0, 1]]
        b = [[1, 0], [1, 1]]
        assert np.array_equal(binary.gf2_matmul(a, b), [[0, 1], [1, 1]])

    def test_matvec(self):
        assert np.array_equal(binary.gf2_matvec([[1, 1], [0, 1]], [1, 1]), [0, 1])

    def test_rank_full(self):
        assert binary.gf2_rank(np.eye(4)) == 4

    def test_rank_deficient(self):
        assert binary.gf2_rank([[1, 1], [1, 1]]) == 1

    def test_is_invertible(self):
        assert binary.is_invertible([[1, 1], [0, 1]])
        assert not binary.is_invertible([[1, 1], [1, 1]])
        assert not binary.is_invertible(np.ones((2, 3)))

    def test_inverse_round_trip(self):
        matrix = np.array([[1, 1, 0], [0, 1, 1], [0, 0, 1]])
        inverse = binary.gf2_inverse(matrix)
        assert np.array_equal(binary.gf2_matmul(matrix, inverse), np.eye(3, dtype=np.uint8))

    def test_inverse_singular_raises(self):
        with pytest.raises(ValueError):
            binary.gf2_inverse([[1, 1], [1, 1]])

    def test_inverse_non_square_raises(self):
        with pytest.raises(ValueError):
            binary.gf2_inverse(np.ones((2, 3)))

    def test_is_upper_triangular(self):
        assert binary.is_upper_triangular([[1, 1], [0, 1]])
        assert not binary.is_upper_triangular([[1, 0], [1, 1]])


class TestRandomMatrices:
    def test_random_invertible_is_invertible(self):
        rng = np.random.default_rng(7)
        for _ in range(5):
            assert binary.is_invertible(binary.random_invertible_matrix(5, rng))

    def test_random_upper_triangular(self):
        rng = np.random.default_rng(7)
        m = binary.random_upper_triangular_matrix(6, rng)
        assert binary.is_upper_triangular(m)
        assert binary.is_invertible(m)


class TestStructuredMatrices:
    def test_jordan_wigner_matrix_is_identity(self):
        assert np.array_equal(binary.jordan_wigner_matrix(4), np.eye(4, dtype=np.uint8))

    def test_parity_matrix(self):
        expected = [[1, 0, 0], [1, 1, 0], [1, 1, 1]]
        assert np.array_equal(binary.parity_matrix(3), expected)

    def test_bravyi_kitaev_matrix_power_of_two(self):
        m = binary.bravyi_kitaev_matrix(4)
        # Known Fenwick-tree structure for 4 modes.
        expected = [[1, 0, 0, 0], [1, 1, 0, 0], [0, 0, 1, 0], [1, 1, 1, 1]]
        assert np.array_equal(m, expected)

    def test_bravyi_kitaev_matrix_invertible(self):
        for n in (1, 2, 3, 5, 7, 8, 11):
            assert binary.is_invertible(binary.bravyi_kitaev_matrix(n))

    def test_bravyi_kitaev_invalid_size(self):
        with pytest.raises(ValueError):
            binary.bravyi_kitaev_matrix(0)

    def test_block_diagonal(self):
        blocks = [np.array([[1]]), np.array([[1, 1], [0, 1]])]
        expected = [[1, 0, 0], [0, 1, 1], [0, 0, 1]]
        assert np.array_equal(binary.block_diagonal(blocks), expected)

    def test_block_diagonal_rejects_rectangular(self):
        with pytest.raises(ValueError):
            binary.block_diagonal([np.ones((1, 2))])

    def test_embed_block(self):
        block = np.array([[1, 1], [0, 1]])
        embedded = binary.embed_block(4, [1, 3], block)
        assert embedded[1, 3] == 1
        assert embedded[3, 1] == 0
        assert embedded[0, 0] == 1 and embedded[2, 2] == 1

    def test_embed_block_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary.embed_block(4, [0], np.eye(2))


class TestCnotSynthesis:
    def test_network_matrix_single_gate(self):
        # CNOT(0, 1) adds row 0 into row 1.
        expected = [[1, 0], [1, 1]]
        assert np.array_equal(binary.cnot_network_matrix(2, [(0, 1)]), expected)

    def test_network_matrix_rejects_equal_wires(self):
        with pytest.raises(ValueError):
            binary.cnot_network_matrix(2, [(1, 1)])

    def test_gaussian_synthesis_round_trip(self):
        rng = np.random.default_rng(3)
        for n in (2, 3, 5, 8):
            matrix = binary.random_invertible_matrix(n, rng)
            gates = binary.synthesize_cnot_network(matrix)
            assert np.array_equal(binary.cnot_network_matrix(n, gates), matrix)

    def test_gaussian_synthesis_identity_is_empty(self):
        assert binary.synthesize_cnot_network(np.eye(4)) == []

    def test_synthesis_rejects_singular(self):
        with pytest.raises(ValueError):
            binary.synthesize_cnot_network([[1, 1], [1, 1]])

    def test_pmh_round_trip(self):
        rng = np.random.default_rng(11)
        for n in (2, 4, 6, 9):
            matrix = binary.random_invertible_matrix(n, rng)
            gates = binary.synthesize_cnot_network_pmh(matrix)
            assert np.array_equal(binary.cnot_network_matrix(n, gates), matrix)

    def test_pmh_rejects_singular(self):
        with pytest.raises(ValueError):
            binary.synthesize_cnot_network_pmh([[0, 0], [0, 0]])

    def test_cnot_cost_identity(self):
        assert binary.cnot_cost(np.eye(5)) == 0

    def test_cnot_cost_positive_for_nontrivial(self):
        assert binary.cnot_cost([[1, 1], [0, 1]]) == 1

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_synthesis_round_trip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = binary.random_invertible_matrix(n, rng)
        gates = binary.synthesize_cnot_network(matrix)
        assert np.array_equal(binary.cnot_network_matrix(n, gates), matrix)
