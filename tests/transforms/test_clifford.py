"""Unit tests for Pauli conjugation by CNOT networks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import PauliString, QubitOperator
from repro.transforms import (
    conjugate_by_cnot_network,
    conjugate_pauli_by_cnot,
    conjugate_pauli_by_cnot_network,
)


def cnot_matrix(n, control, target):
    """Dense CNOT unitary with qubit 0 as the most significant bit."""
    dim = 2 ** n
    matrix = np.zeros((dim, dim))
    for basis in range(dim):
        bits = [(basis >> (n - 1 - q)) & 1 for q in range(n)]
        if bits[control]:
            bits[target] ^= 1
        image = sum(bit << (n - 1 - q) for q, bit in enumerate(bits))
        matrix[image, basis] = 1.0
    return matrix


class TestSingleCnotConjugation:
    def test_control_x_spreads(self):
        sign, result = conjugate_pauli_by_cnot(PauliString("XI"), 0, 1)
        assert sign == 1 and result == PauliString("XX")

    def test_target_z_spreads(self):
        sign, result = conjugate_pauli_by_cnot(PauliString("IZ"), 0, 1)
        assert sign == 1 and result == PauliString("ZZ")

    def test_xz_picks_up_sign(self):
        sign, result = conjugate_pauli_by_cnot(PauliString("XZ"), 0, 1)
        assert sign == -1 and result == PauliString("YY")

    def test_equal_wires_raise(self):
        with pytest.raises(ValueError):
            conjugate_pauli_by_cnot(PauliString("XX"), 1, 1)

    @given(
        st.text(alphabet="IXYZ", min_size=2, max_size=4),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_matrix_conjugation(self, label, data):
        n = len(label)
        control = data.draw(st.integers(min_value=0, max_value=n - 1))
        target = data.draw(
            st.integers(min_value=0, max_value=n - 1).filter(lambda t: t != control)
        )
        string = PauliString(label)
        sign, image = conjugate_pauli_by_cnot(string, control, target)
        unitary = cnot_matrix(n, control, target)
        expected = unitary @ string.to_dense() @ unitary.conj().T
        assert np.allclose(expected, sign * image.to_dense())


class TestNetworkConjugation:
    def test_network_application_order(self):
        # U = CNOT(1,2) CNOT(0,1) applied in that circuit order.
        cnots = [(0, 1), (1, 2)]
        sign, image = conjugate_pauli_by_cnot_network(PauliString("XII"), cnots)
        # X0 -> X0 X1 (first gate) -> X0 X1 X2 (second gate).
        assert sign == 1 and image == PauliString("XXX")

    def test_network_matches_matrix(self):
        cnots = [(0, 2), (2, 1), (1, 0)]
        n = 3
        unitary = np.eye(8)
        for control, target in cnots:
            unitary = cnot_matrix(n, control, target) @ unitary
        string = PauliString("YZX")
        sign, image = conjugate_pauli_by_cnot_network(string, cnots)
        expected = unitary @ string.to_dense() @ unitary.conj().T
        assert np.allclose(expected, sign * image.to_dense())

    def test_operator_conjugation_preserves_spectrum(self):
        op = QubitOperator.from_label("XYZ", 0.7) + QubitOperator.from_label("ZZI", -0.3)
        conjugated = conjugate_by_cnot_network(op, [(0, 1), (1, 2), (0, 2)])
        original = np.sort(np.linalg.eigvalsh(op.to_dense()))
        transformed = np.sort(np.linalg.eigvalsh(conjugated.to_dense()))
        assert np.allclose(original, transformed)

    def test_paper_appendix_c_example(self):
        """Appendix C: Γ with CNOTs on the first and last qubit pairs maps XXIIXY to XIIIYZ."""
        string = PauliString("XXIIXY")
        cnots = [(0, 1), (4, 5)]
        sign, image = conjugate_pauli_by_cnot_network(string, cnots)
        assert sign == 1
        assert image == PauliString("XIIIYZ")
        assert image.weight < string.weight
