"""Unit tests for the ternary-tree transform."""

import numpy as np
import pytest

from repro.operators import FermionOperator, QubitOperator
from repro.transforms import JordanWignerTransform, TernaryTreeTransform
from repro.transforms.ternary_tree import _build_paths


class TestTreeStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7])
    def test_vacancy_count(self, n):
        assert len(_build_paths(n)) == 2 * n + 1

    def test_majoranas_anticommute(self):
        transform = TernaryTreeTransform(4)
        majoranas = [transform.majorana_operator(i) for i in range(2 * 4 + 1)]
        for i, gamma_i in enumerate(majoranas):
            for j, gamma_j in enumerate(majoranas):
                if i != j:
                    assert not gamma_i.commutes_with(gamma_j), (i, j)

    def test_majoranas_square_to_identity(self):
        transform = TernaryTreeTransform(3)
        for i in range(7):
            phase, product = transform.majorana_operator(i).multiply(
                transform.majorana_operator(i)
            )
            assert phase == 1 and product.is_identity


class TestAlgebra:
    def test_canonical_anticommutation(self):
        n = 3
        transform = TernaryTreeTransform(n)
        for i in range(n):
            for j in range(n):
                a_i = transform.annihilation_operator(i)
                adag_j = transform.creation_operator(j)
                anticommutator = a_i * adag_j + adag_j * a_i
                expected = QubitOperator.identity(n, 1.0 if i == j else 0.0)
                assert anticommutator == expected

    def test_number_operator_spectrum(self):
        transform = TernaryTreeTransform(3)
        image = transform.transform(FermionOperator.number(0))
        eigenvalues = np.unique(np.round(np.linalg.eigvalsh(image.to_dense()), 10))
        assert np.allclose(eigenvalues, [0, 1])

    def test_average_weight_not_worse_than_jordan_wigner(self):
        n = 9
        tt = TernaryTreeTransform(n)
        jw = JordanWignerTransform(n)
        tt_weight = sum(tt.annihilation_operator(i).max_weight() for i in range(n))
        jw_weight = sum(jw.annihilation_operator(i).max_weight() for i in range(n))
        assert tt_weight <= jw_weight

    def test_mode_out_of_range(self):
        with pytest.raises(ValueError):
            TernaryTreeTransform(2).annihilation_operator(5)
