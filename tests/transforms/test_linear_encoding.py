"""Unit tests for linear-encoding (GL(N,2)) transforms: BK, parity, generalized Γ."""

import numpy as np
import pytest

from repro.operators import FermionOperator, QubitOperator
from repro.transforms import (
    BravyiKitaevTransform,
    JordanWignerTransform,
    LinearEncodingTransform,
    ParityTransform,
    bravyi_kitaev,
    generalized_transform,
    jordan_wigner,
    parity_transform,
    random_invertible_matrix,
)


def random_hermitian_fermion_operator(n_modes, seed):
    """A small random hermitian fermionic operator for spectrum comparisons."""
    rng = np.random.default_rng(seed)
    op = FermionOperator.zero()
    for _ in range(4):
        p, q = rng.integers(0, n_modes, size=2)
        coeff = float(rng.normal())
        term = FermionOperator.single_excitation(int(p), int(q), coeff)
        op += term + term.hermitian_conjugate()
    p, q, r, s = rng.permutation(n_modes)[:4] if n_modes >= 4 else (0, 1, 0, 1)
    term = FermionOperator.double_excitation(int(p), int(q), int(r), int(s), 0.37)
    op += term + term.hermitian_conjugate()
    return op


class TestConstruction:
    def test_rejects_singular_gamma(self):
        with pytest.raises(ValueError):
            LinearEncodingTransform([[1, 1], [1, 1]])

    def test_rejects_rectangular_gamma(self):
        with pytest.raises(ValueError):
            LinearEncodingTransform(np.ones((2, 3)))

    def test_identity_gamma_equals_jordan_wigner(self):
        transform = LinearEncodingTransform(np.eye(3))
        assert transform.is_identity_encoding
        op = FermionOperator.double_excitation(0, 1, 2, 0, 0.5).anti_hermitian_part()
        assert transform.transform(op) == jordan_wigner(op, n_modes=3)

    def test_cnot_network_exposed(self):
        transform = ParityTransform(4)
        assert len(transform.cnot_network) > 0


class TestCanonicalAnticommutation:
    @pytest.mark.parametrize(
        "transform_factory",
        [
            lambda n: BravyiKitaevTransform(n),
            lambda n: ParityTransform(n),
            lambda n: LinearEncodingTransform(random_invertible_matrix(n, np.random.default_rng(5))),
        ],
        ids=["bravyi-kitaev", "parity", "random-gamma"],
    )
    def test_ladder_operator_algebra(self, transform_factory):
        n = 4
        transform = transform_factory(n)
        for i in range(n):
            for j in range(n):
                a_i = transform.annihilation_operator(i)
                adag_j = transform.creation_operator(j)
                anticommutator = a_i * adag_j + adag_j * a_i
                expected = QubitOperator.identity(n, 1.0 if i == j else 0.0)
                assert anticommutator == expected, (i, j)

    def test_number_operator_spectrum(self):
        transform = BravyiKitaevTransform(3)
        image = transform.transform(FermionOperator.number(1))
        eigenvalues = np.linalg.eigvalsh(image.to_dense())
        assert np.allclose(np.sort(np.unique(np.round(eigenvalues, 10))), [0, 1])


class TestSpectrumPreservation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_gamma_preserves_spectrum(self, seed):
        n = 4
        op = random_hermitian_fermion_operator(n, seed)
        jw_spectrum = np.sort(np.linalg.eigvalsh(jordan_wigner(op, n_modes=n).to_dense()))
        gamma = random_invertible_matrix(n, np.random.default_rng(seed + 100))
        adv_spectrum = np.sort(
            np.linalg.eigvalsh(generalized_transform(op, gamma).to_dense())
        )
        assert np.allclose(jw_spectrum, adv_spectrum)

    def test_bk_and_parity_preserve_spectrum(self):
        n = 4
        op = random_hermitian_fermion_operator(n, 3)
        reference = np.sort(np.linalg.eigvalsh(jordan_wigner(op, n_modes=n).to_dense()))
        for transformed in (bravyi_kitaev(op, n_modes=n), parity_transform(op, n_modes=n)):
            spectrum = np.sort(np.linalg.eigvalsh(transformed.to_dense()))
            assert np.allclose(reference, spectrum)


class TestStringWeights:
    def test_parity_transform_number_operator_weight(self):
        # In the parity encoding the number operator of mode j acts on at most
        # two qubits (j-1 and j).
        transform = ParityTransform(5)
        image = transform.transform(FermionOperator.number(3))
        assert image.max_weight() <= 2

    def test_bravyi_kitaev_reduces_chain_weight(self):
        n = 8
        jw_weight = jordan_wigner(FermionOperator.creation(n - 1), n_modes=n).max_weight()
        bk_weight = bravyi_kitaev(FermionOperator.creation(n - 1), n_modes=n).max_weight()
        assert bk_weight <= jw_weight


class TestModuleFunctions:
    def test_bravyi_kitaev_infers_modes(self):
        image = bravyi_kitaev(FermionOperator.number(2))
        assert image.n_qubits == 3

    def test_parity_requires_modes_for_constant(self):
        with pytest.raises(ValueError):
            parity_transform(FermionOperator.identity(1.0))

    def test_bk_requires_modes_for_constant(self):
        with pytest.raises(ValueError):
            bravyi_kitaev(FermionOperator.identity(1.0))
