"""Unit tests for the Jordan-Wigner transform."""

import numpy as np
import pytest

from repro.operators import FermionOperator, PauliString, QubitOperator
from repro.transforms import JordanWignerTransform, jordan_wigner


class TestLadderOperatorImages:
    def test_annihilation_on_first_mode(self):
        op = JordanWignerTransform(2).annihilation_operator(0)
        assert op.terms == {PauliString("XI"): 0.5, PauliString("YI"): 0.5j}

    def test_annihilation_has_z_chain(self):
        op = JordanWignerTransform(3).annihilation_operator(2)
        assert op.terms == {PauliString("ZZX"): 0.5, PauliString("ZZY"): 0.5j}

    def test_creation_is_conjugate(self):
        transform = JordanWignerTransform(2)
        cr = transform.creation_operator(1)
        an = transform.annihilation_operator(1)
        assert cr == an.hermitian_conjugate()

    def test_mode_out_of_range(self):
        with pytest.raises(ValueError):
            JordanWignerTransform(2).annihilation_operator(2)

    def test_transform_rejects_out_of_range_operator(self):
        with pytest.raises(ValueError):
            JordanWignerTransform(2).transform(FermionOperator.creation(5))


class TestAlgebraPreservation:
    def test_number_operator_image(self):
        # a†_0 a_0 -> (I - Z_0) / 2.
        image = jordan_wigner(FermionOperator.number(0), n_modes=2)
        expected = QubitOperator.identity(2, 0.5) + QubitOperator.from_label("ZI", -0.5)
        assert image == expected

    def test_canonical_anticommutation(self):
        transform = JordanWignerTransform(3)
        for i in range(3):
            for j in range(3):
                a_i = transform.annihilation_operator(i)
                adag_j = transform.creation_operator(j)
                anticommutator = a_i * adag_j + adag_j * a_i
                expected = QubitOperator.identity(3, 1.0 if i == j else 0.0)
                assert anticommutator == expected

    def test_annihilation_anticommute(self):
        transform = JordanWignerTransform(3)
        for i in range(3):
            for j in range(3):
                a_i = transform.annihilation_operator(i)
                a_j = transform.annihilation_operator(j)
                assert (a_i * a_j + a_j * a_i).is_zero

    def test_hermitian_operator_maps_to_hermitian(self):
        op = FermionOperator.double_excitation(0, 1, 2, 3, 0.5)
        hermitian = op + op.hermitian_conjugate()
        assert jordan_wigner(hermitian, n_modes=4).is_hermitian()

    def test_anti_hermitian_generator_maps_to_anti_hermitian(self):
        op = FermionOperator.double_excitation(0, 1, 2, 3, 0.5)
        generator = op.anti_hermitian_part()
        assert jordan_wigner(generator, n_modes=4).is_anti_hermitian()

    def test_double_excitation_has_eight_strings(self):
        op = FermionOperator.double_excitation(0, 1, 2, 3, 1.0).anti_hermitian_part()
        image = jordan_wigner(op, n_modes=4)
        assert len(image) == 8
        assert all(s.weight == 4 for s in image.terms)


class TestModuleFunction:
    def test_infers_mode_count(self):
        image = jordan_wigner(FermionOperator.creation(2))
        assert image.n_qubits == 3

    def test_constant_operator_requires_mode_count(self):
        with pytest.raises(ValueError):
            jordan_wigner(FermionOperator.identity(2.0))

    def test_constant_with_explicit_modes(self):
        image = jordan_wigner(FermionOperator.identity(2.0), n_modes=2)
        assert image == QubitOperator.identity(2, 2.0)

    def test_matrix_of_hopping_term(self):
        # a†_0 a_1 + a†_1 a_0 on two modes: matrix with known spectrum ±1, 0, 0.
        op = FermionOperator.single_excitation(0, 1) + FermionOperator.single_excitation(1, 0)
        matrix = jordan_wigner(op, n_modes=2).to_dense()
        eigenvalues = np.sort(np.linalg.eigvalsh(matrix))
        assert np.allclose(eigenvalues, [-1, 0, 0, 1])
