"""Tests for hybrid encoding: classification, symmetry graph, GVCP scheduling.

Includes a full reproduction of the Appendix A worked example of the paper
(shifted to 0-based spin-orbital indices so that the compressible pairs are
the interleaved (2k, 2k+1) spin pairs).
"""

import networkx as nx
import numpy as np
import pytest

from repro.core import (
    HYBRID_TERM_CNOT_COST,
    breaks_symmetry,
    build_symmetry_graph,
    classify_terms,
    reduce_graph,
    schedule_hybrid_terms,
    symmetric_pair,
)
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


#: Appendix A terms, shifted down by one so pairs are (even, even+1).
APPENDIX_TERMS = {
    "h0": term((8, 11), (2, 3)),
    "h1": term((10, 11), (2, 5)),
    "h2": term((19, 20), (4, 5)),
    "h3": term((18, 21), (4, 5)),
    "h4": term((12, 15), (0, 1)),
    "h5": term((10, 13), (4, 5)),
    "h6": term((12, 13), (4, 7)),
    "h7": term((12, 15), (6, 7)),
    "h8": term((16, 17), (2, 7)),
}
APPENDIX_ORDER = [f"h{i}" for i in range(9)]


class TestClassification:
    def test_symmetric_pair_detection(self):
        assert symmetric_pair(term((2, 3), (0, 1))) == (2, 3)
        assert symmetric_pair(term((2, 5), (0, 1))) == (0, 1)
        assert symmetric_pair(term((2, 5), (0, 7))) is None
        assert symmetric_pair(term((4,), (0,))) is None

    def test_classify_terms_partition(self):
        terms = [
            term((2, 3), (0, 1)),   # bosonic
            term((2, 3), (0, 5)),   # hybrid
            term((2, 5), (0, 7)),   # fermionic
            term((4,), (0,)),       # single -> fermionic
        ]
        classes = classify_terms(terms)
        assert len(classes["bosonic"]) == 1
        assert len(classes["hybrid"]) == 1
        assert len(classes["fermionic"]) == 2

    def test_appendix_terms_are_all_hybrid(self):
        assert all(t.encoding_class == "hybrid" for t in APPENDIX_TERMS.values())


class TestSymmetryBreaking:
    def test_parity_preserving_term_does_not_break(self):
        # A term acting on both members of the pair preserves its parity.
        protected = term((2, 3), (4, 9))       # pair (2, 3)
        breaker = term((6, 7), (2, 3))         # annihilates the whole pair
        assert not breaks_symmetry(breaker, protected)

    def test_single_touch_breaks(self):
        protected = term((2, 3), (4, 9))       # pair (2, 3)
        breaker = term((6, 7), (3, 8))         # touches only orbital 3
        assert breaks_symmetry(breaker, protected)

    def test_fermionic_protected_term_never_breaks(self):
        protected = term((2, 5), (4, 9))       # no symmetric pair
        breaker = term((6, 7), (2, 3))
        assert not breaks_symmetry(breaker, protected)

    def test_paper_ordering_example(self):
        """Sec. III-A example: h1 = c†2c†3 c5 c6, h2 = c†4c†5 c7 c8 (1-based).

        Shifted to 0-based: h1 = (1,2 -> creation 1,2? ) — we instead encode the
        physics directly: h1's symmetric pair is (4, 5) and h2 annihilates
        orbital (4? ) ... Applying h2 first breaks h1's symmetry, while h1 does
        not break h2 (h2 has no symmetric pair on (4,5)-adjacent orbitals).
        """
        h1 = term((2, 3), (4, 5))   # pair on creation (2,3); uses (4,5) as plain indices
        h2 = term((4, 7), (6, 9))   # touches orbital 4 only
        # The relevant pair of h1 is its creation pair (2, 3); h2 never touches
        # it, so h2 does not break h1.
        assert not breaks_symmetry(h2, h1)
        # A term annihilating exactly one of h1's pair members breaks it.
        h3 = term((6, 9), (3, 8))
        assert breaks_symmetry(h3, h1)


class TestGraphConstructionAndReduction:
    def graph(self):
        terms = [APPENDIX_TERMS[name] for name in APPENDIX_ORDER]
        return build_symmetry_graph(terms), terms

    def test_appendix_edges(self):
        graph, _ = self.graph()
        names = {i: APPENDIX_ORDER[i] for i in range(9)}
        edges = {(names[u], names[v]) for u, v in graph.edges}
        expected = {
            ("h1", "h0"), ("h8", "h0"), ("h0", "h1"), ("h5", "h1"),
            ("h1", "h2"), ("h6", "h2"), ("h1", "h3"), ("h6", "h3"),
            ("h1", "h5"), ("h6", "h5"), ("h4", "h6"), ("h5", "h6"),
            ("h7", "h6"), ("h6", "h7"), ("h8", "h7"),
        }
        assert edges == expected

    def test_appendix_reduction(self):
        graph, _ = self.graph()
        sinks, sources, core = reduce_graph(graph)
        assert {APPENDIX_ORDER[i] for i in sinks} == {"h2", "h3"}
        assert {APPENDIX_ORDER[i] for i in sources} == {"h4", "h8"}
        assert {APPENDIX_ORDER[i] for i in core.nodes} == {"h0", "h1", "h5", "h6", "h7"}
        # The undirected core is the path h0-h1-h5-h6-h7 of Fig. 6(b).
        undirected = core.to_undirected()
        core_edges = {
            frozenset((APPENDIX_ORDER[u], APPENDIX_ORDER[v])) for u, v in undirected.edges
        }
        assert core_edges == {
            frozenset(("h0", "h1")),
            frozenset(("h1", "h5")),
            frozenset(("h5", "h6")),
            frozenset(("h6", "h7")),
        }

    def test_empty_graph_reduction(self):
        sinks, sources, core = reduce_graph(nx.DiGraph())
        assert sinks == [] and sources == [] and core.number_of_nodes() == 0

    def test_isolated_vertices_become_sinks(self):
        graph = nx.DiGraph()
        graph.add_nodes_from([0, 1, 2])
        sinks, sources, core = reduce_graph(graph)
        assert set(sinks) == {0, 1, 2}
        assert core.number_of_nodes() == 0


class TestScheduling:
    def test_appendix_schedule(self):
        terms = [APPENDIX_TERMS[name] for name in APPENDIX_ORDER]
        schedule = schedule_hybrid_terms(terms, rng=np.random.default_rng(0))
        by_name = {id(t): name for name, t in APPENDIX_TERMS.items()}
        assert {by_name[id(t)] for t in schedule.sink_terms} == {"h2", "h3"}
        assert {by_name[id(t)] for t in schedule.source_terms} == {"h4", "h8"}
        assert {by_name[id(t)] for t in schedule.color_terms} == {"h0", "h5", "h7"}
        assert {by_name[id(t)] for t in schedule.uncompressed_terms} == {"h1", "h6"}
        assert schedule.n_compressed == 7
        assert schedule.compressed_cnot_count == 7 * HYBRID_TERM_CNOT_COST
        assert schedule.n_colors == 2

    def test_empty_schedule(self):
        schedule = schedule_hybrid_terms([])
        assert schedule.n_compressed == 0
        assert schedule.compressed_cnot_count == 0

    def test_non_hybrid_term_rejected(self):
        with pytest.raises(ValueError):
            schedule_hybrid_terms([term((2, 3), (0, 1))])

    def test_independent_terms_all_compressed(self):
        terms = [term((8, 9), (0, 1)), term((10, 11), (2, 7)), term((12, 13), (4, 15))]
        # Make them hybrid (one pair only): adjust first term to be hybrid.
        terms[0] = term((8, 9), (0, 5))
        schedule = schedule_hybrid_terms(terms, rng=np.random.default_rng(1))
        assert schedule.n_compressed == 3
        assert schedule.uncompressed_terms == []
