"""Tests for the GTSP-based advanced sorting (Sec. III-B, Appendix B)."""

import numpy as np
import pytest

from repro.core import (
    PauliRotation,
    advanced_sort,
    baseline_order_cnot_count,
    build_sorting_problem,
    greedy_sort,
)
from repro.operators import PauliString


def rotation(label, angle=0.1, term_index=0):
    return PauliRotation(string=PauliString(label), angle=angle, term_index=term_index)


class TestSortingProblem:
    def test_appendix_b_clusters(self):
        """Appendix B: three 8-qubit strings and their valid target sets."""
        rotations = [
            rotation("IIXXYXII"),
            rotation("IIXXXYII"),
            rotation("XXIIIIXY"),
        ]
        problem = build_sorting_problem(rotations)
        assert problem.n_clusters == 3
        targets = [sorted(t for _, t in cluster) for cluster in problem.clusters]
        assert targets[0] == [2, 3, 4, 5]
        assert targets[1] == [2, 3, 4, 5]
        assert targets[2] == [0, 1, 6, 7]

    def test_appendix_b_edge_weight(self):
        """The weight of ([P0, t=3], [P1, t=3]) is minus four saved CNOTs."""
        rotations = [rotation("IIXXYXII"), rotation("IIXXXYII")]
        problem = build_sorting_problem(rotations)
        weight = problem.weight((0, 2), (1, 2))
        assert weight == -4.0

    def test_identity_rotation_rejected(self):
        with pytest.raises(ValueError):
            build_sorting_problem([rotation("III")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_sorting_problem([])


class TestAdvancedSort:
    def test_single_rotation(self):
        result = advanced_sort([rotation("XXYZ")], rng=np.random.default_rng(0))
        assert result.cnot_count == 6
        assert len(result.ordered_rotations) == 1

    def test_empty_input(self):
        result = advanced_sort([], rng=np.random.default_rng(0))
        assert result.cnot_count == 0

    def test_figure_four_pair_prefers_shared_fourth_target(self):
        """Advanced sorting discovers the 7-CNOT solution of Fig. 4(a)."""
        rotations = [rotation("XXXY"), rotation("XXYX")]
        result = advanced_sort(rotations, rng=np.random.default_rng(0))
        assert result.cnot_count == 7

    def test_never_worse_than_naive_order(self):
        rng = np.random.default_rng(3)
        labels = ["XXZI", "XYZI", "IZZX", "ZZXX", "XXII"]
        rotations = [rotation(label, term_index=i) for i, label in enumerate(labels)]
        result = advanced_sort(rotations, rng=rng)
        assert result.cnot_count <= baseline_order_cnot_count(rotations)

    def test_sorted_sequence_covers_all_rotations(self):
        labels = ["XXZI", "XYZI", "IZZX"]
        rotations = [rotation(label, term_index=i) for i, label in enumerate(labels)]
        result = advanced_sort(rotations, rng=np.random.default_rng(1))
        sorted_labels = sorted(r.string.to_label() for r, _ in result.ordered_rotations)
        assert sorted_labels == sorted(labels)

    def test_targets_always_in_support(self):
        labels = ["XXZI", "IYZX", "ZIIX", "XIYI"]
        rotations = [rotation(label, term_index=i) for i, label in enumerate(labels)]
        result = advanced_sort(rotations, rng=np.random.default_rng(2))
        for rot, target in result.ordered_rotations:
            assert target in rot.string.support


class TestGreedySort:
    def test_matches_advanced_on_identical_strings(self):
        rotations = [rotation("XXZZ", term_index=i) for i in range(3)]
        greedy = greedy_sort(rotations)
        advanced = advanced_sort(rotations, rng=np.random.default_rng(0))
        # Three identical exponentials merge into one: 6 CNOTs total.
        assert greedy.cnot_count == 6
        assert advanced.cnot_count == 6

    def test_empty(self):
        assert greedy_sort([]).cnot_count == 0

    def test_never_worse_than_naive(self):
        rng = np.random.default_rng(5)
        labels = ["XXZI", "XYZI", "IZZX", "ZZXX"]
        rotations = [rotation(label, term_index=i) for i, label in enumerate(labels)]
        assert greedy_sort(rotations).cnot_count <= baseline_order_cnot_count(rotations)

    def test_covers_all_rotations(self):
        labels = ["XXZI", "XYZI", "IZZX", "ZZXX"]
        rotations = [rotation(label, term_index=i) for i, label in enumerate(labels)]
        result = greedy_sort(rotations)
        assert len(result.ordered_rotations) == len(labels)
