"""Tests for the full Fig. 2 compilation pipeline and the top-level API."""

import numpy as np
import pytest

from repro import compile_molecule_ansatz
from repro.baselines import BaselineCompiler, naive_cnot_count
from repro.core import AdvancedCompiler, compile_advanced
from repro.transforms import JordanWignerTransform
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


@pytest.fixture
def mixed_terms():
    return [
        term((4, 5), (0, 1)),     # bosonic
        term((4, 5), (0, 3)),     # hybrid
        term((6, 7), (2, 3)),     # bosonic
        term((4, 7), (0, 3)),     # fermionic
        term((6,), (0,)),         # single
    ]


def fast_compiler(**overrides):
    options = dict(gamma_steps=8, sorting_population=10, sorting_generations=8, seed=0)
    options.update(overrides)
    return AdvancedCompiler(**options)


class TestAdvancedPipeline:
    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            fast_compiler().compile([])

    def test_segments_sum_to_total(self, mixed_terms):
        result = fast_compiler().compile(mixed_terms, n_qubits=8)
        breakdown = result.breakdown()
        assert breakdown["total"] == (
            breakdown["bosonic"] + breakdown["hybrid"] + breakdown["fermionic"]
        )
        assert result.cnot_count > 0

    def test_bosonic_terms_cost_two_each(self, mixed_terms):
        result = fast_compiler().compile(mixed_terms, n_qubits=8)
        assert result.bosonic_cnot_count == 2 * len(result.bosonic_terms)
        assert len(result.bosonic_terms) == 2

    def test_advanced_beats_naive_jw(self, mixed_terms):
        result = fast_compiler().compile(mixed_terms, n_qubits=8)
        naive = naive_cnot_count(mixed_terms, JordanWignerTransform(8))
        assert result.cnot_count < naive

    def test_advanced_not_worse_than_baseline(self, mixed_terms):
        advanced = fast_compiler().compile(mixed_terms, n_qubits=8).cnot_count
        baseline = BaselineCompiler().compile(mixed_terms, n_qubits=8).cnot_count
        assert advanced <= baseline

    def test_deterministic_for_fixed_seed(self, mixed_terms):
        first = fast_compiler(seed=7).compile(mixed_terms, n_qubits=8).cnot_count
        second = fast_compiler(seed=7).compile(mixed_terms, n_qubits=8).cnot_count
        assert first == second

    def test_feature_switches(self, mixed_terms):
        full = fast_compiler().compile(mixed_terms, n_qubits=8)
        no_hybrid = fast_compiler(use_hybrid_encoding=False).compile(mixed_terms, n_qubits=8)
        no_bosonic = fast_compiler(use_bosonic_encoding=False).compile(mixed_terms, n_qubits=8)
        no_sorting = fast_compiler(use_advanced_sorting=False, use_gamma_search=False).compile(
            mixed_terms, n_qubits=8
        )
        assert no_hybrid.hybrid_cnot_count == 0
        assert no_bosonic.bosonic_cnot_count == 0
        assert full.cnot_count <= no_sorting.cnot_count
        assert full.cnot_count <= no_hybrid.cnot_count
        assert full.cnot_count <= no_bosonic.cnot_count

    def test_fermionic_circuit_emission(self, mixed_terms):
        result = fast_compiler().compile(mixed_terms, n_qubits=8)
        circuit = result.fermionic_circuit()
        assert circuit.n_qubits == 8
        assert circuit.cnot_count >= result.fermionic_cnot_count or len(circuit) >= 0

    def test_compile_advanced_wrapper(self, mixed_terms):
        result = compile_advanced(
            mixed_terms, n_qubits=8, seed=1,
            gamma_steps=5, sorting_population=8, sorting_generations=5,
        )
        assert result.cnot_count > 0


class TestEndToEndMoleculeApi:
    def test_h2_report_shape(self):
        report = compile_molecule_ansatz(
            "H2", n_terms=3, gamma_steps=5, sorting_population=8, sorting_generations=5
        )
        assert report.n_qubits == 4
        assert report.advanced_cnot_count <= report.baseline_cnot_count
        assert report.baseline_cnot_count <= max(
            report.jordan_wigner_cnot_count, report.bravyi_kitaev_cnot_count
        )
        assert 0.0 <= report.improvement_over_baseline <= 1.0

    def test_lih_advanced_beats_jw_and_bk(self):
        report = compile_molecule_ansatz(
            "LiH", n_terms=4, gamma_steps=5, sorting_population=8, sorting_generations=5
        )
        assert report.advanced_cnot_count < report.jordan_wigner_cnot_count
        assert report.advanced_cnot_count < report.bravyi_kitaev_cnot_count
        assert report.advanced_cnot_count <= report.baseline_cnot_count
