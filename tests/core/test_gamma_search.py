"""Tests for the block-diagonal Γ simulated-annealing search (Sec. III-C)."""

import numpy as np
import pytest

from repro.core import (
    assemble_gamma,
    excitation_topology_blocks,
    greedy_sort,
    search_block_diagonal_gamma,
    terms_to_rotations,
)
from repro.transforms import LinearEncodingTransform, is_invertible
from repro.vqe import ExcitationTerm


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


class TestTopologyBlocks:
    def test_appendix_c_example(self):
        """Appendix C: terms a†_9 a†_8 a_3 a_1 and a†_6 a†_5 a_2 a_1 (shifted to 0-based)."""
        terms = [term((7, 8), (0, 2)), term((4, 5), (0, 1))]
        blocks = excitation_topology_blocks(terms, n_qubits=9)
        block_sets = sorted(tuple(b) for b in blocks)
        assert block_sets == [(0, 1, 2), (4, 5), (7, 8)]

    def test_singletons_excluded(self):
        terms = [term((4,), (0,))]
        assert excitation_topology_blocks(terms, n_qubits=6) == []

    def test_large_components_split(self):
        terms = [
            term((4, 5), (0, 1)),
            term((5, 6), (1, 2)),
            term((6, 7), (2, 3)),
        ]
        blocks = excitation_topology_blocks(terms, n_qubits=8, max_block_size=3)
        assert all(2 <= len(block) <= 3 for block in blocks)
        covered = sorted(i for block in blocks for i in block)
        # The leftover singleton of each split component stays out of any block
        # (those modes are simply left untouched by Γ).
        assert covered == [0, 1, 2, 4, 5, 6]

    def test_assemble_gamma_invertible(self):
        blocks = [[0, 1], [3, 4, 5]]
        matrices = [np.array([[1, 1], [0, 1]]), np.eye(3, dtype=np.uint8)]
        gamma = assemble_gamma(6, blocks, matrices)
        assert is_invertible(gamma)
        assert gamma[0, 1] == 1


class TestGammaSearch:
    def setup_method(self):
        self.terms = [
            term((4, 6), (0, 2)),
            term((5, 7), (1, 3)),
            term((4, 7), (0, 3)),
        ]
        self.n_qubits = 8

    def cost(self, gamma):
        transform = LinearEncodingTransform(gamma)
        rotations = terms_to_rotations(self.terms, transform)
        return greedy_sort(rotations).cnot_count

    def test_search_returns_invertible_gamma(self):
        result = search_block_diagonal_gamma(
            self.terms, self.n_qubits, self.cost, n_steps=10,
            rng=np.random.default_rng(0),
        )
        assert is_invertible(result.gamma)
        assert result.cnot_count > 0

    def test_search_never_worse_than_identity(self):
        identity_cost = self.cost(np.eye(self.n_qubits, dtype=np.uint8))
        result = search_block_diagonal_gamma(
            self.terms, self.n_qubits, self.cost, n_steps=20,
            rng=np.random.default_rng(1),
        )
        assert result.cnot_count <= identity_cost

    def test_no_blocks_returns_identity(self):
        singles = [term((4,), (0,))]
        result = search_block_diagonal_gamma(
            singles, 6, lambda gamma: 1.0, n_steps=5, rng=np.random.default_rng(2)
        )
        assert np.array_equal(result.gamma, np.eye(6, dtype=np.uint8))
        assert result.blocks == []

    def test_reported_cost_matches_gamma(self):
        result = search_block_diagonal_gamma(
            self.terms, self.n_qubits, self.cost, n_steps=15,
            rng=np.random.default_rng(3),
        )
        assert np.isclose(result.cnot_count, self.cost(result.gamma))
