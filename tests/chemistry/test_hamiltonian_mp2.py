"""Tests for molecular Hamiltonians, active spaces and MP2 amplitudes."""

import numpy as np
import pytest

from repro.chemistry import (
    build_molecular_hamiltonian,
    make_molecule,
    mp2_amplitudes,
    mp2_energy_correction,
    ranked_double_excitations,
    run_rhf,
)
from repro.operators import FermionOperator
from repro.transforms import jordan_wigner


@pytest.fixture(scope="module")
def h2_scf():
    return run_rhf(make_molecule("H2"))


@pytest.fixture(scope="module")
def h2_hamiltonian(h2_scf):
    return build_molecular_hamiltonian(h2_scf)


@pytest.fixture(scope="module")
def lih_scf():
    return run_rhf(make_molecule("LiH"))


class TestHamiltonianConstruction:
    def test_h2_dimensions(self, h2_hamiltonian):
        assert h2_hamiltonian.n_spin_orbitals == 4
        assert h2_hamiltonian.n_electrons == 2
        assert h2_hamiltonian.occupied_spin_orbitals() == (0, 1)
        assert h2_hamiltonian.virtual_spin_orbitals() == (2, 3)

    def test_hartree_fock_expectation_matches_scf(self, h2_scf, h2_hamiltonian):
        """<HF|H|HF> computed from the second-quantized integrals equals the SCF energy."""
        occupied = h2_hamiltonian.occupied_spin_orbitals()
        energy = h2_hamiltonian.constant
        energy += sum(h2_hamiltonian.one_body[i, i] for i in occupied)
        energy += 0.5 * sum(
            h2_hamiltonian.two_body[i, j, i, j] - h2_hamiltonian.two_body[i, j, j, i]
            for i in occupied
            for j in occupied
        )
        assert np.isclose(energy, h2_scf.energy, atol=1e-8)

    def test_fermion_operator_is_hermitian(self, h2_hamiltonian):
        operator = h2_hamiltonian.to_fermion_operator()
        assert operator.is_hermitian()

    def test_h2_fci_ground_state(self, h2_hamiltonian):
        """Exact diagonalization of the qubit Hamiltonian reproduces the known FCI energy."""
        qubit_op = jordan_wigner(
            h2_hamiltonian.to_fermion_operator(), n_modes=h2_hamiltonian.n_spin_orbitals
        )
        ground = float(np.linalg.eigvalsh(qubit_op.to_dense())[0])
        assert np.isclose(ground, -1.13727, atol=2e-4)

    def test_invalid_active_space_rejected(self, h2_scf):
        with pytest.raises(ValueError):
            build_molecular_hamiltonian(h2_scf, n_frozen_spatial_orbitals=3)
        with pytest.raises(ValueError):
            build_molecular_hamiltonian(h2_scf, n_active_spatial_orbitals=9)

    def test_frozen_core_preserves_hf_energy(self, lih_scf):
        """Freezing the Li 1s core leaves <HF|H|HF> equal to the full SCF energy."""
        hamiltonian = build_molecular_hamiltonian(lih_scf, n_frozen_spatial_orbitals=1)
        assert hamiltonian.n_electrons == 2
        occupied = hamiltonian.occupied_spin_orbitals()
        energy = hamiltonian.constant
        energy += sum(hamiltonian.one_body[i, i] for i in occupied)
        energy += 0.5 * sum(
            hamiltonian.two_body[i, j, i, j] - hamiltonian.two_body[i, j, j, i]
            for i in occupied
            for j in occupied
        )
        assert np.isclose(energy, lih_scf.energy, atol=1e-8)

    def test_active_space_reduces_size(self, lih_scf):
        hamiltonian = build_molecular_hamiltonian(
            lih_scf, n_frozen_spatial_orbitals=1, n_active_spatial_orbitals=3
        )
        assert hamiltonian.n_spin_orbitals == 6


class TestMp2:
    def test_h2_mp2_is_negative(self, h2_hamiltonian):
        correction = mp2_energy_correction(h2_hamiltonian)
        assert -0.05 < correction < -0.005

    def test_h2_single_dominant_amplitude(self, h2_hamiltonian):
        amplitudes = mp2_amplitudes(h2_hamiltonian)
        # In a minimal basis H2 only the (0,1) -> (2,3) double excitation contributes.
        dominant = max(amplitudes, key=lambda a: a.importance)
        assert dominant.occupied == (0, 1)
        assert dominant.virtual == (2, 3)

    def test_ranking_is_sorted(self, lih_scf):
        hamiltonian = build_molecular_hamiltonian(lih_scf, n_frozen_spatial_orbitals=1)
        ranked = ranked_double_excitations(hamiltonian)
        importances = [amplitude.importance for amplitude in ranked]
        assert importances == sorted(importances, reverse=True)
        assert all(amplitude.energy <= 0 for amplitude in ranked)

    def test_all_pair_energies_nonpositive(self, h2_hamiltonian):
        assert all(a.energy <= 0 for a in mp2_amplitudes(h2_hamiltonian))
