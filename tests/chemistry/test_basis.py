"""Unit tests for the STO-3G basis and molecule containers."""

import math

import numpy as np
import pytest

from repro.chemistry import ANGSTROM_TO_BOHR, Atom, Molecule, build_sto3g_basis, make_molecule
from repro.chemistry.basis import BasisFunction, double_factorial, primitive_normalization
from repro.chemistry.integrals import overlap


class TestHelpers:
    def test_double_factorial(self):
        assert double_factorial(-1) == 1
        assert double_factorial(0) == 1
        assert double_factorial(5) == 15
        assert double_factorial(6) == 48

    def test_primitive_normalization_s(self):
        # For an s Gaussian N = (2a/pi)^(3/4).
        a = 0.7
        assert np.isclose(primitive_normalization(a, (0, 0, 0)), (2 * a / math.pi) ** 0.75)


class TestAtomsAndMolecules:
    def test_atom_validation(self):
        with pytest.raises(ValueError):
            Atom("Xx", (0, 0, 0))

    def test_atomic_number(self):
        assert Atom("O", (0, 0, 0)).atomic_number == 8

    def test_from_angstrom_converts_to_bohr(self):
        molecule = Molecule.from_angstrom([("H", (0, 0, 0)), ("H", (0, 0, 1.0))])
        assert np.isclose(molecule.atoms[1].position[2], ANGSTROM_TO_BOHR)

    def test_electron_count_and_charge(self):
        water = make_molecule("H2O")
        assert water.n_electrons == 10
        cation = Molecule.from_angstrom([("H", (0, 0, 0)), ("H", (0, 0, 0.74))], charge=1)
        assert cation.n_electrons == 1

    def test_nuclear_repulsion_h2(self):
        # Two protons at 1.4 Bohr: E_nn = 1/1.4.
        molecule = Molecule(atoms=[Atom("H", (0, 0, 0)), Atom("H", (0, 0, 1.4))])
        assert np.isclose(molecule.nuclear_repulsion, 1.0 / 1.4)

    def test_unknown_molecule_name(self):
        with pytest.raises(ValueError):
            make_molecule("C60")

    def test_registry_molecules_have_expected_sizes(self):
        assert len(make_molecule("NH3").atoms) == 4
        assert len(make_molecule("BeH2").atoms) == 3


class TestBasisConstruction:
    def test_hydrogen_has_one_function(self):
        basis = build_sto3g_basis(make_molecule("H2"))
        assert len(basis) == 2
        assert all(f.angular_momentum == 0 for f in basis)

    def test_water_has_seven_functions(self):
        basis = build_sto3g_basis(make_molecule("H2O"))
        assert len(basis) == 7
        # O: 1s, 2s, 2px, 2py, 2pz; H, H: 1s each.
        assert sum(1 for f in basis if f.angular_momentum == 1) == 3

    def test_contracted_functions_are_normalized(self):
        basis = build_sto3g_basis(make_molecule("LiH"))
        for function in basis:
            assert np.isclose(overlap(function, function), 1.0, atol=1e-10)

    def test_basis_function_validation(self):
        with pytest.raises(ValueError):
            BasisFunction(center=(0, 0, 0), lmn=(0, 0, 0), exponents=(1.0,), coefficients=(1.0, 2.0))

    def test_ammonia_geometry_angles(self):
        """The generated NH3 geometry reproduces the requested bond angle."""
        molecule = make_molecule("NH3")
        nitrogen = np.array(molecule.atoms[0].position)
        h1 = np.array(molecule.atoms[1].position) - nitrogen
        h2 = np.array(molecule.atoms[2].position) - nitrogen
        angle = math.degrees(
            math.acos(np.dot(h1, h2) / (np.linalg.norm(h1) * np.linalg.norm(h2)))
        )
        assert abs(angle - 106.67) < 0.1
        assert np.isclose(np.linalg.norm(h1) / ANGSTROM_TO_BOHR, 1.0116, atol=1e-3)
