"""Hartree-Fock validation against literature STO-3G energies."""

import numpy as np
import pytest

from repro.chemistry import (
    ScfNotConvergedError,
    build_molecular_hamiltonian,
    clear_scf_cache,
    make_molecule,
    run_rhf,
)
from repro.chemistry.basis import Molecule


class TestRhfEnergies:
    """Total RHF/STO-3G energies compared to standard literature values (Hartree)."""

    @pytest.mark.parametrize(
        "name, reference, tolerance",
        [
            ("H2", -1.1167, 2e-3),
            ("LiH", -7.8620, 5e-3),
            ("HF", -98.5708, 1e-2),
            ("H2O", -74.9629, 1e-2),
            ("BeH2", -15.5603, 1e-2),
        ],
    )
    def test_total_energy(self, name, reference, tolerance):
        result = run_rhf(make_molecule(name))
        assert result.converged
        assert abs(result.energy - reference) < tolerance

    def test_ammonia_energy(self):
        result = run_rhf(make_molecule("NH3"))
        assert result.converged
        assert abs(result.energy - (-55.454)) < 2e-2


class TestScfProperties:
    def test_orbital_count_and_occupation(self):
        result = run_rhf(make_molecule("H2O"))
        assert result.n_orbitals == 7
        assert result.n_occupied == 5

    def test_electronic_energy_excludes_nuclear_repulsion(self):
        result = run_rhf(make_molecule("H2"))
        assert np.isclose(
            result.electronic_energy + result.molecule.nuclear_repulsion, result.energy
        )

    def test_density_matrix_trace_counts_electrons(self):
        result = run_rhf(make_molecule("LiH"))
        assert np.isclose(np.trace(result.density_matrix @ result.overlap), 4.0, atol=1e-6)

    def test_orbital_energies_sorted(self):
        result = run_rhf(make_molecule("H2O"))
        assert np.all(np.diff(result.orbital_energies) >= -1e-10)

    def test_aufbau_gap(self):
        result = run_rhf(make_molecule("H2"))
        homo = result.orbital_energies[result.n_occupied - 1]
        lumo = result.orbital_energies[result.n_occupied]
        assert lumo > homo

    def test_orbitals_orthonormal_in_overlap_metric(self):
        result = run_rhf(make_molecule("LiH"))
        c, s = result.orbital_coefficients, result.overlap
        assert np.allclose(c.T @ s @ c, np.eye(result.n_orbitals), atol=1e-8)


class TestValidation:
    def test_odd_electron_count_rejected(self):
        cation = Molecule.from_angstrom(
            [("H", (0, 0, 0)), ("H", (0, 0, 0.74))], charge=1
        )
        with pytest.raises(ValueError):
            run_rhf(cation)

    def test_invalid_damping(self):
        with pytest.raises(ValueError):
            run_rhf(make_molecule("H2"), damping=1.5)

    def test_damping_converges_to_same_energy(self):
        plain = run_rhf(make_molecule("LiH"))
        damped = run_rhf(make_molecule("LiH"), damping=0.3)
        assert np.isclose(plain.energy, damped.energy, atol=1e-6)


class TestConvergenceGuard:
    """Unconverged SCF is a typed error, never a silent bad reference."""

    def test_unconverged_scf_raises_typed_error(self):
        with pytest.raises(ScfNotConvergedError) as info:
            run_rhf(make_molecule("H2"), max_iterations=1, use_cache=False)
        # The partial solution stays reachable for diagnostics.
        assert info.value.result.converged is False
        assert isinstance(info.value.result.energy, float)

    def test_error_message_names_the_escape_hatch(self):
        with pytest.raises(ScfNotConvergedError, match="allow_unconverged"):
            run_rhf(make_molecule("H2"), max_iterations=1, use_cache=False)

    def test_allow_unconverged_returns_the_partial_result(self):
        result = run_rhf(
            make_molecule("H2"),
            max_iterations=1,
            use_cache=False,
            allow_unconverged=True,
        )
        assert result.converged is False
        assert np.isfinite(result.energy)

    def test_cache_hit_of_an_unconverged_solve_still_raises(self):
        clear_scf_cache()
        try:
            partial = run_rhf(
                make_molecule("H2"), max_iterations=1, allow_unconverged=True
            )
            assert not partial.converged
            # Identical settings hit the cache; the guard applies either way.
            with pytest.raises(ScfNotConvergedError):
                run_rhf(make_molecule("H2"), max_iterations=1)
        finally:
            clear_scf_cache()

    def test_hamiltonian_build_audits_convergence(self):
        partial = run_rhf(
            make_molecule("H2"),
            max_iterations=1,
            use_cache=False,
            allow_unconverged=True,
        )
        with pytest.raises(ScfNotConvergedError):
            build_molecular_hamiltonian(partial, use_cache=False)
        hamiltonian = build_molecular_hamiltonian(
            partial, use_cache=False, allow_unconverged=True
        )
        assert hamiltonian.n_spin_orbitals == 4

    def test_converged_solve_unaffected_by_the_flag(self):
        plain = run_rhf(make_molecule("H2"), use_cache=False)
        tolerant = run_rhf(make_molecule("H2"), use_cache=False, allow_unconverged=True)
        assert plain.converged and tolerant.converged
        assert np.isclose(plain.energy, tolerant.energy, atol=1e-10)
