"""Cached/vectorized integral engine: bit-identity and memoization behavior."""

import numpy as np

from repro.chemistry import (
    build_molecular_hamiltonian,
    build_sto3g_basis,
    clear_integral_caches,
    clear_scf_cache,
    make_molecule,
    molecule_fingerprint,
    run_rhf,
    set_integral_caching,
    shell_pair_data,
)
from repro.chemistry.integrals import (
    _electron_repulsion_vectorized,
    boys_function,
    build_electron_repulsion_tensor,
    electron_repulsion,
    electron_repulsion_scalar,
    hermite_coulomb,
    hermite_expansion,
)


def lih_basis():
    return build_sto3g_basis(make_molecule("LiH"))


class TestVectorizedElectronRepulsion:
    def test_bit_identical_to_scalar_on_sp_quartets(self):
        # Li 1s, Li 2s, Li 2px, H 1s: covers s-only and p-bearing quartets.
        basis = lih_basis()
        functions = [basis[0], basis[1], basis[2], basis[5]]
        for a in functions:
            for b in functions:
                for c in functions:
                    for d in functions:
                        vectorized = _electron_repulsion_vectorized(a, b, c, d)
                        scalar = electron_repulsion_scalar(a, b, c, d)
                        assert vectorized == scalar

    def test_caching_toggle_is_bit_transparent(self):
        basis = build_sto3g_basis(make_molecule("H2"))
        clear_integral_caches()
        cached_tensor = build_electron_repulsion_tensor(basis)
        previous = set_integral_caching(False)
        try:
            assert previous is True
            plain_tensor = build_electron_repulsion_tensor(basis)
        finally:
            set_integral_caching(True)
        assert np.array_equal(cached_tensor, plain_tensor)

    def test_scalar_kernels_bit_transparent_under_toggle(self):
        args_expansion = (1, 1, 1, 0.7, 5.0, 1.3)
        args_coulomb = (1, 0, 1, 0, 2.0, 0.1, -0.2, 0.3, 0.14)
        cached = (
            hermite_expansion(*args_expansion),
            hermite_coulomb(*args_coulomb),
            boys_function(2, 0.8),
        )
        set_integral_caching(False)
        try:
            direct = (
                hermite_expansion(*args_expansion),
                hermite_coulomb(*args_coulomb),
                boys_function(2, 0.8),
            )
        finally:
            set_integral_caching(True)
        assert cached == direct

    def test_dispatch_uses_vectorized_path_when_enabled(self):
        basis = build_sto3g_basis(make_molecule("H2"))
        value = electron_repulsion(basis[0], basis[0], basis[1], basis[1])
        assert value == electron_repulsion_scalar(basis[0], basis[0], basis[1], basis[1])


class TestShellPairCache:
    def test_pair_data_is_cached_and_clearable(self):
        basis = lih_basis()
        clear_integral_caches()
        first = shell_pair_data(basis[0], basis[2])
        again = shell_pair_data(basis[0], basis[2])
        assert first is again
        clear_integral_caches()
        fresh = shell_pair_data(basis[0], basis[2])
        assert fresh is not first

    def test_pair_cache_is_bounded(self, monkeypatch):
        from repro.chemistry import integrals

        basis = lih_basis()
        clear_integral_caches()
        monkeypatch.setattr(integrals, "_SHELL_PAIR_CACHE_MAX_ENTRIES", 2)
        shell_pair_data(basis[0], basis[1])
        shell_pair_data(basis[1], basis[2])
        shell_pair_data(basis[2], basis[3])
        assert len(integrals._SHELL_PAIR_CACHE) == 2

    def test_pair_tables_match_scalar_expansion(self):
        basis = lih_basis()
        fa, fb = basis[1], basis[2]  # s-p pair: non-trivial expansion tables
        pair = shell_pair_data(fa, fb)
        for axis in range(3):
            l1, l2 = fa.lmn[axis], fb.lmn[axis]
            separation = fa.center[axis] - fb.center[axis]
            for t, table in enumerate(pair.expansion[axis]):
                for i, alpha in enumerate(fa.exponents):
                    for j, beta in enumerate(fb.exponents):
                        assert table[i, j] == hermite_expansion(
                            l1, l2, t, separation, alpha, beta
                        )


class TestScfMemoization:
    def test_run_rhf_memoizes_per_molecule(self):
        clear_scf_cache()
        molecule = make_molecule("H2")
        first = run_rhf(molecule)
        again = run_rhf(make_molecule("H2"))
        assert first is again

    def test_use_cache_false_recomputes(self):
        clear_scf_cache()
        molecule = make_molecule("H2")
        first = run_rhf(molecule)
        fresh = run_rhf(molecule, use_cache=False)
        assert fresh is not first
        assert fresh.energy == first.energy

    def test_clear_scf_cache_forgets(self):
        clear_scf_cache()
        molecule = make_molecule("H2")
        first = run_rhf(molecule)
        clear_scf_cache()
        assert run_rhf(molecule) is not first

    def test_explicit_basis_bypasses_cache(self):
        clear_scf_cache()
        molecule = make_molecule("H2")
        cached = run_rhf(molecule)
        explicit = run_rhf(molecule, basis=build_sto3g_basis(molecule))
        assert explicit is not cached
        assert explicit.energy == cached.energy

    def test_different_solver_settings_get_distinct_entries(self):
        clear_scf_cache()
        molecule = make_molecule("H2")
        default = run_rhf(molecule)
        damped = run_rhf(molecule, damping=0.2)
        assert default is not damped

    def test_molecule_fingerprint_distinguishes_geometry(self):
        assert molecule_fingerprint(make_molecule("H2")) != molecule_fingerprint(
            make_molecule("LiH")
        )
        assert molecule_fingerprint(make_molecule("H2")) == molecule_fingerprint(
            make_molecule("H2")
        )

    def test_same_geometry_different_name_is_not_conflated(self):
        # A cache hit must never return a result labeled with another
        # caller's molecule name (the name flows into Hamiltonian/report rows).
        clear_scf_cache()
        first = make_molecule("H2")
        renamed = make_molecule("H2")
        renamed.name = "H2-copy"
        cached = run_rhf(first)
        other = run_rhf(renamed)
        assert other is not cached
        assert other.molecule.name == "H2-copy"
        assert other.energy == cached.energy

    def test_scf_cache_is_bounded(self, monkeypatch):
        from repro.chemistry import hartree_fock

        clear_scf_cache()
        monkeypatch.setattr(hartree_fock, "_SCF_CACHE_MAX_ENTRIES", 1)
        h2 = run_rhf(make_molecule("H2"))
        lih = run_rhf(make_molecule("LiH"))
        assert len(hartree_fock._SCF_CACHE) == 1
        # The H2 entry was evicted (FIFO); LiH is the survivor.
        assert run_rhf(make_molecule("LiH")) is lih
        assert run_rhf(make_molecule("H2")) is not h2


class TestHamiltonianMemoization:
    def test_memoized_per_active_space(self):
        clear_scf_cache()
        scf = run_rhf(make_molecule("LiH"))
        frozen = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=1)
        assert build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=1) is frozen
        full = build_molecular_hamiltonian(scf)
        assert full is not frozen
        assert full.n_spin_orbitals == frozen.n_spin_orbitals + 2

    def test_use_cache_false_recomputes(self):
        clear_scf_cache()
        scf = run_rhf(make_molecule("H2"))
        first = build_molecular_hamiltonian(scf)
        fresh = build_molecular_hamiltonian(scf, use_cache=False)
        assert fresh is not first
        assert np.array_equal(fresh.one_body, first.one_body)
        assert np.array_equal(fresh.two_body, first.two_body)
