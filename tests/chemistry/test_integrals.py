"""Unit tests for molecular integrals (McMurchie-Davidson)."""

import math

import numpy as np
import pytest

from repro.chemistry import build_sto3g_basis, make_molecule
from repro.chemistry.basis import BasisFunction, Molecule, Atom
from repro.chemistry.integrals import (
    boys_function,
    build_electron_repulsion_tensor,
    build_kinetic_matrix,
    build_nuclear_matrix,
    build_overlap_matrix,
    electron_repulsion,
    hermite_expansion,
    kinetic,
    overlap,
)


def s_function(exponent, center=(0.0, 0.0, 0.0)):
    return BasisFunction(center=center, lmn=(0, 0, 0), exponents=(exponent,), coefficients=(1.0,))


class TestBoysFunction:
    def test_zero_argument(self):
        # F_n(0) = 1 / (2n + 1).
        for n in range(4):
            assert np.isclose(boys_function(n, 0.0), 1.0 / (2 * n + 1))

    def test_large_argument_asymptotics(self):
        # F_0(x) -> sqrt(pi / (4x)) for large x.
        x = 40.0
        assert np.isclose(boys_function(0, x), math.sqrt(math.pi / (4 * x)), rtol=1e-6)

    def test_monotone_decreasing_in_x(self):
        values = [boys_function(1, x) for x in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert all(a > b for a, b in zip(values, values[1:]))


class TestHermiteExpansion:
    def test_zero_order_is_gaussian_prefactor(self):
        a, b, q = 0.9, 0.4, 0.7
        expected = math.exp(-a * b / (a + b) * q * q)
        assert np.isclose(hermite_expansion(0, 0, 0, q, a, b), expected)

    def test_out_of_range_is_zero(self):
        assert hermite_expansion(1, 1, 3, 0.5, 1.0, 1.0) == 0.0
        assert hermite_expansion(0, 0, -1, 0.5, 1.0, 1.0) == 0.0


class TestPrimitiveIntegrals:
    def test_normalized_s_overlap_is_one(self):
        f = s_function(1.3)
        assert np.isclose(overlap(f, f), 1.0)

    def test_overlap_decays_with_distance(self):
        f0 = s_function(1.0)
        values = [overlap(f0, s_function(1.0, (0, 0, d))) for d in (0.0, 0.5, 1.0, 2.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_kinetic_energy_of_normalized_gaussian(self):
        # For a normalized s Gaussian with exponent a: <T> = 3a/2.
        a = 0.8
        f = s_function(a)
        assert np.isclose(kinetic(f, f), 1.5 * a)

    def test_nuclear_attraction_of_gaussian_at_nucleus(self):
        # <V> for a normalized s Gaussian centred on a unit charge: -2 sqrt(a / pi) * ... = -2*sqrt(2a/pi).
        a = 1.1
        f = s_function(a)
        molecule = Molecule(atoms=[Atom("H", (0.0, 0.0, 0.0))])
        value = build_nuclear_matrix([f], molecule)[0, 0]
        assert np.isclose(value, -2.0 * math.sqrt(2.0 * a / math.pi))

    def test_self_repulsion_positive_and_scales_as_sqrt_exponent(self):
        # (aa|aa) of a normalized s Gaussian is positive and scales as sqrt(a)
        # (lengths scale as 1/sqrt(a), so the Coulomb energy scales as sqrt(a)).
        a = 0.7
        value_a = electron_repulsion(*([s_function(a)] * 4))
        value_2a = electron_repulsion(*([s_function(2 * a)] * 4))
        assert value_a > 0
        assert np.isclose(value_2a / value_a, math.sqrt(2.0), rtol=1e-8)

    def test_repulsion_between_distant_charges_approaches_coulomb(self):
        # Two tight normalized s Gaussians far apart repel like point charges 1/R.
        tight = 6.0
        distance = 12.0
        f1 = s_function(tight)
        f2 = s_function(tight, (0.0, 0.0, distance))
        value = electron_repulsion(f1, f1, f2, f2)
        assert np.isclose(value, 1.0 / distance, rtol=1e-4)


class TestIntegralMatrices:
    def test_overlap_matrix_properties(self):
        basis = build_sto3g_basis(make_molecule("LiH"))
        s = build_overlap_matrix(basis)
        assert np.allclose(s, s.T)
        assert np.allclose(np.diag(s), 1.0)
        eigenvalues = np.linalg.eigvalsh(s)
        assert np.all(eigenvalues > 0)

    def test_kinetic_matrix_positive_definite(self):
        basis = build_sto3g_basis(make_molecule("H2"))
        t = build_kinetic_matrix(basis)
        assert np.allclose(t, t.T)
        assert np.all(np.linalg.eigvalsh(t) > 0)

    def test_nuclear_matrix_negative_diagonal(self):
        molecule = make_molecule("H2")
        basis = build_sto3g_basis(molecule)
        v = build_nuclear_matrix(basis, molecule)
        assert np.all(np.diag(v) < 0)

    def test_eri_tensor_symmetries(self):
        basis = build_sto3g_basis(make_molecule("H2"))
        eri = build_electron_repulsion_tensor(basis)
        assert np.allclose(eri, eri.transpose(1, 0, 2, 3))
        assert np.allclose(eri, eri.transpose(0, 1, 3, 2))
        assert np.allclose(eri, eri.transpose(2, 3, 0, 1))
        assert np.all(np.einsum("iijj->ij", eri) > 0)
