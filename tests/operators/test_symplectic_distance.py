"""Distance-weighted cost matrices: vectorized vs scalar reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Topology
from repro.operators import (
    PauliString,
    distance_weighted_cost_matrix,
    interface_reduction_matrix,
    routed_vertex_cost_vector,
    support_matrix,
)


def labels(n: int, min_weight: int = 1):
    return st.text(alphabet="IXYZ", min_size=n, max_size=n).filter(
        lambda s: sum(c != "I" for c in s) >= min_weight
    )


def scalar_vertex_cost(string: PauliString, target: int, distance: np.ndarray) -> int:
    return 2 * sum(
        2 * int(distance[q, target]) - 1 for q in string.support if q != target
    )


class TestSupportMatrix:
    @given(st.lists(labels(6, min_weight=0), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_matches_per_string_support(self, label_list):
        strings = [PauliString(label) for label in label_list]
        matrix = support_matrix(strings)
        assert matrix.shape == (len(strings), 6)
        for row, string in zip(matrix, strings):
            assert set(np.flatnonzero(row)) == set(string.support)

    def test_wide_strings_cross_word_boundary(self):
        label = "I" * 63 + "X" + "Z" * 2 + "I" * 4
        matrix = support_matrix([PauliString(label)])
        assert set(np.flatnonzero(matrix[0])) == {63, 64, 65}

    def test_empty_collection(self):
        assert support_matrix([]).shape == (0, 0)


class TestRoutedVertexCost:
    @pytest.mark.parametrize(
        "topology",
        [Topology.line(6), Topology.ring(6), Topology.grid(2, 3), Topology.all_to_all(6)],
        ids=lambda t: t.name,
    )
    def test_matches_scalar_reference(self, topology):
        rng = np.random.default_rng(0)
        strings, targets = [], []
        for _ in range(12):
            label = "".join(rng.choice(list("IXYZ"), size=6))
            if set(label) == {"I"}:
                label = "X" + label[1:]
            string = PauliString(label)
            strings.append(string)
            targets.append(int(rng.choice(string.support)))
        costs = routed_vertex_cost_vector(strings, targets, topology.distance_matrix)
        expected = [
            scalar_vertex_cost(s, t, topology.distance_matrix)
            for s, t in zip(strings, targets)
        ]
        np.testing.assert_array_equal(costs, expected)

    def test_all_to_all_collapses_to_template_cost(self):
        full = Topology.all_to_all(5)
        strings = [PauliString("XZYXI"), PauliString("ZZIII"), PauliString("IIIIX")]
        targets = [string.support[-1] for string in strings]
        costs = routed_vertex_cost_vector(strings, targets, full.distance_matrix)
        np.testing.assert_array_equal(
            costs, [2 * (s.weight - 1) for s in strings]
        )

    def test_validation(self):
        line = Topology.line(4)
        with pytest.raises(ValueError, match="one target per string"):
            routed_vertex_cost_vector([PauliString("XXXX")], [0, 1], line.distance_matrix)
        with pytest.raises(ValueError, match="cannot cover"):
            routed_vertex_cost_vector(
                [PauliString("XXXXXX")], [0], line.distance_matrix
            )
        split = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="unreachable"):
            routed_vertex_cost_vector([PauliString("XXXX")], [0], split.distance_matrix)
        assert routed_vertex_cost_vector([], [], line.distance_matrix).shape == (0,)


class TestDistanceWeightedCostMatrix:
    def test_combines_cost_and_savings(self):
        line = Topology.line(5)
        strings = [PauliString("XZYXI"), PauliString("IZZXI"), PauliString("ZIIIZ")]
        targets = [3, 3, 4]
        matrix = distance_weighted_cost_matrix(strings, targets, line.distance_matrix)
        costs = routed_vertex_cost_vector(strings, targets, line.distance_matrix)
        savings = interface_reduction_matrix(strings, targets)
        np.testing.assert_array_equal(matrix, costs[None, :] - savings)

    def test_all_to_all_orders_like_pure_savings(self):
        """On all-to-all distances the weights equal 2(w_b - 1) - savings."""
        full = Topology.all_to_all(4)
        strings = [PauliString("XZYX"), PauliString("IZZX"), PauliString("ZZII")]
        targets = [3, 3, 1]
        matrix = distance_weighted_cost_matrix(strings, targets, full.distance_matrix)
        savings = interface_reduction_matrix(strings, targets)
        weights = np.array([2 * (s.weight - 1) for s in strings])
        np.testing.assert_array_equal(matrix, weights[None, :] - savings)
