"""Unit tests for the fermionic operator algebra."""

import pytest

from repro.operators import FermionOperator


class TestConstruction:
    def test_zero_operator_has_no_terms(self):
        assert FermionOperator.zero().terms == {}
        assert FermionOperator.zero().is_zero

    def test_identity_operator(self):
        op = FermionOperator.identity(2.5)
        assert op.terms == {(): 2.5 + 0j}
        assert op.constant == 2.5

    def test_creation_and_annihilation(self):
        cr = FermionOperator.creation(3)
        an = FermionOperator.annihilation(1)
        assert cr.terms == {((3, True),): 1.0 + 0j}
        assert an.terms == {((1, False),): 1.0 + 0j}

    def test_zero_coefficient_term_is_dropped(self):
        op = FermionOperator(((0, True),), 0.0)
        assert op.is_zero

    def test_invalid_orbital_raises(self):
        with pytest.raises(ValueError):
            FermionOperator(((-1, True),))

    def test_invalid_term_shape_raises(self):
        with pytest.raises(TypeError):
            FermionOperator((("bad",),))

    def test_double_excitation_constructor(self):
        op = FermionOperator.double_excitation(2, 3, 5, 6, 0.5)
        expected = ((2, True), (3, True), (5, False), (6, False))
        assert op.terms == {expected: 0.5 + 0j}

    def test_number_operator(self):
        op = FermionOperator.number(4)
        assert op.terms == {((4, True), (4, False)): 1.0 + 0j}


class TestAlgebra:
    def test_addition_merges_identical_terms(self):
        op = FermionOperator.creation(0) + FermionOperator.creation(0)
        assert op.terms == {((0, True),): 2.0 + 0j}

    def test_addition_of_scalar(self):
        op = FermionOperator.creation(0) + 3.0
        assert op.constant == 3.0

    def test_subtraction_cancels(self):
        op = FermionOperator.creation(0) - FermionOperator.creation(0)
        assert op.is_zero

    def test_scalar_multiplication(self):
        op = 2.0 * FermionOperator.creation(1)
        assert op.terms == {((1, True),): 2.0 + 0j}

    def test_multiplication_concatenates_terms(self):
        product = FermionOperator.creation(0) * FermionOperator.annihilation(1)
        assert product.terms == {((0, True), (1, False)): 1.0 + 0j}

    def test_division_by_scalar(self):
        op = FermionOperator.creation(1, 4.0) / 2.0
        assert op.terms == {((1, True),): 2.0 + 0j}

    def test_power(self):
        op = FermionOperator.creation(0) ** 2
        # a†a† on the same orbital is nilpotent: normal ordering kills it.
        assert op.normal_ordered().is_zero

    def test_power_zero_is_identity(self):
        op = FermionOperator.creation(0) ** 0
        assert op == FermionOperator.identity()

    def test_negative_power_raises(self):
        with pytest.raises(ValueError):
            FermionOperator.creation(0) ** -1

    def test_many_body_order(self):
        op = FermionOperator.double_excitation(0, 1, 2, 3) + FermionOperator.creation(5)
        assert op.many_body_order() == 4

    def test_max_orbital_and_orbitals(self):
        op = FermionOperator.double_excitation(0, 7, 2, 3)
        assert op.max_orbital() == 7
        assert op.orbitals() == (0, 2, 3, 7)


class TestHermitianConjugation:
    def test_conjugate_of_creation_is_annihilation(self):
        assert FermionOperator.creation(2).hermitian_conjugate() == FermionOperator.annihilation(2)

    def test_conjugate_reverses_order(self):
        op = FermionOperator.creation(0) * FermionOperator.annihilation(1)
        expected = FermionOperator.creation(1) * FermionOperator.annihilation(0)
        assert op.hermitian_conjugate() == expected

    def test_conjugate_conjugates_coefficients(self):
        op = FermionOperator.creation(0, 1.0 + 2.0j)
        assert op.hermitian_conjugate().terms == {((0, False),): 1.0 - 2.0j}

    def test_double_conjugation_is_identity(self):
        op = FermionOperator.double_excitation(0, 1, 2, 3, 0.3 + 0.1j)
        assert op.hermitian_conjugate().hermitian_conjugate() == op

    def test_number_operator_is_hermitian(self):
        assert FermionOperator.number(3).is_hermitian()

    def test_anti_hermitian_part(self):
        op = FermionOperator.double_excitation(0, 1, 2, 3, 0.7)
        generator = op.anti_hermitian_part()
        assert (generator + generator.hermitian_conjugate()).normal_ordered().is_zero


class TestNormalOrdering:
    def test_anticommutation_same_orbital(self):
        # a_0 a†_0 = 1 - a†_0 a_0
        op = FermionOperator.annihilation(0) * FermionOperator.creation(0)
        expected = FermionOperator.identity() - FermionOperator.number(0)
        assert op.normal_ordered() == expected

    def test_anticommutation_different_orbitals(self):
        # a_0 a†_1 = -a†_1 a_0
        op = FermionOperator.annihilation(0) * FermionOperator.creation(1)
        expected = FermionOperator(((1, True), (0, False)), -1.0)
        assert op.normal_ordered() == expected

    def test_pauli_exclusion_creation(self):
        op = FermionOperator.creation(0) * FermionOperator.creation(0)
        assert op.normal_ordered().is_zero

    def test_pauli_exclusion_annihilation(self):
        op = FermionOperator.annihilation(2) * FermionOperator.annihilation(2)
        assert op.normal_ordered().is_zero

    def test_creation_block_sorted_descending(self):
        op = FermionOperator.creation(0) * FermionOperator.creation(1)
        ordered = op.normal_ordered()
        assert ordered.terms == {((1, True), (0, True)): -1.0 + 0j}

    def test_number_operator_fixed_point(self):
        op = FermionOperator.number(3)
        assert op.normal_ordered() == op

    def test_normal_ordering_is_idempotent(self):
        op = (
            FermionOperator.annihilation(0)
            * FermionOperator.creation(1)
            * FermionOperator.annihilation(1)
            * FermionOperator.creation(0)
        )
        once = op.normal_ordered()
        twice = once.normal_ordered()
        assert once == twice

    def test_normal_ordering_preserves_operator_identity(self):
        # {a_1, a†_1} = 1 inside a longer product.
        op = FermionOperator.creation(0) * (
            FermionOperator.annihilation(1) * FermionOperator.creation(1)
            + FermionOperator.creation(1) * FermionOperator.annihilation(1)
        )
        assert op.normal_ordered() == FermionOperator.creation(0)


class TestEqualityAndDisplay:
    def test_equality_up_to_normal_ordering(self):
        a = FermionOperator.annihilation(0) * FermionOperator.creation(1)
        b = FermionOperator(((1, True), (0, False)), -1.0)
        assert a == b

    def test_equality_with_scalar(self):
        assert FermionOperator.identity(2.0) == 2.0

    def test_repr_contains_terms(self):
        op = FermionOperator.creation(2, 0.5)
        assert "a^2" in repr(op)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(FermionOperator.creation(0))

    def test_compress_drops_small_terms(self):
        op = FermionOperator.creation(0, 1e-15) + FermionOperator.creation(1, 1.0)
        compressed = op.compress(1e-12)
        assert list(compressed.terms) == [((1, True),)]
