"""Unit tests for QubitOperator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import PauliString, QubitOperator


def random_operator(draw, n_qubits=3, max_terms=4):
    labels = draw(
        st.lists(
            st.text(alphabet="IXYZ", min_size=n_qubits, max_size=n_qubits),
            min_size=1,
            max_size=max_terms,
        )
    )
    coeffs = draw(
        st.lists(
            st.complex_numbers(max_magnitude=5, allow_nan=False, allow_infinity=False),
            min_size=len(labels),
            max_size=len(labels),
        )
    )
    op = QubitOperator.zero(n_qubits)
    for label, coeff in zip(labels, coeffs):
        op += QubitOperator.from_label(label, coeff)
    return op


operators = st.composite(random_operator)


class TestConstruction:
    def test_zero(self):
        assert QubitOperator.zero(3).is_zero

    def test_identity(self):
        op = QubitOperator.identity(2, 1.5)
        assert op.constant == 1.5

    def test_from_label(self):
        op = QubitOperator.from_label("XZ", 2.0)
        assert op.terms == {PauliString("XZ"): 2.0 + 0j}
        assert op.n_qubits == 2

    def test_mismatched_string_raises(self):
        with pytest.raises(ValueError):
            QubitOperator(3, {PauliString("XX"): 1.0})

    def test_non_pauli_key_raises(self):
        with pytest.raises(TypeError):
            QubitOperator(2, {"XX": 1.0})

    def test_negative_qubits_raises(self):
        with pytest.raises(ValueError):
            QubitOperator(-1)


class TestAlgebra:
    def test_addition_merges(self):
        op = QubitOperator.from_label("XY") + QubitOperator.from_label("XY", 2.0)
        assert op.terms == {PauliString("XY"): 3.0 + 0j}

    def test_addition_cancels_to_zero(self):
        op = QubitOperator.from_label("ZZ") - QubitOperator.from_label("ZZ")
        assert op.is_zero

    def test_scalar_addition(self):
        op = QubitOperator.from_label("XX") + 2.0
        assert op.constant == 2.0

    def test_mismatched_addition_raises(self):
        with pytest.raises(ValueError):
            QubitOperator.zero(2) + QubitOperator.zero(3)

    def test_scalar_multiplication(self):
        op = 3.0 * QubitOperator.from_label("YZ")
        assert op.terms[PauliString("YZ")] == 3.0

    def test_operator_multiplication_tracks_phase(self):
        product = QubitOperator.from_label("X") * QubitOperator.from_label("Y")
        assert product.terms == {PauliString("Z"): 1j}

    def test_division(self):
        op = QubitOperator.from_label("XX", 4.0) / 2.0
        assert op.terms[PauliString("XX")] == 2.0

    def test_commutator_of_commuting_is_zero(self):
        a = QubitOperator.from_label("XX")
        b = QubitOperator.from_label("ZZ")
        assert a.commutator(b).is_zero

    def test_commutator_xy(self):
        a = QubitOperator.from_label("X")
        b = QubitOperator.from_label("Y")
        assert a.commutator(b) == QubitOperator.from_label("Z", 2j)

    @given(operators(), operators())
    @settings(max_examples=30, deadline=None)
    def test_product_matches_matrix_product(self, a, b):
        lhs = (a * b).to_dense()
        rhs = a.to_dense() @ b.to_dense()
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(operators(), operators())
    @settings(max_examples=30, deadline=None)
    def test_addition_matches_matrix_sum(self, a, b):
        assert np.allclose((a + b).to_dense(), a.to_dense() + b.to_dense(), atol=1e-8)


class TestHermiticity:
    def test_real_coefficients_hermitian(self):
        op = QubitOperator.from_label("XY", 0.5) + QubitOperator.from_label("ZZ", -1.0)
        assert op.is_hermitian()
        assert not op.is_anti_hermitian()

    def test_imaginary_coefficients_anti_hermitian(self):
        op = QubitOperator.from_label("XY", 0.5j)
        assert op.is_anti_hermitian()
        assert not op.is_hermitian()

    def test_hermitian_conjugate(self):
        op = QubitOperator.from_label("XY", 1.0 + 2.0j)
        assert op.hermitian_conjugate().terms[PauliString("XY")] == 1.0 - 2.0j


class TestIntrospection:
    def test_pauli_strings_sorted(self):
        op = QubitOperator.from_label("ZZ") + QubitOperator.from_label("IX")
        assert op.pauli_strings() == (PauliString("IX"), PauliString("ZZ"))

    def test_max_weight(self):
        op = QubitOperator.from_label("XIII") + QubitOperator.from_label("XYZI")
        assert op.max_weight() == 3

    def test_total_cnot_upper_bound(self):
        op = QubitOperator.from_label("XYZI") + QubitOperator.from_label("XIII")
        # Weight-3 string costs 4 CNOTs; weight-1 string costs none.
        assert op.total_cnot_upper_bound() == 4

    def test_compress(self):
        op = QubitOperator.from_label("XX", 1e-15) + QubitOperator.from_label("YY", 1.0)
        assert list(op.compress(1e-12).terms) == [PauliString("YY")]

    def test_equality_with_scalar(self):
        assert QubitOperator.identity(2, 3.0) == 3.0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(QubitOperator.zero(2))


class TestMatrixExport:
    def test_identity_matrix(self):
        assert np.allclose(QubitOperator.identity(2).to_dense(), np.eye(4))

    def test_sum_of_paulis(self):
        op = QubitOperator.from_label("ZI", 1.0) + QubitOperator.from_label("IZ", 1.0)
        assert np.allclose(np.diag(op.to_dense()), [2, 0, 0, -2])
