"""Property-based differential tests: symplectic engine vs legacy label semantics.

The bit-packed :class:`~repro.operators.pauli.PauliString` core must be an
exact drop-in for the historical label-tuple implementation.  These tests
keep a minimal copy of the legacy semantics (per-qubit dictionary lookups, as
the seed code implemented them) and assert on random strings — including
strings wider than one 64-bit word — that products, phases, commutation,
hermiticity, matrix exports, hashing and the total order all agree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.operators import (
    PackedPaulis,
    PauliString,
    commutation_matrix,
    interface_reduction_matrix,
    overlap_matrix,
    weight_vector,
)
from repro.operators.pauli import PAULI_MATRICES, _PAULI_PRODUCTS


# ----------------------------------------------------------------------
# Legacy reference semantics (label tuples + per-qubit dict lookups)
# ----------------------------------------------------------------------
def legacy_multiply(a: str, b: str):
    phase = complex(1.0)
    labels = []
    for la, lb in zip(a, b):
        factor, product = _PAULI_PRODUCTS[(la, lb)]
        phase *= factor
        labels.append(product)
    return phase, "".join(labels)


def legacy_commutes(a: str, b: str) -> bool:
    anticommuting = sum(
        1 for la, lb in zip(a, b) if la != "I" and lb != "I" and la != lb
    )
    return anticommuting % 2 == 0


def legacy_dense(label: str) -> np.ndarray:
    matrix = sparse.identity(1, format="csr", dtype=complex)
    for single in label:
        matrix = sparse.kron(
            matrix, sparse.csr_matrix(PAULI_MATRICES[single]), format="csr"
        )
    return matrix.toarray()


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
def labels(n_min=1, n_max=8):
    return st.text(alphabet="IXYZ", min_size=n_min, max_size=n_max)


def label_pairs(n_min=1, n_max=8):
    """Two equal-length random label strings."""
    return st.integers(n_min, n_max).flatmap(
        lambda n: st.tuples(labels(n, n), labels(n, n))
    )


#: Wide strings cross the 64-qubit word boundary of the packed batch layout.
WIDE = st.integers(60, 70).flatmap(lambda n: st.tuples(labels(n, n), labels(n, n)))


# ----------------------------------------------------------------------
# Scalar engine vs legacy semantics
# ----------------------------------------------------------------------
class TestScalarAgainstLegacy:
    @given(label_pairs())
    @settings(max_examples=150, deadline=None)
    def test_product_label_and_phase(self, pair):
        a, b = pair
        phase, product = PauliString(a).multiply(PauliString(b))
        legacy_phase, legacy_label = legacy_multiply(a, b)
        assert product.to_label() == legacy_label
        assert phase == legacy_phase

    @given(WIDE)
    @settings(max_examples=30, deadline=None)
    def test_product_label_and_phase_wide(self, pair):
        a, b = pair
        phase, product = PauliString(a).multiply(PauliString(b))
        legacy_phase, legacy_label = legacy_multiply(a, b)
        assert product.to_label() == legacy_label
        assert phase == legacy_phase

    @given(label_pairs())
    @settings(max_examples=150, deadline=None)
    def test_commutation(self, pair):
        a, b = pair
        assert PauliString(a).commutes_with(PauliString(b)) == legacy_commutes(a, b)

    @given(labels(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_dense_and_sparse_match_kronecker(self, label):
        string = PauliString(label)
        reference = legacy_dense(label)
        assert np.allclose(string.to_dense(), reference)
        assert np.allclose(string.to_sparse().toarray(), reference)

    @given(labels(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_hermiticity_and_unitarity(self, label):
        matrix = PauliString(label).to_dense()
        assert np.allclose(matrix, matrix.conj().T)
        assert np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]))

    @given(labels(1, 70))
    @settings(max_examples=80, deadline=None)
    def test_weight_support_roundtrip(self, label):
        string = PauliString(label)
        assert string.weight == sum(1 for c in label if c != "I")
        assert string.support == tuple(i for i, c in enumerate(label) if c != "I")
        assert string.to_label() == label
        assert tuple(string) == tuple(label)

    @given(labels(1, 70))
    @settings(max_examples=80, deadline=None)
    def test_hash_stability(self, label):
        # Equal strings hash equal no matter how they were constructed.
        via_labels = PauliString(label)
        via_masks = PauliString.from_bitmasks(
            len(label), via_labels.x_mask, via_labels.z_mask
        )
        via_dict = PauliString.from_dict(
            len(label), {i: c for i, c in enumerate(label) if c != "I"}
        )
        assert via_labels == via_masks == via_dict
        assert hash(via_labels) == hash(via_masks) == hash(via_dict)
        assert len({via_labels, via_masks, via_dict}) == 1

    @given(st.lists(labels(3, 3), min_size=2, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_order_matches_label_tuples(self, label_list):
        strings = sorted(PauliString(label) for label in label_list)
        reference = sorted(tuple(label) for label in label_list)
        assert [tuple(s.labels) for s in strings] == reference

    def test_order_across_lengths_matches_tuple_prefix_rule(self):
        assert PauliString("IX") < PauliString("IXZ")
        assert not PauliString("IXZ") < PauliString("IX")
        assert PauliString("IY") > PauliString("IXZ")


# ----------------------------------------------------------------------
# Batched (numpy-packed) engine vs the scalar engine
# ----------------------------------------------------------------------
class TestBatchedAgainstScalar:
    @given(st.integers(1, 70).flatmap(
        lambda n: st.lists(labels(n, n), min_size=1, max_size=6)
    ))
    @settings(max_examples=60, deadline=None)
    def test_commutation_weight_overlap_matrices(self, label_list):
        strings = [PauliString(label) for label in label_list]
        packed = PackedPaulis.from_strings(strings)
        assert [s.to_label() for s in packed.to_strings()] == label_list

        commuting = commutation_matrix(packed)
        overlaps = overlap_matrix(packed)
        weights = weight_vector(packed)
        for i, a in enumerate(strings):
            assert weights[i] == a.weight
            for j, b in enumerate(strings):
                assert commuting[i, j] == a.commutes_with(b)
                assert overlaps[i, j] == len(a.overlap(b))

    @given(st.integers(2, 66).flatmap(
        lambda n: st.lists(labels(n, n), min_size=1, max_size=5)
    ))
    @settings(max_examples=60, deadline=None)
    def test_interface_matrix_matches_scalar_rule(self, label_list):
        from repro.circuits.interface import interface_cnot_reduction

        strings = []
        targets = []
        for label in label_list:
            string = PauliString(label)
            if not string.support:
                continue
            strings.append(string)
            targets.append(string.support[-1])
        if not strings:
            return
        matrix = interface_reduction_matrix(strings, targets)
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                assert matrix[i, j] == interface_cnot_reduction(
                    a, targets[i], b, targets[j]
                )

    def test_interface_matrix_rejects_bad_target(self):
        with pytest.raises(ValueError, match="not in support"):
            interface_reduction_matrix([PauliString("XI")], [1])
