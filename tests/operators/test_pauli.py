"""Unit tests for PauliString."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import PauliString
from repro.operators.pauli import PAULI_MATRICES


def pauli_labels(n_min=1, n_max=6):
    return st.text(alphabet="IXYZ", min_size=n_min, max_size=n_max)


class TestConstruction:
    def test_from_string(self):
        p = PauliString("IXYZ")
        assert p.labels == ("I", "X", "Y", "Z")
        assert p.n_qubits == 4

    def test_identity(self):
        p = PauliString.identity(3)
        assert p.to_label() == "III"
        assert p.is_identity

    def test_from_dict(self):
        p = PauliString.from_dict(5, {1: "X", 4: "Z"})
        assert p.to_label() == "IXIIZ"

    def test_from_dict_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.from_dict(3, {5: "X"})

    def test_single(self):
        assert PauliString.single(4, 2, "Y").to_label() == "IIYI"

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            PauliString("IXQ")


class TestProperties:
    def test_weight_and_support(self):
        p = PauliString("IXIZY")
        assert p.weight == 3
        assert p.support == (1, 3, 4)

    def test_getitem_and_iter(self):
        p = PauliString("XYZ")
        assert p[1] == "Y"
        assert list(p) == ["X", "Y", "Z"]

    def test_restricted_to(self):
        p = PauliString("IXYZ")
        assert p.restricted_to([1, 3]).to_label() == "XZ"

    def test_padded(self):
        assert PauliString("XY").padded(4).to_label() == "XYII"

    def test_padded_shrink_raises(self):
        with pytest.raises(ValueError):
            PauliString("XYZ").padded(2)

    def test_with_label(self):
        assert PauliString("III").with_label(1, "Y").to_label() == "IYI"

    def test_hash_and_equality(self):
        assert PauliString("XY") == PauliString("XY")
        assert hash(PauliString("XY")) == hash(PauliString("XY"))
        assert PauliString("XY") != PauliString("YX")

    def test_ordering(self):
        assert sorted([PauliString("ZZ"), PauliString("IX")])[0] == PauliString("IX")


class TestMultiplication:
    def test_xy_gives_iz(self):
        phase, product = PauliString("X").multiply(PauliString("Y"))
        assert phase == 1j
        assert product == PauliString("Z")

    def test_yx_gives_minus_iz(self):
        phase, product = PauliString("Y").multiply(PauliString("X"))
        assert phase == -1j
        assert product == PauliString("Z")

    def test_self_product_is_identity(self):
        phase, product = PauliString("XYZX").multiply(PauliString("XYZX"))
        assert phase == 1
        assert product.is_identity

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            PauliString("X").multiply(PauliString("XY"))

    @given(pauli_labels(2, 5), pauli_labels(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_multiplication_matches_matrix_product(self, a, b):
        n = min(len(a), len(b))
        pa, pb = PauliString(a[:n]), PauliString(b[:n])
        phase, product = pa.multiply(pb)
        lhs = pa.to_dense() @ pb.to_dense()
        rhs = phase * product.to_dense()
        assert np.allclose(lhs, rhs)


class TestCommutation:
    def test_disjoint_strings_commute(self):
        assert PauliString("XI").commutes_with(PauliString("IZ"))

    def test_single_qubit_anticommute(self):
        assert not PauliString("X").commutes_with(PauliString("Z"))

    def test_two_anticommuting_factors_commute(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))

    @given(pauli_labels(1, 5), pauli_labels(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_commutation_matches_matrices(self, a, b):
        n = min(len(a), len(b))
        pa, pb = PauliString(a[:n]), PauliString(b[:n])
        commutator = pa.to_dense() @ pb.to_dense() - pb.to_dense() @ pa.to_dense()
        assert pa.commutes_with(pb) == np.allclose(commutator, 0)

    def test_overlap(self):
        assert PauliString("XXI").overlap(PauliString("IXZ")) == (1,)


class TestSymplectic:
    def test_round_trip(self):
        p = PauliString("IXYZ")
        x, z = p.to_symplectic()
        assert PauliString.from_symplectic(x, z) == p

    def test_symplectic_vectors(self):
        x, z = PauliString("IXYZ").to_symplectic()
        assert list(x) == [0, 1, 1, 0]
        assert list(z) == [0, 0, 1, 1]

    def test_from_symplectic_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PauliString.from_symplectic([1, 0], [1])

    @given(pauli_labels(1, 7))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, label):
        p = PauliString(label)
        assert PauliString.from_symplectic(*p.to_symplectic()) == p


class TestMatrixExport:
    def test_single_qubit_matrices(self):
        for label in "IXYZ":
            assert np.allclose(PauliString(label).to_dense(), PAULI_MATRICES[label])

    def test_tensor_ordering_qubit0_most_significant(self):
        # Z on qubit 0 of a 2-qubit register: diag(1, 1, -1, -1).
        matrix = PauliString("ZI").to_dense()
        assert np.allclose(np.diag(matrix), [1, 1, -1, -1])

    def test_matrix_is_unitary_and_hermitian(self):
        m = PauliString("XYZ").to_dense()
        assert np.allclose(m @ m.conj().T, np.eye(8))
        assert np.allclose(m, m.conj().T)
