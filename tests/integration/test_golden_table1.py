"""Golden-file regression: fast-tier Table-I numbers must not drift.

``tests/golden/table1_fast.json`` pins the CNOT counts of all four backends —
plus gate-level depth/CNOT counts of the advanced fermionic circuit — for two
cheap deterministic cases: full-UCCSD H2 and the 4-term HMP2 selection for
water.  Any optimizer, transform or operator-core change that silently moves
the paper's headline numbers fails here loudly.

To move the pinned numbers intentionally, rerun
``PYTHONPATH=src python tools/make_golden.py`` and commit the diff.
"""

import json
from pathlib import Path

import pytest

from repro.api import DEFAULT_BACKEND_NAMES, CompileRequest, CompilerConfig, compile_batch
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.circuits import optimize_circuit
from repro.hardware import route_circuit, topology_for
from repro.vqe import hmp2_ranked_terms

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "table1_fast.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_config(golden):
    return CompilerConfig(**golden["config"])


@pytest.mark.parametrize("case_name", ["H2", "HMP2-small"])
def test_fast_tier_numbers_are_pinned(golden, golden_config, case_name):
    case = golden["cases"][case_name]
    scf = run_rhf(make_molecule(case["molecule"]))
    hamiltonian = build_molecular_hamiltonian(
        scf, n_frozen_spatial_orbitals=case["n_frozen_spatial_orbitals"]
    )
    assert hamiltonian.n_spin_orbitals == case["n_qubits"]
    terms = hmp2_ranked_terms(hamiltonian)[: case["n_terms"]]
    assert len(terms) == case["n_terms"]

    request = CompileRequest(
        terms=tuple(terms), n_qubits=case["n_qubits"], config=golden_config
    )
    row = compile_batch([request], backends=DEFAULT_BACKEND_NAMES).results[0]

    counts = {name: row[name].cnot_count for name in DEFAULT_BACKEND_NAMES}
    assert counts == case["cnot_counts"], (
        f"Table-I fast-tier CNOT counts moved for {case_name}: "
        f"got {counts}, golden {case['cnot_counts']}. If intentional, rerun "
        "tools/make_golden.py and commit the new golden file."
    )

    advanced = row["advanced"].details
    assert advanced.breakdown() == case["advanced_breakdown"]

    circuit = advanced.fermionic_circuit(optimize=False)
    optimized = optimize_circuit(circuit)
    observed = {
        "cnot_count": circuit.cnot_count,
        "depth": circuit.depth(),
        "optimized_cnot_count": optimized.cnot_count,
        "optimized_depth": optimized.depth(),
    }
    assert observed == case["advanced_circuit"], (
        f"advanced circuit depth/CNOT profile moved for {case_name}: "
        f"got {observed}, golden {case['advanced_circuit']}"
    )


@pytest.mark.parametrize("case_name", ["H2", "HMP2-small"])
@pytest.mark.parametrize("kind", ["line", "grid"])
def test_routed_counts_are_pinned(golden, golden_config, case_name, kind):
    """Routing-heuristic changes must not silently move SWAP/CNOT overheads."""
    pinned = golden["routing"][case_name][kind]
    case = golden["cases"][case_name]
    scf = run_rhf(make_molecule(case["molecule"]))
    hamiltonian = build_molecular_hamiltonian(
        scf, n_frozen_spatial_orbitals=case["n_frozen_spatial_orbitals"]
    )
    terms = hmp2_ranked_terms(hamiltonian)[: case["n_terms"]]
    topology = topology_for(kind, case["n_qubits"])
    assert topology.name == pinned["topology"]

    request = CompileRequest(
        terms=tuple(terms),
        n_qubits=case["n_qubits"],
        config=golden_config.replace(topology=topology),
    )
    row = compile_batch([request], backends=DEFAULT_BACKEND_NAMES).results[0]

    counts = {name: row[name].cnot_count for name in DEFAULT_BACKEND_NAMES}
    assert counts == pinned["table1_cnot_counts"], (
        f"topology-aware Table-I counts moved for {case_name}/{kind}: "
        f"got {counts}, golden {pinned['table1_cnot_counts']}. If intentional, "
        "rerun tools/make_golden.py and commit the new golden file."
    )

    steered = {
        name: {
            "cnot_count": row[name].routing.cnot_count,
            "n_swaps": row[name].routing.n_swaps,
            "depth": row[name].routing.depth,
            "two_qubit_depth": row[name].routing.two_qubit_depth,
        }
        for name in DEFAULT_BACKEND_NAMES
    }
    assert steered == pinned["steered"], (
        f"steered routing profile moved for {case_name}/{kind}: got {steered}, "
        f"golden {pinned['steered']}"
    )

    sabre = route_circuit(
        optimize_circuit(row["advanced"].details.fermionic_circuit(optimize=False)),
        topology,
        seed=golden_config.seed,
    )
    observed = {
        "cnot_count": sabre.metrics().cnot_count,
        "n_swaps": sabre.n_swaps,
    }
    assert observed == pinned["sabre_advanced"], (
        f"SABRE routing profile moved for {case_name}/{kind}: got {observed}, "
        f"golden {pinned['sabre_advanced']}"
    )
