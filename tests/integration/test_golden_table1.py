"""Golden-file regression: fast-tier Table-I numbers must not drift.

``tests/golden/table1_fast.json`` pins the CNOT counts of all four backends —
plus gate-level depth/CNOT counts of the advanced fermionic circuit — for two
cheap deterministic cases: full-UCCSD H2 and the 4-term HMP2 selection for
water.  Any optimizer, transform or operator-core change that silently moves
the paper's headline numbers fails here loudly.

To move the pinned numbers intentionally, rerun
``PYTHONPATH=src python tools/make_golden.py`` and commit the diff.
"""

import json
from pathlib import Path

import pytest

from repro.api import DEFAULT_BACKEND_NAMES, CompileRequest, CompilerConfig, compile_batch
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.circuits import optimize_circuit
from repro.vqe import hmp2_ranked_terms

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "table1_fast.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_config(golden):
    return CompilerConfig(**golden["config"])


@pytest.mark.parametrize("case_name", ["H2", "HMP2-small"])
def test_fast_tier_numbers_are_pinned(golden, golden_config, case_name):
    case = golden["cases"][case_name]
    scf = run_rhf(make_molecule(case["molecule"]))
    hamiltonian = build_molecular_hamiltonian(
        scf, n_frozen_spatial_orbitals=case["n_frozen_spatial_orbitals"]
    )
    assert hamiltonian.n_spin_orbitals == case["n_qubits"]
    terms = hmp2_ranked_terms(hamiltonian)[: case["n_terms"]]
    assert len(terms) == case["n_terms"]

    request = CompileRequest(
        terms=tuple(terms), n_qubits=case["n_qubits"], config=golden_config
    )
    row = compile_batch([request], backends=DEFAULT_BACKEND_NAMES).results[0]

    counts = {name: row[name].cnot_count for name in DEFAULT_BACKEND_NAMES}
    assert counts == case["cnot_counts"], (
        f"Table-I fast-tier CNOT counts moved for {case_name}: "
        f"got {counts}, golden {case['cnot_counts']}. If intentional, rerun "
        "tools/make_golden.py and commit the new golden file."
    )

    advanced = row["advanced"].details
    assert advanced.breakdown() == case["advanced_breakdown"]

    circuit = advanced.fermionic_circuit(optimize=False)
    optimized = optimize_circuit(circuit)
    observed = {
        "cnot_count": circuit.cnot_count,
        "depth": circuit.depth(),
        "optimized_cnot_count": optimized.cnot_count,
        "optimized_depth": optimized.depth(),
    }
    assert observed == case["advanced_circuit"], (
        f"advanced circuit depth/CNOT profile moved for {case_name}: "
        f"got {observed}, golden {case['advanced_circuit']}"
    )
