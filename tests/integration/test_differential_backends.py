"""Cross-backend differential tests pinning compiler semantics.

For random small fermionic excitation-term lists, every registered Table-I
backend (``jw``, ``bk``, ``gt``, ``adv``) must compile to a gate-level
circuit whose unitary matches the ``exp(-i θ/2 P)`` rotation products derived
from the *uncompiled* term list under that backend's own fermion-to-qubit
transform (up to global phase):

* the synthesized circuit must implement its compiled rotation sequence
  exactly (catches basis-change / CNOT-star / optimizer bugs),
* the compiled multiset of ``(P, θ)`` rotations must equal the transform of
  the raw term list (catches transform and bookkeeping bugs),
* for order-preserving flows the circuit must equal the per-term
  ``expm(θ (T - T†))`` reference products (catches ordering and angle-
  convention drift),
* the reported CNOT count must be the analytic cost of the compiled sequence
  (ties Table-I numbers to actual circuits).

Compression (bosonic/hybrid) is disabled throughout: compressed segments are
cost-accounted, not synthesized, so only the uncompressed flows have a full
circuit to check.
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.api import CompileRequest, CompilerConfig, get_backend
from repro.baselines import naive_rotation_sequence
from repro.circuits import exponential_sequence_circuit, sequence_cnot_count
from repro.core.terms_to_paulis import terms_to_rotations
from repro.transforms import (
    BravyiKitaevTransform,
    JordanWignerTransform,
    LinearEncodingTransform,
)
from repro.verify import assert_implements_rotations, check_equivalence
from repro.vqe import ExcitationTerm

N_MODES = 4

#: Deterministic, fast advanced-pipeline settings with compression disabled.
ADV_CONFIG = CompilerConfig(
    use_bosonic_encoding=False,
    use_hybrid_encoding=False,
    gamma_steps=5,
    sorting_population=8,
    sorting_generations=6,
    seed=0,
)

GT_CONFIG = CompilerConfig(use_bosonic_encoding=False, seed=0)


def random_terms(seed: int):
    """A random small fermionic Hamiltonian: 2-4 excitation terms on 4 modes."""
    rng = np.random.default_rng(seed)
    terms = []
    for _ in range(int(rng.integers(2, 5))):
        modes = [int(m) for m in rng.permutation(N_MODES)]
        if rng.random() < 0.7:
            terms.append(
                ExcitationTerm(
                    creation=tuple(sorted(modes[:2])),
                    annihilation=tuple(sorted(modes[2:4])),
                )
            )
        else:
            terms.append(ExcitationTerm(creation=(modes[0],), annihilation=(modes[1],)))
    if not terms:
        terms.append(ExcitationTerm(creation=(2, 3), annihilation=(0, 1)))
    parameters = tuple(float(p) for p in rng.uniform(0.2, 1.2, size=len(terms)))
    return tuple(terms), parameters


def rotation_unitary(string, angle):
    """Dense ``exp(-i angle/2 · P)`` via the closed form for Pauli strings."""
    dim = 2 ** string.n_qubits
    return (
        np.cos(angle / 2.0) * np.eye(dim, dtype=complex)
        - 1j * np.sin(angle / 2.0) * string.to_dense()
    )


def sequence_unitary(sequence):
    """Unitary of an ordered ``(string, angle, target)`` rotation sequence."""
    dim = 2 ** sequence[0][0].n_qubits
    unitary = np.eye(dim, dtype=complex)
    for string, angle, _ in sequence:
        unitary = rotation_unitary(string, angle) @ unitary
    return unitary


def term_reference_unitary(terms, parameters, transform):
    """Product of ``expm`` of each transformed term generator, in term order."""
    dim = 2 ** transform.n_qubits
    unitary = np.eye(dim, dtype=complex)
    for term, parameter in zip(terms, parameters):
        generator = transform.transform(term.generator(parameter))
        unitary = expm(generator.to_dense()) @ unitary
    return unitary


def assert_equal_up_to_global_phase(actual, expected):
    index = int(np.argmax(np.abs(expected)))
    a, e = actual.flat[index], expected.flat[index]
    assert abs(e) > 1e-12
    phase = a / e
    assert abs(abs(phase) - 1.0) < 1e-9
    np.testing.assert_allclose(actual, phase * expected, atol=1e-9)


def rotation_multiset(sequence):
    return sorted((string.to_label(), round(angle, 12)) for string, angle, _ in sequence)


def reference_multiset(terms, parameters, transform):
    rotations = terms_to_rotations(list(terms), transform, list(parameters))
    return sorted((r.string.to_label(), round(r.angle, 12)) for r in rotations)


def compiled_sequence(backend_name, terms, parameters):
    """The backend's compiled ``(string, angle, target)`` sequence + its CompileResult."""
    if backend_name in ("jw", "bk"):
        transform = (
            JordanWignerTransform(N_MODES)
            if backend_name == "jw"
            else BravyiKitaevTransform(N_MODES)
        )
        request = CompileRequest(terms=terms, n_qubits=N_MODES, parameters=parameters)
        result = get_backend(backend_name).compile(request)
        sequence = naive_rotation_sequence(list(terms), transform, list(parameters))
        return sequence, result, transform
    if backend_name == "gt":
        request = CompileRequest(
            terms=terms, n_qubits=N_MODES, parameters=parameters, config=GT_CONFIG
        )
        result = get_backend(backend_name).compile(request)
        details = result.details
        transform = LinearEncodingTransform(details.transform_matrix)
        return list(details.ordered_exponentials), result, transform
    if backend_name == "adv":
        request = CompileRequest(
            terms=terms, n_qubits=N_MODES, parameters=parameters, config=ADV_CONFIG
        )
        result = get_backend(backend_name).compile(request)
        details = result.details
        transform = LinearEncodingTransform(details.gamma)
        sequence = [
            (rotation.string, rotation.angle, target)
            for rotation, target in details.sorting.ordered_rotations
        ]
        return sequence, result, transform
    raise AssertionError(backend_name)


BACKENDS = ("jw", "bk", "gt", "adv")


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_circuit_implements_compiled_sequence(backend_name, seed):
    """The synthesized circuit realizes its rotation sequence gate-exactly."""
    terms, parameters = random_terms(seed)
    sequence, result, transform = compiled_sequence(backend_name, terms, parameters)
    assert sequence, "compilation produced no rotations"
    circuit = exponential_sequence_circuit(sequence, n_qubits=N_MODES)
    np.testing.assert_allclose(
        circuit.to_unitary(), sequence_unitary(sequence), atol=1e-9
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_compiled_rotations_match_uncompiled_terms(backend_name, seed):
    """The compiled (P, θ) multiset is exactly the transformed raw term list."""
    terms, parameters = random_terms(seed)
    sequence, result, transform = compiled_sequence(backend_name, terms, parameters)
    assert rotation_multiset(sequence) == reference_multiset(
        terms, parameters, transform
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_reported_count_matches_compiled_sequence(backend_name, seed):
    """Table-I CNOT counts are the analytic cost of the actual sequence."""
    terms, parameters = random_terms(seed)
    sequence, result, transform = compiled_sequence(backend_name, terms, parameters)
    analytic = sequence_cnot_count([(string, target) for string, _, target in sequence])
    assert result.cnot_count == analytic


@pytest.mark.parametrize("backend_name", ("jw", "bk"))
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_order_preserving_backends_match_expm_reference(backend_name, seed):
    """JW/BK preserve term order, so the circuit equals the expm products."""
    terms, parameters = random_terms(seed)
    sequence, result, transform = compiled_sequence(backend_name, terms, parameters)
    circuit = exponential_sequence_circuit(sequence, n_qubits=N_MODES)
    assert_equal_up_to_global_phase(
        circuit.to_unitary(), term_reference_unitary(terms, parameters, transform)
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_single_term_matches_expm_reference_all_backends(backend_name):
    """With one excitation term no reordering freedom exists: every backend's
    circuit must equal ``expm(θ (T - T†))`` under its own encoding."""
    terms = (ExcitationTerm(creation=(2, 3), annihilation=(0, 1)),)
    parameters = (0.7,)
    sequence, result, transform = compiled_sequence(backend_name, terms, parameters)
    circuit = exponential_sequence_circuit(sequence, n_qubits=N_MODES)
    assert_equal_up_to_global_phase(
        circuit.to_unitary(), term_reference_unitary(terms, parameters, transform)
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_dispatcher_agrees_with_dense_verdicts_small_n(backend_name, seed):
    """Small-n cross-validation: every scalable engine verdict must match the
    dense engine, on both an equivalent and a perturbed (non-equivalent) pair.

    This keeps the dense engine exercised against the new engines every run,
    so a regression in either side surfaces as a verdict disagreement.
    """
    terms, parameters = random_terms(seed)
    sequence, result, transform = compiled_sequence(backend_name, terms, parameters)
    circuit = exponential_sequence_circuit(sequence, n_qubits=N_MODES)
    perturbed = list(sequence)
    string, angle, target = perturbed[0]
    perturbed[0] = (string, angle + 0.31, target)
    wrong = exponential_sequence_circuit(perturbed, n_qubits=N_MODES)
    for other, expected in ((circuit.copy(), True), (wrong, False)):
        dense = check_equivalence(circuit, other, engine="dense")
        assert dense.equivalent is expected
        pauli = check_equivalence(circuit, other, engine="pauli")
        sparse = check_equivalence(circuit, other, engine="sparse")
        assert pauli.equivalent is expected  # bit-identical verdicts
        assert sparse.equivalent is expected


# ----------------------------------------------------------------------
# Large registers: the cross-backend contract past the dense-engine wall
# ----------------------------------------------------------------------
LARGE_N_MODES = 20


def random_large_terms(seed: int, n_modes: int = LARGE_N_MODES):
    """Random excitation terms spread over a 20-mode register."""
    rng = np.random.default_rng(seed)
    terms = []
    for _ in range(6):
        modes = [int(m) for m in rng.permutation(n_modes)]
        if rng.random() < 0.7:
            terms.append(
                ExcitationTerm(
                    creation=tuple(sorted(modes[:2])),
                    annihilation=tuple(sorted(modes[2:4])),
                )
            )
        else:
            terms.append(ExcitationTerm(creation=(modes[0],), annihilation=(modes[1],)))
    parameters = tuple(float(p) for p in rng.uniform(0.2, 1.2, size=len(terms)))
    return tuple(terms), parameters


@pytest.mark.parametrize("backend_name", ("jw", "bk"))
@pytest.mark.parametrize("seed", [0, 1])
def test_large_register_circuit_implements_sequence(backend_name, seed):
    """At 20 modes the synthesized circuit still realizes its rotation
    sequence — decided by Pauli propagation, with no statevector in sight."""
    terms, parameters = random_large_terms(seed)
    transform = (
        JordanWignerTransform(LARGE_N_MODES)
        if backend_name == "jw"
        else BravyiKitaevTransform(LARGE_N_MODES)
    )
    sequence = naive_rotation_sequence(list(terms), transform, list(parameters))
    assert sequence, "transform produced no rotations"
    circuit = exponential_sequence_circuit(sequence, n_qubits=LARGE_N_MODES)
    report = assert_implements_rotations(
        circuit, [(string, angle) for string, angle, _ in sequence]
    )
    assert report.engine == "pauli"
    assert report.exact


@pytest.mark.parametrize("seed", [0, 1])
def test_large_register_angle_drift_detected(seed):
    """The scalable path must still *reject*: a perturbed angle at 20 modes."""
    terms, parameters = random_large_terms(seed)
    transform = JordanWignerTransform(LARGE_N_MODES)
    sequence = naive_rotation_sequence(list(terms), transform, list(parameters))
    circuit = exponential_sequence_circuit(sequence, n_qubits=LARGE_N_MODES)
    drifted = [(string, angle + 0.17, None) for string, angle, _ in sequence[:1]]
    drifted += [(string, angle, None) for string, angle, _ in sequence[1:]]
    wrong = exponential_sequence_circuit(drifted, n_qubits=LARGE_N_MODES)
    report = check_equivalence(circuit, wrong)
    assert not report.equivalent


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_advanced_without_sorting_matches_expm_reference(seed):
    """With advanced sorting disabled the pipeline preserves term order, so the
    full Γ-encoded circuit must match the expm reference products."""
    terms, parameters = random_terms(seed)
    config = ADV_CONFIG.replace(use_advanced_sorting=False)
    request = CompileRequest(
        terms=terms, n_qubits=N_MODES, parameters=parameters, config=config
    )
    result = get_backend("adv").compile(request)
    details = result.details
    transform = LinearEncodingTransform(details.gamma)
    sequence = [
        (rotation.string, rotation.angle, target)
        for rotation, target in details.sorting.ordered_rotations
    ]
    circuit = exponential_sequence_circuit(sequence, n_qubits=N_MODES)
    assert_equal_up_to_global_phase(
        circuit.to_unitary(), term_reference_unitary(terms, parameters, transform)
    )
