"""Cross-module integration tests.

These tests tie the layers together: chemistry → VQE terms → compilation →
explicit circuits → statevector simulation, checking that the compiled
artifacts are mutually consistent (e.g. that the emitted fermionic-segment
circuit really implements the product of the transformed excitation
exponentials, and that CNOT accounting matches the explicit gate list at the
points where both exist).
"""

import numpy as np
import pytest
from scipy.linalg import expm

from repro import compile_molecule_ansatz
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.circuits import optimize_circuit, sequence_cnot_count
from repro.core import AdvancedCompiler, terms_to_rotations
from repro.operators import QubitOperator
from repro.simulator import expectation_value, fci_ground_state_energy, hartree_fock_state
from repro.transforms import JordanWignerTransform, LinearEncodingTransform
from repro.vqe import (
    ExcitationTerm,
    UccAnsatz,
    adaptive_vqe,
    hamiltonian_sparse_matrix,
    hmp2_ranked_terms,
)


def term(creation, annihilation):
    return ExcitationTerm(creation=tuple(creation), annihilation=tuple(annihilation))


class TestCircuitEmissionConsistency:
    def test_single_fermionic_term_circuit_matches_exponential(self):
        """The emitted circuit of one fermionic term equals exp(θ(T - T†)) exactly
        (all Pauli strings of one term commute, so reordering is harmless)."""
        excitation = term((2, 4), (0, 1))
        compiler = AdvancedCompiler(
            use_gamma_search=False, use_hybrid_encoding=False, use_bosonic_encoding=False,
            sorting_population=10, sorting_generations=10, seed=0,
        )
        result = compiler.compile([excitation], n_qubits=5, parameters=[0.37])
        circuit = result.fermionic_circuit()

        transform = JordanWignerTransform(5)
        generator = transform.transform(excitation.generator(0.37))
        expected = expm(generator.to_dense())
        assert np.allclose(circuit.to_unitary(), expected, atol=1e-8)

    def test_emitted_circuit_cnot_count_matches_accounting_after_optimization(self):
        """Where the interface formula credits only matched (ω=2) cancellations,
        the peephole-optimized explicit circuit reaches the accounted count."""
        excitation = term((2, 4), (0, 1))
        rotations = terms_to_rotations([excitation], JordanWignerTransform(5))
        # Use the default (naive) order so the accounting is deterministic.
        sequence = [(r.string, r.string.support[-1]) for r in rotations]
        accounted = sequence_cnot_count(sequence)

        from repro.circuits import exponential_sequence_circuit

        circuit = exponential_sequence_circuit(
            [(r.string, r.angle, r.string.support[-1]) for r in rotations], n_qubits=5
        )
        optimized = optimize_circuit(circuit)
        # The peephole pass realizes at least the matched cancellations; the
        # accounting may additionally credit ω=1 block merges, so it is a
        # lower bound on what the explicit gate list achieves.
        assert accounted <= optimized.cnot_count <= circuit.cnot_count

    def test_gamma_transformed_circuit_preserves_spectrum(self):
        """Compiling under a non-trivial Γ is a basis change: the circuit's
        conjugated Hamiltonian expectation matches the JW one."""
        excitation = term((2, 3), (0, 1))
        n_qubits = 4
        gamma = np.array(
            [[1, 0, 0, 0], [1, 1, 0, 0], [0, 0, 1, 0], [0, 0, 1, 1]], dtype=np.uint8
        )
        jw = JordanWignerTransform(n_qubits)
        encoded = LinearEncodingTransform(gamma)
        generator = excitation.generator(0.21)
        jw_image = jw.transform(generator).to_dense()
        encoded_image = encoded.transform(generator).to_dense()
        assert np.allclose(
            np.sort(np.linalg.eigvals(jw_image).imag), np.sort(np.linalg.eigvals(encoded_image).imag)
        )


class TestMoleculeLevelConsistency:
    @pytest.fixture(scope="class")
    def h2(self):
        scf = run_rhf(make_molecule("H2"))
        return build_molecular_hamiltonian(scf)

    def test_vqe_energy_matches_direct_expectation(self, h2):
        terms = hmp2_ranked_terms(h2)
        result = adaptive_vqe(h2, terms, max_terms=1, threshold=1e-9)
        # Rebuild the state by hand and compare the energy.
        ansatz = UccAnsatz(n_qubits=4, n_electrons=2, terms=list(result.terms))
        state = ansatz.prepare_state(result.parameters)
        energy = expectation_value(hamiltonian_sparse_matrix(h2), state)
        assert np.isclose(energy, result.final_energy, atol=1e-8)

    def test_hartree_fock_reference_energy(self, h2):
        matrix_energy = expectation_value(
            hamiltonian_sparse_matrix(h2), hartree_fock_state(4, 2)
        )
        assert np.isclose(matrix_energy, h2.hartree_fock_energy, atol=1e-8)

    def test_full_report_is_self_consistent(self):
        report = compile_molecule_ansatz(
            "H2", n_terms=2, gamma_steps=5, sorting_population=8, sorting_generations=5
        )
        assert report.n_terms == 2
        assert report.advanced_cnot_count > 0
        assert report.advanced_cnot_count <= report.baseline_cnot_count <= max(
            report.jordan_wigner_cnot_count, report.bravyi_kitaev_cnot_count
        )
