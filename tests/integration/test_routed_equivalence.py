"""Acceptance: routed circuits are connectivity-legal and unitary-equivalent.

For the full-UCCSD H2 ansatz, every registered Table-I backend compiled with
a device topology must produce a routed circuit that (a) only uses
topology-edge two-qubit gates and (b) implements exactly the same unitary as
the unrouted synthesis of the same rotation sequence (the steered synthesis
keeps the identity permutation, so the comparison is direct).  Compression is
disabled so the full flow is synthesized.  A SABRE cross-check routes the
naive all-to-all circuit and verifies equivalence up to the reported
permutation.

Equivalence goes through :func:`repro.verify.assert_equivalent`: the H2
cases land on the dense engine (n = 4), while the large-register cases run
the same routed-vs-unrouted contract at 20-32 qubits on the Pauli-propagation
engine — registers where the dense comparison is physically impossible.
"""

import random

import numpy as np
import pytest

from repro.api import CompileRequest, CompilerConfig, get_backend
from repro.baselines import naive_rotation_sequence
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.circuits import Circuit, exponential_sequence_circuit, optimize_circuit
from repro.hardware import Topology, route_circuit, routed_exponential_sequence_circuit
from repro.operators import PauliString
from repro.transforms import (
    BravyiKitaevTransform,
    JordanWignerTransform,
    LinearEncodingTransform,
)
from repro.verify import assert_equivalent
from repro.vqe import hmp2_ranked_terms

TOPOLOGIES = [Topology.line(4), Topology.ring(4), Topology.grid(2, 2)]

BACKENDS = ("jw", "bk", "gt", "adv")


@pytest.fixture(scope="module")
def h2_terms():
    scf = run_rhf(make_molecule("H2"))
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=0)
    return tuple(hmp2_ranked_terms(hamiltonian))


def compression_free_config(topology):
    return CompilerConfig(
        use_bosonic_encoding=False,
        use_hybrid_encoding=False,
        gamma_steps=5,
        sorting_population=8,
        sorting_generations=6,
        seed=0,
        topology=topology,
    )


def compiled_sequence(backend_name, terms, config):
    request = CompileRequest(terms=terms, n_qubits=4, config=config)
    result = get_backend(backend_name).compile(request)
    if backend_name in ("jw", "bk"):
        transform = (
            JordanWignerTransform(4) if backend_name == "jw" else BravyiKitaevTransform(4)
        )
        return naive_rotation_sequence(list(terms), transform), result
    if backend_name == "gt":
        return list(result.details.ordered_exponentials), result
    sequence = [
        (rotation.string, rotation.angle, target)
        for rotation, target in result.details.sorting.ordered_rotations
    ]
    return sequence, result


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
@pytest.mark.parametrize("backend_name", BACKENDS)
def test_routed_h2_is_legal_and_equivalent(backend_name, topology, h2_terms):
    config = compression_free_config(topology)
    sequence, result = compiled_sequence(backend_name, h2_terms, config)
    assert sequence, "compilation produced no rotations"

    unrouted = exponential_sequence_circuit(sequence, n_qubits=4)
    routed = optimize_circuit(routed_exponential_sequence_circuit(sequence, topology))

    for gate in routed:
        if gate.is_two_qubit:
            assert topology.is_edge(*gate.qubits), f"{gate} off {topology.name}"

    report = assert_equivalent(routed, unrouted)
    assert report.exact  # n=4 dispatches to the dense engine: a proof

    # The reported metrics describe exactly this executable circuit.
    metrics = result.routing
    assert metrics.cnot_count == routed.cnot_count
    assert metrics.depth == routed.depth()
    assert metrics.two_qubit_depth == routed.two_qubit_depth()


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=lambda t: t.name)
def test_sabre_routed_h2_equivalent_up_to_permutation(topology, h2_terms):
    """Cross-check the generic SWAP router on the advanced H2 circuit."""
    config = compression_free_config(None)
    sequence, _ = compiled_sequence("adv", h2_terms, config)
    unrouted = exponential_sequence_circuit(sequence, n_qubits=4)
    routed = route_circuit(unrouted, topology, seed=0)
    for gate in routed.circuit:
        if gate.is_two_qubit:
            assert topology.is_edge(*gate.qubits)
    undone = routed.circuit.compose(routed.undo_permutation_circuit())
    assert_equivalent(undone, unrouted)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_line_ladders_cost_at_least_all_to_all_before_optimization(
    backend_name, h2_terms
):
    """Pre-peephole, steering on a line can never beat the all-to-all star."""
    sequence, _ = compiled_sequence(
        backend_name, h2_terms, compression_free_config(None)
    )
    line = routed_exponential_sequence_circuit(sequence, Topology.line(4))
    star = exponential_sequence_circuit(sequence, n_qubits=4)
    assert line.cnot_count >= star.cnot_count


def test_steered_beats_or_matches_sabre_on_line(h2_terms):
    """Steering ladders along the line never loses to routing the star ladder."""
    line = Topology.line(4)
    sequence, result = compiled_sequence("adv", h2_terms, compression_free_config(line))
    steered_cnots = result.routing.cnot_count
    unrouted = exponential_sequence_circuit(sequence, n_qubits=4)
    sabre = route_circuit(optimize_circuit(unrouted), line, seed=0)
    assert steered_cnots <= sabre.metrics().cnot_count


# ----------------------------------------------------------------------
# Large registers: the same contracts where dense simulation cannot go
# ----------------------------------------------------------------------
def random_rotation_sequence(n_qubits, n_terms, seed, max_weight=5):
    """Random ``(P, θ, target)`` rotation terms with bounded support."""
    rng = random.Random(seed)
    sequence = []
    for _ in range(n_terms):
        support = rng.sample(range(n_qubits), rng.randrange(2, max_weight + 1))
        labels = {q: rng.choice("XYZ") for q in support}
        sequence.append(
            (PauliString.from_dict(n_qubits, labels), rng.uniform(-2.0, 2.0), None)
        )
    return sequence


@pytest.mark.parametrize(
    "topology",
    [Topology.line(20), Topology.ring(24), Topology.grid(4, 8)],
    ids=lambda t: t.name,
)
def test_steered_routing_equivalent_at_scale(topology):
    """Routed == unrouted at 20-32 qubits, decided by the Pauli engine."""
    n = topology.n_qubits
    sequence = random_rotation_sequence(n, 10, seed=n)
    unrouted = exponential_sequence_circuit(sequence, n_qubits=n)
    routed = optimize_circuit(routed_exponential_sequence_circuit(sequence, topology))
    for gate in routed:
        if gate.is_two_qubit:
            assert topology.is_edge(*gate.qubits), f"{gate} off {topology.name}"
    report = assert_equivalent(routed, unrouted)
    assert report.engine == "pauli"  # the scalable engine, not dense
    assert report.exact


def test_sabre_routing_equivalent_at_scale():
    """SABRE + permutation undo at 20 qubits, decided by the Pauli engine."""
    n = 20
    sequence = random_rotation_sequence(n, 8, seed=99)
    unrouted = exponential_sequence_circuit(sequence, n_qubits=n)
    routed = route_circuit(optimize_circuit(unrouted), Topology.line(n), seed=0)
    for gate in routed.circuit:
        if gate.is_two_qubit:
            assert Topology.line(n).is_edge(*gate.qubits)
    undone = routed.circuit.compose(routed.undo_permutation_circuit())
    report = assert_equivalent(undone, unrouted)
    assert report.engine == "pauli"
    assert report.exact


def test_optimizer_preserves_unitary_at_scale():
    """The peephole optimizer is equivalence-checked at 32 qubits."""
    n = 32
    sequence = random_rotation_sequence(n, 12, seed=7)
    circuit = exponential_sequence_circuit(sequence, n_qubits=n)
    optimized = optimize_circuit(circuit.copy())
    assert optimized.cnot_count <= circuit.cnot_count
    report = assert_equivalent(circuit, optimized)
    assert report.engine == "pauli"
    assert report.exact
