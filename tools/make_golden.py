"""Regenerate the fast-tier Table-I golden file (tests/golden/table1_fast.json).

The golden file pins the paper's headline numbers for two cheap, fully
deterministic cases — full-UCCSD H2 and the 4-term HMP2 selection for water
("HMP2-small") — across all four registered backends, plus gate-level depth
and CNOT counts of the advanced pipeline's fermionic circuit.  The regression
test ``tests/integration/test_golden_table1.py`` compares fresh compilations
against this file bit-for-bit, so optimizer or operator-core changes that
silently shift Table I fail loudly.

Only rerun this script to *intentionally* move the pinned numbers:

    PYTHONPATH=src python tools/make_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import DEFAULT_BACKEND_NAMES, CompileRequest, CompilerConfig, compile_batch
from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
from repro.circuits import optimize_circuit
from repro.hardware import route_circuit, topology_for
from repro.vqe import hmp2_ranked_terms

#: The deterministic fast-tier configuration (matches benchmarks/test_table1_cnot_counts.py).
GOLDEN_CONFIG = CompilerConfig(
    gamma_steps=20, sorting_population=16, sorting_generations=20, seed=0
)

#: (case name, molecule, frozen spatial orbitals, number of HMP2 terms or None for all).
GOLDEN_CASES = [
    ("H2", "H2", 0, None),
    ("HMP2-small", "H2O", 1, 4),
]

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "golden" / "table1_fast.json"

#: Topology families pinned by the routing regression (per golden case).
GOLDEN_TOPOLOGY_KINDS = ("line", "grid")


def golden_entry(molecule_name: str, n_frozen: int, n_terms):
    scf = run_rhf(make_molecule(molecule_name))
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=n_frozen)
    ranked = hmp2_ranked_terms(hamiltonian)
    terms = ranked if n_terms is None else ranked[:n_terms]
    request = CompileRequest(
        terms=tuple(terms), n_qubits=hamiltonian.n_spin_orbitals, config=GOLDEN_CONFIG
    )
    row = compile_batch([request], backends=DEFAULT_BACKEND_NAMES).results[0]
    advanced = row["advanced"].details
    circuit = advanced.fermionic_circuit(optimize=False)
    optimized = optimize_circuit(circuit)
    return {
        "molecule": molecule_name,
        "n_frozen_spatial_orbitals": n_frozen,
        "n_terms": len(terms),
        "n_qubits": hamiltonian.n_spin_orbitals,
        "cnot_counts": {name: row[name].cnot_count for name in DEFAULT_BACKEND_NAMES},
        "advanced_breakdown": advanced.breakdown(),
        "advanced_circuit": {
            "cnot_count": circuit.cnot_count,
            "depth": circuit.depth(),
            "optimized_cnot_count": optimized.cnot_count,
            "optimized_depth": optimized.depth(),
        },
    }


def routing_entry(molecule_name: str, n_frozen: int, n_terms, kind: str):
    """Pinned routed CNOT/SWAP counts of one (case, topology family) pair.

    The steered numbers pin the topology-aware synthesis of every backend
    (zero SWAPs by construction); the SABRE numbers pin the generic router's
    SWAP insertion on the advanced fermionic circuit, so heuristic changes in
    either path fail the regression loudly.
    """
    scf = run_rhf(make_molecule(molecule_name))
    hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=n_frozen)
    ranked = hmp2_ranked_terms(hamiltonian)
    terms = ranked if n_terms is None else ranked[:n_terms]
    topology = topology_for(kind, hamiltonian.n_spin_orbitals)
    request = CompileRequest(
        terms=tuple(terms),
        n_qubits=hamiltonian.n_spin_orbitals,
        config=GOLDEN_CONFIG.replace(topology=topology),
    )
    row = compile_batch([request], backends=DEFAULT_BACKEND_NAMES).results[0]
    steered = {
        name: {
            "cnot_count": row[name].routing.cnot_count,
            "n_swaps": row[name].routing.n_swaps,
            "depth": row[name].routing.depth,
            "two_qubit_depth": row[name].routing.two_qubit_depth,
        }
        for name in DEFAULT_BACKEND_NAMES
    }
    sabre = route_circuit(
        optimize_circuit(row["advanced"].details.fermionic_circuit(optimize=False)),
        topology,
        seed=GOLDEN_CONFIG.seed,
    )
    return {
        "topology": topology.name,
        "table1_cnot_counts": {
            name: row[name].cnot_count for name in DEFAULT_BACKEND_NAMES
        },
        "steered": steered,
        "sabre_advanced": {
            "cnot_count": sabre.metrics().cnot_count,
            "n_swaps": sabre.n_swaps,
        },
    }


def main() -> None:
    golden = {
        "config": {
            "gamma_steps": GOLDEN_CONFIG.gamma_steps,
            "sorting_population": GOLDEN_CONFIG.sorting_population,
            "sorting_generations": GOLDEN_CONFIG.sorting_generations,
            "seed": GOLDEN_CONFIG.seed,
        },
        "cases": {
            name: golden_entry(molecule, n_frozen, n_terms)
            for name, molecule, n_frozen, n_terms in GOLDEN_CASES
        },
        "routing": {
            name: {
                kind: routing_entry(molecule, n_frozen, n_terms, kind)
                for kind in GOLDEN_TOPOLOGY_KINDS
            }
            for name, molecule, n_frozen, n_terms in GOLDEN_CASES
        },
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"Wrote {GOLDEN_PATH}")
    for name, case in golden["cases"].items():
        print(f"  {name}: {case['cnot_counts']}  circuit={case['advanced_circuit']}")
    for name, kinds in golden["routing"].items():
        for kind, entry in kinds.items():
            steered_adv = entry["steered"]["advanced"]
            print(
                f"  {name}/{entry['topology']}: steered adv={steered_adv}  "
                f"sabre adv={entry['sabre_advanced']}"
            )


if __name__ == "__main__":
    main()
