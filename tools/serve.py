"""Run a compile-service session from the command line.

Builds the HMP2-ranked UCCSD ansatz of a molecule, submits it to a
:class:`~repro.service.CompileService` backed by a persistent on-disk cache,
and prints the service snapshot (tier hit rates, latency percentiles, cache
counters) as JSON.  Run it twice with the same ``--cache-dir`` to watch the
second session serve from disk::

    PYTHONPATH=src python tools/serve.py --molecule H2 --n-terms 3 \
        --backends advanced,jw --repeat 2 --cache-dir .compile-cache

Every (molecule, n_terms, backend) job is submitted ``--repeat`` times;
repeats within one session exercise the dedup/memory tiers, repeats across
sessions exercise the disk tier.

Submission honors the service's backpressure contract: when the queue is
full, :class:`~repro.service.ServiceOverloadedError` carries the service's
own ``retry_after_s`` estimate, and this client sleeps exactly that long
before retrying (``--max-queue`` shrinks the queue if you want to watch it
happen; ``--deadline`` arms a per-job deadline).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import CompileRequest, CompilerConfig  # noqa: E402
from repro.chemistry import (  # noqa: E402
    build_molecular_hamiltonian,
    make_molecule,
    run_rhf,
)
from repro.service import (  # noqa: E402
    CompileService,
    PersistentCompileCache,
    ServiceOverloadedError,
)
from repro.vqe import hmp2_ranked_terms  # noqa: E402


async def submit_with_backoff(service, request, backend, deadline_s=None,
                              max_retries=32):
    """Submit one job, backing off by the service's own ``retry_after_s`` hint.

    The hint is queue depth × recent median compute time spread over the
    workers, so the client sleeps proportionally to the actual overload
    instead of a fixed or guessed interval.
    """
    for _ in range(max_retries):
        try:
            return await service.submit(request, backend=backend,
                                        deadline_s=deadline_s)
        except ServiceOverloadedError as exc:
            delay = exc.retry_after_s if exc.retry_after_s is not None else 0.05
            await asyncio.sleep(delay)
    raise ServiceOverloadedError(
        f"queue still full after {max_retries} backoff retries"
    )


def build_requests(molecule: str, n_terms: int, seed: int):
    """One request per ansatz size 1..n_terms, like a client sweep would send."""
    hamiltonian = build_molecular_hamiltonian(run_rhf(make_molecule(molecule)))
    ranked = hmp2_ranked_terms(hamiltonian)
    config = CompilerConfig(
        gamma_steps=10, sorting_population=8, sorting_generations=10, seed=seed
    )
    return [
        CompileRequest(
            terms=tuple(ranked[: min(size, len(ranked))]),
            n_qubits=hamiltonian.n_spin_orbitals,
            config=config,
        )
        for size in range(1, n_terms + 1)
    ]


async def serve(args) -> dict:
    requests = build_requests(args.molecule, args.n_terms, args.seed)
    backends = [name.strip() for name in args.backends.split(",") if name.strip()]
    fallback = [name.strip() for name in args.fallback.split(",") if name.strip()]
    disk = PersistentCompileCache(args.cache_dir)
    async with CompileService(
        disk_cache=disk,
        n_workers=args.workers,
        max_queue=args.max_queue,
        fallback=tuple(fallback),
    ) as service:
        job_ids = []
        for _ in range(args.repeat):
            for request in requests:
                for backend in backends:
                    job_ids.append(
                        await submit_with_backoff(
                            service, request, backend, deadline_s=args.deadline
                        )
                    )
        results = [await service.result(job_id) for job_id in job_ids]
        snapshot = service.snapshot()
    snapshot["jobs"] = [
        {"backend": result.backend, "cnot_count": result.cnot_count}
        for result in results
    ]
    return snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="serve", description=__doc__.splitlines()[0])
    parser.add_argument("--molecule", default="H2")
    parser.add_argument("--n-terms", type=int, default=3)
    parser.add_argument("--backends", default="advanced")
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--cache-dir", default=".compile-cache")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="queue bound; a full queue triggers retry_after_s backoff")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-job deadline in seconds (default: none)")
    parser.add_argument("--fallback", default="",
                        help="comma-separated backend fallback chain tried when "
                             "a job's backend fails (e.g. 'gt,jw'; default: none)")
    args = parser.parse_args(argv)

    snapshot = asyncio.run(serve(args))
    json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
