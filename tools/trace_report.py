"""Render, summarize, or convert a native :mod:`repro.obs` trace document.

Reads a trace written by ``run_table1 --trace`` or ``write_trace`` (the
native shape: versioned span forest + metrics snapshot) and renders it in
one of three formats:

* ``text`` (default) — the indented span tree with durations, percentages
  and attributes, followed by the metrics snapshot;
* ``summary`` — one aggregate row per span name (count, total/mean/max ms)
  across the whole forest, widest totals first;
* ``chrome`` — Chrome trace-event JSON, schema-validated before writing,
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Usage:
    PYTHONPATH=src python tools/trace_report.py benchmarks/trace_table1.json
    PYTHONPATH=src python tools/trace_report.py trace.json --format summary
    PYTHONPATH=src python tools/trace_report.py trace.json --format chrome \
        --output trace.chrome.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import (
    chrome_trace,
    load_trace_document,
    render_span_tree,
    validate_chrome_trace,
    write_trace,
)


def walk_spans(spans):
    """Every span dict of the forest, depth-first."""
    for span in spans:
        yield span
        yield from walk_spans(span.get("children", []))


def summarize(document) -> str:
    """Aggregate table: one row per span name across the whole forest."""
    totals = {}
    for span in walk_spans(document["spans"]):
        duration_ms = (span["end_s"] - span["start_s"]) * 1e3
        entry = totals.setdefault(span["name"], {"count": 0, "total": 0.0, "max": 0.0})
        entry["count"] += 1
        entry["total"] += duration_ms
        entry["max"] = max(entry["max"], duration_ms)
    if not totals:
        return "(no spans collected)"
    lines = [f"{'span':<36}{'count':>7}{'total ms':>12}{'mean ms':>10}{'max ms':>10}"]
    lines.append("-" * len(lines[0]))
    for name, entry in sorted(totals.items(), key=lambda kv: -kv[1]["total"]):
        lines.append(
            f"{name:<36}{entry['count']:>7}{entry['total']:>12.3f}"
            f"{entry['total'] / entry['count']:>10.3f}{entry['max']:>10.3f}"
        )
    return "\n".join(lines)


def render_metrics(document) -> str:
    metrics = document.get("metrics") or {}
    if not metrics:
        return ""
    lines = ["", "metrics:"]
    for name, value in sorted(metrics.items()):
        lines.append(f"  {name} = {value}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path, help="native trace document (JSON)")
    parser.add_argument(
        "--format",
        choices=("text", "summary", "chrome"),
        default="text",
        help="rendering: span tree, aggregate table, or Chrome trace JSON",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write here instead of stdout (required target for artifacts)",
    )
    args = parser.parse_args()

    try:
        document = load_trace_document(json.loads(args.trace.read_text()))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace}: {exc}", file=sys.stderr)
        raise SystemExit(1)

    if args.format == "chrome":
        label = document.get("label") or "repro"
        chrome = chrome_trace(document["spans"], process_name=label)
        n_events = validate_chrome_trace(chrome)
        if args.output is not None:
            write_trace(args.output, chrome)
            print(f"Wrote {args.output} ({n_events} spans)")
        else:
            print(json.dumps(chrome, indent=2))
        return

    if args.format == "summary":
        rendered = summarize(document)
    else:
        rendered = render_span_tree(document["spans"]) + render_metrics(document)
    if args.output is not None:
        args.output.write_text(rendered + "\n")
        print(f"Wrote {args.output}")
    else:
        print(rendered)


if __name__ == "__main__":
    main()
