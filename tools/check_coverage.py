"""Dependency-free line-coverage gate for ``src/repro``.

Runs the fast test tier under a ``sys.settrace`` hook that records executed
lines for files under ``src/repro`` only (other frames are never line-traced,
keeping the overhead modest), then compares the observed line coverage
against the ``fail_under`` watermark in ``pyproject.toml``
(``[tool.repro.coverage]``).  Exits non-zero when coverage drops below the
watermark, so CI fails loudly when new code lands untested.

Executable lines are derived from the compiled code objects of every module
in the package (including modules the tests never import), so dead files
count against the total exactly like coverage.py would.

Usage:
    PYTHONPATH=src python tools/check_coverage.py            # gate on tests/
    PYTHONPATH=src python tools/check_coverage.py tests/core # subset (no gate)
"""

from __future__ import annotations

import sys
import threading
import tomllib
import types
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO_ROOT / "src" / "repro")

_executed: dict = defaultdict(set)


def _local_tracer(frame, event, arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_tracer


def _global_tracer(frame, event, arg):
    if event == "call" and frame.f_code.co_filename.startswith(SRC_PREFIX):
        return _local_tracer
    return None


def executable_lines(path: Path) -> set:
    """Line numbers carrying executable code, from the compiled code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        current = stack.pop()
        lines.update(
            line for _, _, line in current.co_lines() if line is not None and line > 0
        )
        stack.extend(
            const for const in current.co_consts if isinstance(const, types.CodeType)
        )
    return lines


def main() -> int:
    import pytest

    pytest_args = sys.argv[1:] or ["tests", "-q", "-p", "no:cacheprovider"]
    gated = not sys.argv[1:]

    threading.settrace(_global_tracer)
    sys.settrace(_global_tracer)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"\n[coverage] pytest failed (exit {exit_code}); not evaluating coverage")
        return int(exit_code)

    total_executable = 0
    total_executed = 0
    per_file = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        executable = executable_lines(path)
        executed = _executed.get(str(path), set()) & executable
        total_executable += len(executable)
        total_executed += len(executed)
        if executable:
            per_file.append(
                (len(executed) / len(executable), path.relative_to(REPO_ROOT), len(executable))
            )

    coverage = 100.0 * total_executed / max(total_executable, 1)
    fail_under = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())["tool"][
        "repro"
    ]["coverage"]["fail_under"]

    print(f"\n[coverage] line coverage of src/repro: {coverage:.2f}% "
          f"({total_executed}/{total_executable} lines), watermark {fail_under}%")
    worst = sorted(per_file)[:8]
    for fraction, name, n_lines in worst:
        print(f"[coverage]   {100.0 * fraction:6.2f}%  {name} ({n_lines} lines)")

    if gated and coverage < fail_under:
        print(f"[coverage] FAIL: {coverage:.2f}% < fail_under {fail_under}%")
        return 1
    print("[coverage] OK" if gated else "[coverage] (subset run, gate not applied)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
