"""cProfile wrapper for the compile path: top-N hotspots for a molecule/backend.

Future perf work should start from the same measurement this repo's perf PRs
did.  Runs ``compile_molecule_ansatz`` (all four Table-I backends) or a single
backend under ``cProfile`` and prints the top cumulative (or total-time)
hotspots, cold by default (the SCF/integral caches are cleared first, so the
profile covers the chemistry front-end too).

``--sim`` switches to the verification core instead: it profiles dense
unitary construction (``Circuit.to_unitary``) and statevector application
(``Circuit.apply_to_statevector``) on a random circuit, the hot path of the
differential harnesses and hypothesis suites.

``--json PATH`` additionally runs the job under the :mod:`repro.obs` tracer
and writes a machine-readable report: the top cProfile entries (same sort and
count as the printed table) next to the collected span tree, so one file
answers both "which functions are hot" and "which pipeline stages are slow".

Usage:
    PYTHONPATH=src python tools/profile_compile.py LiH --n-terms 12
    PYTHONPATH=src python tools/profile_compile.py H2 --backend advanced --top 15
    PYTHONPATH=src python tools/profile_compile.py LiH --sort tottime --warm
    PYTHONPATH=src python tools/profile_compile.py LiH --json profile_LiH.json
    PYTHONPATH=src python tools/profile_compile.py --sim --sim-qubits 10 --sim-gates 200
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import time
from pathlib import Path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "molecule",
        nargs="?",
        default="LiH",
        help="molecule name (H2, LiH, BeH2, H2O, NH3, HF); ignored with --sim",
    )
    parser.add_argument("--n-terms", type=int, default=12, help="ansatz terms to select")
    parser.add_argument(
        "--backend",
        default=None,
        help="profile one backend (jw/bk/baseline/advanced) instead of all four",
    )
    parser.add_argument("--top", type=int, default=20, help="hotspots to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="keep the SCF/integral caches warm instead of clearing them first",
    )
    parser.add_argument(
        "--sim",
        action="store_true",
        help="profile the simulation engine (unitary + statevector) instead of compilation",
    )
    parser.add_argument("--sim-qubits", type=int, default=10, help="register size for --sim")
    parser.add_argument("--sim-gates", type=int, default=200, help="gate count for --sim")
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also trace the job and write cProfile top entries + span tree "
        "as JSON (compile mode only)",
    )
    args = parser.parse_args()

    if args.sim:
        profile_simulation(args)
        return

    from repro import compile_molecule_ansatz
    from repro.chemistry import clear_integral_caches, clear_scf_cache

    if not args.warm:
        clear_scf_cache()
        clear_integral_caches()

    if args.backend is None:
        def job():
            return compile_molecule_ansatz(args.molecule, n_terms=args.n_terms)
    else:
        from repro.api import CompileRequest, CompilerConfig, get_backend
        from repro.chemistry import build_molecular_hamiltonian, make_molecule, run_rhf
        from repro.vqe import select_ansatz_terms

        backend = get_backend(args.backend)
        molecule = make_molecule(args.molecule)
        frozen = 1 if args.molecule != "H2" else 0
        scf = run_rhf(molecule)
        hamiltonian = build_molecular_hamiltonian(scf, n_frozen_spatial_orbitals=frozen)
        terms = select_ansatz_terms(hamiltonian, args.n_terms)
        request = CompileRequest(
            terms=tuple(terms),
            n_qubits=hamiltonian.n_spin_orbitals,
            config=CompilerConfig(seed=0),
        )
        if not args.warm:
            clear_scf_cache()
            clear_integral_caches()

        def job():
            return backend.compile(request)

    from repro.obs import get_metrics, trace_document, tracing

    profiler = cProfile.Profile()
    start = time.perf_counter()
    with tracing(enabled=args.json is not None) as tracer:
        profiler.enable()
        job()
        profiler.disable()
    elapsed = time.perf_counter() - start

    label = args.backend if args.backend is not None else "all backends"
    print(
        f"compile {args.molecule} n_terms={args.n_terms} ({label}, "
        f"{'warm' if args.warm else 'cold'}): {elapsed:.3f}s\n"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)

    if args.json is not None:
        report = {
            "molecule": args.molecule,
            "n_terms": args.n_terms,
            "backend": label,
            "warm": bool(args.warm),
            "elapsed_s": elapsed,
            "profile": {
                "sort": args.sort,
                "top": top_profile_entries(profiler, args.sort, args.top),
            },
            "trace": trace_document(
                tracer, metrics=get_metrics(), label=f"profile_compile:{label}"
            ),
        }
        args.json.write_text(json.dumps(report, indent=2))
        print(f"Wrote {args.json}")


def top_profile_entries(profiler, sort: str, top: int):
    """The first ``top`` cProfile rows under ``sort``, as plain dicts."""
    sort_index = {"cumulative": 3, "tottime": 2, "ncalls": 1}[sort]
    rows = []
    for (filename, line, function), row in pstats.Stats(profiler).stats.items():
        primitive_calls, calls, total_time, cumulative_time = row[:4]
        rows.append(
            {
                "function": f"{filename}:{line}({function})",
                "ncalls": calls,
                "primitive_calls": primitive_calls,
                "tottime_s": total_time,
                "cumtime_s": cumulative_time,
            }
        )
    keys = {1: "ncalls", 2: "tottime_s", 3: "cumtime_s"}
    rows.sort(key=lambda entry: entry[keys[sort_index]], reverse=True)
    return rows[:top]


def profile_simulation(args) -> None:
    """Profile unitary construction and statevector application (``--sim``)."""
    import numpy as np

    from repro.circuits import Circuit, Gate

    rng = np.random.default_rng(0)
    n = args.sim_qubits
    circuit = Circuit(n)
    single = ["H", "X", "S", "SDG"]
    for _ in range(args.sim_gates):
        draw = rng.random()
        if draw < 0.35:
            circuit.append(Gate(single[int(rng.integers(len(single)))], (int(rng.integers(n)),)))
        elif draw < 0.6:
            circuit.append(Gate("RZ", (int(rng.integers(n)),), float(rng.normal())))
        else:
            a, b = rng.choice(n, size=2, replace=False)
            circuit.append(Gate("CNOT", (int(a), int(b))))
    probe = rng.normal(size=2 ** n) + 1j * rng.normal(size=2 ** n)
    probe /= np.linalg.norm(probe)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    circuit.to_unitary()
    for _ in range(10):
        circuit.apply_to_statevector(probe)
    profiler.disable()
    elapsed = time.perf_counter() - start

    print(
        f"simulation engine {n} qubits / {args.sim_gates} gates "
        f"(1x to_unitary + 10x apply_to_statevector): {elapsed:.3f}s\n"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)


if __name__ == "__main__":
    main()
