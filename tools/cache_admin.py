"""Admin CLI for a persistent compile-cache directory.

Subcommands
-----------
``stats``
    Entry count, total bytes, version stamp, per-shard entry counts and how
    many stored entries are stale under the current version.
``vacuum``
    Remove every entry whose version stamp doesn't match the current one
    (i.e. entries written before the golden files last changed).
``clear``
    Remove every entry regardless of version.

Usage::

    PYTHONPATH=src python tools/cache_admin.py stats  /path/to/cache
    PYTHONPATH=src python tools/cache_admin.py vacuum /path/to/cache
    PYTHONPATH=src python tools/cache_admin.py clear  /path/to/cache

``--version-stamp`` overrides the default golden-derived stamp, which is
mostly useful for inspecting a cache written by a different checkout.
Output is JSON on stdout so the commands compose with ``jq``/scripts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import PersistentCompileCache  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cache_admin", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "command", choices=("stats", "vacuum", "clear"), help="what to do"
    )
    parser.add_argument("cache_dir", help="persistent compile-cache directory")
    parser.add_argument(
        "--version-stamp",
        default=None,
        help="override the golden-derived version stamp",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.cache_dir)
    if args.command != "stats" and not root.is_dir():
        print(f"cache directory {root} does not exist", file=sys.stderr)
        return 1
    cache = PersistentCompileCache(root, version=args.version_stamp)

    if args.command == "stats":
        report = cache.stats()
    elif args.command == "vacuum":
        removed = cache.vacuum()
        report = {"removed_stale_entries": removed, **cache.stats()}
    else:  # clear
        removed = cache.clear()
        report = {"removed_entries": removed, **cache.stats()}

    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
