"""Prior-art baseline compilation pipeline (references [8] and [9] of the paper)."""

from repro.baselines.compiler import (
    BOSONIC_TERM_CNOT_COST,
    BaselineCompilationResult,
    BaselineCompiler,
    naive_cnot_count,
    naive_rotation_sequence,
)

__all__ = [
    "BOSONIC_TERM_CNOT_COST",
    "BaselineCompiler",
    "BaselineCompilationResult",
    "naive_cnot_count",
    "naive_rotation_sequence",
]
