"""Prior-art baseline compiler ([8], [9] in the paper).

Reproduces the compilation strategy the paper improves upon:

* **Bosonic encoding only** — a double excitation whose creation *and*
  annihilation index pairs are both same-spatial-orbital spin pairs is
  compiled in compressed form at 2 CNOTs; hybrid terms are not compressed.
* **Intra-excitation term ordering** — the Pauli strings of one excitation
  term are ordered to maximize cancellations (exhaustively for small terms,
  with a 2-opt tour heuristic otherwise).
* **Target qubit choice** — all Pauli strings of the same excitation term
  share a single target qubit.
* **Inter-excitation term ordering** — a doubly-greedy pass groups terms with
  the same target and greedily orders terms inside each group.
* **Fermion-to-qubit transformation matrix** — an upper-triangular GL(N,2)
  matrix searched with binary particle swarm optimization.

Together these produce the "GT" (generalized transformation) column of
Table I; running it with the identity transformation and no compression gives
the plain JW/BK columns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import interface_cnot_reduction, sequence_cnot_count
from repro.core.terms_to_paulis import PauliRotation, required_qubits, terms_to_rotations
from repro.operators import PauliString
from repro.optimizers import binary_particle_swarm, solve_tsp
from repro.transforms import (
    FermionQubitTransform,
    JordanWignerTransform,
    LinearEncodingTransform,
    identity_matrix,
)
from repro.vqe import ExcitationTerm

#: CNOT cost of a compressed ("bosonic") double excitation, from [8].
BOSONIC_TERM_CNOT_COST = 2

#: Maximum number of Pauli strings for which intra-term ordering is exhaustive.
EXHAUSTIVE_ORDERING_LIMIT = 5


@dataclass
class BaselineCompilationResult:
    """Outcome of the baseline compilation of an excitation-term list."""

    cnot_count: int
    bosonic_terms: List[ExcitationTerm]
    bosonic_cnot_count: int
    ordered_rotations: List[Tuple[PauliString, int]]
    rotation_cnot_count: int
    transform_matrix: np.ndarray
    #: The same sequence as ``ordered_rotations`` with the rotation angles
    #: included, shaped for :func:`repro.circuits.exponential_sequence_circuit`
    #: so differential tests can synthesize the compiled unitary.
    ordered_exponentials: List[Tuple[PauliString, float, int]] = field(
        default_factory=list
    )

    @property
    def n_compressed_terms(self) -> int:
        return len(self.bosonic_terms)


def _shared_target(rotations: Sequence[PauliRotation]) -> Optional[int]:
    """Highest-index qubit common to the support of every rotation, if any."""
    if not rotations:
        return None
    common = set(rotations[0].string.support)
    for rotation in rotations[1:]:
        common &= set(rotation.string.support)
    return max(common) if common else None


#: One targeted rotation with its angle: (string, target, angle).
_TargetedRotation = Tuple[PauliString, int, float]


def _order_rotations_within_term(
    rotations: List[PauliRotation], target: Optional[int]
) -> List[_TargetedRotation]:
    """Order one term's rotations to maximize internal cancellations.

    All rotations share ``target`` when possible (the baseline's target-qubit
    rule); rotations whose support misses the target fall back to their own
    highest support qubit.
    """
    def targeted(rotation: PauliRotation) -> _TargetedRotation:
        support = rotation.string.support
        chosen = target if target is not None and target in support else support[-1]
        return (rotation.string, chosen, rotation.angle)

    entries = [targeted(r) for r in rotations]
    if len(entries) <= 1:
        return entries
    if len(entries) <= EXHAUSTIVE_ORDERING_LIMIT:
        best = min(
            itertools.permutations(entries),
            key=lambda order: sequence_cnot_count([(p, t) for p, t, _ in order]),
        )
        return list(best)

    indices = list(range(len(entries)))

    def weight(i: int, j: int) -> float:
        (p1, t1, _), (p2, t2, _) = entries[i], entries[j]
        return -float(interface_cnot_reduction(p1, t1, p2, t2))

    tour = solve_tsp(indices, weight, rng=np.random.default_rng(0))
    return [entries[i] for i in tour]


def _greedy_inter_term_order(
    term_blocks: List[List[_TargetedRotation]]
) -> List[_TargetedRotation]:
    """Doubly-greedy inter-term ordering.

    Terms are grouped by their shared target; inside each group a greedy
    nearest-neighbour pass orders the terms by the cancellation between the
    last rotation of one block and the first rotation of the next.
    """
    groups: Dict[int, List[List[_TargetedRotation]]] = {}
    for block in term_blocks:
        if not block:
            continue
        groups.setdefault(block[0][1], []).append(block)

    ordered: List[_TargetedRotation] = []
    for target in sorted(groups):
        blocks = list(groups[target])
        current = blocks.pop(0)
        sequence = list(current)
        while blocks:
            last_string, last_target = sequence[-1][0], sequence[-1][1]
            best_index = max(
                range(len(blocks)),
                key=lambda i: interface_cnot_reduction(
                    last_string, last_target, blocks[i][0][0], blocks[i][0][1]
                ),
            )
            sequence.extend(blocks.pop(best_index))
        ordered.extend(sequence)
    return ordered


class BaselineCompiler:
    """The prior-art compilation flow (GT column of Table I).

    Parameters
    ----------
    use_bosonic_encoding:
        Compress fully-paired double excitations at 2 CNOTs each (the baseline
        always does; disable only for the plain JW/BK reference columns).
    transform_matrix:
        Upper-triangular GL(N,2) matrix to use; identity (Jordan-Wigner) when
        omitted.  Use :meth:`search_transform` to run the PSO search.
    """

    def __init__(
        self,
        use_bosonic_encoding: bool = True,
        transform_matrix: Optional[np.ndarray] = None,
    ):
        self.use_bosonic_encoding = use_bosonic_encoding
        self.transform_matrix = transform_matrix

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        terms: Sequence[ExcitationTerm],
        n_qubits: Optional[int] = None,
        parameters: Optional[Sequence[float]] = None,
    ) -> BaselineCompilationResult:
        """Compile an ordered excitation-term list and count CNOTs."""
        terms = list(terms)
        if not terms:
            raise ValueError("cannot compile an empty term list")
        if n_qubits is None:
            n_qubits = required_qubits(terms)

        if self.transform_matrix is None:
            gamma = identity_matrix(n_qubits)
        else:
            gamma = np.asarray(self.transform_matrix, dtype=np.uint8)
        transform: FermionQubitTransform = LinearEncodingTransform(gamma)

        bosonic_terms: List[ExcitationTerm] = []
        uncompressed: List[Tuple[int, ExcitationTerm]] = []
        for index, term in enumerate(terms):
            if self.use_bosonic_encoding and term.encoding_class == "bosonic":
                bosonic_terms.append(term)
            else:
                uncompressed.append((index, term))

        bosonic_cnots = BOSONIC_TERM_CNOT_COST * len(bosonic_terms)

        term_blocks: List[List[_TargetedRotation]] = []
        for index, term in uncompressed:
            parameter = 1.0 if parameters is None else parameters[index]
            rotations = terms_to_rotations([term], transform, [parameter])
            target = _shared_target(rotations)
            term_blocks.append(_order_rotations_within_term(rotations, target))

        ordered = _greedy_inter_term_order(term_blocks)
        ordered_rotations = [(string, target) for string, target, _ in ordered]
        rotation_cnots = sequence_cnot_count(ordered_rotations)

        return BaselineCompilationResult(
            cnot_count=bosonic_cnots + rotation_cnots,
            bosonic_terms=bosonic_terms,
            bosonic_cnot_count=bosonic_cnots,
            ordered_rotations=ordered_rotations,
            rotation_cnot_count=rotation_cnots,
            transform_matrix=gamma,
            ordered_exponentials=[
                (string, angle, target) for string, target, angle in ordered
            ],
        )

    # ------------------------------------------------------------------
    # Transformation search (PSO over upper-triangular matrices)
    # ------------------------------------------------------------------
    def search_transform(
        self,
        terms: Sequence[ExcitationTerm],
        n_qubits: Optional[int] = None,
        n_particles: int = 10,
        iterations: int = 15,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Search the strictly-upper-triangular bits of Γ with binary PSO.

        Sets :attr:`transform_matrix` to the best matrix found and returns it.
        """
        terms = list(terms)
        if n_qubits is None:
            n_qubits = required_qubits(terms)
        rng = rng or np.random.default_rng()
        upper_indices = [(i, j) for i in range(n_qubits) for j in range(i + 1, n_qubits)]

        def bits_to_matrix(bits: np.ndarray) -> np.ndarray:
            matrix = identity_matrix(n_qubits)
            for bit, (i, j) in zip(bits, upper_indices):
                matrix[i, j] = int(bit)
            return matrix

        def objective(bits: np.ndarray) -> float:
            compiler = BaselineCompiler(
                use_bosonic_encoding=self.use_bosonic_encoding,
                transform_matrix=bits_to_matrix(bits),
            )
            return float(compiler.compile(terms, n_qubits=n_qubits).cnot_count)

        result = binary_particle_swarm(
            objective,
            n_bits=len(upper_indices),
            n_particles=n_particles,
            iterations=iterations,
            rng=rng,
            initial_position=np.zeros(len(upper_indices), dtype=np.uint8),
        )
        self.transform_matrix = bits_to_matrix(result.best_position)
        return self.transform_matrix


def naive_rotation_sequence(
    terms: Sequence[ExcitationTerm],
    transform: FermionQubitTransform,
    parameters: Optional[Sequence[float]] = None,
) -> List[Tuple[PauliString, float, int]]:
    """The exact ``(string, angle, target)`` sequence the naive flow compiles.

    Terms are Trotterized in the given order, every Pauli string of a term
    shares the term's common target qubit, and strings keep their
    deterministic expansion order.  The sequence feeds straight into
    :func:`repro.circuits.exponential_sequence_circuit`, which is how the
    differential tests reconstruct the JW/BK reference unitaries.
    """
    terms = list(terms)
    sequence: List[Tuple[PauliString, float, int]] = []
    for index, term in enumerate(terms):
        parameter = 1.0 if parameters is None else parameters[index]
        rotations = terms_to_rotations([term], transform, [parameter])
        target = _shared_target(rotations)
        for rotation in rotations:
            support = rotation.string.support
            chosen = target if target is not None and target in support else support[-1]
            sequence.append((rotation.string, rotation.angle, chosen))
    return sequence


def naive_cnot_count(
    terms: Sequence[ExcitationTerm],
    transform: FermionQubitTransform,
    parameters: Optional[Sequence[float]] = None,
) -> int:
    """Reference compilation used for the JW and BK columns of Table I.

    No compression and no ordering optimization: only cancellations between
    consecutive rotations of :func:`naive_rotation_sequence` are credited.
    """
    terms = list(terms)
    if not terms:
        return 0
    sequence = naive_rotation_sequence(terms, transform, parameters)
    return sequence_cnot_count([(string, target) for string, _, target in sequence])
