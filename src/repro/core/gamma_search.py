"""Advanced fermion-to-qubit transformation: block-diagonal Γ search via SA.

Section III-C of the paper.  The search space GL(N, 2) is astronomically
large, so the candidate Γ is restricted to a block-diagonal form derived from
the *topology* of the excitation terms: the creation-side and
annihilation-side index pairs of every double excitation define a graph on the
spin orbitals whose connected components become the blocks.  Each block is an
independent invertible matrix searched with simulated annealing, with the
objective being the CNOT count reported by a caller-supplied cost function
(in the full pipeline: the advanced-sorting cost of the transformed term
list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.optimizers import AnnealingSchedule, simulated_annealing
from repro.transforms import embed_block, gf2_matmul, identity_matrix, is_invertible
from repro.vqe import ExcitationTerm


def excitation_topology_blocks(
    terms: Sequence[ExcitationTerm], n_qubits: int, max_block_size: int = 6
) -> List[List[int]]:
    """Connected index clusters formed by the excitation terms (Appendix C).

    Edges connect the two creation indices and the two annihilation indices of
    every double excitation.  Connected components larger than
    ``max_block_size`` are split to keep the per-block search space manageable
    (the paper similarly relies on blocks staying small).
    Only components with at least two indices are returned — singleton modes
    stay untouched by Γ.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(n_qubits))
    for term in terms:
        if term.is_double:
            graph.add_edge(*term.creation)
            graph.add_edge(*term.annihilation)
    blocks: List[List[int]] = []
    for component in nx.connected_components(graph):
        indices = sorted(component)
        if len(indices) < 2:
            continue
        for start in range(0, len(indices), max_block_size):
            chunk = indices[start:start + max_block_size]
            if len(chunk) >= 2:
                blocks.append(chunk)
    return blocks


@dataclass
class GammaSearchResult:
    """Best block-diagonal Γ found by the simulated-annealing search.

    ``degraded`` is True when a ``max_steps`` budget truncated the annealing
    walk before its schedule finished: the Γ is the best seen so far, valid
    but possibly short of the unbudgeted optimum.
    """

    gamma: np.ndarray
    cnot_count: float
    blocks: List[List[int]]
    n_steps: int
    degraded: bool = False


def assemble_gamma(
    n_qubits: int, blocks: Sequence[Sequence[int]], block_matrices: Sequence[np.ndarray]
) -> np.ndarray:
    """Embed per-block invertible matrices into the full N×N identity."""
    gamma = identity_matrix(n_qubits)
    for indices, matrix in zip(blocks, block_matrices):
        gamma = gf2_matmul(embed_block(n_qubits, indices, matrix), gamma)
    return gamma


def _random_elementary_update(
    matrix: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Multiply a block matrix by a random elementary row addition (stays invertible)."""
    size = matrix.shape[0]
    updated = matrix.copy()
    row, col = rng.integers(size), rng.integers(size)
    while col == row:
        col = rng.integers(size)
    updated[row] ^= updated[col]
    return updated


def search_block_diagonal_gamma(
    terms: Sequence[ExcitationTerm],
    n_qubits: int,
    cost_function: Callable[[np.ndarray], float],
    n_steps: int = 60,
    initial_temperature: float = 2.0,
    max_block_size: int = 6,
    rng: Optional[np.random.Generator] = None,
    max_steps: Optional[int] = None,
) -> GammaSearchResult:
    """Simulated-annealing search over block-diagonal Γ matrices.

    Parameters
    ----------
    terms:
        The excitation terms whose index topology defines the blocks.
    n_qubits:
        Register size N (Γ is N×N).
    cost_function:
        Maps a candidate Γ to the CNOT count of the compiled circuit; this is
        "subroutine 1" of Fig. 2 (advanced sorting + generic circuit compiler).
    n_steps:
        Number of SA proposals.
    max_steps:
        Anytime iteration budget: stop the walk after this many proposals,
        returning the best Γ so far flagged ``degraded=True``.  Deterministic
        for a fixed rng — the truncated walk is an exact prefix of the
        unbudgeted one.
    """
    rng = rng or np.random.default_rng()
    blocks = excitation_topology_blocks(terms, n_qubits, max_block_size=max_block_size)
    identity = identity_matrix(n_qubits)
    if not blocks:
        return GammaSearchResult(
            gamma=identity, cnot_count=float(cost_function(identity)), blocks=[], n_steps=0
        )

    initial_state: Tuple[np.ndarray, ...] = tuple(
        identity_matrix(len(block)) for block in blocks
    )

    # The cost function (transform + greedy sort) is deterministic in Γ and by
    # far the dominant expense, while the elementary-update walk frequently
    # revisits the same candidate; memoize on the Γ bit pattern.
    cost_cache: Dict[bytes, float] = {}

    def energy(state: Tuple[np.ndarray, ...]) -> float:
        gamma = assemble_gamma(n_qubits, blocks, state)
        key = gamma.tobytes()
        cached = cost_cache.get(key)
        if cached is None:
            cached = float(cost_function(gamma))
            cost_cache[key] = cached
        return cached

    def neighbor(
        state: Tuple[np.ndarray, ...], generator: np.random.Generator
    ) -> Tuple[np.ndarray, ...]:
        index = int(generator.integers(len(state)))
        updated = list(state)
        updated[index] = _random_elementary_update(state[index], generator)
        return tuple(updated)

    schedule = AnnealingSchedule(
        initial_temperature=initial_temperature,
        final_temperature=max(initial_temperature * 1e-3, 1e-6),
        n_steps=n_steps,
    )
    result = simulated_annealing(
        initial_state, energy, neighbor, schedule=schedule, rng=rng, max_steps=max_steps
    )
    best_gamma = assemble_gamma(n_qubits, blocks, result.best_state)
    if not is_invertible(best_gamma):
        # Elementary updates preserve invertibility, so this should never
        # trigger; guard against silent corruption regardless.
        best_gamma = identity
    return GammaSearchResult(
        gamma=best_gamma,
        cnot_count=float(result.best_energy),
        blocks=blocks,
        n_steps=result.n_steps,
        degraded=result.truncated,
    )
