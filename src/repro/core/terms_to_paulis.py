"""Conversion of excitation terms to targeted Pauli-string exponentials.

Both the baseline and the advanced compiler Trotterize each excitation term's
anti-hermitian generator into a product of Pauli-string exponentials.  This
module performs the conversion under any fermion-to-qubit transform and keeps
track of the rotation angles (the variational parameters θ only rescale the
angles, so the CNOT counts are parameter-independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.operators import PauliString, QubitOperator
from repro.transforms import FermionQubitTransform, JordanWignerTransform
from repro.vqe import ExcitationTerm

#: Imaginary-coefficient tolerance when extracting rotation angles.
ANGLE_TOLERANCE = 1e-10


@dataclass(frozen=True)
class PauliRotation:
    """A single Pauli rotation ``exp(-i angle/2 · string)`` awaiting a target choice.

    ``term_index`` records which excitation term produced the rotation so that
    baseline (per-term) orderings can be reconstructed.
    """

    string: PauliString
    angle: float
    term_index: int

    @property
    def weight(self) -> int:
        return self.string.weight

    @property
    def cnot_cost(self) -> int:
        """CNOT count of the rotation on its own (no cancellation)."""
        return 0 if self.weight <= 1 else 2 * (self.weight - 1)


def excitation_to_rotations(
    term: ExcitationTerm,
    transform: FermionQubitTransform,
    parameter: float = 1.0,
    term_index: int = 0,
) -> List[PauliRotation]:
    """Expand ``exp(θ (T - T†))`` into Pauli rotations under ``transform``.

    The anti-hermitian generator maps to a sum ``Σ_k i c_k P_k`` with real
    ``c_k``; each summand contributes the rotation ``exp(-i (-2 c_k)/2 P_k)``.
    The returned rotations all mutually commute for a single excitation term,
    so their relative order is a pure compilation degree of freedom.
    """
    generator = term.generator(parameter)
    qubit_generator = transform.transform(generator)
    rotations: List[PauliRotation] = []
    for string, coefficient in sorted(qubit_generator.terms.items(), key=lambda kv: kv[0]):
        if string.is_identity:
            continue
        if abs(coefficient.real) > ANGLE_TOLERANCE:
            raise ValueError(
                f"generator of {term} produced a non-anti-hermitian coefficient {coefficient}"
            )
        angle = -2.0 * float(coefficient.imag)
        if abs(angle) <= ANGLE_TOLERANCE:
            continue
        rotations.append(PauliRotation(string=string, angle=angle, term_index=term_index))
    return rotations


def terms_to_rotations(
    terms: Sequence[ExcitationTerm],
    transform: FermionQubitTransform,
    parameters: Optional[Sequence[float]] = None,
) -> List[PauliRotation]:
    """Expand an ordered list of excitation terms into Pauli rotations."""
    if parameters is None:
        parameters = [1.0] * len(terms)
    if len(parameters) != len(terms):
        raise ValueError("one parameter per excitation term is required")
    rotations: List[PauliRotation] = []
    for index, (term, parameter) in enumerate(zip(terms, parameters)):
        rotations.extend(
            excitation_to_rotations(term, transform, parameter=parameter, term_index=index)
        )
    return rotations


def required_qubits(terms: Sequence[ExcitationTerm]) -> int:
    """Smallest register size covering every term."""
    if not terms:
        return 0
    return max(term.max_spin_orbital() for term in terms) + 1
