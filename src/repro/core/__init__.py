"""The paper's primary contribution: advanced compilation of fermionic VQE circuits.

* :mod:`~repro.core.hybrid_encoding` — Sec. III-A (parity-symmetry
  classification, directed-graph reduction, graph-coloring scheduling);
* :mod:`~repro.core.advanced_sorting` — Sec. III-B (GTSP over Pauli rotations
  with per-rotation target qubits);
* :mod:`~repro.core.gamma_search` — Sec. III-C (block-diagonal GL(N,2)
  transformation search via simulated annealing);
* :mod:`~repro.core.pipeline` — the full Fig. 2 flow combining the three.
"""

from repro.core.advanced_sorting import (
    SortingResult,
    advanced_sort,
    baseline_order_cnot_count,
    build_sorting_problem,
    greedy_sort,
    result_to_tour,
    routed_sequence_cost_estimate,
    term_block_tour,
)
from repro.core.config import CompilerConfig
from repro.core.gamma_search import (
    GammaSearchResult,
    assemble_gamma,
    excitation_topology_blocks,
    search_block_diagonal_gamma,
)
from repro.core.hybrid_encoding import (
    BOSONIC_TERM_CNOT_COST,
    HYBRID_TERM_CNOT_COST,
    HybridSchedule,
    breaks_symmetry,
    build_symmetry_graph,
    classify_terms,
    reduce_graph,
    schedule_hybrid_terms,
    symmetric_pair,
)
from repro.core.pipeline import (
    DEFAULT_STAGES,
    AdvancedCompilationResult,
    AdvancedCompiler,
    AdvancedPipeline,
    StageContext,
    StageFailure,
    account_stage,
    classify_stage,
    compile_advanced,
    gamma_search_stage,
    naive_sort_stage,
    schedule_hybrid_stage,
    sort_stage,
    transform_stage,
)
from repro.core.terms_to_paulis import (
    PauliRotation,
    excitation_to_rotations,
    required_qubits,
    terms_to_rotations,
)

__all__ = [
    "AdvancedCompiler",
    "AdvancedCompilationResult",
    "AdvancedPipeline",
    "CompilerConfig",
    "StageContext",
    "StageFailure",
    "DEFAULT_STAGES",
    "classify_stage",
    "schedule_hybrid_stage",
    "gamma_search_stage",
    "transform_stage",
    "sort_stage",
    "naive_sort_stage",
    "account_stage",
    "compile_advanced",
    "result_to_tour",
    "term_block_tour",
    "HybridSchedule",
    "classify_terms",
    "schedule_hybrid_terms",
    "build_symmetry_graph",
    "reduce_graph",
    "breaks_symmetry",
    "symmetric_pair",
    "BOSONIC_TERM_CNOT_COST",
    "HYBRID_TERM_CNOT_COST",
    "SortingResult",
    "advanced_sort",
    "greedy_sort",
    "baseline_order_cnot_count",
    "build_sorting_problem",
    "routed_sequence_cost_estimate",
    "GammaSearchResult",
    "search_block_diagonal_gamma",
    "excitation_topology_blocks",
    "assemble_gamma",
    "PauliRotation",
    "excitation_to_rotations",
    "terms_to_rotations",
    "required_qubits",
]
