"""Hybrid encoding: symmetry-preserving scheduling of compressible excitation terms.

Section III-A of the paper.  A *hybrid* double excitation has exactly one of
its two index pairs equal to a same-spatial-orbital spin pair ``(2k, 2k+1)``.
When the input state is an eigenstate of the pair's number-parity operator the
term can be compiled in compressed form at 7 CNOTs (Fig. 3(a)) instead of the
≥13 CNOTs of a generic double excitation.  Whether the symmetry survives until
a given term is applied depends on the order in which terms are implemented,
so the scheduling problem is mapped onto a directed graph:

* vertex = hybrid term,
* edge ``h_i → h_j`` whenever implementing ``h_i`` breaks the pair symmetry
  ``h_j`` needs (i.e. ``h_i`` anti-commutes with ``h_j``'s parity operator),

which is then reduced by iteratively peeling sinks (implemented first) and
sources (implemented last), and the remaining core is attacked with graph
vertex coloring: the largest color class is an independent set whose members
can all be compressed.  Everything else is folded back into the fermionic
compilation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.optimizers import randomized_greedy_coloring
from repro.vqe import ExcitationTerm

#: CNOT cost of a compressed hybrid double excitation (Fig. 3(a) of the paper).
HYBRID_TERM_CNOT_COST = 7

#: CNOT cost of a compressed bosonic double excitation ([8]).
BOSONIC_TERM_CNOT_COST = 2


def symmetric_pair(term: ExcitationTerm) -> Optional[Tuple[int, int]]:
    """The same-spatial-orbital spin pair whose parity symmetry the term exploits.

    For a hybrid term exactly one of the creation/annihilation pairs is such a
    pair; for a bosonic term both are (the creation pair is returned); for
    fermionic terms ``None`` is returned.
    """
    if not term.is_double:
        return None
    if term.creation_is_spin_pair:
        return term.creation
    if term.annihilation_is_spin_pair:
        return term.annihilation
    return None


def breaks_symmetry(breaker: ExcitationTerm, protected: ExcitationTerm) -> bool:
    """True if applying ``breaker`` destroys the pair symmetry ``protected`` relies on.

    The exact criterion: the exponential of ``breaker`` commutes with the
    number-parity operator ``P_ab`` of ``protected``'s symmetric pair iff the
    total number of ``breaker``'s ladder indices lying in ``{a, b}`` is even.
    An odd count flips the parity and breaks the symmetry.  (The paper states
    the equivalent sufficient condition specialized to its index convention.)
    """
    pair = symmetric_pair(protected)
    if pair is None:
        return False
    pair_set = set(pair)
    touches = sum(1 for index in breaker.creation if index in pair_set)
    touches += sum(1 for index in breaker.annihilation if index in pair_set)
    return touches % 2 == 1


def build_symmetry_graph(hybrid_terms: Sequence[ExcitationTerm]) -> nx.DiGraph:
    """Directed graph with an edge ``i -> j`` when term ``i`` breaks term ``j``'s symmetry."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(hybrid_terms)))
    for i, term_i in enumerate(hybrid_terms):
        for j, term_j in enumerate(hybrid_terms):
            if i != j and breaks_symmetry(term_i, term_j):
                graph.add_edge(i, j)
    return graph


def reduce_graph(graph: nx.DiGraph) -> Tuple[List[int], List[int], nx.DiGraph]:
    """Iteratively peel sinks and sources off the symmetry graph.

    Returns ``(sinks, sources, core)``: sink vertices (no outgoing edges — they
    break nobody, so they are implemented first), source vertices (no incoming
    edges — nobody breaks them, so they are implemented last) and the remaining
    core graph.  Peeling repeats until no sink or source is left, as in the
    paper's graph-reduction step.
    """
    working = graph.copy()
    sinks: List[int] = []
    sources: List[int] = []
    changed = True
    while changed and working.number_of_nodes() > 0:
        changed = False
        sink_vertices = [v for v in working.nodes if working.out_degree(v) == 0]
        if sink_vertices:
            sinks.extend(sorted(sink_vertices))
            working.remove_nodes_from(sink_vertices)
            changed = True
        source_vertices = [v for v in working.nodes if working.in_degree(v) == 0]
        if source_vertices:
            sources.extend(sorted(source_vertices))
            working.remove_nodes_from(source_vertices)
            changed = True
    return sinks, sources, working


@dataclass
class HybridSchedule:
    """Outcome of the hybrid-encoding scheduling for a set of hybrid terms.

    The compressed circuit has the structure ``C_source · C_color · C_sink``
    (sinks first in time); terms in ``uncompressed`` are folded into the
    fermionic compilation path.
    """

    sink_terms: List[ExcitationTerm]
    color_terms: List[ExcitationTerm]
    source_terms: List[ExcitationTerm]
    uncompressed_terms: List[ExcitationTerm]
    n_colors: int = 0

    @property
    def compressed_terms(self) -> List[ExcitationTerm]:
        """All terms that will be implemented in compressed (7-CNOT) form."""
        return self.sink_terms + self.color_terms + self.source_terms

    @property
    def n_compressed(self) -> int:
        return len(self.compressed_terms)

    @property
    def compressed_cnot_count(self) -> int:
        return HYBRID_TERM_CNOT_COST * self.n_compressed


def schedule_hybrid_terms(
    hybrid_terms: Sequence[ExcitationTerm],
    n_coloring_orders: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> HybridSchedule:
    """Schedule hybrid terms for maximal compression (Sec. III-A solution).

    1. Build the directed symmetry graph.
    2. Peel sinks (implement first) and sources (implement last).
    3. Color the undirected core with the randomized greedy GVCP solver and
       compress the largest color class.
    4. Everything else is left uncompressed.
    """
    hybrid_terms = list(hybrid_terms)
    if not hybrid_terms:
        return HybridSchedule([], [], [], [], n_colors=0)
    for term in hybrid_terms:
        if term.encoding_class != "hybrid":
            raise ValueError(f"term {term} is not hybrid")

    graph = build_symmetry_graph(hybrid_terms)
    sinks, sources, core = reduce_graph(graph)

    color_indices: List[int] = []
    n_colors = 0
    remaining = set(core.nodes)
    if core.number_of_nodes() > 0:
        coloring = randomized_greedy_coloring(
            core.to_undirected(), n_orders=n_coloring_orders, rng=rng
        )
        n_colors = coloring.n_colors
        color_indices = sorted(coloring.largest_color_class())
        remaining -= set(color_indices)

    return HybridSchedule(
        sink_terms=[hybrid_terms[i] for i in sinks],
        color_terms=[hybrid_terms[i] for i in color_indices],
        source_terms=[hybrid_terms[i] for i in sources],
        uncompressed_terms=[hybrid_terms[i] for i in sorted(remaining)],
        n_colors=n_colors,
    )


def classify_terms(
    terms: Sequence[ExcitationTerm],
) -> Dict[str, List[ExcitationTerm]]:
    """Partition excitation terms into bosonic / hybrid / fermionic classes."""
    classes: Dict[str, List[ExcitationTerm]] = {"bosonic": [], "hybrid": [], "fermionic": []}
    for term in terms:
        classes[term.encoding_class].append(term)
    return classes
