"""Advanced sorting: GTSP-based ordering of Pauli rotations with free targets.

Section III-B of the paper.  Every Pauli rotation may choose its own target
qubit, and rotations from *different* excitation terms may interleave; both
degrees of freedom are folded into one generalized traveling salesman problem
whose clusters are the rotations and whose vertices are the admissible
``(rotation, target)`` pairs, with edge weights equal to (minus) the CNOT
cancellation at the interface of consecutive exponentials.  The GTSP is solved
with the genetic algorithm of :mod:`repro.optimizers.gtsp`, the resulting tour
is cut at its weakest edge and the path cost is the compiled CNOT count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import (
    best_sequence_from_cycle,
    interface_cnot_reduction,
    sequence_cnot_count,
)
from repro.core.terms_to_paulis import PauliRotation
from repro.hardware.topology import Topology
from repro.operators import (
    PauliString,
    interface_reduction_matrix,
    routed_vertex_cost_vector,
)
from repro.optimizers import GtspProblem, solve_gtsp

#: A GTSP vertex: (rotation index, target qubit).
SortingVertex = Tuple[int, int]


def vertex_savings(
    rotations: Sequence[PauliRotation],
) -> Tuple[List[SortingVertex], np.ndarray]:
    """All ``(rotation, target)`` vertices plus their pairwise savings matrix.

    Vertices are enumerated in (rotation index, ascending target) order; the
    matrix entry ``[a, b]`` is the interface CNOT saving of implementing
    vertex ``b`` right after vertex ``a``, computed in one batched symplectic
    scan (:func:`repro.operators.interface_reduction_matrix`) instead of one
    Python loop per GTSP edge query.
    """
    vertices: List[SortingVertex] = []
    for index, rotation in enumerate(rotations):
        for target in rotation.string.support:
            vertices.append((index, target))
    if not vertices:
        return [], np.zeros((0, 0), dtype=np.int64)
    matrix = interface_reduction_matrix(
        [rotations[index].string for index, _ in vertices],
        [target for _, target in vertices],
    )
    return vertices, matrix


@dataclass
class SortingResult:
    """Ordered, targeted rotation sequence produced by the advanced sorting.

    ``cnot_count`` is always the paper's all-to-all accounting;
    ``routed_cost_estimate`` is the distance-weighted cost of the same
    sequence when the sort ran against a topology (``None`` otherwise).
    ``degraded`` is True when an iteration budget (``max_generations``)
    truncated the GTSP search: the sequence is valid and best-so-far, but
    the search stopped short of its configured effort.
    """

    ordered_rotations: List[Tuple[PauliRotation, int]]
    cnot_count: int
    routed_cost_estimate: Optional[int] = None
    degraded: bool = False

    def targeted_strings(self) -> List[Tuple[PauliString, int]]:
        """The ``(PauliString, target)`` pairs in compiled order."""
        return [(rotation.string, target) for rotation, target in self.ordered_rotations]

    def objective(self) -> int:
        """The cost the sort optimized: routed estimate if present, else CNOTs."""
        if self.routed_cost_estimate is not None:
            return self.routed_cost_estimate
        return self.cnot_count


def routed_sequence_cost_estimate(
    sequence: Sequence[Tuple[PauliString, int]], topology: Topology
) -> int:
    """Distance-weighted CNOT estimate of a targeted sequence on a device.

    Sum of the steered per-vertex ladder costs
    (:func:`repro.operators.routed_vertex_cost_vector`) minus the Sec. III-B
    interface savings between consecutive exponentials — the path cost the
    distance-weighted GTSP optimizes.  On all-to-all distances this equals
    :func:`repro.circuits.sequence_cnot_count` exactly.
    """
    if not sequence:
        return 0
    strings = [string for string, _ in sequence]
    targets = [target for _, target in sequence]
    costs = routed_vertex_cost_vector(strings, targets, topology.distance_matrix)
    total = int(costs.sum())
    for (p1, t1), (p2, t2) in zip(sequence, sequence[1:]):
        total -= interface_cnot_reduction(p1, t1, p2, t2)
    return total


def build_sorting_problem(
    rotations: Sequence[PauliRotation], topology: Optional[Topology] = None
) -> GtspProblem:
    """Build the GTSP instance of Sec. III-B for a list of Pauli rotations.

    The edge weights are served from one precomputed pairwise matrix, so the
    genetic algorithm's many repeated weight queries cost a dictionary lookup
    each instead of a per-qubit scan.  Without a topology the weight is minus
    the interface saving (the paper's objective); with one it is the
    distance-weighted cost matrix
    (:func:`repro.operators.distance_weighted_cost_matrix`), which folds the
    per-target steered ladder cost into the incoming edge so target choices
    trade connectivity against cancellation.
    """
    rotations = list(rotations)
    if not rotations:
        raise ValueError("cannot build a sorting problem from zero rotations")
    clusters: List[List[SortingVertex]] = []
    for index, rotation in enumerate(rotations):
        support = rotation.string.support
        if not support:
            raise ValueError("identity rotations cannot be sorted into circuits")
        clusters.append([(index, target) for target in support])

    vertices, savings = vertex_savings(rotations)
    if topology is None:
        matrix = -savings
    else:
        # Reuse the savings matrix vertex_savings already built instead of
        # letting distance_weighted_cost_matrix recompute it.
        costs = routed_vertex_cost_vector(
            [rotations[index].string for index, _ in vertices],
            [target for _, target in vertices],
            topology.distance_matrix,
        )
        matrix = costs[None, :] - savings

    # vertex_savings enumerates vertices in cluster-flattened order, which is
    # exactly the global row order GtspProblem expects, so the matrix plugs in
    # directly and the GA never pays a per-edge Python call.
    return GtspProblem(clusters=clusters, weight_matrix=matrix)


def term_block_tour(rotations: Sequence[PauliRotation]) -> List[SortingVertex]:
    """Baseline-style tour: per-term blocks with a shared target per term.

    Rotations are grouped by originating excitation term (ascending
    ``term_index``); inside a block every rotation uses the block's common
    support qubit when one exists, its own last support qubit otherwise.  Used
    to seed the GTSP population with the construction the prior art builds by
    hand, so target freedom can only improve on it.
    """
    blocks: dict = {}
    for index, rotation in enumerate(rotations):
        blocks.setdefault(rotation.term_index, []).append(index)
    tour: List[SortingVertex] = []
    for term_index in sorted(blocks):
        members = blocks[term_index]
        common = set(rotations[members[0]].string.support)
        for index in members[1:]:
            common &= set(rotations[index].string.support)
        shared = max(common) if common else None
        for index in members:
            support = rotations[index].string.support
            target = shared if shared is not None and shared in support else support[-1]
            tour.append((index, target))
    return tour


def result_to_tour(
    rotations: Sequence[PauliRotation], result: "SortingResult"
) -> List[SortingVertex]:
    """Re-express a :class:`SortingResult` as a ``(rotation index, target)`` tour."""
    index_of = {id(rotation): index for index, rotation in enumerate(rotations)}
    return [(index_of[id(rotation)], target) for rotation, target in result.ordered_rotations]


def _finalize_sorting(
    ordered: List[Tuple[PauliRotation, int]],
    topology: Optional[Topology],
    degraded: bool = False,
) -> SortingResult:
    """Package a targeted sequence with its all-to-all and routed costs."""
    sequence = [(rotation.string, target) for rotation, target in ordered]
    return SortingResult(
        ordered_rotations=ordered,
        cnot_count=sequence_cnot_count(sequence),
        routed_cost_estimate=(
            None if topology is None else routed_sequence_cost_estimate(sequence, topology)
        ),
        degraded=degraded,
    )


def advanced_sort(
    rotations: Sequence[PauliRotation],
    population_size: int = 24,
    generations: int = 30,
    rng: Optional[np.random.Generator] = None,
    seed_tours: Optional[Sequence[Sequence[SortingVertex]]] = None,
    topology: Optional[Topology] = None,
    max_generations: Optional[int] = None,
) -> SortingResult:
    """Order rotations and pick per-rotation targets to minimize the CNOT count.

    ``seed_tours`` are ``(rotation index, target)`` sequences injected into
    the genetic algorithm's starting population (see
    :func:`repro.optimizers.solve_gtsp`); the search result is then never
    worse, as a cycle, than the best seed.  With a ``topology`` the GTSP
    weights and the seed comparison both use the distance-weighted routed
    cost instead of the all-to-all CNOT count.  ``max_generations`` is the
    anytime GA budget (see :func:`repro.optimizers.solve_gtsp`); a truncated
    search marks the result ``degraded=True``.
    """
    rotations = list(rotations)
    if not rotations:
        return SortingResult(
            ordered_rotations=[],
            cnot_count=0,
            routed_cost_estimate=None if topology is None else 0,
        )
    rng = rng or np.random.default_rng()

    if len(rotations) == 1:
        rotation = rotations[0]
        target = rotation.string.support[-1]
        return _finalize_sorting([(rotation, target)], topology)

    problem = build_sorting_problem(rotations, topology=topology)
    initial_tours = None
    if seed_tours:
        initial_tours = [
            [(index, (index, target)) for index, target in tour] for tour in seed_tours
        ]
    solution = solve_gtsp(
        problem,
        population_size=population_size,
        generations=generations,
        rng=rng,
        initial_tours=initial_tours,
        max_generations=max_generations,
    )
    # Determine the weakest edge of the cycle and cut there (path compilation):
    # the edge with the least interface saving, or — under a topology — the
    # largest distance-weighted edge weight.
    n = len(solution.tour)
    cut_scores = []
    for position in range(n):
        _, u = solution.tour[position]
        _, v = solution.tour[(position + 1) % n]
        if topology is None:
            index_a, target_a = u
            index_b, target_b = v
            cut_scores.append(
                interface_cnot_reduction(
                    rotations[index_a].string,
                    target_a,
                    rotations[index_b].string,
                    target_b,
                )
            )
        else:
            cut_scores.append(-problem.weight(u, v))
    # Builtin min on the small Python list (np.argmin would pay an array
    # conversion); ties resolve to the first minimum exactly as argmin did.
    cut = min(range(n), key=cut_scores.__getitem__)
    ordered: List[Tuple[PauliRotation, int]] = []
    for step in range(n):
        _, (index, target) = solution.tour[(cut + 1 + step) % n]
        ordered.append((rotations[index], target))

    result = _finalize_sorting(ordered, topology, degraded=solution.degraded)
    # The weakest-edge cut minimizes the *cycle* cost, which does not strictly
    # dominate every seed evaluated as a path; compare against the seeds
    # directly so the result is never worse than one of them.  A seed that
    # wins keeps the degraded flag: the truncated search is still the reason
    # the sequence may fall short of the configured effort.
    for tour in seed_tours or ():
        seed_ordered = [(rotations[index], target) for index, target in tour]
        seed_result = _finalize_sorting(seed_ordered, topology, degraded=solution.degraded)
        if seed_result.objective() < result.objective():
            result = seed_result
    return result


def greedy_sort(
    rotations: Sequence[PauliRotation], topology: Optional[Topology] = None
) -> SortingResult:
    """Cheap nearest-neighbour alternative to the GTSP genetic algorithm.

    Starting from the first rotation (with its default target), the next
    rotation/target pair is always the one with the largest interface
    cancellation — or, under a ``topology``, the smallest distance-weighted
    cost.  Used as the fast inner cost function of the Γ simulated annealing
    and as an ablation reference for the full GTSP solver.
    """
    rotations = list(rotations)
    if not rotations:
        return SortingResult(
            ordered_rotations=[],
            cnot_count=0,
            routed_cost_estimate=None if topology is None else 0,
        )
    vertices, savings = vertex_savings(rotations)
    if topology is None:
        preference = savings  # maximize the interface saving
    else:
        # minimize cost[v] - savings[u, v]; savings is reused, not recomputed
        costs = routed_vertex_cost_vector(
            [rotations[index].string for index, _ in vertices],
            [target for _, target in vertices],
            topology.distance_matrix,
        )
        preference = savings - costs[None, :]
    vertex_rotation = np.array([index for index, _ in vertices], dtype=np.int64)
    row_of = {vertex: row for row, vertex in enumerate(vertices)}

    first = rotations[0]
    first_target = first.string.support[-1]
    ordered: List[Tuple[PauliRotation, int]] = [(first, first_target)]
    current = row_of[(0, first_target)]
    alive = vertex_rotation != 0
    # Vertices are enumerated in (rotation index, target) order, and argmax
    # returns the first maximum, so ties resolve exactly as the historical
    # nested loop did: lowest rotation index first, then lowest target.
    for _ in range(len(rotations) - 1):
        candidates = np.nonzero(alive)[0]
        best = candidates[int(np.argmax(preference[current, candidates]))]
        index, target = vertices[best]
        ordered.append((rotations[index], target))
        alive &= vertex_rotation != index
        current = best
    return _finalize_sorting(ordered, topology)


def baseline_order_cnot_count(rotations: Sequence[PauliRotation]) -> int:
    """CNOT count of the un-sorted order with default (last-support) targets.

    Used by ablation benchmarks to quantify what the GTSP sorting buys.
    """
    sequence = [
        (rotation.string, rotation.string.support[-1]) for rotation in rotations
    ]
    return sequence_cnot_count(sequence)
