"""Advanced sorting: GTSP-based ordering of Pauli rotations with free targets.

Section III-B of the paper.  Every Pauli rotation may choose its own target
qubit, and rotations from *different* excitation terms may interleave; both
degrees of freedom are folded into one generalized traveling salesman problem
whose clusters are the rotations and whose vertices are the admissible
``(rotation, target)`` pairs, with edge weights equal to (minus) the CNOT
cancellation at the interface of consecutive exponentials.  The GTSP is solved
with the genetic algorithm of :mod:`repro.optimizers.gtsp`, the resulting tour
is cut at its weakest edge and the path cost is the compiled CNOT count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import (
    best_sequence_from_cycle,
    interface_cnot_reduction,
    sequence_cnot_count,
)
from repro.core.terms_to_paulis import PauliRotation
from repro.operators import PauliString
from repro.optimizers import GtspProblem, solve_gtsp

#: A GTSP vertex: (rotation index, target qubit).
SortingVertex = Tuple[int, int]


@dataclass
class SortingResult:
    """Ordered, targeted rotation sequence produced by the advanced sorting."""

    ordered_rotations: List[Tuple[PauliRotation, int]]
    cnot_count: int

    def targeted_strings(self) -> List[Tuple[PauliString, int]]:
        """The ``(PauliString, target)`` pairs in compiled order."""
        return [(rotation.string, target) for rotation, target in self.ordered_rotations]


def build_sorting_problem(rotations: Sequence[PauliRotation]) -> GtspProblem:
    """Build the GTSP instance of Sec. III-B for a list of Pauli rotations."""
    rotations = list(rotations)
    if not rotations:
        raise ValueError("cannot build a sorting problem from zero rotations")
    clusters: List[List[SortingVertex]] = []
    for index, rotation in enumerate(rotations):
        support = rotation.string.support
        if not support:
            raise ValueError("identity rotations cannot be sorted into circuits")
        clusters.append([(index, target) for target in support])

    def weight(u: SortingVertex, v: SortingVertex) -> float:
        rotation_u, target_u = rotations[u[0]], u[1]
        rotation_v, target_v = rotations[v[0]], v[1]
        return -float(
            interface_cnot_reduction(
                rotation_u.string, target_u, rotation_v.string, target_v
            )
        )

    return GtspProblem(clusters=clusters, weight=weight)


def term_block_tour(rotations: Sequence[PauliRotation]) -> List[SortingVertex]:
    """Baseline-style tour: per-term blocks with a shared target per term.

    Rotations are grouped by originating excitation term (ascending
    ``term_index``); inside a block every rotation uses the block's common
    support qubit when one exists, its own last support qubit otherwise.  Used
    to seed the GTSP population with the construction the prior art builds by
    hand, so target freedom can only improve on it.
    """
    blocks: dict = {}
    for index, rotation in enumerate(rotations):
        blocks.setdefault(rotation.term_index, []).append(index)
    tour: List[SortingVertex] = []
    for term_index in sorted(blocks):
        members = blocks[term_index]
        common = set(rotations[members[0]].string.support)
        for index in members[1:]:
            common &= set(rotations[index].string.support)
        shared = max(common) if common else None
        for index in members:
            support = rotations[index].string.support
            target = shared if shared is not None and shared in support else support[-1]
            tour.append((index, target))
    return tour


def result_to_tour(
    rotations: Sequence[PauliRotation], result: "SortingResult"
) -> List[SortingVertex]:
    """Re-express a :class:`SortingResult` as a ``(rotation index, target)`` tour."""
    index_of = {id(rotation): index for index, rotation in enumerate(rotations)}
    return [(index_of[id(rotation)], target) for rotation, target in result.ordered_rotations]


def advanced_sort(
    rotations: Sequence[PauliRotation],
    population_size: int = 24,
    generations: int = 30,
    rng: Optional[np.random.Generator] = None,
    seed_tours: Optional[Sequence[Sequence[SortingVertex]]] = None,
) -> SortingResult:
    """Order rotations and pick per-rotation targets to minimize the CNOT count.

    ``seed_tours`` are ``(rotation index, target)`` sequences injected into
    the genetic algorithm's starting population (see
    :func:`repro.optimizers.solve_gtsp`); the search result is then never
    worse, as a cycle, than the best seed.
    """
    rotations = list(rotations)
    if not rotations:
        return SortingResult(ordered_rotations=[], cnot_count=0)
    rng = rng or np.random.default_rng()

    if len(rotations) == 1:
        rotation = rotations[0]
        target = rotation.string.support[-1]
        return SortingResult(
            ordered_rotations=[(rotation, target)], cnot_count=rotation.cnot_cost
        )

    problem = build_sorting_problem(rotations)
    initial_tours = None
    if seed_tours:
        initial_tours = [
            [(index, (index, target)) for index, target in tour] for tour in seed_tours
        ]
    solution = solve_gtsp(
        problem,
        population_size=population_size,
        generations=generations,
        rng=rng,
        initial_tours=initial_tours,
    )
    # Determine the weakest edge of the cycle and cut there (path compilation).
    n = len(solution.tour)
    savings = []
    for position in range(n):
        _, (index_a, target_a) = solution.tour[position]
        _, (index_b, target_b) = solution.tour[(position + 1) % n]
        savings.append(
            interface_cnot_reduction(
                rotations[index_a].string, target_a, rotations[index_b].string, target_b
            )
        )
    cut = int(np.argmin(savings))
    ordered: List[Tuple[PauliRotation, int]] = []
    for step in range(n):
        _, (index, target) = solution.tour[(cut + 1 + step) % n]
        ordered.append((rotations[index], target))

    cnot_count = sequence_cnot_count([(r.string, t) for r, t in ordered])
    # The weakest-edge cut minimizes the *cycle* cost, which does not strictly
    # dominate every seed evaluated as a path; compare against the seeds
    # directly so the result is never worse than one of them.
    for tour in seed_tours or ():
        seed_ordered = [(rotations[index], target) for index, target in tour]
        seed_count = sequence_cnot_count([(r.string, t) for r, t in seed_ordered])
        if seed_count < cnot_count:
            ordered, cnot_count = seed_ordered, seed_count
    return SortingResult(ordered_rotations=ordered, cnot_count=cnot_count)


def greedy_sort(rotations: Sequence[PauliRotation]) -> SortingResult:
    """Cheap nearest-neighbour alternative to the GTSP genetic algorithm.

    Starting from the first rotation (with its default target), the next
    rotation/target pair is always the one with the largest interface
    cancellation.  Used as the fast inner cost function of the Γ simulated
    annealing and as an ablation reference for the full GTSP solver.
    """
    rotations = list(rotations)
    if not rotations:
        return SortingResult(ordered_rotations=[], cnot_count=0)
    remaining = set(range(1, len(rotations)))
    first = rotations[0]
    ordered: List[Tuple[PauliRotation, int]] = [(first, first.string.support[-1])]
    while remaining:
        last_string, last_target = ordered[-1][0].string, ordered[-1][1]
        best_choice = None
        best_saving = -1
        for index in remaining:
            candidate = rotations[index]
            for target in candidate.string.support:
                saving = interface_cnot_reduction(
                    last_string, last_target, candidate.string, target
                )
                if saving > best_saving:
                    best_saving = saving
                    best_choice = (index, target)
        index, target = best_choice
        ordered.append((rotations[index], target))
        remaining.remove(index)
    cnot_count = sequence_cnot_count([(r.string, t) for r, t in ordered])
    return SortingResult(ordered_rotations=ordered, cnot_count=cnot_count)


def baseline_order_cnot_count(rotations: Sequence[PauliRotation]) -> int:
    """CNOT count of the un-sorted order with default (last-support) targets.

    Used by ablation benchmarks to quantify what the GTSP sorting buys.
    """
    sequence = [
        (rotation.string, rotation.string.support[-1]) for rotation in rotations
    ]
    return sequence_cnot_count(sequence)
