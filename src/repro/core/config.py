"""Frozen configuration of the compilation flows.

:class:`CompilerConfig` replaces the loose keyword-argument soup that used to
be threaded through :class:`~repro.core.pipeline.AdvancedCompiler`,
:func:`~repro.core.pipeline.compile_advanced` and
:func:`repro.compile_molecule_ansatz`.  It is frozen (hashable), so a config
can key caches — :func:`repro.api.compile_batch` memoizes on
``(terms fingerprint, backend, config)`` — and be shared between threads and
worker processes without defensive copying.

The class lives in :mod:`repro.core` because the pipeline stages consume it;
the public import path is :mod:`repro.api`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hardware.topology import Topology


@dataclass(frozen=True)
class CompilerConfig:
    """Immutable knobs shared by every compilation backend.

    Parameters
    ----------
    use_bosonic_encoding, use_hybrid_encoding, use_gamma_search,
    use_advanced_sorting:
        Feature switches used both by the headline pipeline (all True) and the
        ablation benchmarks.
    gamma_steps:
        Simulated-annealing proposals for the Γ search (Sec. III-C).
    sorting_population, sorting_generations:
        GTSP genetic-algorithm budget for the final sorting pass (Sec. III-B).
    coloring_orders:
        Randomized greedy orders tried by the hybrid-scheduling graph coloring.
    sorting_seed_tours:
        Seed the GTSP population with the greedy and per-term-block
        constructions so the genetic search never starts worse than the known
        heuristics.  Off by default to keep results bit-identical with the
        historical pipeline.
    gamma_budget_steps, sorting_budget_generations:
        Optional per-stage *anytime budgets* (``None`` = unbounded, the
        default).  ``gamma_budget_steps`` caps the Γ simulated-annealing
        walk at that many proposals; ``sorting_budget_generations`` caps the
        GTSP genetic algorithm at that many generations.  A stage that hits
        its budget returns its best-so-far result and the compile is flagged
        ``degraded=True`` (see ``CompileResult.degraded``) instead of
        running unbounded.  Both budgets are iteration counts, not wall
        time, so degraded outputs are bit-reproducible for a fixed seed.
    seed:
        Seed of the internal random generator (every flow is deterministic for
        a fixed seed).
    baseline_pso_particles, baseline_pso_iterations:
        Budget of the baseline compiler's binary-PSO transformation search
        (``iterations=0`` keeps the identity transformation, the default).
    topology:
        Optional device :class:`~repro.hardware.topology.Topology`.  When
        set, every backend synthesizes its rotation sequence with the
        topology-steered parity ladders and attaches
        :class:`~repro.hardware.routing.RoutingMetrics` to its result, and
        the advanced sorting's GTSP weights switch to the distance-weighted
        cost matrix.  ``None`` (the default) keeps the paper's all-to-all
        accounting bit-identical.
    """

    use_bosonic_encoding: bool = True
    use_hybrid_encoding: bool = True
    use_gamma_search: bool = True
    use_advanced_sorting: bool = True
    gamma_steps: int = 40
    sorting_population: int = 24
    sorting_generations: int = 30
    coloring_orders: int = 20
    sorting_seed_tours: bool = False
    gamma_budget_steps: Optional[int] = None
    sorting_budget_generations: Optional[int] = None
    seed: Optional[int] = 0
    baseline_pso_particles: int = 10
    baseline_pso_iterations: int = 0
    topology: Optional[Topology] = None

    def __post_init__(self):
        if self.topology is not None:
            if not isinstance(self.topology, Topology):
                raise TypeError("topology must be a repro.hardware.Topology or None")
            self.topology.require_connected()
        if self.gamma_steps < 0:
            raise ValueError("gamma_steps must be non-negative")
        # The GA population constraint only binds when the GA actually runs;
        # ablation configs with advanced sorting disabled never consult it
        # (and the historical compiler accepted them).
        if self.use_advanced_sorting and self.sorting_population < 2:
            raise ValueError("sorting_population must be at least 2")
        if self.sorting_generations < 0:
            raise ValueError("sorting_generations must be non-negative")
        if self.coloring_orders < 1:
            raise ValueError("coloring_orders must be at least 1")
        if self.gamma_budget_steps is not None and self.gamma_budget_steps < 1:
            raise ValueError("gamma_budget_steps must be None or at least 1")
        if (
            self.sorting_budget_generations is not None
            and self.sorting_budget_generations < 0
        ):
            raise ValueError("sorting_budget_generations must be None or non-negative")
        if self.baseline_pso_particles < 1:
            raise ValueError("baseline_pso_particles must be at least 1")
        if self.baseline_pso_iterations < 0:
            raise ValueError("baseline_pso_iterations must be non-negative")
        if self.seed is not None and self.seed < 0:
            raise ValueError("seed must be None or non-negative")

    def replace(self, **changes) -> "CompilerConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    @property
    def fingerprint(self) -> Tuple:
        """Hashable identity of the config, used in compilation cache keys."""
        return dataclasses.astuple(self)
