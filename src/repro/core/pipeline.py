"""The full compilation and optimization pipeline of Fig. 2, as explicit stages.

Given a set of HMP2-selected excitation terms the pipeline:

1. **classify** — classifies every term as bosonic, hybrid or fermionic
   (Sec. III-A); bosonic terms compile in compressed form (2 CNOTs each, [8]);
2. **schedule_hybrid** — schedules hybrid terms with the sink/source peeling +
   graph-coloring procedure and compiles the compressible ones at 7 CNOTs each
   (Fig. 3(a)), folding the rest into the fermionic class;
3. **gamma_search** — searches a block-diagonal Γ for the advanced
   fermion-to-qubit transformation by simulated annealing (Sec. III-C);
4. **transform** — expands the fermionic class (plus folded hybrids and all
   singles) into targeted Pauli rotations under the chosen Γ;
5. **sort** — orders the rotations with the GTSP-based advanced sorting
   (Sec. III-B);
6. **account** — totals the CNOT count and the per-segment breakdown.

Every stage is an ordinary function mutating a shared :class:`StageContext`,
so ablations and experiments are *stage substitutions*
(:meth:`AdvancedPipeline.with_stage`) rather than boolean flags, and each
stage is unit-testable in isolation.  All knobs live in one frozen
:class:`~repro.core.config.CompilerConfig`.

:class:`AdvancedCompiler` and :func:`compile_advanced` remain as thin
deprecation shims over :class:`AdvancedPipeline`; new code should go through
``repro.api`` (``get_backend("advanced").compile(request)``).

The result object also knows how to emit an explicit gate-level circuit for
the fermionic segment (the compressed segments are accounted for with their
certified per-term costs, since they act on compressed registers).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

from repro.circuits import Circuit, exponential_sequence_circuit, optimize_circuit
from repro.core.advanced_sorting import (
    SortingResult,
    advanced_sort,
    baseline_order_cnot_count,
    greedy_sort,
    result_to_tour,
    term_block_tour,
)
from repro.core.config import CompilerConfig
from repro.core.gamma_search import search_block_diagonal_gamma
from repro.core.hybrid_encoding import (
    BOSONIC_TERM_CNOT_COST,
    HYBRID_TERM_CNOT_COST,
    HybridSchedule,
    classify_terms,
    schedule_hybrid_terms,
)
from repro.core.terms_to_paulis import PauliRotation, required_qubits, terms_to_rotations
from repro.transforms import LinearEncodingTransform, identity_matrix
from repro.vqe import ExcitationTerm

#: Compiles whose stages hit an anytime budget (one increment per degraded
#: stage), in the global obs registry; the ``stage.degraded`` signal of the
#: batch-robustness layer.
_STAGE_DEGRADED = get_metrics().counter("stage.degraded")


class StageFailure(RuntimeError):
    """A pipeline stage raised: the typed failure backend fallback chains key on.

    Wraps whatever a stage raised (available as ``__cause__``) with the stage
    name attached, so callers — :func:`repro.api.compile_batch` and the
    :class:`~repro.service.CompileService` fallback chains — can distinguish
    "this backend's pipeline broke on this input" (retryable on another
    backend) from input validation errors raised before any stage ran.
    """

    def __init__(self, stage: str, cause: BaseException):
        super().__init__(f"pipeline stage {stage!r} failed: {cause!r}")
        self.stage = stage

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the message as
        # the only argument and crash on the missing ``cause``; batch workers
        # ship these across the process boundary, so rebuild from parts
        # (``__cause__`` does not survive pickling either way).
        return (_restore_stage_failure, (self.stage, self.args[0]))


def _restore_stage_failure(stage: str, message: str) -> "StageFailure":
    failure = StageFailure.__new__(StageFailure)
    RuntimeError.__init__(failure, message)
    failure.stage = stage
    return failure


@dataclass
class AdvancedCompilationResult:
    """Outcome of the Fig. 2 pipeline on one excitation-term list."""

    cnot_count: int
    n_qubits: int
    bosonic_terms: List[ExcitationTerm]
    bosonic_cnot_count: int
    hybrid_schedule: HybridSchedule
    hybrid_cnot_count: int
    fermionic_terms: List[ExcitationTerm]
    fermionic_cnot_count: int
    gamma: np.ndarray
    sorting: SortingResult
    #: Wall seconds per pipeline stage, in execution order (filled by
    #: :meth:`AdvancedPipeline.run`; surfaced as ``CompileResult.stage_timings``).
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Stages whose optimizer hit its anytime budget and returned best-so-far
    #: (surfaced as ``CompileResult.degraded`` / ``degraded_stages``).
    degraded_stages: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when any stage returned a budget-truncated (best-so-far) result."""
        return bool(self.degraded_stages)

    @property
    def n_compressed_terms(self) -> int:
        return len(self.bosonic_terms) + self.hybrid_schedule.n_compressed

    def breakdown(self) -> Dict[str, int]:
        """Per-segment CNOT counts (useful in benchmark reports)."""
        return {
            "bosonic": self.bosonic_cnot_count,
            "hybrid": self.hybrid_cnot_count,
            "fermionic": self.fermionic_cnot_count,
            "total": self.cnot_count,
        }

    def fermionic_circuit(self, optimize: bool = False) -> Circuit:
        """Explicit gate-level circuit of the fermionic (uncompressed) segment."""
        if not self.sorting.ordered_rotations:
            return Circuit(max(self.n_qubits, 1))
        terms = [
            (rotation.string, rotation.angle, target)
            for rotation, target in self.sorting.ordered_rotations
        ]
        circuit = exponential_sequence_circuit(terms, n_qubits=self.n_qubits)
        return optimize_circuit(circuit) if optimize else circuit


# ----------------------------------------------------------------------
# Stage machinery
# ----------------------------------------------------------------------
@dataclass
class StageContext:
    """Mutable state shared by the pipeline stages of one compilation run.

    A stage reads the fields produced by its predecessors and writes its own;
    the ``account`` stage assembles :attr:`result`.  Custom stages swapped in
    via :meth:`AdvancedPipeline.with_stage` receive the same context.
    """

    terms: List[ExcitationTerm]
    n_qubits: int
    config: CompilerConfig
    rng: np.random.Generator
    parameters: Optional[Sequence[float]] = None
    # classify
    classes: Dict[str, List[ExcitationTerm]] = field(default_factory=dict)
    bosonic_terms: List[ExcitationTerm] = field(default_factory=list)
    bosonic_cnot_count: int = 0
    hybrid_terms: List[ExcitationTerm] = field(default_factory=list)
    fermionic_terms: List[ExcitationTerm] = field(default_factory=list)
    # schedule_hybrid
    hybrid_schedule: HybridSchedule = field(
        default_factory=lambda: HybridSchedule([], [], [], [], n_colors=0)
    )
    hybrid_cnot_count: int = 0
    # gamma_search
    term_parameters: Optional[List[float]] = None
    gamma: Optional[np.ndarray] = None
    # transform
    rotations: List[PauliRotation] = field(default_factory=list)
    # sort
    sorting: SortingResult = field(
        default_factory=lambda: SortingResult(ordered_rotations=[], cnot_count=0)
    )
    # account
    result: Optional[AdvancedCompilationResult] = None
    # filled by AdvancedPipeline.run: wall seconds per executed stage
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    # stages that hit their anytime budget (appended by the stage itself)
    degraded_stages: List[str] = field(default_factory=list)


Stage = Callable[[StageContext], None]


def classify_stage(context: StageContext) -> None:
    """Partition terms into bosonic / hybrid / fermionic and cost the bosonic ones.

    Terms of a *disabled* compressed class fold back into the fermionic path
    in their original positions: the greedy sorter and the Γ cost function are
    order-sensitive, so ablation flows must see the caller's HMP2 ordering,
    not a reshuffled one.
    """
    config = context.config
    context.classes = classify_terms(context.terms)
    context.bosonic_terms = (
        list(context.classes["bosonic"]) if config.use_bosonic_encoding else []
    )
    context.hybrid_terms = (
        list(context.classes["hybrid"]) if config.use_hybrid_encoding else []
    )
    kept = {"fermionic"}
    if not config.use_bosonic_encoding:
        kept.add("bosonic")
    if not config.use_hybrid_encoding:
        kept.add("hybrid")
    context.fermionic_terms = [
        term for term in context.terms if term.encoding_class in kept
    ]
    context.bosonic_cnot_count = BOSONIC_TERM_CNOT_COST * len(context.bosonic_terms)


def schedule_hybrid_stage(context: StageContext) -> None:
    """Sink/source peeling + graph coloring of the hybrid class (Fig. 3(a))."""
    if context.hybrid_terms:
        schedule = schedule_hybrid_terms(
            context.hybrid_terms,
            n_coloring_orders=context.config.coloring_orders,
            rng=context.rng,
        )
        context.fermionic_terms = context.fermionic_terms + list(
            schedule.uncompressed_terms
        )
    else:
        schedule = HybridSchedule([], [], [], [], n_colors=0)
    context.hybrid_schedule = schedule
    context.hybrid_cnot_count = HYBRID_TERM_CNOT_COST * schedule.n_compressed


def _resolve_term_parameters(context: StageContext) -> Optional[List[float]]:
    """Per-fermionic-term variational parameters, aligned after class folding."""
    if context.parameters is None:
        return None
    index_of = {
        id(term): context.parameters[i] for i, term in enumerate(context.terms)
    }
    return [index_of.get(id(term), 1.0) for term in context.fermionic_terms]


def gamma_search_stage(context: StageContext) -> None:
    """Simulated-annealing search of the block-diagonal Γ (Sec. III-C).

    Honors ``config.gamma_budget_steps``: a truncated walk records the stage
    in ``context.degraded_stages`` and keeps the best Γ seen so far.
    """
    context.gamma = identity_matrix(context.n_qubits)
    if not context.fermionic_terms or not context.config.use_gamma_search:
        return
    faults.fire("stage.gamma", n_terms=len(context.fermionic_terms))

    fermionic = context.fermionic_terms
    term_parameters = _resolve_term_parameters(context)

    topology = context.config.topology

    def sorting_cost(candidate_gamma: np.ndarray) -> float:
        transform = LinearEncodingTransform(candidate_gamma)
        rotations = terms_to_rotations(fermionic, transform, term_parameters)
        # With a device topology the Γ search optimizes the same
        # distance-weighted objective the sorting stage will use.
        return float(greedy_sort(rotations, topology=topology).objective())

    search = search_block_diagonal_gamma(
        fermionic,
        context.n_qubits,
        cost_function=sorting_cost,
        n_steps=context.config.gamma_steps,
        rng=context.rng,
        max_steps=context.config.gamma_budget_steps,
    )
    context.gamma = search.gamma
    if search.degraded:
        context.degraded_stages.append("gamma_search")


def transform_stage(context: StageContext) -> None:
    """Expand the fermionic class into Pauli rotations under the chosen Γ."""
    context.rotations = []
    if not context.fermionic_terms:
        return
    # Resolved here, not in gamma_search_stage, so a substituted Γ stage
    # cannot silently drop the caller's variational parameters.
    context.term_parameters = _resolve_term_parameters(context)
    transform = LinearEncodingTransform(context.gamma)
    context.rotations = terms_to_rotations(
        context.fermionic_terms, transform, context.term_parameters
    )


def sort_stage(context: StageContext) -> None:
    """GTSP advanced sorting with a greedy fallback (Sec. III-B).

    Honors ``config.sorting_budget_generations``: a truncated GA records the
    stage in ``context.degraded_stages`` and keeps the best tour seen so far.
    """
    context.sorting = SortingResult(ordered_rotations=[], cnot_count=0)
    if not context.rotations:
        return
    config = context.config
    if not config.use_advanced_sorting:
        naive_sort_stage(context)
        return
    faults.fire("stage.sort", n_rotations=len(context.rotations))
    greedy = greedy_sort(context.rotations, topology=config.topology)
    seed_tours = None
    if config.sorting_seed_tours:
        seed_tours = [
            result_to_tour(context.rotations, greedy),
            term_block_tour(context.rotations),
        ]
    sorting = advanced_sort(
        context.rotations,
        population_size=config.sorting_population,
        generations=config.sorting_generations,
        rng=context.rng,
        seed_tours=seed_tours,
        topology=config.topology,
        max_generations=config.sorting_budget_generations,
    )
    if sorting.degraded:
        # The budget was hit regardless of whether the greedy construction
        # ends up winning the comparison below: the configured search effort
        # was not spent, which is what the flag reports.
        context.degraded_stages.append("sort")
    # Both results expose the objective the sort ran under (all-to-all CNOTs,
    # or the distance-weighted routed estimate when a topology is set).
    if greedy.objective() < sorting.objective():
        sorting = greedy
    context.sorting = sorting


def naive_sort_stage(context: StageContext) -> None:
    """Ablation reference: naive term order with default (last-support) targets."""
    if not context.rotations:
        context.sorting = SortingResult(ordered_rotations=[], cnot_count=0)
        return
    naive = baseline_order_cnot_count(context.rotations)
    default_order = [
        (rotation, rotation.string.support[-1]) for rotation in context.rotations
    ]
    context.sorting = SortingResult(ordered_rotations=default_order, cnot_count=naive)


def account_stage(context: StageContext) -> None:
    """Total the per-segment CNOT counts into the final result object."""
    gamma = context.gamma if context.gamma is not None else identity_matrix(context.n_qubits)
    total = (
        context.bosonic_cnot_count
        + context.hybrid_cnot_count
        + context.sorting.cnot_count
    )
    context.result = AdvancedCompilationResult(
        cnot_count=total,
        n_qubits=context.n_qubits,
        bosonic_terms=context.bosonic_terms,
        bosonic_cnot_count=context.bosonic_cnot_count,
        hybrid_schedule=context.hybrid_schedule,
        hybrid_cnot_count=context.hybrid_cnot_count,
        fermionic_terms=context.fermionic_terms,
        fermionic_cnot_count=context.sorting.cnot_count,
        gamma=gamma,
        sorting=context.sorting,
        degraded_stages=tuple(context.degraded_stages),
    )


#: The Fig. 2 flow as an ordered list of named stages.
DEFAULT_STAGES: Tuple[Tuple[str, Stage], ...] = (
    ("classify", classify_stage),
    ("schedule_hybrid", schedule_hybrid_stage),
    ("gamma_search", gamma_search_stage),
    ("transform", transform_stage),
    ("sort", sort_stage),
    ("account", account_stage),
)


class AdvancedPipeline:
    """The paper's advanced compilation methodology as a staged pipeline.

    Parameters
    ----------
    config:
        Frozen :class:`~repro.core.config.CompilerConfig`; defaults used when
        omitted.
    stages:
        Ordered ``(name, stage)`` pairs; :data:`DEFAULT_STAGES` when omitted.
        Use :meth:`with_stage` to substitute a single stage (the ablation
        mechanism).
    """

    def __init__(
        self,
        config: Optional[CompilerConfig] = None,
        stages: Optional[Sequence[Tuple[str, Stage]]] = None,
    ):
        self.config = config if config is not None else CompilerConfig()
        self.stages: Tuple[Tuple[str, Stage], ...] = (
            tuple(stages) if stages is not None else DEFAULT_STAGES
        )

    @property
    def stage_names(self) -> List[str]:
        return [name for name, _ in self.stages]

    def with_config(self, **changes) -> "AdvancedPipeline":
        """A pipeline with the same stages and an updated config."""
        return AdvancedPipeline(self.config.replace(**changes), self.stages)

    def with_stage(self, name: str, stage: Stage) -> "AdvancedPipeline":
        """A pipeline with the named stage substituted (ablations, experiments)."""
        if name not in self.stage_names:
            raise KeyError(
                f"unknown stage {name!r}; pipeline stages are {self.stage_names}"
            )
        stages = tuple(
            (existing_name, stage if existing_name == name else existing_stage)
            for existing_name, existing_stage in self.stages
        )
        return AdvancedPipeline(self.config, stages)

    def make_context(
        self,
        terms: Sequence[ExcitationTerm],
        n_qubits: Optional[int] = None,
        parameters: Optional[Sequence[float]] = None,
    ) -> StageContext:
        """Validate inputs and build the shared context the stages mutate."""
        terms = list(terms)
        if not terms:
            raise ValueError("cannot compile an empty term list")
        if n_qubits is None:
            n_qubits = required_qubits(terms)
        return StageContext(
            terms=terms,
            n_qubits=n_qubits,
            config=self.config,
            rng=np.random.default_rng(self.config.seed),
            parameters=parameters,
        )

    def run(
        self,
        terms: Sequence[ExcitationTerm],
        n_qubits: Optional[int] = None,
        parameters: Optional[Sequence[float]] = None,
    ) -> AdvancedCompilationResult:
        """Run every stage in order and return the accounted result.

        Each stage runs under a ``pipeline.<stage>`` tracing span (a no-op
        when tracing is disabled) and its wall time is recorded in
        ``context.stage_seconds`` — cheap enough to stay always-on, so the
        result carries per-stage timings even without tracing.

        A stage that raises is re-raised wrapped in :class:`StageFailure`
        (original exception as ``__cause__``), the typed signal backend
        fallback chains retry on.  A stage that hits its anytime budget marks
        its span ``degraded=True`` and bumps the ``stage.degraded`` counter.
        """
        context = self.make_context(terms, n_qubits=n_qubits, parameters=parameters)
        tracer = get_tracer()
        with tracer.span(
            "pipeline.run", n_terms=len(context.terms), n_qubits=context.n_qubits
        ):
            for name, stage in self.stages:
                stage_start = time.perf_counter()
                already_degraded = set(context.degraded_stages)
                with tracer.span(f"pipeline.{name}") as stage_span:
                    try:
                        stage(context)
                    except StageFailure:
                        raise
                    except Exception as exc:
                        raise StageFailure(name, exc) from exc
                    for degraded_name in context.degraded_stages:
                        if degraded_name not in already_degraded:
                            stage_span.set_attribute("degraded", True)
                            _STAGE_DEGRADED.inc()
                context.stage_seconds[name] = time.perf_counter() - stage_start
        if context.result is None:
            raise RuntimeError(
                "pipeline finished without producing a result; "
                "did a stage substitution drop the 'account' stage?"
            )
        context.result.stage_seconds = dict(context.stage_seconds)
        return context.result


# ----------------------------------------------------------------------
# Deprecated entry points
# ----------------------------------------------------------------------
class AdvancedCompiler:
    """Deprecated kwarg-style front end to :class:`AdvancedPipeline`.

    Retained so existing callers keep working; new code should build a
    :class:`~repro.core.config.CompilerConfig` and use ``repro.api``
    (``get_backend("advanced")``) or :class:`AdvancedPipeline` directly.
    The constructor arguments mirror :class:`CompilerConfig` fields.
    """

    def __init__(
        self,
        use_bosonic_encoding: bool = True,
        use_hybrid_encoding: bool = True,
        use_gamma_search: bool = True,
        use_advanced_sorting: bool = True,
        gamma_steps: int = 40,
        sorting_population: int = 24,
        sorting_generations: int = 30,
        coloring_orders: int = 20,
        seed: Optional[int] = 0,
    ):
        warnings.warn(
            "AdvancedCompiler is deprecated; use repro.api.get_backend('advanced') "
            "or repro.core.AdvancedPipeline with a CompilerConfig",
            DeprecationWarning,
            stacklevel=2,
        )
        self.use_bosonic_encoding = use_bosonic_encoding
        self.use_hybrid_encoding = use_hybrid_encoding
        self.use_gamma_search = use_gamma_search
        self.use_advanced_sorting = use_advanced_sorting
        self.gamma_steps = gamma_steps
        self.sorting_population = sorting_population
        self.sorting_generations = sorting_generations
        self.coloring_orders = coloring_orders
        self.seed = seed

    def to_config(self) -> CompilerConfig:
        """The equivalent frozen config (reads the current attribute values)."""
        return CompilerConfig(
            use_bosonic_encoding=self.use_bosonic_encoding,
            use_hybrid_encoding=self.use_hybrid_encoding,
            use_gamma_search=self.use_gamma_search,
            use_advanced_sorting=self.use_advanced_sorting,
            gamma_steps=self.gamma_steps,
            sorting_population=self.sorting_population,
            sorting_generations=self.sorting_generations,
            coloring_orders=self.coloring_orders,
            seed=self.seed,
        )

    def compile(
        self,
        terms: Sequence[ExcitationTerm],
        n_qubits: Optional[int] = None,
        parameters: Optional[Sequence[float]] = None,
    ) -> AdvancedCompilationResult:
        """Run the full Fig. 2 flow on an excitation-term list."""
        return AdvancedPipeline(self.to_config()).run(
            terms, n_qubits=n_qubits, parameters=parameters
        )


def compile_advanced(
    terms: Sequence[ExcitationTerm],
    n_qubits: Optional[int] = None,
    seed: Optional[int] = 0,
    **options,
) -> AdvancedCompilationResult:
    """Deprecated convenience wrapper over :class:`AdvancedPipeline`.

    Prefer ``get_backend("advanced").compile(request)`` from :mod:`repro.api`.
    """
    warnings.warn(
        "compile_advanced is deprecated; use repro.api.get_backend('advanced') "
        "or repro.core.AdvancedPipeline",
        DeprecationWarning,
        stacklevel=2,
    )
    config = CompilerConfig(seed=seed, **options)
    return AdvancedPipeline(config).run(terms, n_qubits=n_qubits)
