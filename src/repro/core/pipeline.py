"""The full compilation and optimization pipeline of Fig. 2.

Given a set of HMP2-selected excitation terms the pipeline:

1. classifies every term as bosonic, hybrid or fermionic (Sec. III-A);
2. compiles bosonic terms in compressed form (2 CNOTs each, [8]);
3. schedules hybrid terms with the sink/source peeling + graph-coloring
   procedure and compiles the compressible ones at 7 CNOTs each (Fig. 3(a)),
   folding the rest into the fermionic class;
4. compiles the fermionic class (plus folded hybrids and all singles) with the
   advanced fermion-to-qubit transformation — a block-diagonal Γ searched by
   simulated annealing — and the GTSP-based advanced sorting;
5. reports the total CNOT count and the per-segment breakdown.

The result object also knows how to emit an explicit gate-level circuit for
the fermionic segment (the compressed segments are accounted for with their
certified per-term costs, since they act on compressed registers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import Circuit, exponential_sequence_circuit, optimize_circuit
from repro.core.advanced_sorting import SortingResult, advanced_sort, greedy_sort
from repro.core.gamma_search import GammaSearchResult, search_block_diagonal_gamma
from repro.core.hybrid_encoding import (
    BOSONIC_TERM_CNOT_COST,
    HYBRID_TERM_CNOT_COST,
    HybridSchedule,
    classify_terms,
    schedule_hybrid_terms,
)
from repro.core.terms_to_paulis import required_qubits, terms_to_rotations
from repro.transforms import LinearEncodingTransform, identity_matrix
from repro.vqe import ExcitationTerm


@dataclass
class AdvancedCompilationResult:
    """Outcome of the Fig. 2 pipeline on one excitation-term list."""

    cnot_count: int
    n_qubits: int
    bosonic_terms: List[ExcitationTerm]
    bosonic_cnot_count: int
    hybrid_schedule: HybridSchedule
    hybrid_cnot_count: int
    fermionic_terms: List[ExcitationTerm]
    fermionic_cnot_count: int
    gamma: np.ndarray
    sorting: SortingResult

    @property
    def n_compressed_terms(self) -> int:
        return len(self.bosonic_terms) + self.hybrid_schedule.n_compressed

    def breakdown(self) -> Dict[str, int]:
        """Per-segment CNOT counts (useful in benchmark reports)."""
        return {
            "bosonic": self.bosonic_cnot_count,
            "hybrid": self.hybrid_cnot_count,
            "fermionic": self.fermionic_cnot_count,
            "total": self.cnot_count,
        }

    def fermionic_circuit(self, optimize: bool = False) -> Circuit:
        """Explicit gate-level circuit of the fermionic (uncompressed) segment."""
        if not self.sorting.ordered_rotations:
            return Circuit(max(self.n_qubits, 1))
        terms = [
            (rotation.string, rotation.angle, target)
            for rotation, target in self.sorting.ordered_rotations
        ]
        circuit = exponential_sequence_circuit(terms, n_qubits=self.n_qubits)
        return optimize_circuit(circuit) if optimize else circuit


class AdvancedCompiler:
    """The paper's advanced compilation and optimization methodology.

    Parameters
    ----------
    use_bosonic_encoding, use_hybrid_encoding, use_gamma_search,
    use_advanced_sorting:
        Feature switches used both by the headline pipeline (all True) and the
        ablation benchmarks.
    gamma_steps:
        Simulated-annealing proposals for the Γ search.
    sorting_population, sorting_generations:
        GTSP genetic-algorithm budget for the final sorting pass.
    seed:
        Seed of the internal random generator (the pipeline is deterministic
        for a fixed seed).
    """

    def __init__(
        self,
        use_bosonic_encoding: bool = True,
        use_hybrid_encoding: bool = True,
        use_gamma_search: bool = True,
        use_advanced_sorting: bool = True,
        gamma_steps: int = 40,
        sorting_population: int = 24,
        sorting_generations: int = 30,
        coloring_orders: int = 20,
        seed: Optional[int] = 0,
    ):
        self.use_bosonic_encoding = use_bosonic_encoding
        self.use_hybrid_encoding = use_hybrid_encoding
        self.use_gamma_search = use_gamma_search
        self.use_advanced_sorting = use_advanced_sorting
        self.gamma_steps = gamma_steps
        self.sorting_population = sorting_population
        self.sorting_generations = sorting_generations
        self.coloring_orders = coloring_orders
        self.seed = seed

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def compile(
        self,
        terms: Sequence[ExcitationTerm],
        n_qubits: Optional[int] = None,
        parameters: Optional[Sequence[float]] = None,
    ) -> AdvancedCompilationResult:
        """Run the full Fig. 2 flow on an excitation-term list."""
        terms = list(terms)
        if not terms:
            raise ValueError("cannot compile an empty term list")
        if n_qubits is None:
            n_qubits = required_qubits(terms)
        rng = self._rng()

        classes = classify_terms(terms)
        bosonic = classes["bosonic"] if self.use_bosonic_encoding else []
        hybrid = classes["hybrid"] if self.use_hybrid_encoding else []
        fermionic = list(classes["fermionic"])
        if not self.use_bosonic_encoding:
            fermionic.extend(classes["bosonic"])
        if not self.use_hybrid_encoding:
            fermionic.extend(classes["hybrid"])

        bosonic_cnots = BOSONIC_TERM_CNOT_COST * len(bosonic)

        if hybrid:
            schedule = schedule_hybrid_terms(
                hybrid, n_coloring_orders=self.coloring_orders, rng=rng
            )
            fermionic.extend(schedule.uncompressed_terms)
        else:
            schedule = HybridSchedule([], [], [], [], n_colors=0)
        hybrid_cnots = HYBRID_TERM_CNOT_COST * schedule.n_compressed

        gamma = identity_matrix(n_qubits)
        sorting = SortingResult(ordered_rotations=[], cnot_count=0)
        if fermionic:
            term_parameters = None
            if parameters is not None:
                index_of = {id(term): parameters[i] for i, term in enumerate(terms)}
                term_parameters = [index_of.get(id(term), 1.0) for term in fermionic]

            def sorting_cost(candidate_gamma: np.ndarray) -> float:
                transform = LinearEncodingTransform(candidate_gamma)
                rotations = terms_to_rotations(fermionic, transform, term_parameters)
                return float(greedy_sort(rotations).cnot_count)

            if self.use_gamma_search:
                search = search_block_diagonal_gamma(
                    fermionic,
                    n_qubits,
                    cost_function=sorting_cost,
                    n_steps=self.gamma_steps,
                    rng=rng,
                )
                gamma = search.gamma

            transform = LinearEncodingTransform(gamma)
            rotations = terms_to_rotations(fermionic, transform, term_parameters)
            if self.use_advanced_sorting:
                sorting = advanced_sort(
                    rotations,
                    population_size=self.sorting_population,
                    generations=self.sorting_generations,
                    rng=rng,
                )
                greedy = greedy_sort(rotations)
                if greedy.cnot_count < sorting.cnot_count:
                    sorting = greedy
            else:
                sorting = greedy_sort(rotations)
                # Without advanced sorting, fall back to the naive order with
                # default targets (the ablation reference).
                from repro.core.advanced_sorting import baseline_order_cnot_count

                naive = baseline_order_cnot_count(rotations)
                default_order = [
                    (rotation, rotation.string.support[-1]) for rotation in rotations
                ]
                sorting = SortingResult(ordered_rotations=default_order, cnot_count=naive)

        total = bosonic_cnots + hybrid_cnots + sorting.cnot_count
        return AdvancedCompilationResult(
            cnot_count=total,
            n_qubits=n_qubits,
            bosonic_terms=bosonic,
            bosonic_cnot_count=bosonic_cnots,
            hybrid_schedule=schedule,
            hybrid_cnot_count=hybrid_cnots,
            fermionic_terms=fermionic,
            fermionic_cnot_count=sorting.cnot_count,
            gamma=gamma,
            sorting=sorting,
        )


def compile_advanced(
    terms: Sequence[ExcitationTerm],
    n_qubits: Optional[int] = None,
    seed: Optional[int] = 0,
    **options,
) -> AdvancedCompilationResult:
    """Convenience wrapper: run :class:`AdvancedCompiler` with default settings."""
    return AdvancedCompiler(seed=seed, **options).compile(terms, n_qubits=n_qubits)
