"""Public home of :class:`CompilerConfig`.

The dataclass itself lives in :mod:`repro.core.config` so the pipeline stages
can consume it without importing the API layer; this module is the import
path user code should rely on.
"""

from repro.core.config import CompilerConfig

__all__ = ["CompilerConfig"]
