"""Default backends: adapters wrapping the four Table-I compilation flows.

Each adapter translates a :class:`~repro.api.backend.CompileRequest` into the
underlying flow's native call, times it, and normalizes the outcome into a
:class:`~repro.api.backend.CompileResult`.  All four register on import of
:mod:`repro.api`:

========================  =======  ==============================================
canonical name            alias    flow
========================  =======  ==============================================
``jordan-wigner``         ``jw``   naive Trotterization under Jordan-Wigner
``bravyi-kitaev``         ``bk``   naive Trotterization under Bravyi-Kitaev
``baseline``              ``gt``   prior-art compiler ([8], [9]; "GT" column)
``advanced``              ``adv``  the paper's staged Fig. 2 pipeline
========================  =======  ==============================================
"""

from __future__ import annotations

import time
from typing import Callable, List

import numpy as np

from repro.api.backend import CompileRequest, CompileResult, register_backend
from repro.baselines import BaselineCompiler, naive_cnot_count
from repro.core import AdvancedPipeline
from repro.transforms import (
    BravyiKitaevTransform,
    FermionQubitTransform,
    JordanWignerTransform,
)


class NaiveTransformBackend:
    """Naive Trotterized compilation under a fixed fermion-to-qubit transform.

    The JW and BK reference columns of Table I: no compression, no reordering,
    only cancellations between consecutive rotations are credited.  The flow
    reads nothing from the request config (``uses_config = False``), so cache
    entries are shared across config sweeps.
    """

    #: This backend compiles identically under every CompilerConfig.
    uses_config = False

    def __init__(
        self,
        name: str,
        transform_factory: Callable[[int], FermionQubitTransform],
    ):
        self._name = name
        self._transform_factory = transform_factory

    @property
    def name(self) -> str:
        return self._name

    def compile(self, request: CompileRequest) -> CompileResult:
        start = time.perf_counter()
        n_qubits = request.resolved_n_qubits
        count = naive_cnot_count(
            list(request.terms),
            self._transform_factory(n_qubits),
            list(request.parameters) if request.parameters is not None else None,
        )
        return CompileResult(
            backend=self._name,
            cnot_count=count,
            n_qubits=n_qubits,
            breakdown={"total": count},
            wall_time_s=time.perf_counter() - start,
        )


class BaselineBackend:
    """The prior-art compiler (bosonic compression + shared targets + PSO Γ).

    ``config.baseline_pso_iterations > 0`` runs the binary-PSO transformation
    search (seeded from ``config.seed``) before compiling; the default of 0
    compiles under the identity transformation, matching the historical
    ``BaselineCompiler()`` behavior.
    """

    name = "baseline"

    def compile(self, request: CompileRequest) -> CompileResult:
        start = time.perf_counter()
        config = request.config
        n_qubits = request.resolved_n_qubits
        terms = list(request.terms)
        compiler = BaselineCompiler(use_bosonic_encoding=config.use_bosonic_encoding)
        if config.baseline_pso_iterations > 0:
            compiler.search_transform(
                terms,
                n_qubits=n_qubits,
                n_particles=config.baseline_pso_particles,
                iterations=config.baseline_pso_iterations,
                rng=np.random.default_rng(config.seed),
            )
        result = compiler.compile(
            terms,
            n_qubits=n_qubits,
            parameters=list(request.parameters) if request.parameters is not None else None,
        )
        return CompileResult(
            backend=self.name,
            cnot_count=result.cnot_count,
            n_qubits=n_qubits,
            breakdown={
                "bosonic": result.bosonic_cnot_count,
                "rotations": result.rotation_cnot_count,
                "total": result.cnot_count,
            },
            wall_time_s=time.perf_counter() - start,
            details=result,
        )


class AdvancedBackend:
    """The paper's advanced staged pipeline (Fig. 2)."""

    name = "advanced"

    def compile(self, request: CompileRequest) -> CompileResult:
        start = time.perf_counter()
        pipeline = AdvancedPipeline(request.config)
        result = pipeline.run(
            list(request.terms),
            n_qubits=request.resolved_n_qubits,
            parameters=list(request.parameters) if request.parameters is not None else None,
        )
        return CompileResult(
            backend=self.name,
            cnot_count=result.cnot_count,
            n_qubits=result.n_qubits,
            breakdown=result.breakdown(),
            wall_time_s=time.perf_counter() - start,
            details=result,
        )


#: Names every fresh registry gets, in Table-I column order.
DEFAULT_BACKEND_NAMES: List[str] = [
    "jordan-wigner",
    "bravyi-kitaev",
    "baseline",
    "advanced",
]


def register_default_backends(replace: bool = False) -> None:
    """(Re-)register the four Table-I flows under their canonical names."""
    register_backend(
        NaiveTransformBackend("jordan-wigner", JordanWignerTransform),
        aliases=("jw",),
        replace=replace,
    )
    register_backend(
        NaiveTransformBackend("bravyi-kitaev", BravyiKitaevTransform),
        aliases=("bk",),
        replace=replace,
    )
    register_backend(BaselineBackend(), aliases=("gt",), replace=replace)
    register_backend(AdvancedBackend(), aliases=("adv",), replace=replace)


register_default_backends(replace=True)
