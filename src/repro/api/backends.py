"""Default backends: adapters wrapping the four Table-I compilation flows.

Each adapter translates a :class:`~repro.api.backend.CompileRequest` into the
underlying flow's native call, times it, and normalizes the outcome into a
:class:`~repro.api.backend.CompileResult`.  All four register on import of
:mod:`repro.api`:

========================  =======  ==============================================
canonical name            alias    flow
========================  =======  ==============================================
``jordan-wigner``         ``jw``   naive Trotterization under Jordan-Wigner
``bravyi-kitaev``         ``bk``   naive Trotterization under Bravyi-Kitaev
``baseline``              ``gt``   prior-art compiler ([8], [9]; "GT" column)
``advanced``              ``adv``  the paper's staged Fig. 2 pipeline
========================  =======  ==============================================
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.backend import CompileRequest, CompileResult, register_backend
from repro.obs.tracer import get_tracer
from repro.baselines import BaselineCompiler, naive_rotation_sequence
from repro.circuits import optimize_circuit, sequence_cnot_count
from repro.core import AdvancedPipeline
from repro.core.config import CompilerConfig
from repro.hardware import (
    RoutingMetrics,
    RoutingResult,
    routed_exponential_sequence_circuit,
)
from repro.operators import PauliString
from repro.transforms import (
    BravyiKitaevTransform,
    FermionQubitTransform,
    JordanWignerTransform,
)


def sequence_routing_metrics(
    sequence: Sequence[Tuple[PauliString, float, Optional[int]]],
    config: CompilerConfig,
) -> Optional[RoutingMetrics]:
    """Route a compiled rotation sequence against ``config.topology``.

    Synthesizes the sequence with the topology-steered parity ladders (zero
    SWAPs, identity permutation), realizes the gate-level interface
    cancellations with the peephole optimizer (which never moves a gate onto
    new qubits, so legality is preserved), and summarizes the executable
    circuit.  Returns ``None`` when the config carries no topology.
    """
    topology = config.topology
    if topology is None:
        return None
    circuit = optimize_circuit(routed_exponential_sequence_circuit(sequence, topology))
    n_logical = sequence[0][0].n_qubits if sequence else topology.n_qubits
    result = RoutingResult(
        circuit=circuit,
        topology=topology,
        initial_layout=tuple(range(n_logical)),
        final_layout=tuple(range(n_logical)),
        n_swaps=0,
    )
    return result.metrics()


def compiled_rotation_sequence(
    result: CompileResult,
    terms: Sequence,
    parameters: Optional[Sequence[float]] = None,
) -> List[Tuple[PauliString, float, Optional[int]]]:
    """The ``(string, angle, target)`` sequence behind a default backend's result.

    One place (shared by the routing benchmark, the routed-Table-I example and
    the differential tests) that knows how each Table-I flow exposes its
    compiled rotation order, keyed on ``result.backend``.
    """
    if result.backend == "jordan-wigner":
        return naive_rotation_sequence(
            list(terms), JordanWignerTransform(result.n_qubits), parameters
        )
    if result.backend == "bravyi-kitaev":
        return naive_rotation_sequence(
            list(terms), BravyiKitaevTransform(result.n_qubits), parameters
        )
    if result.backend == "baseline":
        return list(result.details.ordered_exponentials)
    if result.backend == "advanced":
        return [
            (rotation.string, rotation.angle, target)
            for rotation, target in result.details.sorting.ordered_rotations
        ]
    raise ValueError(
        f"no rotation-sequence extraction rule for backend {result.backend!r}"
    )


class NaiveTransformBackend:
    """Naive Trotterized compilation under a fixed fermion-to-qubit transform.

    The JW and BK reference columns of Table I: no compression, no reordering,
    only cancellations between consecutive rotations are credited.  The flow
    reads nothing from the request config except the device topology
    (``uses_config = False``; the cache key re-adds the topology), so cache
    entries are shared across sweeps of the pipeline knobs.
    """

    #: Apart from the topology (kept in the cache key), this backend
    #: compiles identically under every CompilerConfig.
    uses_config = False

    def __init__(
        self,
        name: str,
        transform_factory: Callable[[int], FermionQubitTransform],
    ):
        self._name = name
        self._transform_factory = transform_factory

    @property
    def name(self) -> str:
        return self._name

    def compile(self, request: CompileRequest) -> CompileResult:
        start = time.perf_counter()
        n_qubits = request.resolved_n_qubits
        with get_tracer().span(
            f"compile.{self._name}", n_terms=len(request.terms), n_qubits=n_qubits
        ) as compile_span:
            transform = self._transform_factory(n_qubits)
            parameters = (
                list(request.parameters) if request.parameters is not None else None
            )
            # One Trotterization serves both the count and the routed synthesis
            # (naive_cnot_count is exactly the analytic cost of this sequence).
            sequence = naive_rotation_sequence(
                list(request.terms), transform, parameters
            )
            count = sequence_cnot_count(
                [(string, target) for string, _, target in sequence]
            )
            routing = None
            if request.config.topology is not None:
                routing = sequence_routing_metrics(sequence, request.config)
            compile_span.set_attribute("cnot_count", count)
        return CompileResult(
            backend=self._name,
            cnot_count=count,
            n_qubits=n_qubits,
            breakdown={"total": count},
            wall_time_s=time.perf_counter() - start,
            routing=routing,
        )


class BaselineBackend:
    """The prior-art compiler (bosonic compression + shared targets + PSO Γ).

    ``config.baseline_pso_iterations > 0`` runs the binary-PSO transformation
    search (seeded from ``config.seed``) before compiling; the default of 0
    compiles under the identity transformation, matching the historical
    ``BaselineCompiler()`` behavior.
    """

    name = "baseline"

    def compile(self, request: CompileRequest) -> CompileResult:
        start = time.perf_counter()
        config = request.config
        n_qubits = request.resolved_n_qubits
        terms = list(request.terms)
        with get_tracer().span(
            "compile.baseline", n_terms=len(terms), n_qubits=n_qubits
        ) as compile_span:
            compiler = BaselineCompiler(
                use_bosonic_encoding=config.use_bosonic_encoding
            )
            if config.baseline_pso_iterations > 0:
                compiler.search_transform(
                    terms,
                    n_qubits=n_qubits,
                    n_particles=config.baseline_pso_particles,
                    iterations=config.baseline_pso_iterations,
                    rng=np.random.default_rng(config.seed),
                )
            result = compiler.compile(
                terms,
                n_qubits=n_qubits,
                parameters=list(request.parameters)
                if request.parameters is not None
                else None,
            )
            routing = None
            if config.topology is not None:
                routing = sequence_routing_metrics(
                    list(result.ordered_exponentials), config
                )
            compile_span.set_attribute("cnot_count", result.cnot_count)
        return CompileResult(
            backend=self.name,
            cnot_count=result.cnot_count,
            n_qubits=n_qubits,
            breakdown={
                "bosonic": result.bosonic_cnot_count,
                "rotations": result.rotation_cnot_count,
                "total": result.cnot_count,
            },
            wall_time_s=time.perf_counter() - start,
            details=result,
            routing=routing,
        )


class AdvancedBackend:
    """The paper's advanced staged pipeline (Fig. 2)."""

    name = "advanced"

    def compile(self, request: CompileRequest) -> CompileResult:
        start = time.perf_counter()
        with get_tracer().span(
            "compile.advanced",
            n_terms=len(request.terms),
            n_qubits=request.resolved_n_qubits,
        ) as compile_span:
            pipeline = AdvancedPipeline(request.config)
            result = pipeline.run(
                list(request.terms),
                n_qubits=request.resolved_n_qubits,
                parameters=list(request.parameters)
                if request.parameters is not None
                else None,
            )
            routing = None
            if request.config.topology is not None:
                sequence = [
                    (rotation.string, rotation.angle, target)
                    for rotation, target in result.sorting.ordered_rotations
                ]
                routing = sequence_routing_metrics(sequence, request.config)
            compile_span.set_attribute("cnot_count", result.cnot_count)
            if result.degraded:
                compile_span.set_attribute("degraded", True)
        return CompileResult(
            backend=self.name,
            cnot_count=result.cnot_count,
            n_qubits=result.n_qubits,
            breakdown=result.breakdown(),
            wall_time_s=time.perf_counter() - start,
            details=result,
            routing=routing,
            stage_timings=dict(result.stage_seconds),
            degraded=result.degraded,
            degraded_stages=result.degraded_stages if result.degraded else None,
        )


#: Names every fresh registry gets, in Table-I column order.
DEFAULT_BACKEND_NAMES: List[str] = [
    "jordan-wigner",
    "bravyi-kitaev",
    "baseline",
    "advanced",
]


def register_default_backends(replace: bool = False) -> None:
    """(Re-)register the four Table-I flows under their canonical names."""
    register_backend(
        NaiveTransformBackend("jordan-wigner", JordanWignerTransform),
        aliases=("jw",),
        replace=replace,
    )
    register_backend(
        NaiveTransformBackend("bravyi-kitaev", BravyiKitaevTransform),
        aliases=("bk",),
        replace=replace,
    )
    register_backend(BaselineBackend(), aliases=("gt",), replace=replace)
    register_backend(AdvancedBackend(), aliases=("adv",), replace=replace)


register_default_backends(replace=True)
