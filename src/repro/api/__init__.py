"""Unified compilation API: backends, registry, staged config, batch service.

This package is the front door for compiling excitation-term lists.  The four
Table-I flows (and any future encoding) hide behind one protocol:

>>> from repro.api import CompileRequest, CompilerConfig, get_backend
>>> request = CompileRequest(terms=terms, config=CompilerConfig(seed=0))
>>> result = get_backend("advanced").compile(request)
>>> result.cnot_count, result.breakdown, result.backend, result.wall_time_s

Batches of requests, with memoization and optional process parallelism:

>>> from repro.api import CompileCache, compile_batch
>>> cache = CompileCache()
>>> batch = compile_batch(requests, backends=("jw", "bk", "gt", "advanced"),
...                       workers=4, cache=cache)

See :mod:`repro.api.backend` for the protocol/registry,
:mod:`repro.api.backends` for the default adapters and
:mod:`repro.api.batch` for the batch service.
"""

from repro.api.backend import (
    BackendRegistrationError,
    CompileRequest,
    CompileResult,
    CompilerBackend,
    available_backends,
    canonical_backend_name,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.api.backends import (
    DEFAULT_BACKEND_NAMES,
    AdvancedBackend,
    BaselineBackend,
    NaiveTransformBackend,
    compiled_rotation_sequence,
    register_default_backends,
)
from repro.api.batch import (
    FALLBACK_RETRYABLE,
    BackendResults,
    BatchReport,
    BatchResult,
    CompileCache,
    FallbackRecord,
    JobFailure,
    cache_key_digest,
    compile_batch,
)
from repro.api.checkpoint import BatchCheckpoint
from repro.api.config import CompilerConfig
from repro.core.pipeline import StageFailure

__all__ = [
    "BackendRegistrationError",
    "BackendResults",
    "BatchCheckpoint",
    "BatchReport",
    "BatchResult",
    "CompileCache",
    "FALLBACK_RETRYABLE",
    "FallbackRecord",
    "JobFailure",
    "StageFailure",
    "CompileRequest",
    "CompileResult",
    "CompilerBackend",
    "CompilerConfig",
    "DEFAULT_BACKEND_NAMES",
    "AdvancedBackend",
    "BaselineBackend",
    "NaiveTransformBackend",
    "available_backends",
    "cache_key_digest",
    "canonical_backend_name",
    "compile_batch",
    "compiled_rotation_sequence",
    "get_backend",
    "register_backend",
    "register_default_backends",
    "unregister_backend",
]
