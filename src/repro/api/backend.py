"""The unified compilation interface: requests, results, protocol, registry.

Every Table-I compilation flow — Jordan-Wigner, Bravyi-Kitaev, the prior-art
baseline and the advanced Fig. 2 pipeline — is exposed as a
:class:`CompilerBackend`: an object with a ``name`` and a
``compile(request) -> CompileResult`` method.  Backends are looked up by
string key in a process-wide registry, so benchmarks, examples and the batch
service iterate over flows uniformly instead of hand-wiring each entry point:

>>> from repro.api import CompileRequest, get_backend
>>> result = get_backend("advanced").compile(CompileRequest(terms=terms))
>>> result.cnot_count, result.breakdown["fermionic"]

New encodings plug in by registering a backend; no caller changes needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.api.config import CompilerConfig
from repro.core.terms_to_paulis import required_qubits
from repro.hardware.routing import RoutingMetrics
from repro.vqe import ExcitationTerm


@dataclass(frozen=True)
class CompileRequest:
    """One compilation job: an excitation-term list plus its configuration.

    Frozen and hashable so identical requests deduplicate in caches.  The
    ``importance`` metadata of the terms is deliberately excluded from the
    :attr:`fingerprint` — it never influences compilation, only term
    selection, which happens before a request is built.
    """

    terms: Tuple[ExcitationTerm, ...]
    n_qubits: Optional[int] = None
    parameters: Optional[Tuple[float, ...]] = None
    config: CompilerConfig = field(default_factory=CompilerConfig)

    def __post_init__(self):
        object.__setattr__(self, "terms", tuple(self.terms))
        if not self.terms:
            raise ValueError("a compile request needs at least one excitation term")
        if self.parameters is not None:
            parameters = tuple(float(p) for p in self.parameters)
            if len(parameters) != len(self.terms):
                raise ValueError("one parameter per excitation term is required")
            object.__setattr__(self, "parameters", parameters)
        if not isinstance(self.config, CompilerConfig):
            raise TypeError("config must be a CompilerConfig")
        topology = self.config.topology
        if topology is not None and topology.n_qubits < self.resolved_n_qubits:
            raise ValueError(
                f"topology {topology.name!r} has {topology.n_qubits} qubits but "
                f"the request needs {self.resolved_n_qubits}; pick a topology "
                f"with at least {self.resolved_n_qubits} qubits"
            )

    @property
    def resolved_n_qubits(self) -> int:
        """Explicit register size, or the smallest one covering every term."""
        if self.n_qubits is not None:
            return self.n_qubits
        return required_qubits(list(self.terms))

    @property
    def input_fingerprint(self) -> Tuple:
        """Hashable identity of the compilation input, config excluded.

        Cache key for backends that declare ``uses_config = False`` (the
        naive JW/BK flows): their result depends only on the terms, so config
        sweeps can share one cache entry per term list.
        """
        terms_key = tuple((term.creation, term.annihilation) for term in self.terms)
        return (terms_key, self.n_qubits, self.parameters)

    @property
    def fingerprint(self) -> Tuple:
        """Hashable identity of the compilation input (backend-independent)."""
        return self.input_fingerprint + (self.config.fingerprint,)


@dataclass(frozen=True)
class CompileResult:
    """Common result shape every backend returns.

    ``details`` carries the backend's native result object (e.g. an
    :class:`~repro.core.pipeline.AdvancedCompilationResult`) for callers that
    need flow-specific data; it is excluded from equality so results cache and
    compare on the headline numbers.  ``routing`` holds the
    :class:`~repro.hardware.routing.RoutingMetrics` of the synthesized
    circuit when the request's config carried a topology (``None``
    otherwise); for the advanced flow the routed circuit covers the
    fermionic segment — compressed bosonic/hybrid segments are
    cost-accounted, not synthesized.  ``stage_timings`` maps pipeline stage
    name → wall seconds for staged flows (the advanced pipeline), ``None``
    for single-step flows; ``run_table1 --trace`` and the obs span tree
    report from it.

    ``degraded`` is True when any optimizer stage hit its anytime budget
    (``CompilerConfig.gamma_budget_steps`` / ``sorting_budget_generations``)
    and returned its best-so-far answer; ``degraded_stages`` names the
    truncated stages.  A degraded result is still a valid, verifiable
    circuit — the flag reports that the configured search effort was cut
    short, not that the output is wrong.  Both are excluded from equality:
    a degraded compile of the same request may legitimately report a
    different (no better) CNOT count, and equality keeps meaning "same
    headline numbers".
    """

    backend: str
    cnot_count: int
    n_qubits: int
    breakdown: Dict[str, int] = field(compare=False, default_factory=dict)
    wall_time_s: float = field(compare=False, default=0.0)
    details: Any = field(compare=False, default=None, repr=False)
    routing: Optional["RoutingMetrics"] = field(compare=False, default=None)
    stage_timings: Optional[Dict[str, float]] = field(
        compare=False, default=None, repr=False
    )
    degraded: bool = field(compare=False, default=False)
    degraded_stages: Optional[Tuple[str, ...]] = field(compare=False, default=None)


@runtime_checkable
class CompilerBackend(Protocol):
    """Anything that compiles a :class:`CompileRequest` into a :class:`CompileResult`."""

    @property
    def name(self) -> str:
        """Canonical registry key of the backend."""
        ...

    def compile(self, request: CompileRequest) -> CompileResult:
        ...


class BackendRegistrationError(ValueError):
    """Raised when a backend name (or alias) is already taken."""


_REGISTRY: Dict[str, CompilerBackend] = {}
_CANONICAL: Dict[str, str] = {}  # alias -> canonical name (canonical maps to itself)


def register_backend(
    backend: CompilerBackend,
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> CompilerBackend:
    """Register a backend under its ``name`` plus optional aliases.

    Re-registering a taken name raises :class:`BackendRegistrationError`
    unless ``replace=True``.  Returns the backend so the call can be used as a
    statement or chained.
    """
    names = (backend.name,) + tuple(aliases)
    if not replace:
        taken = [key for key in names if key in _CANONICAL]
        if taken:
            raise BackendRegistrationError(
                f"backend name(s) already registered: {taken}; "
                "pass replace=True to override"
            )
    _REGISTRY[backend.name] = backend
    for key in names:
        _CANONICAL[key] = backend.name
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend and every alias pointing at it (mostly for tests)."""
    canonical = _CANONICAL.get(name, name)
    _REGISTRY.pop(canonical, None)
    for key in [key for key, value in _CANONICAL.items() if value == canonical]:
        del _CANONICAL[key]


def get_backend(name: str) -> CompilerBackend:
    """Look a backend up by canonical name or alias."""
    canonical = _CANONICAL.get(name)
    if canonical is None:
        raise KeyError(
            f"unknown backend {name!r}; available: {available_backends()}"
        )
    return _REGISTRY[canonical]


def canonical_backend_name(name: str) -> str:
    """Resolve an alias to the canonical registry name (used in cache keys)."""
    return get_backend(name).name


def available_backends() -> List[str]:
    """Sorted canonical names of every registered backend."""
    return sorted(_REGISTRY)
