"""Crash-safe batch checkpoint journal for resumable :func:`compile_batch` runs.

A :class:`BatchCheckpoint` records each completed batch job — keyed by the
job's :data:`~repro.api.batch.CacheKey` digest — in an append-only on-disk
journal, so a batch killed mid-run (crash, OOM, SIGKILL, chaos ``kill``
fault) resumes by recompiling only the jobs whose records are missing.  The
journal rides on :class:`repro.service.PersistentCompileCache`, inheriting
its write discipline wholesale:

* **atomic records** — every record is written to a tempfile and published
  with ``os.replace`` + fsync, so a kill mid-write never leaves a torn
  record visible (at worst the job is re-run, never mis-served);
* **versioning** — records carry the
  :func:`~repro.service.cache.golden_version_stamp`, so a checkpoint taken
  before a change that moves compilation output is wholesale-invalidated
  rather than silently resumed into wrong results;
* **key verification** — each record stores its full key and is verified on
  read, so a digest collision or a hand-edited journal cannot serve the
  wrong job's result.

The journal is a *batch artifact*, not a semantic cache: a record means
"this job finished, with this result".  In particular a job completed by a
fallback backend is journaled under the job's primary key — resuming serves
the identical result instead of retrying the failed primary backend, which
is what makes resume bit-identical to the uninterrupted run.

The module imports :mod:`repro.service.cache` lazily (inside methods):
``repro.api.batch`` imports this module, and ``repro.service`` imports
``repro.api.batch``, so a module-level import here would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro import faults
from repro.api.backend import CompileResult
from repro.api.batch import CacheKey, cache_key_digest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.cache import PersistentCompileCache


class BatchCheckpoint:
    """Append-only journal of completed batch jobs under a directory.

    Parameters
    ----------
    directory:
        Journal root, created if missing.  Safe to share between a crashed
        run and its resume; every record write is atomic.
    version:
        Version stamp accepted on read and written into new records.
        Defaults to :func:`~repro.service.cache.golden_version_stamp`, so
        stale checkpoints from a different code state are ignored (their
        jobs recompile) instead of resumed into wrong results.

    The ``checkpoint.write`` fault site fires on every :meth:`record` (before
    the disk write), so chaos tests can kill or fail a run exactly at the
    journaling boundary.
    """

    def __init__(self, directory, version: Optional[str] = None):
        from repro.service.cache import PersistentCompileCache  # late: cycle

        self._cache: "PersistentCompileCache" = PersistentCompileCache(
            directory, version=version
        )
        #: Records served to the current batch (digest → result); lets one
        #: batch look records up repeatedly without re-reading disk.
        self._seen: Dict[str, CompileResult] = {}

    @property
    def directory(self):
        """The journal root path."""
        return self._cache.root

    @property
    def version(self) -> str:
        """Version stamp new records are written with."""
        return self._cache.version

    def lookup(self, key: CacheKey) -> Optional[CompileResult]:
        """The journaled result of a completed job, or ``None``.

        A hit means the job finished in a previous (possibly killed) run
        under the same version stamp; the stored result is returned verbatim
        so a resumed batch is bit-identical to an uninterrupted one.
        """
        digest = cache_key_digest(key)
        cached = self._seen.get(digest)
        if cached is not None:
            return cached
        result = self._cache.peek(key)
        if result is not None:
            self._seen[digest] = result
        return result

    def record(self, key: CacheKey, result: CompileResult) -> None:
        """Atomically journal ``key``'s job as completed with ``result``.

        Raises ``OSError`` on write failure (full disk, injected
        ``checkpoint.write`` fault) — the caller decides whether to degrade
        (the job completed; only its resumability is lost) or abort.
        """
        faults.fire("checkpoint.write", digest=cache_key_digest(key))
        self._cache.put(key, result)
        self._seen[cache_key_digest(key)] = result

    def __contains__(self, key: CacheKey) -> bool:
        return self.lookup(key) is not None

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> int:
        """Drop every record (any version); return the number removed."""
        self._seen.clear()
        return self._cache.clear()
