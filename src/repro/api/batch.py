"""Batch compilation service: memoized, optionally parallel, multi-backend.

:func:`compile_batch` runs many :class:`~repro.api.backend.CompileRequest`
jobs across one or more backends in a single call.  Identical jobs — same
terms fingerprint, backend and config — are compiled once and served from a
:class:`CompileCache`, which can be kept across calls so warm batches skip
recompilation entirely.  With ``workers > 1`` the outstanding jobs fan out
over a process pool (every flow is CPU-bound pure Python, so threads would
not help).

>>> from repro.api import CompileRequest, CompileCache, compile_batch
>>> cache = CompileCache()
>>> batch = compile_batch(requests, backends=("baseline", "advanced"), cache=cache)
>>> batch.results[0]["advanced"].cnot_count
>>> compile_batch(requests, backends="advanced", cache=cache).cache_hits  # warm
len(requests)

Batches are *resumable* and *degradable*:

* ``checkpoint_dir=`` journals every completed job in a crash-safe on-disk
  :class:`~repro.api.checkpoint.BatchCheckpoint`; a batch killed mid-run
  (crash, OOM, SIGKILL) resumes by recompiling only the missing jobs and
  serves the journaled results verbatim (bit-identical to an uninterrupted
  run).
* ``fallback=("gt", "jw")`` retries a job whose backend failed with a typed
  stage failure (or an I/O / worker-pool error) on the next backend in the
  chain, in-process, recording the substitution in the report.
* ``on_error="collect"`` isolates per-job failures into
  ``BatchResult.report.failed`` instead of aborting the whole batch
  (``"raise"``, the historical default, propagates the first unrecovered
  failure — completed jobs are still journaled first).

Worker processes resolve backends by name from their own registry.  The four
default backends are always available there; custom backends reach workers
only on platforms whose process start method is ``fork`` (Linux), because a
``spawn``-ed worker imports just :mod:`repro.api` and never the module that
registered the custom backend.  :func:`compile_batch` refuses that
combination eagerly (see :func:`_check_worker_backends`) instead of letting
workers fail with an opaque ``KeyError`` mid-batch.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.api.backend import (
    CompileRequest,
    CompileResult,
    canonical_backend_name,
    get_backend,
)
from repro.core.pipeline import StageFailure
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer, tracing

#: Failure classes a backend-fallback chain retries on: typed pipeline stage
#: failures, I/O errors (incl. injected faults), and broken worker pools.
#: Input-validation errors (ValueError/TypeError) are deliberately excluded —
#: a request every backend would reject should fail, not burn the chain.
FALLBACK_RETRYABLE: Tuple[type, ...] = (StageFailure, OSError, BrokenExecutor)

#: Batch-robustness traffic, in the global obs registry.
_BATCH_FALLBACKS = get_metrics().counter("batch.fallbacks")
_BATCH_SKIPPED = get_metrics().counter("batch.checkpoint.skipped")
_BATCH_CHECKPOINT_ERRORS = get_metrics().counter("batch.checkpoint.errors")
_BATCH_FAILURES = get_metrics().counter("batch.failures")

#: A memoization key: (request fingerprint, canonical backend name).
CacheKey = Tuple[Hashable, str]


def cache_key_digest(key: CacheKey) -> str:
    """Stable SHA-256 content address of a memoization key (hex).

    A :data:`CacheKey` is a nest of primitives — ints, floats, strings,
    booleans, ``None`` and tuples (nested dataclasses such as
    :class:`~repro.hardware.topology.Topology` are flattened by the config
    fingerprint's ``dataclasses.astuple``) — so its ``repr`` is deterministic
    across processes and interpreter restarts.  The persistent on-disk cache
    (:class:`repro.service.PersistentCompileCache`) uses this digest to shard
    and address entries.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@dataclass
class CompileCache:
    """In-memory memoization of compile results with hit/miss accounting.

    ``max_entries`` bounds the cache: when set, inserting beyond the bound
    evicts the least-recently-used entry (a :meth:`get` hit refreshes an
    entry's recency, :meth:`peek` does not) and increments ``evictions``,
    mirroring the bounded-cache convention of the SCF/integral caches.
    ``None`` (the default) keeps the historical unbounded behavior.
    """

    _store: Dict[CacheKey, CompileResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    max_entries: Optional[int] = None
    evictions: int = 0

    def __post_init__(self):
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be None or at least 1")

    @staticmethod
    def key(request: CompileRequest, backend_name: str) -> CacheKey:
        """Memoization key; config is mostly excluded for config-blind backends.

        A backend declaring ``uses_config = False`` (the naive JW/BK flows)
        compiles identically under every config, so sweeps over pipeline
        knobs share its cache entries.  The one exception is the device
        ``topology``: even the naive flows route against it, so it stays in
        the key.
        """
        backend = get_backend(backend_name)
        if getattr(backend, "uses_config", True):
            return (request.fingerprint, backend.name)
        return (request.input_fingerprint, request.config.topology, backend.name)

    def get(self, key: CacheKey) -> Optional[CompileResult]:
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            if self.max_entries is not None:  # refresh LRU recency
                self._store[key] = self._store.pop(key)
        return result

    def peek(self, key: CacheKey) -> Optional[CompileResult]:
        """Like :meth:`get` but without touching counters or LRU recency."""
        return self._store.get(key)

    def put(self, key: CacheKey, result: CompileResult) -> None:
        self._store.pop(key, None)  # re-insert at the most-recent position
        self._store[key] = result
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                del self._store[next(iter(self._store))]
                self.evictions += 1

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._store


class BackendResults(Dict[str, CompileResult]):
    """One request's results, keyed by canonical backend name.

    Lookup also accepts registered aliases, so ``row["jw"]`` and
    ``row["jordan-wigner"]`` return the same result.
    """

    def __missing__(self, key: str) -> CompileResult:
        canonical = canonical_backend_name(key)
        if canonical == key:
            raise KeyError(key)
        return self[canonical]

    def __contains__(self, key: object) -> bool:
        if super().__contains__(key):
            return True
        try:
            return super().__contains__(canonical_backend_name(str(key)))
        except KeyError:
            return False

    def get(self, key: str, default=None):
        try:
            return self[key]
        except KeyError:
            return default


@dataclass(frozen=True)
class JobFailure:
    """One batch job that failed after exhausting its fallback chain.

    ``attempts`` lists every ``(backend, error repr)`` tried, the job's
    primary backend first; ``error`` repeats the primary backend's error.
    """

    digest: str
    backend: str
    error: str
    attempts: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class FallbackRecord:
    """One batch job completed by a fallback backend after failures.

    ``failed`` names the backends that raised, in the order tried (the job's
    primary backend first); ``succeeded`` is the backend whose result the
    job's row carries.
    """

    digest: str
    failed: Tuple[str, ...]
    succeeded: str


@dataclass
class BatchReport:
    """Per-job accounting of one :func:`compile_batch` run.

    All jobs are identified by their :func:`cache_key_digest`.  ``compiled``
    are the jobs executed this run (including fallback completions);
    ``skipped`` were served from the checkpoint journal of a previous run;
    ``failed`` exhausted every backend (only populated under
    ``on_error="collect"``); ``fallbacks`` details each backend
    substitution.  Jobs served by the in-memory cache appear in none of
    these — they cost nothing and are visible in ``BatchResult.cache_hits``.
    """

    compiled: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    failed: List[JobFailure] = field(default_factory=list)
    fallbacks: List[FallbackRecord] = field(default_factory=list)

    @property
    def failed_digests(self) -> Tuple[str, ...]:
        return tuple(failure.digest for failure in self.failed)


@dataclass
class BatchResult:
    """Outcome of one :func:`compile_batch` call.

    ``results`` holds one mapping per input request, keyed by canonical
    backend name (alias lookup works too), in request order.  A job that
    failed under ``on_error="collect"`` is *absent* from its row (lookup
    raises ``KeyError``, ``row.get(name)`` returns ``None``); consult
    ``report.failed`` for the error.  A job completed by a fallback backend
    carries that backend's result (``result.backend`` names it) under the
    requested backend's row key.
    """

    results: List[BackendResults]
    backends: Tuple[str, ...]
    cache_hits: int
    cache_misses: int
    wall_time_s: float
    report: BatchReport = field(default_factory=BatchReport)

    def cnot_counts(self, backend: str) -> List[int]:
        """The per-request CNOT counts of one backend, in request order."""
        canonical = canonical_backend_name(backend)
        return [row[canonical].cnot_count for row in self.results]


def _compile_job(job: Tuple[str, CompileRequest]) -> CompileResult:
    """Worker entry point: resolve the backend by name and compile.

    The two :mod:`repro.faults` sites here are no-ops unless a fault plan is
    active (chaos tests): ``pool.worker`` is where a ``kill`` rule takes down
    the hosting pool process, and ``compute`` injects transient compile
    failures/delays.  Pool workers pick a plan up from the ``REPRO_FAULTS``
    environment variable (or fork inheritance on Linux).
    """
    backend_name, request = job
    faults.fire("pool.worker", backend=backend_name)
    faults.fire("compute", backend=backend_name)
    return get_backend(backend_name).compile(request)


def _compile_job_traced(job: Tuple[str, CompileRequest]):
    """Worker entry point that also collects the worker-side span forest.

    Used instead of :func:`_compile_job` on executor paths when the parent's
    tracer is enabled: the worker process compiles under a fresh tracer and
    ships its spans back (picklable dicts, times relative to the worker
    origin) for :meth:`~repro.obs.tracer.Tracer.adopt` in the parent.
    """
    with tracing() as tracer:
        result = _compile_job(job)
        return result, tracer.export()


def _run_jobs_incremental(
    executor: Executor,
    jobs: Sequence[Tuple[CacheKey, Tuple[str, CompileRequest]]],
    tracer,
    complete: Callable[[CacheKey, str, CompileRequest, CompileResult], None],
    settle_failure: Callable[[CacheKey, str, CompileRequest, BaseException], None],
) -> None:
    """Submit every job and handle each outcome *as it completes*.

    Unlike the historical ``executor.map`` path, results reach ``complete``
    (cache put + checkpoint record) the moment their future resolves, so a
    batch killed mid-run keeps every job finished before the kill.  With the
    tracer enabled, jobs go through :func:`_compile_job_traced` and each
    worker's span forest is adopted under the current span.  A broken pool
    fails only the unfinished jobs (each reaches ``settle_failure`` with the
    ``BrokenExecutor`` error); already-resolved futures keep their results.
    """
    fn = _compile_job_traced if tracer.enabled else _compile_job
    futures = {
        executor.submit(fn, (name, request)): (key, name, request)
        for key, (name, request) in jobs
    }
    for future in as_completed(futures):
        key, name, request = futures[future]
        try:
            outcome = future.result()
        except Exception as exc:
            settle_failure(key, name, request, exc)
            continue
        if tracer.enabled:
            result, spans = outcome
            tracer.adopt(spans)
        else:
            result = outcome
        complete(key, name, request, result)


def _check_worker_backends(canonical_names: Sequence[str]) -> None:
    """Refuse custom backends on process pools whose start method isn't fork.

    A ``spawn``-ed (or ``forkserver``-ed) worker imports :mod:`repro.api`
    fresh and never runs the module that registered a custom backend, so the
    worker's registry lookup would fail with a bare ``KeyError`` deep inside
    the pool.  Raise eagerly, before any job runs, with the offending names.
    """
    from repro.api.backends import DEFAULT_BACKEND_NAMES  # late: avoids cycle

    custom = [name for name in canonical_names if name not in DEFAULT_BACKEND_NAMES]
    start_method = multiprocessing.get_start_method()
    if custom and start_method != "fork":
        raise RuntimeError(
            f"custom backend(s) {custom} cannot reach worker processes under "
            f"the {start_method!r} start method: spawned workers import only "
            "repro.api and never the module that registered them. "
            "Run with workers=1, or use only the default backends "
            f"{sorted(DEFAULT_BACKEND_NAMES)} in parallel batches."
        )


def compile_batch(
    requests: Sequence[CompileRequest],
    backends: Union[str, Sequence[str]] = "advanced",
    workers: int = 1,
    cache: Optional[CompileCache] = None,
    executor: Optional[Executor] = None,
    checkpoint_dir=None,
    fallback: Union[str, Sequence[str]] = (),
    on_error: str = "raise",
) -> BatchResult:
    """Compile every request with every backend, memoized and deduplicated.

    Parameters
    ----------
    requests:
        The compilation jobs; each carries its own terms and config.
    backends:
        One backend name/alias or a sequence of them; every request is
        compiled by each.
    workers:
        Process-pool width for the jobs the cache cannot serve; ``1`` (the
        default) stays in-process.
    cache:
        A :class:`CompileCache` reused across calls.  Omitted, a private
        cache still deduplicates identical jobs inside this batch.
    executor:
        A caller-owned :class:`concurrent.futures.Executor` to run the jobs
        on instead of a per-call pool, so many small batches (e.g. one per
        Table-I row) amortize one pool's startup cost.  Overrides ``workers``;
        the caller shuts it down.
    checkpoint_dir:
        Directory for a crash-safe :class:`~repro.api.checkpoint.BatchCheckpoint`
        journal.  Every completed job is recorded the moment it finishes; a
        rerun over the same directory serves journaled jobs verbatim
        (``report.skipped``) and recompiles only the rest, making a batch
        killed mid-run resumable with bit-identical results.
    fallback:
        Backend name(s) to retry a job on when its backend fails with a
        :data:`FALLBACK_RETRYABLE` error (typed stage failure, I/O error,
        broken worker pool).  Tried in order, in-process; the first success
        fills the job's row (under the originally requested backend's key)
        and is recorded in ``report.fallbacks``.
    on_error:
        ``"raise"`` (default): the first failure that survives the fallback
        chain propagates — jobs already completed are journaled and cached
        first, and any pool is shut down.  ``"collect"``: per-job isolation —
        the batch finishes, failed jobs land in ``report.failed`` and are
        absent from their result rows.
    """
    requests = list(requests)
    if isinstance(backends, str):
        backends = (backends,)
    canonical_names = tuple(canonical_backend_name(name) for name in backends)
    if len(set(canonical_names)) != len(canonical_names):
        raise ValueError(f"duplicate backends requested: {canonical_names}")
    if isinstance(fallback, str):
        fallback = (fallback,)
    fallback_chain = tuple(canonical_backend_name(name) for name in fallback)
    if on_error not in ("raise", "collect"):
        raise ValueError("on_error must be 'raise' or 'collect'")
    if workers > 1 and executor is None:
        _check_worker_backends(canonical_names)
    cache = cache if cache is not None else CompileCache()
    checkpoint = None
    if checkpoint_dir is not None:
        from repro.api.checkpoint import BatchCheckpoint  # late: avoids cycle

        checkpoint = BatchCheckpoint(checkpoint_dir)

    start = time.perf_counter()
    hits_before, misses_before = cache.hits, cache.misses
    report = BatchReport()
    #: Every key's final result, whatever produced it (cache, journal,
    #: compile, fallback); rows are assembled from here, never from the
    #: shared cache, which only holds honest per-backend entries.
    resolved: Dict[CacheKey, CompileResult] = {}

    # One lookup per (request, backend) pair; identical pairs collapse onto
    # the same key, so each distinct job is compiled at most once.  A pair
    # counts as a miss only when it is the one that triggers a compilation;
    # duplicates inside the batch are hits, they cost nothing.
    keys: List[List[CacheKey]] = [
        [CompileCache.key(request, name) for name in canonical_names]
        for request in requests
    ]
    pending: Dict[CacheKey, Tuple[str, CompileRequest]] = {}
    for request, request_keys in zip(requests, keys):
        for key, name in zip(request_keys, canonical_names):
            if key in pending or key in resolved:
                cache.hits += 1  # deduplicated within this batch, costs nothing
                continue
            cached = cache.get(key)  # get() counts the hit or miss
            if cached is not None:
                resolved[key] = cached
                continue
            if checkpoint is not None:
                journaled = checkpoint.lookup(key)
                if journaled is not None:
                    # A previous (possibly killed) run finished this job;
                    # serve its result verbatim so resume is bit-identical.
                    resolved[key] = journaled
                    report.skipped.append(cache_key_digest(key))
                    _BATCH_SKIPPED.inc()
                    if journaled.backend == name:
                        cache.put(key, journaled)
                    continue
            pending[key] = (name, request)

    jobs = list(pending.items())
    tracer = get_tracer()

    def record_checkpoint(key, result):
        """Journal one completed job; a failed write degrades, never aborts.

        The job *succeeded* — losing its journal record only costs a
        recompile on resume, so an I/O failure here (full disk, injected
        ``checkpoint.write`` fault) is counted and swallowed rather than
        failing the batch.
        """
        if checkpoint is None:
            return
        try:
            checkpoint.record(key, result)
        except OSError:
            _BATCH_CHECKPOINT_ERRORS.inc()

    def complete(key, name, request, result):
        """Cache, journal and record one finished job — called incrementally."""
        resolved[key] = result
        cache.put(key, result)
        record_checkpoint(key, result)
        report.compiled.append(cache_key_digest(key))

    def settle_failure(key, name, request, exc):
        """Walk the fallback chain; collect or re-raise an unrecovered failure."""
        digest = cache_key_digest(key)
        attempts = [(name, repr(exc))]
        if isinstance(exc, FALLBACK_RETRYABLE):
            for fb_name in fallback_chain:
                if fb_name == name:
                    continue
                try:
                    # In-process (never on a possibly-broken pool); obs spans
                    # nest under batch.compile_batch naturally.
                    with tracer.span("batch.fallback", digest=digest, backend=fb_name):
                        result = _compile_job((fb_name, request))
                except Exception as fb_exc:
                    attempts.append((fb_name, repr(fb_exc)))
                    continue
                resolved[key] = result
                # The shared cache stays honest: the fallback result is cached
                # under its *own* backend's key, never the failed primary's.
                cache.put(CompileCache.key(request, fb_name), result)
                # The journal is a batch artifact ("this job is done"), so it
                # records under the job's primary key — resume must serve
                # this same result, not retry the failed backend.
                record_checkpoint(key, result)
                report.compiled.append(digest)
                report.fallbacks.append(
                    FallbackRecord(
                        digest=digest,
                        failed=tuple(attempt_name for attempt_name, _ in attempts),
                        succeeded=fb_name,
                    )
                )
                _BATCH_FALLBACKS.inc()
                return
        _BATCH_FAILURES.inc()
        if on_error == "raise":
            raise exc
        report.failed.append(
            JobFailure(
                digest=digest, backend=name, error=repr(exc), attempts=tuple(attempts)
            )
        )

    with tracer.span(
        "batch.compile_batch",
        n_requests=len(requests),
        n_jobs=len(jobs),
        backends=",".join(canonical_names),
    ) as batch_span:
        if executor is not None and len(jobs) > 1:
            _run_jobs_incremental(executor, jobs, tracer, complete, settle_failure)
        elif workers > 1 and len(jobs) > 1:
            pool = ProcessPoolExecutor(max_workers=workers)
            try:
                _run_jobs_incremental(pool, jobs, tracer, complete, settle_failure)
            finally:
                # Always executed — job failure, on_error="raise" propagation,
                # KeyboardInterrupt: pending jobs are cancelled, running ones
                # joined, and no worker process is leaked.
                pool.shutdown(wait=True, cancel_futures=True)
        else:
            # In-process: spans from each backend nest under this one naturally.
            for key, (name, request) in jobs:
                try:
                    result = _compile_job((name, request))
                except Exception as exc:
                    settle_failure(key, name, request, exc)
                else:
                    complete(key, name, request, result)
        if report.skipped:
            batch_span.set_attribute("n_skipped", len(report.skipped))
        if report.fallbacks:
            batch_span.set_attribute("n_fallbacks", len(report.fallbacks))
        if report.failed:
            batch_span.set_attribute("n_failed", len(report.failed))

    results: List[BackendResults] = [
        BackendResults(
            (name, resolved[key])
            for key, name in zip(request_keys, canonical_names)
            if key in resolved
        )
        for request_keys in keys
    ]

    return BatchResult(
        results=results,
        backends=canonical_names,
        cache_hits=cache.hits - hits_before,
        cache_misses=cache.misses - misses_before,
        wall_time_s=time.perf_counter() - start,
        report=report,
    )
