"""Batch compilation service: memoized, optionally parallel, multi-backend.

:func:`compile_batch` runs many :class:`~repro.api.backend.CompileRequest`
jobs across one or more backends in a single call.  Identical jobs — same
terms fingerprint, backend and config — are compiled once and served from a
:class:`CompileCache`, which can be kept across calls so warm batches skip
recompilation entirely.  With ``workers > 1`` the outstanding jobs fan out
over a process pool (every flow is CPU-bound pure Python, so threads would
not help).

>>> from repro.api import CompileRequest, CompileCache, compile_batch
>>> cache = CompileCache()
>>> batch = compile_batch(requests, backends=("baseline", "advanced"), cache=cache)
>>> batch.results[0]["advanced"].cnot_count
>>> compile_batch(requests, backends="advanced", cache=cache).cache_hits  # warm
len(requests)

Worker processes resolve backends by name from their own registry.  The four
default backends are always available there; custom backends reach workers
only on platforms whose process start method is ``fork`` (Linux), because a
``spawn``-ed worker imports just :mod:`repro.api` and never the module that
registered the custom backend.  :func:`compile_batch` refuses that
combination eagerly (see :func:`_check_worker_backends`) instead of letting
workers fail with an opaque ``KeyError`` mid-batch.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.api.backend import (
    CompileRequest,
    CompileResult,
    canonical_backend_name,
    get_backend,
)
from repro.obs.tracer import get_tracer, tracing

#: A memoization key: (request fingerprint, canonical backend name).
CacheKey = Tuple[Hashable, str]


def cache_key_digest(key: CacheKey) -> str:
    """Stable SHA-256 content address of a memoization key (hex).

    A :data:`CacheKey` is a nest of primitives — ints, floats, strings,
    booleans, ``None`` and tuples (nested dataclasses such as
    :class:`~repro.hardware.topology.Topology` are flattened by the config
    fingerprint's ``dataclasses.astuple``) — so its ``repr`` is deterministic
    across processes and interpreter restarts.  The persistent on-disk cache
    (:class:`repro.service.PersistentCompileCache`) uses this digest to shard
    and address entries.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@dataclass
class CompileCache:
    """In-memory memoization of compile results with hit/miss accounting.

    ``max_entries`` bounds the cache: when set, inserting beyond the bound
    evicts the least-recently-used entry (a :meth:`get` hit refreshes an
    entry's recency, :meth:`peek` does not) and increments ``evictions``,
    mirroring the bounded-cache convention of the SCF/integral caches.
    ``None`` (the default) keeps the historical unbounded behavior.
    """

    _store: Dict[CacheKey, CompileResult] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    max_entries: Optional[int] = None
    evictions: int = 0

    def __post_init__(self):
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be None or at least 1")

    @staticmethod
    def key(request: CompileRequest, backend_name: str) -> CacheKey:
        """Memoization key; config is mostly excluded for config-blind backends.

        A backend declaring ``uses_config = False`` (the naive JW/BK flows)
        compiles identically under every config, so sweeps over pipeline
        knobs share its cache entries.  The one exception is the device
        ``topology``: even the naive flows route against it, so it stays in
        the key.
        """
        backend = get_backend(backend_name)
        if getattr(backend, "uses_config", True):
            return (request.fingerprint, backend.name)
        return (request.input_fingerprint, request.config.topology, backend.name)

    def get(self, key: CacheKey) -> Optional[CompileResult]:
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
            if self.max_entries is not None:  # refresh LRU recency
                self._store[key] = self._store.pop(key)
        return result

    def peek(self, key: CacheKey) -> Optional[CompileResult]:
        """Like :meth:`get` but without touching counters or LRU recency."""
        return self._store.get(key)

    def put(self, key: CacheKey, result: CompileResult) -> None:
        self._store.pop(key, None)  # re-insert at the most-recent position
        self._store[key] = result
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                del self._store[next(iter(self._store))]
                self.evictions += 1

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._store


class BackendResults(Dict[str, CompileResult]):
    """One request's results, keyed by canonical backend name.

    Lookup also accepts registered aliases, so ``row["jw"]`` and
    ``row["jordan-wigner"]`` return the same result.
    """

    def __missing__(self, key: str) -> CompileResult:
        canonical = canonical_backend_name(key)
        if canonical == key:
            raise KeyError(key)
        return self[canonical]

    def __contains__(self, key: object) -> bool:
        if super().__contains__(key):
            return True
        try:
            return super().__contains__(canonical_backend_name(str(key)))
        except KeyError:
            return False

    def get(self, key: str, default=None):
        try:
            return self[key]
        except KeyError:
            return default


@dataclass
class BatchResult:
    """Outcome of one :func:`compile_batch` call.

    ``results`` holds one mapping per input request, keyed by canonical
    backend name (alias lookup works too), in request order.
    """

    results: List[BackendResults]
    backends: Tuple[str, ...]
    cache_hits: int
    cache_misses: int
    wall_time_s: float

    def cnot_counts(self, backend: str) -> List[int]:
        """The per-request CNOT counts of one backend, in request order."""
        canonical = canonical_backend_name(backend)
        return [row[canonical].cnot_count for row in self.results]


def _compile_job(job: Tuple[str, CompileRequest]) -> CompileResult:
    """Worker entry point: resolve the backend by name and compile.

    The two :mod:`repro.faults` sites here are no-ops unless a fault plan is
    active (chaos tests): ``pool.worker`` is where a ``kill`` rule takes down
    the hosting pool process, and ``compute`` injects transient compile
    failures/delays.  Pool workers pick a plan up from the ``REPRO_FAULTS``
    environment variable (or fork inheritance on Linux).
    """
    backend_name, request = job
    faults.fire("pool.worker", backend=backend_name)
    faults.fire("compute", backend=backend_name)
    return get_backend(backend_name).compile(request)


def _compile_job_traced(job: Tuple[str, CompileRequest]):
    """Worker entry point that also collects the worker-side span forest.

    Used instead of :func:`_compile_job` on executor paths when the parent's
    tracer is enabled: the worker process compiles under a fresh tracer and
    ships its spans back (picklable dicts, times relative to the worker
    origin) for :meth:`~repro.obs.tracer.Tracer.adopt` in the parent.
    """
    with tracing() as tracer:
        result = _compile_job(job)
        return result, tracer.export()


def _map_jobs(map_fn, jobs, tracer) -> List[CompileResult]:
    """Run jobs through an executor's ``map``, collecting worker spans.

    With the tracer enabled the jobs go through :func:`_compile_job_traced`
    and every worker's span forest is adopted under the current span (the
    enclosing ``batch.compile_batch``); disabled, this is exactly the old
    ``map(_compile_job, ...)`` path.
    """
    if not tracer.enabled:
        return list(map_fn(_compile_job, [job for _, job in jobs]))
    compiled: List[CompileResult] = []
    for result, spans in map_fn(_compile_job_traced, [job for _, job in jobs]):
        tracer.adopt(spans)
        compiled.append(result)
    return compiled


def _check_worker_backends(canonical_names: Sequence[str]) -> None:
    """Refuse custom backends on process pools whose start method isn't fork.

    A ``spawn``-ed (or ``forkserver``-ed) worker imports :mod:`repro.api`
    fresh and never runs the module that registered a custom backend, so the
    worker's registry lookup would fail with a bare ``KeyError`` deep inside
    the pool.  Raise eagerly, before any job runs, with the offending names.
    """
    from repro.api.backends import DEFAULT_BACKEND_NAMES  # late: avoids cycle

    custom = [name for name in canonical_names if name not in DEFAULT_BACKEND_NAMES]
    start_method = multiprocessing.get_start_method()
    if custom and start_method != "fork":
        raise RuntimeError(
            f"custom backend(s) {custom} cannot reach worker processes under "
            f"the {start_method!r} start method: spawned workers import only "
            "repro.api and never the module that registered them. "
            "Run with workers=1, or use only the default backends "
            f"{sorted(DEFAULT_BACKEND_NAMES)} in parallel batches."
        )


def compile_batch(
    requests: Sequence[CompileRequest],
    backends: Union[str, Sequence[str]] = "advanced",
    workers: int = 1,
    cache: Optional[CompileCache] = None,
    executor: Optional[Executor] = None,
) -> BatchResult:
    """Compile every request with every backend, memoized and deduplicated.

    Parameters
    ----------
    requests:
        The compilation jobs; each carries its own terms and config.
    backends:
        One backend name/alias or a sequence of them; every request is
        compiled by each.
    workers:
        Process-pool width for the jobs the cache cannot serve; ``1`` (the
        default) stays in-process.
    cache:
        A :class:`CompileCache` reused across calls.  Omitted, a private
        cache still deduplicates identical jobs inside this batch.
    executor:
        A caller-owned :class:`concurrent.futures.Executor` to run the jobs
        on instead of a per-call pool, so many small batches (e.g. one per
        Table-I row) amortize one pool's startup cost.  Overrides ``workers``;
        the caller shuts it down.
    """
    requests = list(requests)
    if isinstance(backends, str):
        backends = (backends,)
    canonical_names = tuple(canonical_backend_name(name) for name in backends)
    if len(set(canonical_names)) != len(canonical_names):
        raise ValueError(f"duplicate backends requested: {canonical_names}")
    if workers > 1 and executor is None:
        _check_worker_backends(canonical_names)
    cache = cache if cache is not None else CompileCache()

    start = time.perf_counter()
    hits_before, misses_before = cache.hits, cache.misses

    # One lookup per (request, backend) pair; identical pairs collapse onto
    # the same key, so each distinct job is compiled at most once.  A pair
    # counts as a miss only when it is the one that triggers a compilation;
    # duplicates inside the batch are hits, they cost nothing.
    keys: List[List[CacheKey]] = [
        [CompileCache.key(request, name) for name in canonical_names]
        for request in requests
    ]
    pending: Dict[CacheKey, Tuple[str, CompileRequest]] = {}
    for request, request_keys in zip(requests, keys):
        for key, name in zip(request_keys, canonical_names):
            if key in pending:
                cache.hits += 1  # deduplicated within this batch, costs nothing
            elif cache.get(key) is None:  # get() counts the hit or miss
                pending[key] = (name, request)

    jobs = list(pending.items())
    tracer = get_tracer()
    with tracer.span(
        "batch.compile_batch",
        n_requests=len(requests),
        n_jobs=len(jobs),
        backends=",".join(canonical_names),
    ):
        if executor is not None and len(jobs) > 1:
            compiled = _map_jobs(executor.map, jobs, tracer)
        elif workers > 1 and len(jobs) > 1:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                compiled = _map_jobs(pool.map, jobs, tracer)
        else:
            # In-process: spans from each backend nest under this one naturally.
            compiled = [_compile_job(job) for _, job in jobs]
        for (key, _), result in zip(jobs, compiled):
            cache.put(key, result)

    results: List[BackendResults] = [
        BackendResults(
            (name, cache.peek(key)) for key, name in zip(request_keys, canonical_names)
        )
        for request_keys in keys
    ]

    return BatchResult(
        results=results,
        backends=canonical_names,
        cache_hits=cache.hits - hits_before,
        cache_misses=cache.misses - misses_before,
        wall_time_s=time.perf_counter() - start,
    )
