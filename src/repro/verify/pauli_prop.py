"""Pauli-propagation equivalence checking for rotation-product circuits.

Every circuit in the repo's gate set factors, exactly and without touching a
statevector, into the form::

    U = R'_m · … · R'_1 · C

where ``C`` is a Clifford (stored as a :class:`~repro.verify.tableau.CliffordTableau`)
and each ``R'_k = exp(-iθ_k/2 P_k)`` is a Pauli rotation with a packed-mask
axis.  The factorization is a single reverse sweep: walking the gate list
from last-applied to first-applied while growing a suffix Clifford frame
``S``, a Clifford gate right-composes onto ``S`` and a non-Clifford rotation
``exp(-iθ/2 P)`` is emitted as ``S exp(-iθ/2 P) S† = exp(-i sθ/2 · S P S†)``.
Rotations are listed first-applied-first, so the matrix product above reads
right to left and the frame acts *before* the rotations.

The raw factorization is then canonicalized so that syntactically different
but equivalent compilations collide:

* angles are reduced to ``(-π, π]`` (``θ`` and ``θ ± 2π`` differ only by a
  global ``-1``), and near-zero rotations are dropped;
* rotations whose reduced angle lands on a multiple of ``π/2`` are Clifford
  and are folded into the frame, conjugating every earlier rotation;
* adjacent-commuting rotations about the same axis are merged
  (mirroring what :mod:`repro.circuits.optimizer` does to circuits);
* the remaining list is put into the lexicographic normal form of its trace
  monoid — commuting neighbours are reordered into a canonical sequence.

Canonicalization is *sound*: :func:`forms_equivalent` returning ``True``
guarantees the circuits agree up to global phase (within the angle
tolerance).  It is conservative in the other direction — exotic identities
between non-commuting rotations are not recognized — which is exactly the
contract the dispatcher in :mod:`repro.verify.engine` needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.operators.pauli import PauliString
from repro.verify.tableau import (
    CLIFFORD_ANGLE_ATOL,
    CliffordTableau,
    clifford_rotation_index,
    is_clifford_gate,
)

_TAU = 2.0 * math.pi

#: Rotation axes as (x?, z?) qubit-bit flags, plus T/TDG as fixed-angle
#: Z rotations (``T = e^{iπ/8} RZ(π/4)`` — the global phase is irrelevant
#: to every engine in this package).
_ROTATION_AXES = {"RZ": (0, 1), "RX": (1, 0), "RY": (1, 1)}
_FIXED_ROTATIONS = {"T": math.pi / 4.0, "TDG": -math.pi / 4.0}


@dataclass(frozen=True)
class PauliRotation:
    """One ``exp(-iθ/2 P)`` factor; ``P`` as packed x/z masks, phaseless."""

    x: int
    z: int
    angle: float

    def pauli(self, n_qubits: int) -> PauliString:
        return PauliString.from_bitmasks(n_qubits, self.x, self.z)


@dataclass(eq=False)
class PauliProductForm:
    """Canonical ``rotations · frame`` factorization of a circuit."""

    n_qubits: int
    rotations: Tuple[PauliRotation, ...]
    frame: CliffordTableau


def _commutes(a: PauliRotation, b: PauliRotation) -> bool:
    return ((a.x & b.z).bit_count() + (a.z & b.x).bit_count()) % 2 == 0


def _multiply_phase_exponent(x1: int, z1: int, x2: int, z2: int) -> int:
    """Exponent of ``i`` in ``P1 · P2 = i^e · P3`` for phaseless strings.

    Same bookkeeping as :meth:`repro.operators.pauli.PauliString.multiply`,
    on raw masks.
    """
    x3 = x1 ^ x2
    z3 = z1 ^ z2
    return (
        (x1 & z1).bit_count()
        + (x2 & z2).bit_count()
        - (x3 & z3).bit_count()
        + 2 * (z1 & x2).bit_count()
    ) % 4


def _reduce_angle(angle: float) -> float:
    """Reduce to ``[-π, π]``; the ``2π`` shift is a global ``-1``."""
    return math.remainder(angle, _TAU)


def _conjugate_rotation(
    rotation: PauliRotation, w_x: int, w_z: int, k: int
) -> PauliRotation:
    """``W R W†`` for ``W = exp(-i kπ/4 P_w)`` Clifford (``k ∈ {1, 2, 3}``).

    Commuting axes are untouched; anticommuting axes map to ``-Q`` (k=2) or
    ``∓i P_w Q`` (k=1 / k=3), which is again a Hermitian Pauli, so only the
    angle sign and the axis change.
    """
    anticommutes = ((w_x & rotation.z).bit_count() + (w_z & rotation.x).bit_count()) % 2
    if not anticommutes:
        return rotation
    if k == 2:
        return PauliRotation(rotation.x, rotation.z, -rotation.angle)
    exponent = _multiply_phase_exponent(w_x, w_z, rotation.x, rotation.z)
    # -i · i^e is ±1 because P_w and the axis anticommute (e is odd).
    sign = 1 if (exponent - 1) % 4 == 0 else -1
    if k == 3:
        sign = -sign
    return PauliRotation(
        rotation.x ^ w_x, rotation.z ^ w_z, sign * rotation.angle
    )


def _fold_rotation_into_frame(
    frame: CliffordTableau, w_x: int, w_z: int, k: int
) -> None:
    """Frame ← ``W · frame`` for a Clifford-angle Pauli rotation ``W``.

    Each stored generator image ``±Q`` becomes ``±W Q W†``, by the same rule
    as :func:`_conjugate_rotation` (sign tracked in the tableau's sign bit).
    """
    for row in range(2 * frame.n_qubits):
        rx, rz = frame._row_masks(row)
        anticommutes = ((w_x & rz).bit_count() + (w_z & rx).bit_count()) % 2
        if not anticommutes:
            continue
        if k == 2:
            frame.sign[row] ^= 1
            continue
        exponent = _multiply_phase_exponent(w_x, w_z, rx, rz)
        sign_bit = 0 if (exponent - 1) % 4 == 0 else 1
        if k == 3:
            sign_bit ^= 1
        frame._set_row(row, int(frame.sign[row]) ^ sign_bit, rx ^ w_x, rz ^ w_z)


def _rotation_key(rotation: PauliRotation) -> Tuple[int, int, float]:
    return (rotation.x, rotation.z, round(rotation.angle, 9))


def _merge_pass(rotations: List[PauliRotation]) -> Tuple[List[PauliRotation], bool]:
    """Merge same-axis rotations across commuting gaps (optimizer-style)."""
    out: List[PauliRotation] = []
    changed = False
    for rotation in rotations:
        merged = False
        for j in range(len(out) - 1, -1, -1):
            prev = out[j]
            if prev.x == rotation.x and prev.z == rotation.z:
                out[j] = PauliRotation(
                    rotation.x, rotation.z, prev.angle + rotation.angle
                )
                merged = True
                changed = True
                break
            if not _commutes(prev, rotation):
                break
        if not merged:
            out.append(rotation)
    return out, changed


def _lex_normal_form(rotations: List[PauliRotation]) -> List[PauliRotation]:
    """Lexicographic normal form of the trace monoid of commuting swaps.

    Repeatedly emit the smallest-keyed rotation that commutes with everything
    still scheduled before it; equivalent reorderings of commuting neighbours
    all map to the same sequence.
    """
    remaining = list(rotations)
    out: List[PauliRotation] = []
    while remaining:
        best_idx = 0
        best_key = _rotation_key(remaining[0])
        for idx in range(1, len(remaining)):
            candidate = remaining[idx]
            if not all(_commutes(remaining[i], candidate) for i in range(idx)):
                continue
            key = _rotation_key(candidate)
            if key < best_key:
                best_key = key
                best_idx = idx
        out.append(remaining.pop(best_idx))
    return out


def _canonicalize(
    rotations: List[PauliRotation], frame: CliffordTableau, atol: float
) -> Tuple[PauliRotation, ...]:
    while True:
        # Reduce angles; drop identities and near-zero rotations.
        reduced: List[PauliRotation] = []
        for rotation in rotations:
            angle = _reduce_angle(rotation.angle)
            if abs(angle) <= atol or (rotation.x == 0 and rotation.z == 0):
                continue
            reduced.append(PauliRotation(rotation.x, rotation.z, angle))
        rotations = reduced

        # Fold the first Clifford-angle rotation into the frame.
        folded = False
        for j, rotation in enumerate(rotations):
            k = clifford_rotation_index(rotation.angle, atol)
            if k is None or k == 0:
                continue
            rotations = [
                _conjugate_rotation(earlier, rotation.x, rotation.z, k)
                for earlier in rotations[:j]
            ] + rotations[j + 1 :]
            _fold_rotation_into_frame(frame, rotation.x, rotation.z, k)
            folded = True
            break
        if folded:
            continue

        rotations, merged = _merge_pass(rotations)
        if not merged:
            break
    return tuple(_lex_normal_form(rotations))


def rotation_product_form(
    circuit: Circuit, atol: float = CLIFFORD_ANGLE_ATOL
) -> PauliProductForm:
    """Factor a circuit into canonical Pauli rotations times a Clifford frame.

    Linear in gate count times ``O(n)`` mask work per gate — no statevector,
    no dense matrix, usable at hundreds of qubits.
    """
    n = circuit.n_qubits
    suffix = CliffordTableau.identity(n)
    reversed_rotations: List[PauliRotation] = []
    for gate in reversed(list(circuit)):
        if is_clifford_gate(gate, atol):
            suffix.append_gate_right(gate, atol)
            continue
        if gate.name in _ROTATION_AXES:
            has_x, has_z = _ROTATION_AXES[gate.name]
            angle = gate.parameter
        elif gate.name in _FIXED_ROTATIONS:
            has_x, has_z = 0, 1
            angle = _FIXED_ROTATIONS[gate.name]
        else:  # pragma: no cover - the gate set has no other non-Clifford
            raise ValueError(f"gate {gate!r} has no rotation form")
        qubit_bit = 1 << gate.qubits[0]
        sign, cx, cz = suffix.conjugate_masks(
            qubit_bit if has_x else 0, qubit_bit if has_z else 0
        )
        reversed_rotations.append(PauliRotation(cx, cz, sign * angle))
    rotations = list(reversed(reversed_rotations))
    canonical = _canonicalize(rotations, suffix, atol)
    return PauliProductForm(n, canonical, suffix)


def sequence_rotation_form(
    terms: Sequence[Tuple[PauliString, float]],
    n_qubits: int,
    atol: float = CLIFFORD_ANGLE_ATOL,
) -> PauliProductForm:
    """Canonical form of an intended ``Π exp(-iθ_k/2 P_k)`` product.

    The reference object for :func:`repro.verify.engine.assert_implements_rotations`:
    a compiled circuit implements the sequence iff its
    :func:`rotation_product_form` matches this form under
    :func:`forms_equivalent`.  Terms are listed first-applied-first, matching
    :func:`repro.circuits.pauli_exponential.exponential_sequence_circuit`.
    """
    frame = CliffordTableau.identity(n_qubits)
    rotations = [
        PauliRotation(string.x_mask, string.z_mask, angle)
        for string, angle in terms
    ]
    canonical = _canonicalize(rotations, frame, atol)
    return PauliProductForm(n_qubits, canonical, frame)


def forms_equivalent(
    a: PauliProductForm, b: PauliProductForm, atol: float = 1e-8
) -> bool:
    """Sound (conservative) equality of canonical forms up to global phase."""
    if a.n_qubits != b.n_qubits or len(a.rotations) != len(b.rotations):
        return False
    for ra, rb in zip(a.rotations, b.rotations):
        if ra.x != rb.x or ra.z != rb.z:
            return False
        if abs(_reduce_angle(ra.angle - rb.angle)) > atol:
            return False
    return a.frame == b.frame
