"""Scalable equivalence-checking engines for circuits.

Dense ``Circuit.to_unitary`` comparison caps differential testing at ~12
qubits.  This package provides the engine tier that pushes the repo's
routed-equivalence and cross-backend harnesses to 20-50 qubits:

* :class:`~repro.verify.tableau.CliffordTableau` — a bit-packed
  Clifford/stabilizer tableau simulator over the ``uint64`` bit-plane layout
  of :mod:`repro.operators.symplectic`, with phase tracking.  Two Clifford
  circuits are equal up to global phase iff their tableaus are equal.
* :func:`~repro.verify.pauli_prop.rotation_product_form` — Pauli-propagation
  canonicalization of arbitrary circuits in the CNOT + single-qubit gate set
  into ``exp(-iθ/2 P)`` products times a Clifford frame, enabling
  equivalence checks of rotation products without materializing any
  statevector.
* :mod:`~repro.verify.sparse` — a seeded sparse-statevector probe engine for
  shallow non-Clifford circuits.
* :func:`~repro.verify.engine.check_equivalence` /
  :func:`~repro.verify.engine.assert_equivalent` — the dispatcher that
  classifies a circuit pair and picks the cheapest sufficient engine.

Conventions are documented in the README "Verification engines" section:
qubit ``q`` is bit ``q`` of the packed masks, qubit 0 is the most
significant bit of computational-basis indices, and every engine decides
equality *up to global phase* (matching ``Circuit.equals_up_to_global_phase``).
"""

from repro.verify.engine import (
    EquivalenceReport,
    assert_equivalent,
    assert_implements_rotations,
    check_equivalence,
    classify_circuit,
)
from repro.verify.pauli_prop import (
    PauliProductForm,
    PauliRotation,
    forms_equivalent,
    rotation_product_form,
    sequence_rotation_form,
)
from repro.verify.sparse import EngineUnsupported, SparseState, sparse_probe_equivalent
from repro.verify.tableau import (
    CLIFFORD_ANGLE_ATOL,
    CLIFFORD_GATE_NAMES,
    CliffordTableau,
    NotCliffordError,
    conjugate_pauli_by_clifford_gate,
    is_clifford_circuit,
    is_clifford_gate,
)

__all__ = [
    "EquivalenceReport",
    "assert_equivalent",
    "assert_implements_rotations",
    "check_equivalence",
    "classify_circuit",
    "PauliProductForm",
    "PauliRotation",
    "forms_equivalent",
    "rotation_product_form",
    "sequence_rotation_form",
    "EngineUnsupported",
    "SparseState",
    "sparse_probe_equivalent",
    "CLIFFORD_ANGLE_ATOL",
    "CLIFFORD_GATE_NAMES",
    "CliffordTableau",
    "NotCliffordError",
    "conjugate_pauli_by_clifford_gate",
    "is_clifford_circuit",
    "is_clifford_gate",
]
