"""Seeded sparse-statevector probe engine for shallow non-Clifford circuits.

The last rung of the verification ladder: when a circuit pair is neither
Clifford (tableau engine) nor recognized as equivalent by Pauli-propagation
canonicalization, the dispatcher probes both circuits with a handful of
seeded two-term superpositions ``(|b₁⟩ + e^{iα}|b₂⟩)/√2`` and demands the
outputs agree up to ONE joint global phase across all probes.

States are stored sparsely — an ``int64`` array of computational-basis
indices plus a matching complex amplitude array — so cost scales with the
*support* of the state, not ``2**n``.  Diagonal and permutation gates
(Z/S/T/RZ/X/Y/CNOT/CZ/SWAP) never grow the support; branching gates
(H/RX/RY/SQRTX…) at most double it, with exact coalescing and pruning of
cancelled branches.  A support budget (``max_terms``) keeps the engine
honest: circuits that entangle too hard raise :class:`EngineUnsupported`
instead of silently thrashing, and the dispatcher falls back to a
conservative verdict.

Verdict semantics: a probe *rejection* is exact (a genuine amplitude
mismatch disproves equivalence up to global phase); an *acceptance* is
probabilistic — different unitaries agreeing on every random probe is
possible but has measure zero — so the dispatcher reports ``exact=False``
for sparse accepts.

Index convention matches ``Circuit.to_unitary``: qubit 0 is the most
significant bit, so qubit ``q`` is bit ``n - 1 - q`` of the basis index.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

#: Default support budget; beyond this the engine declares itself unsupported.
DEFAULT_MAX_TERMS = 4096

#: Amplitudes below this magnitude are pruned after coalescing.
_PRUNE_ATOL = 1e-12

#: ``int64`` indices keep bit arithmetic exact up to this register size.
_MAX_QUBITS = 62


class EngineUnsupported(RuntimeError):
    """The sparse engine cannot (cheaply) represent the requested evolution."""


class SparseState:
    """A statevector with explicit support: basis indices + amplitudes."""

    __slots__ = ("n_qubits", "indices", "amplitudes", "max_terms")

    def __init__(
        self,
        n_qubits: int,
        indices: np.ndarray,
        amplitudes: np.ndarray,
        max_terms: int = DEFAULT_MAX_TERMS,
    ):
        if n_qubits > _MAX_QUBITS:
            raise EngineUnsupported(
                f"sparse engine indexes with int64; {n_qubits} qubits > {_MAX_QUBITS}"
            )
        self.n_qubits = int(n_qubits)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.amplitudes = np.asarray(amplitudes, dtype=complex)
        self.max_terms = int(max_terms)

    @classmethod
    def superposition(
        cls,
        n_qubits: int,
        basis_states: Tuple[int, ...],
        amplitudes: Tuple[complex, ...],
        max_terms: int = DEFAULT_MAX_TERMS,
    ) -> "SparseState":
        """Normalized superposition of explicit basis states."""
        amps = np.asarray(amplitudes, dtype=complex)
        amps = amps / np.linalg.norm(amps)
        return cls(n_qubits, np.asarray(basis_states, dtype=np.int64), amps, max_terms)

    @property
    def n_terms(self) -> int:
        return len(self.indices)

    def _bit_mask(self, qubit: int) -> np.int64:
        return np.int64(1) << np.int64(self.n_qubits - 1 - qubit)

    # ------------------------------------------------------------------
    # Gate application
    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate) -> None:
        name = gate.name
        if name == "I":
            return
        if name == "CNOT":
            control_set = (self.indices & self._bit_mask(gate.qubits[0])) != 0
            self.indices = self.indices ^ np.where(
                control_set, self._bit_mask(gate.qubits[1]), np.int64(0)
            )
            return
        if name == "CZ":
            both = (
                ((self.indices & self._bit_mask(gate.qubits[0])) != 0)
                & ((self.indices & self._bit_mask(gate.qubits[1])) != 0)
            )
            self.amplitudes = self.amplitudes * np.where(both, -1.0, 1.0)
            return
        if name == "SWAP":
            mask_a = self._bit_mask(gate.qubits[0])
            mask_b = self._bit_mask(gate.qubits[1])
            differ = ((self.indices & mask_a) != 0) != ((self.indices & mask_b) != 0)
            self.indices = self.indices ^ np.where(differ, mask_a | mask_b, np.int64(0))
            return
        # Single-qubit gates, classified structurally from the 2x2 matrix:
        # diagonal and antidiagonal gates permute/phase the support in place,
        # anything else branches (and the branches are coalesced).
        matrix = gate.matrix()
        mask = self._bit_mask(gate.qubits[0])
        bit = ((self.indices & mask) != 0).astype(np.intp)
        if matrix[0, 1] == 0 and matrix[1, 0] == 0:
            self.amplitudes = self.amplitudes * np.take(np.diagonal(matrix), bit)
            return
        if matrix[0, 0] == 0 and matrix[1, 1] == 0:
            # |v> -> M[1-v, v] |1-v>
            factors = np.take(np.array([matrix[1, 0], matrix[0, 1]]), bit)
            self.amplitudes = self.amplitudes * factors
            self.indices = self.indices ^ mask
            return
        self._apply_branching(matrix, mask, bit)

    def _apply_branching(
        self, matrix: np.ndarray, mask: np.int64, bit: np.ndarray
    ) -> None:
        row0 = np.take(matrix[0], bit)
        row1 = np.take(matrix[1], bit)
        new_indices = np.concatenate([self.indices & ~mask, self.indices | mask])
        new_amplitudes = np.concatenate(
            [self.amplitudes * row0, self.amplitudes * row1]
        )
        unique, inverse = np.unique(new_indices, return_inverse=True)
        coalesced = np.zeros(len(unique), dtype=complex)
        np.add.at(coalesced, inverse, new_amplitudes)
        keep = np.abs(coalesced) > _PRUNE_ATOL
        self.indices = unique[keep]
        self.amplitudes = coalesced[keep]
        if len(self.indices) > self.max_terms:
            raise EngineUnsupported(
                f"sparse support exceeded budget ({len(self.indices)} > "
                f"{self.max_terms} terms)"
            )

    def apply_circuit(self, circuit: Circuit) -> "SparseState":
        if circuit.n_qubits != self.n_qubits:
            raise ValueError("circuit register size does not match state")
        for gate in circuit:
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------
    # Export / comparison helpers
    # ------------------------------------------------------------------
    def to_statevector(self) -> np.ndarray:
        """Dense statevector (small-n validation only)."""
        if self.n_qubits > 24:
            raise EngineUnsupported("refusing to densify a >24-qubit sparse state")
        dense = np.zeros(2 ** self.n_qubits, dtype=complex)
        np.add.at(dense, self.indices, self.amplitudes)
        return dense

    def __repr__(self) -> str:
        return f"SparseState(n_qubits={self.n_qubits}, n_terms={self.n_terms})"


def _probe_state(
    n_qubits: int, rng: np.random.Generator, max_terms: int
) -> SparseState:
    """A seeded two-term superposition ``(|b₁⟩ + e^{iα}|b₂⟩)/√2``."""
    dim = 1 << n_qubits
    b1 = int(rng.integers(0, dim))
    b2 = int(rng.integers(0, dim))
    while b2 == b1:
        b2 = int(rng.integers(0, dim))
    alpha = float(rng.uniform(0.0, 2.0 * math.pi))
    return SparseState.superposition(
        n_qubits, (b1, b2), (1.0, complex(math.cos(alpha), math.sin(alpha))), max_terms
    )


def _aligned_vectors(
    out_a: SparseState, out_b: SparseState
) -> Tuple[np.ndarray, np.ndarray]:
    """Amplitudes of both outputs on the union of their supports."""
    union = np.union1d(out_a.indices, out_b.indices)
    va = np.zeros(len(union), dtype=complex)
    vb = np.zeros(len(union), dtype=complex)
    va[np.searchsorted(union, out_a.indices)] = out_a.amplitudes
    vb[np.searchsorted(union, out_b.indices)] = out_b.amplitudes
    return va, vb


def sparse_probe_equivalent(
    circuit_a: Circuit,
    circuit_b: Circuit,
    n_probes: int = 4,
    seed: int = 0x5EED,
    max_terms: int = DEFAULT_MAX_TERMS,
    tolerance: float = 1e-8,
) -> bool:
    """Probe two circuits for equality up to one joint global phase.

    ``False`` is an exact disproof of equivalence (within ``tolerance``);
    ``True`` is probabilistic.  Raises :class:`EngineUnsupported` when a
    probe's support outgrows ``max_terms`` or the register exceeds the
    ``int64`` index range.
    """
    if circuit_a.n_qubits != circuit_b.n_qubits:
        return False
    rng = np.random.default_rng(seed)
    joint_phase: Optional[complex] = None
    for _ in range(n_probes):
        probe = _probe_state(circuit_a.n_qubits, rng, max_terms)
        out_a = SparseState(
            probe.n_qubits, probe.indices.copy(), probe.amplitudes.copy(), max_terms
        ).apply_circuit(circuit_a)
        out_b = probe.apply_circuit(circuit_b)
        va, vb = _aligned_vectors(out_a, out_b)
        if joint_phase is None:
            anchor = int(np.argmax(np.abs(va)))
            if abs(va[anchor]) <= tolerance:  # pragma: no cover - norm is 1
                return False
            joint_phase = vb[anchor] / va[anchor]
            if abs(abs(joint_phase) - 1.0) > max(tolerance, 1e-6):
                return False
        if np.max(np.abs(vb - joint_phase * va)) > max(tolerance, 1e-9):
            return False
    return True
