"""Equivalence-check dispatcher: pick the cheapest sufficient engine.

Engines, from cheapest to most general:

==========  ===============================  =======================  =========
engine      circuit class                    verdict semantics        cost
==========  ===============================  =======================  =========
tableau     both circuits Clifford           exact both ways          O(g·n)
dense       any pair with n ≤ ~10            exact both ways          O(4**n)
pauli       any pair (rotation products)     accept exact,            O(g·n·m)
                                             reject conservative
sparse      shallow / low-entangling pairs   reject exact,            O(g·terms)
                                             accept probabilistic
==========  ===============================  =======================  =========

Auto-dispatch order: register-size mismatch is an immediate exact ``False``;
a Clifford pair goes to the tableau; a small register goes to the dense
engine (complete, so no conservative verdicts where we can afford it);
everything else is canonicalized by Pauli propagation, and on a conservative
mismatch the sparse probe engine arbitrates — its rejection is exact, its
acceptance probabilistic (reported with ``exact=False``).  If the sparse
engine declares itself unsupported, the conservative Pauli verdict stands,
flagged ``exact=False``.

Force a specific engine with ``check_equivalence(a, b, engine="tableau")``
(``"tableau" | "pauli" | "sparse" | "dense"``); the tableau engine raises
:class:`~repro.verify.tableau.NotCliffordError` on non-Clifford input rather
than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.pauli_exponential import exponential_sequence_circuit
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.operators.pauli import PauliString
from repro.verify.pauli_prop import (
    forms_equivalent,
    rotation_product_form,
    sequence_rotation_form,
)
from repro.verify.sparse import EngineUnsupported, sparse_probe_equivalent
from repro.verify.tableau import (
    CLIFFORD_ANGLE_ATOL,
    CliffordTableau,
    is_clifford_circuit,
)

#: Largest register the auto-dispatcher hands to the dense O(4**n) engine.
DENSE_QUBIT_LIMIT = 10

_ENGINES = ("tableau", "dense", "pauli", "sparse")


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of an equivalence check, with provenance.

    ``exact=True`` means the verdict is a proof (within numeric/angle
    tolerance); ``exact=False`` marks a probabilistic acceptance or a
    conservative rejection, as described by ``detail``.
    """

    equivalent: bool
    engine: str
    exact: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.equivalent


def classify_circuit(circuit: Circuit, atol: float = CLIFFORD_ANGLE_ATOL) -> str:
    """``"clifford"`` or ``"rotation-product"`` (the repo's full gate set)."""
    return "clifford" if is_clifford_circuit(circuit, atol) else "rotation-product"


def _check_tableau(a: Circuit, b: Circuit, atol: float) -> EquivalenceReport:
    equal = CliffordTableau.from_circuit(a, atol) == CliffordTableau.from_circuit(
        b, atol
    )
    return EquivalenceReport(
        equal, "tableau", True, "stabilizer tableaus compared row-for-row"
    )


def _check_dense(a: Circuit, b: Circuit, tolerance: float) -> EquivalenceReport:
    equal = a.equals_up_to_global_phase(b, tolerance)
    return EquivalenceReport(equal, "dense", True, "dense unitary comparison")


def _check_pauli(a: Circuit, b: Circuit, atol: float) -> EquivalenceReport:
    equal = forms_equivalent(rotation_product_form(a, atol), rotation_product_form(b, atol))
    if equal:
        return EquivalenceReport(
            True, "pauli", True, "canonical rotation-product forms match"
        )
    return EquivalenceReport(
        False,
        "pauli",
        False,
        "canonical rotation-product forms differ (conservative)",
    )


def _check_sparse(
    a: Circuit, b: Circuit, tolerance: float, seed: int
) -> EquivalenceReport:
    equal = sparse_probe_equivalent(a, b, seed=seed, tolerance=tolerance)
    if equal:
        return EquivalenceReport(
            True, "sparse", False, "all seeded probes agree (probabilistic accept)"
        )
    return EquivalenceReport(False, "sparse", True, "a seeded probe disagrees")


def check_equivalence(
    circuit_a: Circuit,
    circuit_b: Circuit,
    engine: Optional[str] = None,
    tolerance: float = 1e-8,
    angle_atol: float = CLIFFORD_ANGLE_ATOL,
    dense_qubit_limit: int = DENSE_QUBIT_LIMIT,
    seed: int = 0x5EED,
) -> EquivalenceReport:
    """Decide up-to-global-phase equality, auto-dispatching by circuit class.

    Pass ``engine`` to force one of ``"tableau"``, ``"dense"``, ``"pauli"``,
    ``"sparse"`` instead of auto-dispatching.
    """
    if engine is not None and engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {_ENGINES}")
    with get_tracer().span(
        "verify.check",
        n_qubits=circuit_a.n_qubits,
        n_gates_a=len(circuit_a.gates),
        n_gates_b=len(circuit_b.gates),
        requested=engine or "auto",
    ) as span:
        report = _dispatch_equivalence(
            circuit_a,
            circuit_b,
            engine,
            tolerance,
            angle_atol,
            dense_qubit_limit,
            seed,
        )
        span.set_attribute("engine", report.engine)
        span.set_attribute("equivalent", report.equivalent)
        span.set_attribute("exact", report.exact)
    metrics = get_metrics()
    metrics.counter(f"verify.engine.{report.engine}").inc()
    metrics.counter(
        "verify.verdict.equivalent" if report.equivalent else "verify.verdict.different"
    ).inc()
    return report


def _dispatch_equivalence(
    circuit_a: Circuit,
    circuit_b: Circuit,
    engine: Optional[str],
    tolerance: float,
    angle_atol: float,
    dense_qubit_limit: int,
    seed: int,
) -> EquivalenceReport:
    """The dispatch ladder itself (tracing and accounting live one level up)."""
    if circuit_a.n_qubits != circuit_b.n_qubits:
        return EquivalenceReport(False, "dispatch", True, "register sizes differ")
    if engine == "tableau":
        return _check_tableau(circuit_a, circuit_b, angle_atol)
    if engine == "dense":
        return _check_dense(circuit_a, circuit_b, tolerance)
    if engine == "pauli":
        return _check_pauli(circuit_a, circuit_b, angle_atol)
    if engine == "sparse":
        return _check_sparse(circuit_a, circuit_b, tolerance, seed)

    if is_clifford_circuit(circuit_a, angle_atol) and is_clifford_circuit(
        circuit_b, angle_atol
    ):
        return _check_tableau(circuit_a, circuit_b, angle_atol)
    if circuit_a.n_qubits <= dense_qubit_limit:
        return _check_dense(circuit_a, circuit_b, tolerance)
    report = _check_pauli(circuit_a, circuit_b, angle_atol)
    if report.equivalent:
        return report
    try:
        return _check_sparse(circuit_a, circuit_b, tolerance, seed)
    except EngineUnsupported as exc:
        return EquivalenceReport(
            False,
            "pauli",
            False,
            f"forms differ and sparse fallback unsupported ({exc})",
        )


def assert_equivalent(
    circuit_a: Circuit, circuit_b: Circuit, **kwargs
) -> EquivalenceReport:
    """Raise ``AssertionError`` unless the circuits are (found) equivalent.

    A conservative rejection also raises — in a test harness, "could not
    prove equivalent" deserves investigation, and the report's ``detail``
    says which engine gave up.  Returns the report on success so tests can
    pin which engine decided.
    """
    report = check_equivalence(circuit_a, circuit_b, **kwargs)
    if not report.equivalent:
        raise AssertionError(
            f"circuits are not equivalent up to global phase "
            f"[engine={report.engine}, exact={report.exact}]: {report.detail}"
        )
    return report


def assert_implements_rotations(
    circuit: Circuit,
    terms: Sequence[Tuple[PauliString, float]],
    angle_atol: float = CLIFFORD_ANGLE_ATOL,
    tolerance: float = 1e-8,
    seed: int = 0x5EED,
) -> EquivalenceReport:
    """Assert a compiled circuit implements ``Π exp(-iθ_k/2 P_k)``.

    The intended product (terms listed first-applied-first) is canonicalized
    directly — no reference circuit, no statevector — and compared with the
    circuit's own rotation-product form; a conservative mismatch falls back
    to checking against a freshly synthesized reference circuit through the
    normal dispatcher.
    """
    intended = sequence_rotation_form(terms, circuit.n_qubits, angle_atol)
    actual = rotation_product_form(circuit, angle_atol)
    if forms_equivalent(intended, actual):
        return EquivalenceReport(
            True, "pauli", True, "circuit matches intended rotation product"
        )
    reference = exponential_sequence_circuit(
        [(string, angle, None) for string, angle in terms], circuit.n_qubits
    )
    report = check_equivalence(
        circuit, reference, tolerance=tolerance, angle_atol=angle_atol, seed=seed
    )
    if not report.equivalent:
        raise AssertionError(
            f"circuit does not implement the intended rotation product "
            f"[engine={report.engine}, exact={report.exact}]: {report.detail}"
        )
    return report
