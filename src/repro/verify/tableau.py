"""Bit-packed Clifford/stabilizer tableau simulation with phase tracking.

A Clifford unitary ``U`` is determined, up to global phase, by its
conjugation action on the ``2n`` Pauli generators: ``U X_q U† = ±P`` and
``U Z_q U† = ±P'``.  :class:`CliffordTableau` stores those images in the
``uint64`` bit-plane layout of :mod:`repro.operators.symplectic` — one packed
row per generator image (bit ``q`` of word ``q // 64`` describes qubit ``q``)
plus one sign bit per row — and updates them gate by gate with whole-column
bitwise operations.

Because the Pauli matrices together with the identity span the full matrix
algebra, two Clifford circuits have equal tableaus **iff** they implement the
same unitary up to global phase: ``V† U`` commutes with every Pauli, hence is
a scalar.  Tableau equality is therefore exactly the verdict of
``Circuit.equals_up_to_global_phase`` — at ``O(n²)`` bits instead of
``O(4**n)`` amplitudes.

The CNOT sign rule is shared with :mod:`repro.transforms.clifford`
(:func:`~repro.transforms.clifford.cnot_sign_flip`), so the conjugation
semantics pinned by the transform tests are inherited verbatim; the
single-qubit rules are golden-tested against direct matrix conjugation in
``tests/verify/test_clifford_golden.py``.

Rotation gates at multiples of ``π/2`` (within :data:`CLIFFORD_ANGLE_ATOL`)
are Clifford up to global phase and are absorbed via named-gate
decompositions (``RZ(π/2) ≅ S``, ``RX(π) ≅ X``, ``RY(θ) = S·RX(θ)·S†`` …);
any other rotation — and ``T``/``TDG`` — raises :class:`NotCliffordError`.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.operators.pauli import PauliString
from repro.operators.symplectic import WORD_BITS
from repro.transforms.clifford import cnot_sign_flip

#: Parameter-free gate names with native tableau update rules.
CLIFFORD_GATE_NAMES = frozenset(
    {"I", "X", "Y", "Z", "H", "S", "SDG", "SQRTX", "SQRTXDG", "CNOT", "CZ", "SWAP"}
)

#: Absolute tolerance under which a rotation angle counts as a multiple of π/2.
CLIFFORD_ANGLE_ATOL = 1e-9

_HALF_PI = math.pi / 2.0

_ONE = np.uint64(1)

#: Named decompositions of Clifford-angle rotations, in circuit order, by
#: ``k = angle / (π/2) mod 4``.  ``RY(θ) = S·RX(θ)·S†`` (as matrices), so its
#: circuit-order decomposition wraps the RX decomposition in ``SDG … S``.
_RZ_DECOMP = {0: (), 1: ("S",), 2: ("Z",), 3: ("SDG",)}
_RX_DECOMP = {0: (), 1: ("SQRTX",), 2: ("X",), 3: ("SQRTXDG",)}
_RY_DECOMP = {k: (("SDG",) + _RX_DECOMP[k] + ("S",)) if k else () for k in range(4)}
_ROTATION_DECOMP = {"RZ": _RZ_DECOMP, "RX": _RX_DECOMP, "RY": _RY_DECOMP}


class NotCliffordError(ValueError):
    """Raised when a gate or circuit is outside the Clifford group."""


def clifford_rotation_index(
    angle: float, atol: float = CLIFFORD_ANGLE_ATOL
) -> Optional[int]:
    """``k mod 4`` if ``angle ≅ k·π/2`` within ``atol``, else ``None``."""
    k = round(angle / _HALF_PI)
    if abs(angle - k * _HALF_PI) <= atol:
        return k % 4
    return None


def is_clifford_gate(gate: Gate, atol: float = CLIFFORD_ANGLE_ATOL) -> bool:
    """True if the gate is Clifford (up to global phase)."""
    if gate.name in CLIFFORD_GATE_NAMES:
        return True
    if gate.name in _ROTATION_DECOMP:
        return clifford_rotation_index(gate.parameter, atol) is not None
    return False


def is_clifford_circuit(circuit: Circuit, atol: float = CLIFFORD_ANGLE_ATOL) -> bool:
    """True if every gate of the circuit is Clifford (up to global phase)."""
    return all(is_clifford_gate(gate, atol) for gate in circuit)


def elementary_gates(
    gate: Gate, atol: float = CLIFFORD_ANGLE_ATOL
) -> Iterator[Tuple[str, Tuple[int, ...]]]:
    """Decompose a Clifford gate into named elementary ops, in circuit order.

    Raises :class:`NotCliffordError` for ``T``/``TDG`` and rotations away
    from multiples of ``π/2``.
    """
    if gate.name in CLIFFORD_GATE_NAMES:
        yield gate.name, gate.qubits
        return
    decomp = _ROTATION_DECOMP.get(gate.name)
    if decomp is None:
        raise NotCliffordError(f"gate {gate!r} is not a Clifford operation")
    k = clifford_rotation_index(gate.parameter, atol)
    if k is None:
        raise NotCliffordError(
            f"rotation {gate!r} is not at a multiple of π/2 (Clifford angle)"
        )
    for name in decomp[k]:
        yield name, gate.qubits


class CliffordTableau:
    """Conjugation tableau of a Clifford unitary over packed bit-planes.

    Rows ``0 … n-1`` hold the images of ``X_q``, rows ``n … 2n-1`` the images
    of ``Z_q``; ``sign[row]`` is the ``(-1)^s`` exponent bit of the image.
    """

    __slots__ = ("n_qubits", "n_words", "x", "z", "sign")

    def __init__(self, n_qubits: int, x: np.ndarray, z: np.ndarray, sign: np.ndarray):
        self.n_qubits = int(n_qubits)
        self.n_words = x.shape[1]
        self.x = x
        self.z = z
        self.sign = sign

    @classmethod
    def identity(cls, n_qubits: int) -> "CliffordTableau":
        """The tableau of the identity circuit on ``n_qubits`` qubits."""
        if n_qubits <= 0:
            raise ValueError("n_qubits must be positive")
        n_words = max(1, -(-n_qubits // WORD_BITS))
        x = np.zeros((2 * n_qubits, n_words), dtype=np.uint64)
        z = np.zeros((2 * n_qubits, n_words), dtype=np.uint64)
        sign = np.zeros(2 * n_qubits, dtype=np.uint8)
        rows = np.arange(n_qubits)
        words = rows // WORD_BITS
        bits = (rows % WORD_BITS).astype(np.uint64)
        x[rows, words] = _ONE << bits
        z[rows + n_qubits, words] = _ONE << bits
        return cls(n_qubits, x, z, sign)

    @classmethod
    def from_circuit(
        cls, circuit: Circuit, atol: float = CLIFFORD_ANGLE_ATOL
    ) -> "CliffordTableau":
        """Tableau of a Clifford circuit; raises :class:`NotCliffordError`."""
        tableau = cls.identity(circuit.n_qubits)
        for gate in circuit:
            tableau.apply_gate(gate, atol)
        return tableau

    def copy(self) -> "CliffordTableau":
        return CliffordTableau(
            self.n_qubits, self.x.copy(), self.z.copy(), self.sign.copy()
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def _column(self, plane: np.ndarray, qubit: int) -> np.ndarray:
        word, bit = divmod(qubit, WORD_BITS)
        return (plane[:, word] >> np.uint64(bit)) & _ONE

    def _write_column(self, plane: np.ndarray, qubit: int, bits: np.ndarray) -> None:
        word, bit = divmod(qubit, WORD_BITS)
        shift = np.uint64(bit)
        plane[:, word] = (plane[:, word] & ~(_ONE << shift)) | (
            bits.astype(np.uint64) << shift
        )

    # ------------------------------------------------------------------
    # Gate application: frame' = gate · frame (whole-column updates)
    # ------------------------------------------------------------------
    def apply_gate(self, gate: Gate, atol: float = CLIFFORD_ANGLE_ATOL) -> None:
        """Left-compose a gate: the tableau becomes that of ``gate · U``."""
        for name, qubits in elementary_gates(gate, atol):
            self._apply_elementary(name, qubits)

    def _apply_elementary(self, name: str, qubits: Tuple[int, ...]) -> None:
        x, z, sign = self.x, self.z, self.sign
        if name == "I":
            return
        if len(qubits) == 1:
            q = qubits[0]
            xq = self._column(x, q)
            zq = self._column(z, q)
            if name == "H":
                sign ^= (xq & zq).astype(np.uint8)
                self._write_column(x, q, zq)
                self._write_column(z, q, xq)
            elif name == "S":
                sign ^= (xq & zq).astype(np.uint8)
                self._write_column(z, q, xq ^ zq)
            elif name == "SDG":
                sign ^= (xq & (zq ^ _ONE)).astype(np.uint8)
                self._write_column(z, q, xq ^ zq)
            elif name == "SQRTX":
                sign ^= (zq & (xq ^ _ONE)).astype(np.uint8)
                self._write_column(x, q, xq ^ zq)
            elif name == "SQRTXDG":
                sign ^= (zq & xq).astype(np.uint8)
                self._write_column(x, q, xq ^ zq)
            elif name == "X":
                sign ^= zq.astype(np.uint8)
            elif name == "Y":
                sign ^= (xq ^ zq).astype(np.uint8)
            elif name == "Z":
                sign ^= xq.astype(np.uint8)
            else:  # pragma: no cover - guarded by elementary_gates
                raise NotCliffordError(f"no tableau rule for gate {name!r}")
            return
        a, b = qubits
        if name == "CNOT":
            xc, zc = self._column(x, a), self._column(z, a)
            xt, zt = self._column(x, b), self._column(z, b)
            sign ^= cnot_sign_flip(xc, zc, xt, zt).astype(np.uint8)
            self._write_column(x, b, xt ^ xc)
            self._write_column(z, a, zc ^ zt)
        elif name == "CZ":
            xa, za = self._column(x, a), self._column(z, a)
            xb, zb = self._column(x, b), self._column(z, b)
            sign ^= (xa & xb & (za ^ zb)).astype(np.uint8)
            self._write_column(z, a, za ^ xb)
            self._write_column(z, b, zb ^ xa)
        elif name == "SWAP":
            xa, za = self._column(x, a), self._column(z, a)
            xb, zb = self._column(x, b), self._column(z, b)
            self._write_column(x, a, xb)
            self._write_column(z, a, zb)
            self._write_column(x, b, xa)
            self._write_column(z, b, za)
        else:  # pragma: no cover - guarded by elementary_gates
            raise NotCliffordError(f"no tableau rule for gate {name!r}")

    # ------------------------------------------------------------------
    # Rows as packed integers
    # ------------------------------------------------------------------
    def _row_masks(self, row: int) -> Tuple[int, int]:
        x = 0
        z = 0
        for word in range(self.n_words - 1, -1, -1):
            x = (x << WORD_BITS) | int(self.x[row, word])
            z = (z << WORD_BITS) | int(self.z[row, word])
        return x, z

    def _set_row(self, row: int, sign_bit: int, x: int, z: int) -> None:
        word_mask = (1 << WORD_BITS) - 1
        for word in range(self.n_words):
            self.x[row, word] = (x >> (word * WORD_BITS)) & word_mask
            self.z[row, word] = (z >> (word * WORD_BITS)) & word_mask
        self.sign[row] = sign_bit

    # ------------------------------------------------------------------
    # Conjugation of arbitrary Paulis
    # ------------------------------------------------------------------
    def conjugate_masks(self, x: int, z: int) -> Tuple[int, int, int]:
        """Image ``U P U†`` of the Hermitian Pauli with packed masks ``(x, z)``.

        Returns ``(sign, x', z')`` with ``sign ∈ {+1, -1}``.  The Pauli is
        expanded as ``P = i^{|x∧z|} · Π_q X_q^{x_q} · Π_q Z_q^{z_q}`` and the
        stored generator images are multiplied out with exact ``i``-power
        bookkeeping; the result of conjugating a Hermitian Pauli by a
        Clifford is always ``±`` a Hermitian Pauli.
        """
        n = self.n_qubits
        exponent = (x & z).bit_count()
        ax = 0
        az = 0
        for offset, mask in ((0, x), (n, z)):
            while mask:
                low = mask & -mask
                qubit = low.bit_length() - 1
                mask ^= low
                row = offset + qubit
                rx, rz = self._row_masks(row)
                exponent += (
                    2 * int(self.sign[row])
                    + (rx & rz).bit_count()
                    + 2 * (az & rx).bit_count()
                )
                ax ^= rx
                az ^= rz
        exponent = (exponent - (ax & az).bit_count()) & 3
        # exponent is 0 or 2 by the Hermiticity argument above.
        return (1 if exponent == 0 else -1), ax, az

    def conjugate(self, string: PauliString) -> Tuple[int, PauliString]:
        """Return ``(sign, U P U†)`` for a :class:`PauliString` ``P``."""
        if string.n_qubits != self.n_qubits:
            raise ValueError(
                f"cannot conjugate a {string.n_qubits}-qubit string through a "
                f"{self.n_qubits}-qubit tableau"
            )
        sign, x, z = self.conjugate_masks(string.x_mask, string.z_mask)
        return sign, PauliString.from_bitmasks(self.n_qubits, x, z)

    # ------------------------------------------------------------------
    # Right composition: frame' = frame · gate
    # ------------------------------------------------------------------
    def append_gate_right(self, gate: Gate, atol: float = CLIFFORD_ANGLE_ATOL) -> None:
        """Right-compose a gate: the tableau becomes that of ``U · gate``.

        Used by the Pauli-propagation sweep, which grows the suffix Clifford
        frame toward earlier gates.  Only the rows of the gate's qubits
        change: the new row for generator ``B`` is ``U (g B g†) U†`` — the
        bare-gate image of ``B`` pushed through the existing tableau.
        """
        for name, qubits in reversed(list(elementary_gates(gate, atol))):
            self._append_elementary_right(name, qubits)

    def _append_elementary_right(self, name: str, qubits: Tuple[int, ...]) -> None:
        if name == "I":
            return
        k = len(qubits)
        scratch = CliffordTableau.identity(k)
        scratch._apply_elementary(name, tuple(range(k)))
        updates: List[Tuple[int, int, int, int]] = []
        for local_row in range(2 * k):
            local_qubit = local_row % k
            is_z = local_row >= k
            global_row = qubits[local_qubit] + (self.n_qubits if is_z else 0)
            lx, lz = scratch._row_masks(local_row)
            gx = 0
            gz = 0
            for position, qubit in enumerate(qubits):
                gx |= ((lx >> position) & 1) << qubit
                gz |= ((lz >> position) & 1) << qubit
            sign, cx, cz = self.conjugate_masks(gx, gz)
            sign_bit = (1 if sign < 0 else 0) ^ int(scratch.sign[local_row])
            updates.append((global_row, sign_bit, cx, cz))
        for row, sign_bit, cx, cz in updates:
            self._set_row(row, sign_bit, cx, cz)

    # ------------------------------------------------------------------
    # Comparison / display
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return (
            self.n_qubits == other.n_qubits
            and np.array_equal(self.sign, other.sign)
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.z, other.z)
        )

    __hash__ = None  # mutable

    def generator_images(self) -> List[Tuple[int, PauliString]]:
        """All ``2n`` generator images as ``(sign, PauliString)`` pairs."""
        images = []
        for row in range(2 * self.n_qubits):
            x, z = self._row_masks(row)
            images.append(
                (
                    -1 if self.sign[row] else 1,
                    PauliString.from_bitmasks(self.n_qubits, x, z),
                )
            )
        return images

    def __repr__(self) -> str:
        return f"CliffordTableau(n_qubits={self.n_qubits})"


def conjugate_pauli_by_clifford_gate(
    string: PauliString, gate: Gate, atol: float = CLIFFORD_ANGLE_ATOL
) -> Tuple[int, PauliString]:
    """Return ``(sign, G P G†)`` for a single Clifford gate ``G``.

    The generalization of
    :func:`repro.transforms.clifford.conjugate_pauli_by_cnot` to every
    supported Clifford gate, evaluated through the tableau rules.
    """
    tableau = CliffordTableau.identity(string.n_qubits)
    tableau.apply_gate(gate, atol)
    return tableau.conjugate(string)


def tableau_equivalent(
    a: Circuit, b: Circuit, atol: float = CLIFFORD_ANGLE_ATOL
) -> bool:
    """Exact up-to-global-phase equality of two Clifford circuits."""
    if a.n_qubits != b.n_qubits:
        return False
    return CliffordTableau.from_circuit(a, atol) == CliffordTableau.from_circuit(b, atol)
