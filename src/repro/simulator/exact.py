"""Exact (full configuration interaction) reference energies.

Sparse diagonalization of the qubit Hamiltonian provides the exact ground
state against which VQE convergence (Fig. 5 of the paper, chemical accuracy
threshold) is measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh

from repro.chemistry import MolecularHamiltonian
from repro.operators import QubitOperator
from repro.simulator.statevector import number_operator_sparse, operator_sparse
from repro.transforms import jordan_wigner

#: Chemical accuracy threshold in Hartree (1 kcal/mol).
CHEMICAL_ACCURACY = 1.6e-3


@dataclass
class GroundStateResult:
    """Ground-state energy and eigenvector of a (possibly sector-projected) Hamiltonian."""

    energy: float
    state: np.ndarray


def ground_state(
    operator: Union[QubitOperator, sparse.spmatrix],
    n_particles: Optional[int] = None,
    n_qubits: Optional[int] = None,
) -> GroundStateResult:
    """Lowest eigenpair of a qubit Hamiltonian, optionally in a particle-number sector.

    Parameters
    ----------
    operator:
        Hermitian qubit operator or sparse matrix.
    n_particles:
        If given, the Hamiltonian is restricted to the subspace with that
        total Jordan-Wigner particle number before diagonalization.
    n_qubits:
        Register size; required when ``operator`` is a raw sparse matrix and a
        particle sector is requested.
    """
    if isinstance(operator, QubitOperator):
        n_qubits = operator.n_qubits
    matrix = operator_sparse(operator)
    dim = matrix.shape[0]

    if n_particles is not None:
        if n_qubits is None:
            n_qubits = int(np.log2(dim))
        # Vectorized popcount over all basis indices (the pure-Python
        # bin().count() loop was O(2**n) interpreter work per call).
        occupations = np.bitwise_count(np.arange(dim, dtype=np.uint64))
        sector = np.where(occupations == n_particles)[0]
        if sector.size == 0:
            raise ValueError(f"no basis states with {n_particles} particles")
        matrix = matrix[np.ix_(sector, sector)]
        energy, vectors = _lowest_eigenpair(matrix)
        state = np.zeros(dim, dtype=complex)
        state[sector] = vectors
        return GroundStateResult(energy=energy, state=state)

    energy, vector = _lowest_eigenpair(matrix)
    return GroundStateResult(energy=energy, state=vector)


def _lowest_eigenpair(matrix: sparse.spmatrix) -> Tuple[float, np.ndarray]:
    dim = matrix.shape[0]
    if dim <= 64:
        dense = matrix.toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
        return float(eigenvalues[0]), eigenvectors[:, 0]
    eigenvalues, eigenvectors = eigsh(matrix.tocsc(), k=1, which="SA")
    return float(eigenvalues[0]), eigenvectors[:, 0]


def fci_ground_state_energy(hamiltonian: MolecularHamiltonian) -> float:
    """Exact ground-state energy of a molecular Hamiltonian in its particle sector."""
    qubit_hamiltonian = jordan_wigner(
        hamiltonian.to_fermion_operator(), n_modes=hamiltonian.n_spin_orbitals
    )
    result = ground_state(qubit_hamiltonian, n_particles=hamiltonian.n_electrons)
    return result.energy


def is_chemically_accurate(energy: float, reference: float) -> bool:
    """True if ``energy`` is within chemical accuracy of ``reference``."""
    return abs(energy - reference) <= CHEMICAL_ACCURACY
