"""Exact statevector simulation and FCI reference energies."""

from repro.simulator.exact import (
    CHEMICAL_ACCURACY,
    GroundStateResult,
    fci_ground_state_energy,
    ground_state,
    is_chemically_accurate,
)
from repro.simulator.statevector import (
    apply_exponential,
    apply_pauli_string,
    apply_qubit_operator,
    basis_state,
    expectation_value,
    fermion_sparse,
    hartree_fock_state,
    normalize,
    number_operator_sparse,
    operator_sparse,
    particle_number,
    state_fidelity,
)

__all__ = [
    "CHEMICAL_ACCURACY",
    "GroundStateResult",
    "ground_state",
    "fci_ground_state_energy",
    "is_chemically_accurate",
    "basis_state",
    "hartree_fock_state",
    "expectation_value",
    "apply_exponential",
    "apply_pauli_string",
    "apply_qubit_operator",
    "fermion_sparse",
    "normalize",
    "number_operator_sparse",
    "particle_number",
    "operator_sparse",
    "state_fidelity",
]
