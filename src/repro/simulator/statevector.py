"""Sparse statevector utilities for exact energy evaluation.

The paper's Fig. 5 reports ground-state energy estimates of the water molecule
obtained from VQE; in this reproduction the quantum computer is replaced by an
exact sparse statevector simulation.  Qubit ``0`` is the most significant bit
of the computational-basis index, matching the convention of
:meth:`repro.operators.pauli.PauliString.to_sparse`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import expm_multiply

from repro.operators import FermionOperator, QubitOperator
from repro.transforms import jordan_wigner


def basis_state(n_qubits: int, occupied: Sequence[int]) -> np.ndarray:
    """Computational basis state with the given qubits set to ``1``."""
    index = 0
    for qubit in occupied:
        if not 0 <= qubit < n_qubits:
            raise ValueError(f"qubit {qubit} out of range for {n_qubits} qubits")
        index |= 1 << (n_qubits - 1 - qubit)
    state = np.zeros(2 ** n_qubits, dtype=complex)
    state[index] = 1.0
    return state


def hartree_fock_state(n_qubits: int, n_electrons: int) -> np.ndarray:
    """Jordan-Wigner Hartree-Fock reference: the first ``n_electrons`` modes filled."""
    if n_electrons < 0 or n_electrons > n_qubits:
        raise ValueError("invalid electron count")
    return basis_state(n_qubits, range(n_electrons))


def operator_sparse(operator: Union[QubitOperator, sparse.spmatrix]) -> sparse.csr_matrix:
    """Coerce a qubit operator (or an already-sparse matrix) to CSR form."""
    if isinstance(operator, QubitOperator):
        return operator.to_sparse()
    return sparse.csr_matrix(operator)


def expectation_value(
    operator: Union[QubitOperator, sparse.spmatrix], state: np.ndarray
) -> float:
    """Real part of ``⟨state| operator |state⟩``."""
    matrix = operator_sparse(operator)
    state = np.asarray(state, dtype=complex).reshape(-1)
    if matrix.shape[0] != state.size:
        raise ValueError("operator and state dimensions do not match")
    return float(np.real(np.vdot(state, matrix @ state)))


def apply_exponential(
    generator: Union[QubitOperator, sparse.spmatrix],
    state: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Apply ``exp(scale * generator)`` to a statevector.

    ``generator`` is typically the anti-hermitian image ``θ (T - T†)`` of a
    UCC excitation term, so the result stays normalized.
    """
    matrix = operator_sparse(generator)
    state = np.asarray(state, dtype=complex).reshape(-1)
    if matrix.shape[0] != state.size:
        raise ValueError("generator and state dimensions do not match")
    if scale != 1.0:
        matrix = matrix * scale
    return expm_multiply(matrix, state)


def normalize(state: np.ndarray) -> np.ndarray:
    """Return the state rescaled to unit norm."""
    state = np.asarray(state, dtype=complex).reshape(-1)
    norm = np.linalg.norm(state)
    if norm == 0:
        raise ValueError("cannot normalize the zero vector")
    return state / norm


def fermion_sparse(operator: FermionOperator, n_modes: int) -> sparse.csr_matrix:
    """Sparse matrix of a fermionic operator under the Jordan-Wigner encoding."""
    return jordan_wigner(operator, n_modes=n_modes).to_sparse()


def number_operator_sparse(n_qubits: int) -> sparse.csr_matrix:
    """Sparse total particle-number operator in the Jordan-Wigner encoding."""
    total = FermionOperator.zero()
    for mode in range(n_qubits):
        total += FermionOperator.number(mode)
    return fermion_sparse(total, n_qubits)


def particle_number(state: np.ndarray, n_qubits: int) -> float:
    """Expectation of the total particle number in a Jordan-Wigner encoded state."""
    return expectation_value(number_operator_sparse(n_qubits), state)


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Squared overlap ``|⟨a|b⟩|²`` of two pure states."""
    a = normalize(state_a)
    b = normalize(state_b)
    return float(abs(np.vdot(a, b)) ** 2)
