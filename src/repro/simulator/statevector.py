"""Sparse statevector utilities for exact energy evaluation.

The paper's Fig. 5 reports ground-state energy estimates of the water molecule
obtained from VQE; in this reproduction the quantum computer is replaced by an
exact sparse statevector simulation.  Qubit ``0`` is the most significant bit
of the computational-basis index, matching the convention of
:meth:`repro.operators.pauli.PauliString.to_sparse`.

Pauli strings act on statevectors as signed index permutations
(``P|b⟩ = i^{|Y|} (-1)^{|z ∧ b|} |b ⊕ x⟩``), so
:func:`apply_pauli_string` / :func:`apply_qubit_operator` and the
:class:`~repro.operators.qubit.QubitOperator` branch of
:func:`expectation_value` never materialize an operator matrix.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np
from scipy import sparse as sp
from scipy.sparse import spmatrix
from scipy.sparse.linalg import expm_multiply

from repro.operators import FermionOperator, PauliString, QubitOperator
from repro.transforms import jordan_wigner


def basis_state(
    n_qubits: int, occupied: Sequence[int], sparse: bool = False
) -> Union[np.ndarray, sp.csc_matrix]:
    """Computational basis state with the given qubits set to ``1``.

    With ``sparse=True`` the state is returned as a ``(2**n, 1)``
    :class:`scipy.sparse.csc_matrix` column vector holding the single
    non-zero amplitude, so no dense ``2**n`` array is ever allocated — at 20+
    qubits the dense path costs tens of megabytes per state, the sparse path
    a few bytes.
    """
    index = 0
    for qubit in occupied:
        if not 0 <= qubit < n_qubits:
            raise ValueError(f"qubit {qubit} out of range for {n_qubits} qubits")
        index |= 1 << (n_qubits - 1 - qubit)
    if sparse:
        return sp.csc_matrix(
            (np.ones(1, dtype=complex), ([index], [0])),
            shape=(2 ** n_qubits, 1),
            dtype=complex,
        )
    state = np.zeros(2 ** n_qubits, dtype=complex)
    state[index] = 1.0
    return state


def hartree_fock_state(
    n_qubits: int, n_electrons: int, sparse: bool = False
) -> Union[np.ndarray, sp.csc_matrix]:
    """Jordan-Wigner Hartree-Fock reference: the first ``n_electrons`` modes filled.

    ``sparse=True`` returns the state as a sparse column vector (see
    :func:`basis_state`).
    """
    if n_electrons < 0 or n_electrons > n_qubits:
        raise ValueError("invalid electron count")
    return basis_state(n_qubits, range(n_electrons), sparse=sparse)


def operator_sparse(operator: Union[QubitOperator, spmatrix]) -> sp.csr_matrix:
    """Coerce a qubit operator (or an already-sparse matrix) to CSR form."""
    if isinstance(operator, QubitOperator):
        return operator.to_sparse()
    return sp.csr_matrix(operator)


def apply_pauli_string(
    string: PauliString, state: np.ndarray, coefficient: complex = 1.0
) -> np.ndarray:
    """Return ``coefficient · P |state⟩`` without building a matrix.

    The Pauli string permutes basis indices by XOR with its X mask (in index
    bit order) and multiplies each amplitude by ``i^{|Y|} (-1)^{|z ∧ b|}``.
    """
    state = np.asarray(state, dtype=complex).reshape(-1)
    if state.size != 2 ** string.n_qubits:
        raise ValueError("operator and state dimensions do not match")
    rows, values = string.signed_permutation()
    # out[rows[c]] = values[c] * state[c]; XOR permutations are involutions,
    # so gathering through `rows` scatters to the right places.
    return coefficient * (values * state)[rows]


def apply_qubit_operator(operator: QubitOperator, state: np.ndarray) -> np.ndarray:
    """Return ``operator |state⟩`` as a sum of permutation applications."""
    state = np.asarray(state, dtype=complex).reshape(-1)
    if state.size != 2 ** operator.n_qubits:
        raise ValueError("operator and state dimensions do not match")
    result = np.zeros_like(state)
    for string, coefficient in operator.terms.items():
        result += apply_pauli_string(string, state, coefficient)
    return result


def expectation_value(
    operator: Union[QubitOperator, spmatrix], state: np.ndarray
) -> float:
    """Real part of ``⟨state| operator |state⟩``."""
    state = np.asarray(state, dtype=complex).reshape(-1)
    if isinstance(operator, QubitOperator):
        if 2 ** operator.n_qubits != state.size:
            raise ValueError("operator and state dimensions do not match")
        return float(np.real(np.vdot(state, apply_qubit_operator(operator, state))))
    matrix = operator_sparse(operator)
    if matrix.shape[0] != state.size:
        raise ValueError("operator and state dimensions do not match")
    return float(np.real(np.vdot(state, matrix @ state)))


def apply_exponential(
    generator: Union[QubitOperator, spmatrix],
    state: np.ndarray,
    scale: float = 1.0,
) -> np.ndarray:
    """Apply ``exp(scale * generator)`` to a statevector.

    ``generator`` is typically the anti-hermitian image ``θ (T - T†)`` of a
    UCC excitation term, so the result stays normalized.
    """
    matrix = operator_sparse(generator)
    state = np.asarray(state, dtype=complex).reshape(-1)
    if matrix.shape[0] != state.size:
        raise ValueError("generator and state dimensions do not match")
    if scale != 1.0:
        matrix = matrix * scale
    return expm_multiply(matrix, state)


def normalize(state: np.ndarray) -> np.ndarray:
    """Return the state rescaled to unit norm."""
    state = np.asarray(state, dtype=complex).reshape(-1)
    norm = np.linalg.norm(state)
    if norm == 0:
        raise ValueError("cannot normalize the zero vector")
    return state / norm


def fermion_sparse(operator: FermionOperator, n_modes: int) -> sp.csr_matrix:
    """Sparse matrix of a fermionic operator under the Jordan-Wigner encoding."""
    return jordan_wigner(operator, n_modes=n_modes).to_sparse()


def number_operator_sparse(n_qubits: int) -> sp.csr_matrix:
    """Sparse total particle-number operator in the Jordan-Wigner encoding."""
    total = FermionOperator.zero()
    for mode in range(n_qubits):
        total += FermionOperator.number(mode)
    return fermion_sparse(total, n_qubits)


def particle_number(state: np.ndarray, n_qubits: int) -> float:
    """Expectation of the total particle number in a Jordan-Wigner encoded state."""
    return expectation_value(number_operator_sparse(n_qubits), state)


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Squared overlap ``|⟨a|b⟩|²`` of two pure states."""
    a = normalize(state_a)
    b = normalize(state_b)
    return float(abs(np.vdot(a, b)) ** 2)
