"""Binary particle swarm optimization (baseline solver).

The prior-art pipeline ([8], [9] in the paper) searched the space of
upper-triangular fermion-to-qubit transformation matrices with particle swarm
optimization (PSO).  The paper replaces PSO with simulated annealing, citing
PSO's tendency to stall in local minima; we implement the binary PSO here both
to reproduce the baseline column of Table I and to support the ablation
benchmarks that compare the two searches head to head.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np


@dataclass
class PsoResult:
    """Outcome of a binary PSO run."""

    best_position: np.ndarray
    best_value: float
    iterations: int
    value_trace: List[float]


def binary_particle_swarm(
    objective: Callable[[np.ndarray], float],
    n_bits: int,
    n_particles: int = 20,
    iterations: int = 50,
    inertia: float = 0.7,
    cognitive: float = 1.4,
    social: float = 1.4,
    rng: Optional[np.random.Generator] = None,
    initial_position: Optional[np.ndarray] = None,
) -> PsoResult:
    """Minimize ``objective`` over binary vectors of length ``n_bits``.

    Standard binary PSO: real-valued velocities are squashed through a sigmoid
    to give per-bit flip probabilities.  The swarm is seeded around
    ``initial_position`` when provided (e.g. the identity transformation).
    """
    if n_bits < 1:
        raise ValueError("n_bits must be positive")
    if n_particles < 2:
        raise ValueError("n_particles must be at least 2")
    rng = rng or np.random.default_rng()

    positions = rng.integers(0, 2, size=(n_particles, n_bits)).astype(np.uint8)
    if initial_position is not None:
        initial_position = np.asarray(initial_position, dtype=np.uint8).reshape(-1)
        if initial_position.size != n_bits:
            raise ValueError("initial_position length must equal n_bits")
        positions[0] = initial_position
    velocities = rng.normal(scale=0.5, size=(n_particles, n_bits))

    personal_best = positions.copy()
    personal_values = np.array([float(objective(p)) for p in positions])
    global_index = int(np.argmin(personal_values))
    global_best = personal_best[global_index].copy()
    global_value = float(personal_values[global_index])
    trace = [global_value]

    for _ in range(iterations):
        r_cognitive = rng.random(size=(n_particles, n_bits))
        r_social = rng.random(size=(n_particles, n_bits))
        velocities = (
            inertia * velocities
            + cognitive * r_cognitive * (personal_best - positions)
            + social * r_social * (global_best - positions)
        )
        flip_probabilities = 1.0 / (1.0 + np.exp(-velocities))
        positions = (rng.random(size=positions.shape) < flip_probabilities).astype(np.uint8)

        for i in range(n_particles):
            value = float(objective(positions[i]))
            if value < personal_values[i]:
                personal_values[i] = value
                personal_best[i] = positions[i].copy()
                if value < global_value:
                    global_value = value
                    global_best = positions[i].copy()
        trace.append(global_value)

    return PsoResult(
        best_position=global_best,
        best_value=global_value,
        iterations=iterations,
        value_trace=trace,
    )
