"""Generic simulated annealing.

Section III-C of the paper replaces the baseline's particle-swarm search over
fermion-to-qubit transformation matrices with simulated annealing (SA),
arguing that PSO "tends to get stuck in local minima".  The SA here is a
plain Metropolis-Hastings sampler with a geometric cooling schedule; the Γ
search (and any other discrete search in the library) plugs in its own state
representation through the ``neighbor`` and ``energy`` callbacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generic, List, Optional, Tuple, TypeVar

import numpy as np

State = TypeVar("State")


@dataclass
class AnnealingSchedule:
    """Cooling schedule for simulated annealing.

    Parameters
    ----------
    initial_temperature:
        Temperature at the first step (in units of the energy function).
    final_temperature:
        Temperature at the last step; must be non-negative.  Note that under
        the geometric interpolation a final temperature of exactly zero makes
        *every step after the first* run at temperature zero (``0 ** fraction
        == 0`` for any positive fraction), i.e. the whole walk becomes greedy
        descent accepting only improving moves.  Use a small positive final
        temperature for a schedule that anneals and merely *ends* cold.
    n_steps:
        Total number of proposed moves.
    """

    initial_temperature: float = 2.0
    final_temperature: float = 1e-3
    n_steps: int = 2000

    def __post_init__(self):
        if self.initial_temperature <= 0 or self.final_temperature < 0:
            raise ValueError(
                "initial temperature must be positive and the final "
                "temperature non-negative"
            )
        if self.final_temperature > self.initial_temperature:
            raise ValueError("final temperature must not exceed the initial temperature")
        if self.n_steps < 1:
            raise ValueError("n_steps must be at least 1")

    def temperature(self, step: int) -> float:
        """Geometric interpolation between the initial and final temperatures."""
        if self.n_steps == 1:
            return self.initial_temperature
        fraction = step / (self.n_steps - 1)
        ratio = self.final_temperature / self.initial_temperature
        return self.initial_temperature * ratio ** fraction


@dataclass
class AnnealingResult(Generic[State]):
    """Outcome of a simulated-annealing run.

    ``n_steps`` is the number of proposals actually evaluated; when a
    ``max_steps`` budget cut the walk short of its schedule, ``truncated`` is
    True and the result is the best state seen so far (anytime semantics).
    """

    best_state: State
    best_energy: float
    n_accepted: int
    n_steps: int
    energy_trace: List[float] = field(default_factory=list)
    truncated: bool = False

    @property
    def acceptance_rate(self) -> float:
        return self.n_accepted / self.n_steps if self.n_steps else 0.0


def simulated_annealing(
    initial_state: State,
    energy: Callable[[State], float],
    neighbor: Callable[[State, np.random.Generator], State],
    schedule: Optional[AnnealingSchedule] = None,
    rng: Optional[np.random.Generator] = None,
    record_trace: bool = False,
    delta_energy: Optional[Callable[[State, State], float]] = None,
    max_steps: Optional[int] = None,
) -> AnnealingResult[State]:
    """Minimize ``energy`` over a discrete space with Metropolis-Hastings moves.

    Parameters
    ----------
    initial_state:
        Starting point of the walk.
    energy:
        Function to minimize.
    neighbor:
        Proposal: returns a new candidate state given the current state and a
        random generator.  States must be treated as immutable (the proposal
        must not mutate its argument).
    schedule:
        Cooling schedule; defaults to :class:`AnnealingSchedule` defaults.
        A non-positive temperature (reachable with ``final_temperature=0``)
        degrades gracefully to greedy descent — only improving moves are
        accepted, no division by the temperature is attempted.
    rng:
        Random generator; defaults to a fresh unseeded generator.
    record_trace:
        If True, the energy after every step is recorded (useful for plots).
    delta_energy:
        Optional incremental evaluator ``delta_energy(current, candidate)``
        returning ``energy(candidate) - energy(current)`` without the full
        re-evaluation (e.g. the two changed tour edges of a swap move).  The
        walk then never calls ``energy`` after the initial state; the caller
        is responsible for the delta matching the full difference.
    max_steps:
        Anytime iteration budget: stop after this many proposals even if the
        schedule has more, returning the best state found so far with
        ``truncated=True``.  The temperature trajectory is still computed
        from the *schedule's* ``n_steps``, so the first ``max_steps``
        proposals — and hence the truncated result — are bit-identical to
        the prefix of the unbudgeted walk for the same rng (deterministic
        degradation).  ``None`` (the default) runs the full schedule.
    """
    if max_steps is not None and max_steps < 1:
        raise ValueError("max_steps must be None or at least 1")
    schedule = schedule or AnnealingSchedule()
    rng = rng or np.random.default_rng()

    current_state = initial_state
    current_energy = float(energy(current_state))
    best_state, best_energy = current_state, current_energy
    n_accepted = 0
    trace: List[float] = []
    truncated = max_steps is not None and max_steps < schedule.n_steps
    n_run = min(max_steps, schedule.n_steps) if max_steps is not None else schedule.n_steps

    for step in range(n_run):
        temperature = schedule.temperature(step)
        candidate = neighbor(current_state, rng)
        if delta_energy is not None:
            delta = float(delta_energy(current_state, candidate))
            candidate_energy = current_energy + delta
        else:
            candidate_energy = float(energy(candidate))
            delta = candidate_energy - current_energy
        if delta <= 0:
            accept = True
        elif temperature <= 0.0:
            # Frozen schedule: accept only improving moves instead of
            # dividing by zero (or overflowing exp) below.
            accept = False
        else:
            accept = rng.random() < math.exp(-delta / temperature)
        if accept:
            current_state, current_energy = candidate, candidate_energy
            n_accepted += 1
            if current_energy < best_energy:
                best_state, best_energy = current_state, current_energy
        if record_trace:
            trace.append(current_energy)

    return AnnealingResult(
        best_state=best_state,
        best_energy=best_energy,
        n_accepted=n_accepted,
        n_steps=n_run,
        energy_trace=trace,
        truncated=truncated,
    )
