"""Genetic algorithm for the generalized traveling salesman problem (GTSP).

The paper's *advanced sorting* maps Pauli-string ordering with per-string
target-qubit freedom onto the GTSP: vertices are ``(string, target)`` pairs
grouped into one cluster per string, and the tour must visit exactly one
vertex per cluster while maximizing the summed CNOT cancellation (equivalently
minimizing its negation).  Following the paper we solve the GTSP with a
genetic algorithm in the style of Silberholz and Golden: ordered crossover on
the cluster permutation, per-cluster vertex reassignment and swap mutations,
and an exact dynamic-programming "cluster optimization" step that, for a
fixed cluster order, picks the best vertex inside every cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

import numpy as np

Vertex = Hashable
#: A tour visits clusters in the listed order, using the chosen vertex in each.
Tour = Tuple[Tuple[int, Vertex], ...]


@dataclass
class GtspProblem:
    """A GTSP instance.

    Parameters
    ----------
    clusters:
        Non-empty list of non-empty vertex lists; exactly one vertex per
        cluster is visited.
    weight:
        Edge cost ``weight(u, v)`` between two vertices from *different*
        clusters.  The tour cost is the sum of consecutive edge costs around
        the closed cycle; the solver minimizes it.
    """

    clusters: Sequence[Sequence[Vertex]]
    weight: Callable[[Vertex, Vertex], float]

    def __post_init__(self):
        if not self.clusters:
            raise ValueError("GTSP instance needs at least one cluster")
        if any(len(cluster) == 0 for cluster in self.clusters):
            raise ValueError("every cluster must contain at least one vertex")

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def tour_cost(self, tour: Sequence[Tuple[int, Vertex]]) -> float:
        """Cost of the closed tour (single-cluster tours cost zero)."""
        if len(tour) != self.n_clusters:
            raise ValueError("tour must visit every cluster exactly once")
        if sorted(c for c, _ in tour) != list(range(self.n_clusters)):
            raise ValueError("tour must visit every cluster exactly once")
        if len(tour) <= 1:
            return 0.0
        cost = 0.0
        for (_, u), (_, v) in zip(tour, list(tour[1:]) + [tour[0]]):
            cost += float(self.weight(u, v))
        return cost


@dataclass
class GtspResult:
    """Best tour found by the solver."""

    tour: Tour
    cost: float
    generations: int


class _Chromosome:
    """Cluster permutation plus a vertex choice per cluster."""

    __slots__ = ("order", "choices")

    def __init__(self, order: List[int], choices: List[int]):
        self.order = order          # permutation of cluster indices
        self.choices = choices      # choices[c] = vertex index inside cluster c

    def tour(self, problem: GtspProblem) -> Tour:
        return tuple(
            (cluster, problem.clusters[cluster][self.choices[cluster]])
            for cluster in self.order
        )


def _random_chromosome(problem: GtspProblem, rng: np.random.Generator) -> _Chromosome:
    order = list(rng.permutation(problem.n_clusters))
    choices = [int(rng.integers(len(cluster))) for cluster in problem.clusters]
    return _Chromosome([int(c) for c in order], choices)


def _ordered_crossover(
    parent_a: _Chromosome, parent_b: _Chromosome, rng: np.random.Generator
) -> _Chromosome:
    """Ordered crossover (OX) on the cluster permutation; vertex choices mix uniformly."""
    n = len(parent_a.order)
    if n == 1:
        return _Chromosome(list(parent_a.order), list(parent_a.choices))
    cut_a, cut_b = sorted(rng.choice(n, size=2, replace=False))
    segment = parent_a.order[cut_a:cut_b + 1]
    remainder = [c for c in parent_b.order if c not in segment]
    order = remainder[:cut_a] + segment + remainder[cut_a:]
    choices = [
        parent_a.choices[c] if rng.random() < 0.5 else parent_b.choices[c]
        for c in range(len(parent_a.choices))
    ]
    return _Chromosome(order, choices)


def _mutate(
    chromosome: _Chromosome,
    problem: GtspProblem,
    rng: np.random.Generator,
    mutation_rate: float,
) -> None:
    n = problem.n_clusters
    if n >= 2 and rng.random() < mutation_rate:
        i, j = rng.choice(n, size=2, replace=False)
        chromosome.order[i], chromosome.order[j] = chromosome.order[j], chromosome.order[i]
    if rng.random() < mutation_rate:
        cluster = int(rng.integers(n))
        chromosome.choices[cluster] = int(rng.integers(len(problem.clusters[cluster])))
    # Occasional 2-opt style segment reversal.
    if n >= 3 and rng.random() < mutation_rate:
        i, j = sorted(rng.choice(n, size=2, replace=False))
        chromosome.order[i:j + 1] = reversed(chromosome.order[i:j + 1])


def _cluster_optimization(
    chromosome: _Chromosome, problem: GtspProblem
) -> None:
    """Exact DP choosing the best vertex per cluster for the fixed cluster order.

    For each candidate start vertex in the first cluster of the order, a
    forward dynamic program computes the cheapest path through the remaining
    clusters and closes the cycle; the overall best assignment is written back
    into the chromosome.
    """
    order = chromosome.order
    m = len(order)
    if m == 1:
        return
    clusters = [list(problem.clusters[c]) for c in order]
    weight = problem.weight

    best_total = None
    best_assignment: Optional[List[int]] = None
    for start_index, start_vertex in enumerate(clusters[0]):
        # costs[i] = best cost reaching vertex i of the current cluster.
        costs = [float(weight(start_vertex, v)) for v in clusters[1]]
        parents: List[List[int]] = [[0] * len(clusters[1])]
        for layer in range(2, m):
            new_costs = []
            new_parents = []
            for v in clusters[layer]:
                candidate_costs = [
                    costs[k] + float(weight(u, v)) for k, u in enumerate(clusters[layer - 1])
                ]
                best_k = int(np.argmin(candidate_costs))
                new_costs.append(candidate_costs[best_k])
                new_parents.append(best_k)
            costs = new_costs
            parents.append(new_parents)
        closing = [costs[k] + float(weight(u, start_vertex)) for k, u in enumerate(clusters[-1])]
        best_k = int(np.argmin(closing))
        total = closing[best_k]
        if best_total is None or total < best_total:
            best_total = total
            assignment = [0] * m
            assignment[0] = start_index
            k = best_k
            for layer in range(m - 1, 0, -1):
                assignment[layer] = k
                k = parents[layer - 1][k]
            best_assignment = assignment

    if best_assignment is not None:
        for layer, cluster in enumerate(order):
            chromosome.choices[cluster] = best_assignment[layer]


def _chromosome_from_tour(
    problem: GtspProblem, tour: Sequence[Tuple[int, Vertex]]
) -> _Chromosome:
    """Build a chromosome from an explicit ``(cluster, vertex)`` tour."""
    if sorted(cluster for cluster, _ in tour) != list(range(problem.n_clusters)):
        raise ValueError("seed tour must visit every cluster exactly once")
    order: List[int] = []
    choices = [0] * problem.n_clusters
    for cluster, vertex in tour:
        vertices = list(problem.clusters[cluster])
        if vertex not in vertices:
            raise ValueError(f"seed tour vertex {vertex!r} is not in cluster {cluster}")
        order.append(int(cluster))
        choices[cluster] = vertices.index(vertex)
    return _Chromosome(order, choices)


def solve_gtsp(
    problem: GtspProblem,
    population_size: int = 40,
    generations: int = 60,
    mutation_rate: float = 0.3,
    elite_fraction: float = 0.2,
    cluster_optimization_rate: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    initial_tours: Optional[Sequence[Sequence[Tuple[int, Vertex]]]] = None,
) -> GtspResult:
    """Solve a GTSP instance with the genetic algorithm described above.

    ``initial_tours`` seeds the starting population with known-good tours
    (e.g. the greedy nearest-neighbour construction), so the search never
    finishes worse than its best seed.  The random part of the population
    draws the same generator stream with or without seeds.
    """
    rng = rng or np.random.default_rng()
    if population_size < 2:
        raise ValueError("population_size must be at least 2")

    def cost_of(chromosome: _Chromosome) -> float:
        return problem.tour_cost(chromosome.tour(problem))

    population = [_random_chromosome(problem, rng) for _ in range(population_size)]
    if initial_tours:
        seeds = [_chromosome_from_tour(problem, tour) for tour in initial_tours]
        population[: len(seeds)] = seeds[:population_size]
    for chromosome in population:
        _cluster_optimization(chromosome, problem)
    costs = [cost_of(c) for c in population]

    n_elite = max(1, int(elite_fraction * population_size))
    best_index = int(np.argmin(costs))
    best_chromosome, best_cost = population[best_index], costs[best_index]

    for generation in range(generations):
        ranked = sorted(range(population_size), key=lambda i: costs[i])
        elites = [population[i] for i in ranked[:n_elite]]
        next_population: List[_Chromosome] = [
            _Chromosome(list(c.order), list(c.choices)) for c in elites
        ]
        while len(next_population) < population_size:
            # Tournament selection of two parents.
            contenders = rng.choice(population_size, size=min(4, population_size), replace=False)
            parents = sorted(contenders, key=lambda i: costs[i])[:2]
            child = _ordered_crossover(population[parents[0]], population[parents[1]], rng)
            _mutate(child, problem, rng, mutation_rate)
            if rng.random() < cluster_optimization_rate:
                _cluster_optimization(child, problem)
            next_population.append(child)
        population = next_population
        costs = [cost_of(c) for c in population]
        generation_best = int(np.argmin(costs))
        if costs[generation_best] < best_cost:
            best_chromosome = population[generation_best]
            best_cost = costs[generation_best]

    # Final polish on the best individual.
    best_chromosome = _Chromosome(list(best_chromosome.order), list(best_chromosome.choices))
    _cluster_optimization(best_chromosome, problem)
    final_cost = cost_of(best_chromosome)
    if final_cost < best_cost:
        best_cost = final_cost
    return GtspResult(
        tour=best_chromosome.tour(problem), cost=best_cost, generations=generations
    )


def brute_force_gtsp(problem: GtspProblem) -> GtspResult:
    """Exact GTSP solution by exhaustive enumeration (tiny instances only)."""
    import itertools

    n = problem.n_clusters
    if n > 7:
        raise ValueError("brute force is limited to at most 7 clusters")
    best_tour: Optional[Tour] = None
    best_cost = None
    # Fix cluster 0 first in the permutation: tours are closed cycles, so this
    # loses no generality and removes rotational duplicates.
    for permutation in itertools.permutations(range(1, n)):
        order = (0,) + permutation
        for choice in itertools.product(*[range(len(c)) for c in problem.clusters]):
            tour = tuple(
                (cluster, problem.clusters[cluster][choice[cluster]]) for cluster in order
            )
            cost = problem.tour_cost(tour)
            if best_cost is None or cost < best_cost:
                best_cost, best_tour = cost, tour
    return GtspResult(tour=best_tour, cost=float(best_cost), generations=0)
