"""Genetic algorithm for the generalized traveling salesman problem (GTSP).

The paper's *advanced sorting* maps Pauli-string ordering with per-string
target-qubit freedom onto the GTSP: vertices are ``(string, target)`` pairs
grouped into one cluster per string, and the tour must visit exactly one
vertex per cluster while maximizing the summed CNOT cancellation (equivalently
minimizing its negation).  Following the paper we solve the GTSP with a
genetic algorithm in the style of Silberholz and Golden: ordered crossover on
the cluster permutation, per-cluster vertex reassignment and swap mutations,
and an exact dynamic-programming "cluster optimization" step that, for a
fixed cluster order, picks the best vertex inside every cluster.

Edge weights are served from one dense ``(n_vertices, n_vertices)`` float64
matrix indexed by a global vertex row (clusters flattened in order).  Callers
that already own such a matrix — the advanced sorting builds one batched
symplectic scan — pass it as ``weight_matrix`` and skip every per-edge Python
call; the legacy scalar ``weight(u, v)`` callable remains supported and is
densified lazily on first use.  Every matrix kernel reproduces the scalar
implementation bit-for-bit: candidate costs are single additions of the same
float64 pairs, reductions take the first minimum exactly like ``np.argmin``
on a list did, and tour costs accumulate left-to-right in tour order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

Vertex = Hashable
#: A tour visits clusters in the listed order, using the chosen vertex in each.
Tour = Tuple[Tuple[int, Vertex], ...]


@dataclass
class GtspProblem:
    """A GTSP instance.

    Parameters
    ----------
    clusters:
        Non-empty list of non-empty vertex lists; exactly one vertex per
        cluster is visited.
    weight:
        Edge cost ``weight(u, v)`` between two vertices from *different*
        clusters.  The tour cost is the sum of consecutive edge costs around
        the closed cycle; the solver minimizes it.  Optional when
        ``weight_matrix`` is given (a compatible shim is synthesized).
    weight_matrix:
        Dense edge-cost matrix indexed by global vertex rows, clusters
        flattened in order (cluster 0's vertices first).  When omitted it is
        built lazily from ``weight`` — once per problem, not once per query.
    """

    clusters: Sequence[Sequence[Vertex]]
    weight: Optional[Callable[[Vertex, Vertex], float]] = None
    weight_matrix: Optional[np.ndarray] = None
    _matrix: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _matrix_rows: Optional[List[List[float]]] = field(
        default=None, init=False, repr=False
    )
    _cluster_rows: List[List[int]] = field(default_factory=list, init=False, repr=False)
    _row_in_cluster: List[Dict[Vertex, int]] = field(
        default_factory=list, init=False, repr=False
    )
    _blocks: Dict[Tuple[int, int], np.ndarray] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self):
        if not self.clusters:
            raise ValueError("GTSP instance needs at least one cluster")
        if any(len(cluster) == 0 for cluster in self.clusters):
            raise ValueError("every cluster must contain at least one vertex")
        if self.weight is None and self.weight_matrix is None:
            raise ValueError("provide a weight callable or a weight_matrix")

        self._vertices: List[Vertex] = []
        self._cluster_rows = []
        self._row_in_cluster = []
        row = 0
        for cluster in self.clusters:
            self._cluster_rows.append(list(range(row, row + len(cluster))))
            self._row_in_cluster.append(
                {vertex: row + position for position, vertex in enumerate(cluster)}
            )
            self._vertices.extend(cluster)
            row += len(cluster)

        if self.weight_matrix is not None:
            # Copy on ingest: the row-list/block caches snapshot the matrix,
            # so aliasing the caller's array would let later in-place
            # mutation desynchronize them.
            matrix = np.array(self.weight_matrix, dtype=np.float64)
            if matrix.shape != (row, row):
                raise ValueError(
                    f"weight_matrix must be ({row}, {row}) for {row} vertices, "
                    f"got {matrix.shape}"
                )
            self._matrix = matrix
            if self.weight is None:
                self.weight = self._matrix_weight

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def n_vertices(self) -> int:
        return len(self._vertices)

    def _matrix_weight(self, u: Vertex, v: Vertex) -> float:
        """Scalar compatibility shim over the dense matrix."""
        return float(self.matrix[self._row_of(u), self._row_of(v)])

    def _row_of(self, vertex: Vertex) -> int:
        for mapping in self._row_in_cluster:
            row = mapping.get(vertex)
            if row is not None:
                return row
        raise KeyError(f"vertex {vertex!r} is not part of this problem")

    @property
    def matrix(self) -> np.ndarray:
        """The dense float64 weight matrix (built from ``weight`` on first use)."""
        if self._matrix is None:
            n = self.n_vertices
            matrix = np.empty((n, n), dtype=np.float64)
            weight = self.weight
            for i, u in enumerate(self._vertices):
                row = matrix[i]
                for j, v in enumerate(self._vertices):
                    row[j] = float(weight(u, v))
            self._matrix = matrix
        return self._matrix

    @property
    def _row_lists(self) -> List[List[float]]:
        """The weight matrix as nested Python lists (fast small-tour gathers)."""
        if self._matrix_rows is None:
            self._matrix_rows = self.matrix.tolist()
        return self._matrix_rows

    def _block(self, cluster_a: int, cluster_b: int) -> np.ndarray:
        """Contiguous weight submatrix between two clusters, cached per pair.

        The DP touches the same cluster-pair blocks thousands of times per
        solve; one ``np.ix_`` extraction per pair (instead of per query)
        keeps the vectorized reductions allocation-light.
        """
        key = (cluster_a, cluster_b)
        block = self._blocks.get(key)
        if block is None:
            block = self.matrix[
                np.ix_(self._cluster_rows[cluster_a], self._cluster_rows[cluster_b])
            ]
            self._blocks[key] = block
        return block

    def tour_cost(self, tour: Sequence[Tuple[int, Vertex]]) -> float:
        """Cost of the closed tour (single-cluster tours cost zero)."""
        if len(tour) != self.n_clusters:
            raise ValueError("tour must visit every cluster exactly once")
        if sorted(c for c, _ in tour) != list(range(self.n_clusters)):
            raise ValueError("tour must visit every cluster exactly once")
        if len(tour) <= 1:
            return 0.0
        rows = self._tour_rows(tour)
        if rows is not None:
            return self._rows_cost(rows)
        # Vertices outside their declared cluster: legacy scalar fallback.
        cost = 0.0
        for (_, u), (_, v) in zip(tour, list(tour[1:]) + [tour[0]]):
            cost += float(self.weight(u, v))
        return cost

    def _tour_rows(self, tour: Sequence[Tuple[int, Vertex]]) -> Optional[List[int]]:
        """Global rows of a ``(cluster, vertex)`` tour, or None on foreign vertices."""
        rows: List[int] = []
        for cluster, vertex in tour:
            row = self._row_in_cluster[cluster].get(vertex)
            if row is None:
                return None
            rows.append(row)
        return rows

    def _rows_cost(self, rows: Sequence[int]) -> float:
        """Closed-cycle cost of a tour given as global vertex rows.

        Row-indexed gathers from the densified matrix instead of one
        ``weight`` call per edge; the edge costs are accumulated
        left-to-right in tour order, so the result is bit-identical to the
        scalar loop.
        """
        if len(rows) <= 1:
            return 0.0
        row_lists = self._row_lists
        cost = 0.0
        previous = rows[0]
        for current in rows[1:]:
            cost += row_lists[previous][current]
            previous = current
        cost += row_lists[previous][rows[0]]
        return cost


@dataclass
class GtspResult:
    """Best tour found by the solver.

    ``generations`` is the number of generations actually evolved; when a
    ``max_generations`` budget stopped the search early, ``degraded`` is True
    and the tour is the best individual seen so far (anytime semantics).
    """

    tour: Tour
    cost: float
    generations: int
    degraded: bool = False


class _Chromosome:
    """Cluster permutation plus a vertex choice per cluster."""

    __slots__ = ("order", "choices")

    def __init__(self, order: List[int], choices: List[int]):
        self.order = order          # permutation of cluster indices
        self.choices = choices      # choices[c] = vertex index inside cluster c

    def tour(self, problem: GtspProblem) -> Tour:
        return tuple(
            (cluster, problem.clusters[cluster][self.choices[cluster]])
            for cluster in self.order
        )

    def rows(self, problem: GtspProblem) -> List[int]:
        """Global vertex rows of this chromosome's tour, in tour order."""
        cluster_rows = problem._cluster_rows
        choices = self.choices
        return [cluster_rows[c][choices[c]] for c in self.order]

    def cost(self, problem: GtspProblem) -> float:
        """Closed-tour cost via the dense matrix (no per-edge ``weight`` calls)."""
        return problem._rows_cost(self.rows(problem))


def _random_chromosome(problem: GtspProblem, rng: np.random.Generator) -> _Chromosome:
    order = list(rng.permutation(problem.n_clusters))
    choices = [int(rng.integers(len(cluster))) for cluster in problem.clusters]
    return _Chromosome([int(c) for c in order], choices)


def _ordered_crossover(
    parent_a: _Chromosome, parent_b: _Chromosome, rng: np.random.Generator
) -> _Chromosome:
    """Ordered crossover (OX) on the cluster permutation; vertex choices mix uniformly."""
    n = len(parent_a.order)
    if n == 1:
        return _Chromosome(list(parent_a.order), list(parent_a.choices))
    cut_a, cut_b = sorted(rng.choice(n, size=2, replace=False))
    segment = parent_a.order[cut_a:cut_b + 1]
    remainder = [c for c in parent_b.order if c not in segment]
    order = remainder[:cut_a] + segment + remainder[cut_a:]
    choices = [
        parent_a.choices[c] if rng.random() < 0.5 else parent_b.choices[c]
        for c in range(len(parent_a.choices))
    ]
    return _Chromosome(order, choices)


def _mutate(
    chromosome: _Chromosome,
    problem: GtspProblem,
    rng: np.random.Generator,
    mutation_rate: float,
) -> None:
    n = problem.n_clusters
    if n >= 2 and rng.random() < mutation_rate:
        i, j = rng.choice(n, size=2, replace=False)
        chromosome.order[i], chromosome.order[j] = chromosome.order[j], chromosome.order[i]
    if rng.random() < mutation_rate:
        cluster = int(rng.integers(n))
        chromosome.choices[cluster] = int(rng.integers(len(problem.clusters[cluster])))
    # Occasional 2-opt style segment reversal.
    if n >= 3 and rng.random() < mutation_rate:
        i, j = sorted(rng.choice(n, size=2, replace=False))
        chromosome.order[i:j + 1] = reversed(chromosome.order[i:j + 1])


def _cluster_optimization(
    chromosome: _Chromosome, problem: GtspProblem
) -> None:
    """Exact DP choosing the best vertex per cluster for the fixed cluster order.

    For every candidate start vertex in the first cluster of the order, a
    forward dynamic program computes the cheapest path through the remaining
    clusters and closes the cycle; the overall best assignment is written back
    into the chromosome.  All starts advance through one chained
    ``costs[:, :, None] + W[np.ix_(...)]`` reduction per layer; each candidate
    cost is a single addition of the same float64 pair the scalar
    implementation added, and every ``argmin`` takes the first minimum, so the
    chosen assignment is bit-identical to the historical per-edge version.
    """
    order = chromosome.order
    m = len(order)
    if m == 1:
        return
    block = problem._block
    first = order[0]

    # costs[s, k]: best cost from start vertex s to vertex k of the current layer.
    costs = block(first, order[1])
    parents: List[np.ndarray] = [np.zeros(costs.shape, dtype=np.int64)]
    for layer in range(2, m):
        step = block(order[layer - 1], order[layer])
        candidates = costs[:, :, None] + step[None, :, :]
        # np.min yields the value at np.argmin's (first-minimum) index, so the
        # two reductions stay mutually consistent and match the scalar DP.
        parents.append(np.argmin(candidates, axis=1))
        costs = np.min(candidates, axis=1)
    closing = costs + block(order[-1], first).T
    best_last = np.argmin(closing, axis=1)
    totals = np.min(closing, axis=1)

    start_index = int(np.argmin(totals))
    assignment = [0] * m
    assignment[0] = start_index
    k = int(best_last[start_index])
    for layer in range(m - 1, 0, -1):
        assignment[layer] = k
        k = int(parents[layer - 1][start_index, k])

    for layer, cluster in enumerate(order):
        chromosome.choices[cluster] = assignment[layer]


def _chromosome_from_tour(
    problem: GtspProblem, tour: Sequence[Tuple[int, Vertex]]
) -> _Chromosome:
    """Build a chromosome from an explicit ``(cluster, vertex)`` tour."""
    if sorted(cluster for cluster, _ in tour) != list(range(problem.n_clusters)):
        raise ValueError("seed tour must visit every cluster exactly once")
    order: List[int] = []
    choices = [0] * problem.n_clusters
    for cluster, vertex in tour:
        vertices = list(problem.clusters[cluster])
        if vertex not in vertices:
            raise ValueError(f"seed tour vertex {vertex!r} is not in cluster {cluster}")
        order.append(int(cluster))
        choices[cluster] = vertices.index(vertex)
    return _Chromosome(order, choices)


def solve_gtsp(
    problem: GtspProblem,
    population_size: int = 40,
    generations: int = 60,
    mutation_rate: float = 0.3,
    elite_fraction: float = 0.2,
    cluster_optimization_rate: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    initial_tours: Optional[Sequence[Sequence[Tuple[int, Vertex]]]] = None,
    max_generations: Optional[int] = None,
) -> GtspResult:
    """Solve a GTSP instance with the genetic algorithm described above.

    ``initial_tours`` seeds the starting population with known-good tours
    (e.g. the greedy nearest-neighbour construction), so the search never
    finishes worse than its best seed.  The random part of the population
    draws the same generator stream with or without seeds.

    ``max_generations`` is an anytime iteration budget: evolve at most this
    many generations even when ``generations`` asks for more, returning the
    best tour so far flagged ``degraded=True``.  The budgeted run consumes
    the same rng stream as a prefix of the unbudgeted one, so the degraded
    result is deterministic for a fixed seed.

    Costs are evaluated incrementally: every chromosome's cost is computed
    exactly once when it is created or re-optimized and carried alongside it,
    instead of re-deriving the whole population's costs each generation.  The
    carried values equal a full re-evaluation bit-for-bit (the cost function
    is deterministic), so selection — and hence the returned tour — is
    unchanged for any seed.
    """
    rng = rng or np.random.default_rng()
    if population_size < 2:
        raise ValueError("population_size must be at least 2")
    if max_generations is not None and max_generations < 0:
        raise ValueError("max_generations must be None or non-negative")
    degraded = max_generations is not None and max_generations < generations
    n_generations = min(max_generations, generations) if max_generations is not None else generations

    population = [_random_chromosome(problem, rng) for _ in range(population_size)]
    if initial_tours:
        seeds = [_chromosome_from_tour(problem, tour) for tour in initial_tours]
        population[: len(seeds)] = seeds[:population_size]
    for chromosome in population:
        _cluster_optimization(chromosome, problem)
    costs = [chromosome.cost(problem) for chromosome in population]

    n_elite = max(1, int(elite_fraction * population_size))
    best_index = min(range(population_size), key=costs.__getitem__)
    best_chromosome, best_cost = population[best_index], costs[best_index]

    for generation in range(n_generations):
        ranked = sorted(range(population_size), key=costs.__getitem__)
        elites = [population[i] for i in ranked[:n_elite]]
        elite_costs = [costs[i] for i in ranked[:n_elite]]
        next_population: List[_Chromosome] = [
            _Chromosome(list(c.order), list(c.choices)) for c in elites
        ]
        next_costs: List[float] = list(elite_costs)
        while len(next_population) < population_size:
            # Tournament selection of two parents.
            contenders = rng.choice(population_size, size=min(4, population_size), replace=False)
            parents = sorted(contenders, key=lambda i: costs[i])[:2]
            child = _ordered_crossover(population[parents[0]], population[parents[1]], rng)
            _mutate(child, problem, rng, mutation_rate)
            if rng.random() < cluster_optimization_rate:
                _cluster_optimization(child, problem)
            next_population.append(child)
            next_costs.append(child.cost(problem))
        population = next_population
        costs = next_costs
        generation_best = min(range(population_size), key=costs.__getitem__)
        if costs[generation_best] < best_cost:
            best_chromosome = population[generation_best]
            best_cost = costs[generation_best]

    # Final polish on the best individual.
    best_chromosome = _Chromosome(list(best_chromosome.order), list(best_chromosome.choices))
    _cluster_optimization(best_chromosome, problem)
    final_cost = best_chromosome.cost(problem)
    if final_cost < best_cost:
        best_cost = final_cost
    return GtspResult(
        tour=best_chromosome.tour(problem),
        cost=best_cost,
        generations=n_generations,
        degraded=degraded,
    )


def brute_force_gtsp(problem: GtspProblem) -> GtspResult:
    """Exact GTSP solution by exhaustive enumeration (tiny instances only)."""
    import itertools

    n = problem.n_clusters
    if n > 7:
        raise ValueError("brute force is limited to at most 7 clusters")
    best_tour: Optional[Tour] = None
    best_cost = None
    # Fix cluster 0 first in the permutation: tours are closed cycles, so this
    # loses no generality and removes rotational duplicates.
    for permutation in itertools.permutations(range(1, n)):
        order = (0,) + permutation
        for choice in itertools.product(*[range(len(c)) for c in problem.clusters]):
            tour = tuple(
                (cluster, problem.clusters[cluster][choice[cluster]]) for cluster in order
            )
            cost = problem.tour_cost(tour)
            if best_cost is None or cost < best_cost:
                best_cost, best_tour = cost, tour
    return GtspResult(tour=best_tour, cost=float(best_cost), generations=0)
