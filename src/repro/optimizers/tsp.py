"""Simple TSP heuristics: nearest neighbor construction and 2-opt improvement.

These are used as light-weight ordering heuristics for the baseline compiler
(greedy intra/inter excitation-term ordering) and as a sanity baseline against
the GTSP genetic algorithm in ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence

import numpy as np

Vertex = Hashable


def tour_length(
    tour: Sequence[Vertex], weight: Callable[[Vertex, Vertex], float], cyclic: bool = True
) -> float:
    """Total weight of a tour (closed cycle by default)."""
    if len(tour) < 2:
        return 0.0
    total = sum(float(weight(a, b)) for a, b in zip(tour, tour[1:]))
    if cyclic:
        total += float(weight(tour[-1], tour[0]))
    return total


def nearest_neighbor_tour(
    vertices: Sequence[Vertex],
    weight: Callable[[Vertex, Vertex], float],
    start: Optional[Vertex] = None,
) -> List[Vertex]:
    """Greedy nearest-neighbor tour construction."""
    if not vertices:
        return []
    remaining = list(vertices)
    if start is None:
        start = remaining[0]
    if start not in remaining:
        raise ValueError("start vertex must be one of the vertices")
    tour = [start]
    remaining.remove(start)
    while remaining:
        last = tour[-1]
        next_vertex = min(remaining, key=lambda v: float(weight(last, v)))
        tour.append(next_vertex)
        remaining.remove(next_vertex)
    return tour


def two_opt(
    tour: Sequence[Vertex],
    weight: Callable[[Vertex, Vertex], float],
    max_passes: int = 10,
    cyclic: bool = True,
) -> List[Vertex]:
    """Improve a tour with 2-opt segment reversals until no improvement is found."""
    tour = list(tour)
    n = len(tour)
    if n < 4:
        return tour
    for _ in range(max_passes):
        improved = False
        for i in range(n - 1):
            for j in range(i + 2, n):
                if not cyclic and j == n - 1 and i == 0:
                    pass
                a, b = tour[i], tour[i + 1]
                c, d = tour[j], tour[(j + 1) % n]
                if (j + 1) % n == i:
                    continue
                before = float(weight(a, b)) + float(weight(c, d))
                after = float(weight(a, c)) + float(weight(b, d))
                if after + 1e-12 < before:
                    tour[i + 1:j + 1] = reversed(tour[i + 1:j + 1])
                    improved = True
        if not improved:
            break
    return tour


def solve_tsp(
    vertices: Sequence[Vertex],
    weight: Callable[[Vertex, Vertex], float],
    rng: Optional[np.random.Generator] = None,
    restarts: int = 3,
) -> List[Vertex]:
    """Nearest-neighbor + 2-opt with a few random restarts; returns the best tour."""
    if not vertices:
        return []
    rng = rng or np.random.default_rng()
    vertices = list(vertices)
    best_tour: Optional[List[Vertex]] = None
    best_length = None
    for restart in range(max(1, restarts)):
        start = vertices[int(rng.integers(len(vertices)))] if restart else vertices[0]
        tour = two_opt(nearest_neighbor_tour(vertices, weight, start=start), weight)
        length = tour_length(tour, weight)
        if best_length is None or length < best_length:
            best_tour, best_length = tour, length
    return best_tour
