"""Classical optimization solvers backing the compilation pipeline.

* :func:`~repro.optimizers.simulated_annealing.simulated_annealing` — the Γ
  search of Sec. III-C.
* :func:`~repro.optimizers.graph_coloring.randomized_greedy_coloring` — the
  GVCP solver of Sec. III-A / Sec. IV.
* :func:`~repro.optimizers.gtsp.solve_gtsp` — the genetic-algorithm GTSP
  solver of Sec. III-B / Sec. IV.
* :func:`~repro.optimizers.particle_swarm.binary_particle_swarm` — the
  baseline's PSO search (reproduced for the GT column and ablations).
* :mod:`~repro.optimizers.tsp` — nearest-neighbor/2-opt heuristics used by the
  baseline orderings.
"""

from repro.optimizers.graph_coloring import (
    ColoringResult,
    greedy_coloring,
    is_proper_coloring,
    randomized_greedy_coloring,
)
from repro.optimizers.gtsp import GtspProblem, GtspResult, brute_force_gtsp, solve_gtsp
from repro.optimizers.particle_swarm import PsoResult, binary_particle_swarm
from repro.optimizers.simulated_annealing import (
    AnnealingResult,
    AnnealingSchedule,
    simulated_annealing,
)
from repro.optimizers.tsp import nearest_neighbor_tour, solve_tsp, tour_length, two_opt

__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "simulated_annealing",
    "ColoringResult",
    "greedy_coloring",
    "randomized_greedy_coloring",
    "is_proper_coloring",
    "GtspProblem",
    "GtspResult",
    "solve_gtsp",
    "brute_force_gtsp",
    "PsoResult",
    "binary_particle_swarm",
    "nearest_neighbor_tour",
    "two_opt",
    "solve_tsp",
    "tour_length",
]
