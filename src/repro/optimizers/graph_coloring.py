"""Randomized greedy graph vertex coloring.

The hybrid-encoding subroutine of the paper maps the symmetry-preserving
ordering problem onto the graph vertex coloring problem (GVCP) and solves it
with "a randomized, greedy coloring algorithm": vertices are colored greedily
in several random orders, existing colors are reused as much as possible, a
new color is added only when forced, and the best coloring over all orders is
returned.  The quantity ultimately consumed downstream is the *largest color
class* — the biggest set of mutually non-adjacent hybrid terms, all of which
can be compiled in compressed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

Vertex = Hashable


@dataclass
class ColoringResult:
    """A proper vertex coloring of an undirected graph."""

    colors: Dict[Vertex, int]
    n_colors: int

    def color_classes(self) -> List[Set[Vertex]]:
        """Vertices grouped by color, ordered by color index."""
        classes: List[Set[Vertex]] = [set() for _ in range(self.n_colors)]
        for vertex, color in self.colors.items():
            classes[color].add(vertex)
        return classes

    def largest_color_class(self) -> Set[Vertex]:
        """The biggest color class (ties broken by lowest color index)."""
        classes = self.color_classes()
        if not classes:
            return set()
        return max(classes, key=len)


def _as_graph(graph: nx.Graph | Mapping[Vertex, Iterable[Vertex]]) -> nx.Graph:
    if isinstance(graph, nx.Graph):
        return graph
    built = nx.Graph()
    for vertex, neighbors in graph.items():
        built.add_node(vertex)
        for neighbor in neighbors:
            built.add_edge(vertex, neighbor)
    return built


def greedy_coloring(graph: nx.Graph, order: Sequence[Vertex]) -> ColoringResult:
    """Color vertices greedily in the given order, reusing colors when possible.

    When several existing colors are admissible the most-used one is chosen,
    biasing towards large color classes, as described in Sec. IV of the paper.
    """
    colors: Dict[Vertex, int] = {}
    usage: List[int] = []
    for vertex in order:
        forbidden = {colors[n] for n in graph.neighbors(vertex) if n in colors}
        allowed = [c for c in range(len(usage)) if c not in forbidden]
        if allowed:
            chosen = max(allowed, key=lambda c: (usage[c], -c))
        else:
            chosen = len(usage)
            usage.append(0)
        colors[vertex] = chosen
        usage[chosen] += 1
    return ColoringResult(colors=colors, n_colors=len(usage))


def randomized_greedy_coloring(
    graph: nx.Graph | Mapping[Vertex, Iterable[Vertex]],
    n_orders: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> ColoringResult:
    """Best greedy coloring over ``n_orders`` random vertex orders.

    "Best" means fewest colors, with the size of the largest color class as a
    tie-break (larger is better), since that is what the hybrid encoding can
    compress.
    """
    if n_orders < 1:
        raise ValueError("n_orders must be at least 1")
    graph = _as_graph(graph)
    rng = rng or np.random.default_rng()
    vertices = list(graph.nodes)
    if not vertices:
        return ColoringResult(colors={}, n_colors=0)

    best: Optional[ColoringResult] = None
    for _ in range(n_orders):
        order = list(vertices)
        rng.shuffle(order)
        candidate = greedy_coloring(graph, order)
        if best is None:
            best = candidate
            continue
        candidate_key = (candidate.n_colors, -len(candidate.largest_color_class()))
        best_key = (best.n_colors, -len(best.largest_color_class()))
        if candidate_key < best_key:
            best = candidate
    return best


def is_proper_coloring(
    graph: nx.Graph | Mapping[Vertex, Iterable[Vertex]], colors: Mapping[Vertex, int]
) -> bool:
    """True if no edge connects two vertices of the same color."""
    graph = _as_graph(graph)
    return all(colors[u] != colors[v] for u, v in graph.edges if u != v)
