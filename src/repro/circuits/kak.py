"""Two-qubit gate invariants and minimal CNOT costs.

The paper's interface accounting credits one saved CNOT when the residual
two-qubit block left at the interface of two Pauli exponentials is locally
equivalent to a single CNOT.  This module certifies such claims from first
principles: given any two-qubit unitary it computes the local-equivalence
invariants (Makhlin invariants / the spectrum of the ``γ`` matrix of
Shende-Bullock-Markov) and from them the minimal number of CNOT gates needed
to implement the unitary together with arbitrary single-qubit gates:

* 0 CNOTs — the gate is a tensor product of single-qubit gates;
* 1 CNOT  — the gate is locally equivalent to CNOT;
* 2 CNOTs — ``tr γ(U)`` is real;
* 3 CNOTs — everything else (e.g. SWAP).
"""

from __future__ import annotations

import cmath
from typing import Tuple

import numpy as np

#: Pauli-Y tensor Pauli-Y, used in the γ invariant.
_YY = np.array(
    [
        [0, 0, 0, -1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [-1, 0, 0, 0],
    ],
    dtype=complex,
)

#: The "magic" (Bell) basis transformation used for Makhlin invariants.
_MAGIC = (1.0 / np.sqrt(2.0)) * np.array(
    [
        [1, 0, 0, 1j],
        [0, 1j, 1, 0],
        [0, 1j, -1, 0],
        [1, 0, 0, -1j],
    ],
    dtype=complex,
)


def _to_su4(unitary: np.ndarray) -> np.ndarray:
    """Rescale a U(4) matrix to determinant one (a fourth root is chosen)."""
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (4, 4):
        raise ValueError("expected a 4x4 unitary")
    if not np.allclose(unitary.conj().T @ unitary, np.eye(4), atol=1e-8):
        raise ValueError("matrix is not unitary")
    determinant = np.linalg.det(unitary)
    return unitary * cmath.exp(-1j * cmath.phase(determinant) / 4)


def gamma_matrix(unitary: np.ndarray) -> np.ndarray:
    """Shende-Bullock-Markov ``γ(U) = U (Y⊗Y) Uᵀ (Y⊗Y)`` for U ∈ SU(4)."""
    su4 = _to_su4(unitary)
    return su4 @ _YY @ su4.T @ _YY


def makhlin_invariants(unitary: np.ndarray) -> Tuple[float, float, float]:
    """Return the Makhlin local invariants ``(g1, g2, g3)`` of a two-qubit gate."""
    su4 = _to_su4(unitary)
    m = _MAGIC.conj().T @ su4 @ _MAGIC
    mm = m.T @ m
    trace = np.trace(mm)
    g_complex = trace ** 2 / 16.0
    g3 = float(np.real((trace ** 2 - np.trace(mm @ mm)) / 4.0))
    return float(np.real(g_complex)), float(np.imag(g_complex)), g3


def is_local_gate(unitary: np.ndarray, tolerance: float = 1e-8) -> bool:
    """True if the gate is a tensor product of single-qubit gates.

    Uses the operator-Schmidt decomposition: reshuffle the 4x4 matrix into a
    4x4 matrix of single-qubit blocks and check it has rank one.
    """
    unitary = np.asarray(unitary, dtype=complex).reshape(2, 2, 2, 2)
    # Index order (row_a, row_b, col_a, col_b) -> ((row_a, col_a), (row_b, col_b)).
    reshuffled = np.transpose(unitary, (0, 2, 1, 3)).reshape(4, 4)
    singular_values = np.linalg.svd(reshuffled, compute_uv=False)
    return bool(np.sum(singular_values > tolerance) == 1)


def cnot_cost(unitary: np.ndarray, tolerance: float = 1e-8) -> int:
    """Minimal number of CNOT gates (with free single-qubit gates) for ``unitary``."""
    if is_local_gate(unitary, tolerance):
        return 0
    g1, g2, g3 = makhlin_invariants(unitary)
    # Locally CNOT-equivalent gates have invariants (0, 0, 1).
    if abs(g1) <= tolerance and abs(g2) <= tolerance and abs(g3 - 1.0) <= tolerance:
        return 1
    # Two CNOTs suffice exactly when tr γ(U) is real.
    if abs(np.imag(np.trace(gamma_matrix(unitary)))) <= tolerance:
        return 2
    return 3


def interface_block_cost(block_unitary: np.ndarray) -> int:
    """Alias of :func:`cnot_cost` used when certifying interface savings."""
    return cnot_cost(block_unitary)
