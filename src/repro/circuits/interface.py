"""CNOT cancellation accounting at the interface of consecutive Pauli exponentials.

Section III-B of the paper assigns, to every ordered pair of targeted Pauli
strings ``[P1, t1]`` and ``[P2, t2]`` implemented back to back, the number of
CNOT gates saved at their interface.  With a shared target (``t1 = t2 = t``)
the saving is ``Σ_i ω_i`` over non-target qubits ``i``:

* ``ω_i = 0`` if either string acts as identity on ``i``;
* ``ω_i = 2`` if the target carries one of the "good" collisions
  (X,Y), (Y,X), (X,X), (Y,Y) or (Z,Z) — so the residual single-qubit gate on
  the target commutes with the interface CNOTs — *and* the two strings carry
  the same non-identity Pauli on ``i`` (so the basis changes on the control
  cancel and both interface CNOTs annihilate);
* ``ω_i = 1`` otherwise (the two interface CNOTs merge into a single
  CNOT-equivalent two-qubit block).

With different targets no cancellation is counted, matching the paper.
These weights are exactly what the generalized-TSP edge weights are built
from; the resulting sequence cost is
``Σ_k 2 (w_k - 1) - Σ_k savings(P_k, P_{k+1})``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.circuits.pauli_exponential import pauli_exponential_cnot_count
from repro.operators import PauliString

#: Target-qubit Pauli collisions after which the residual basis-change gate on
#: the target is X-diagonal (or trivial) and therefore commutes through the
#: interface CNOTs.
GOOD_TARGET_COLLISIONS = {
    ("X", "Y"), ("Y", "X"), ("X", "X"), ("Y", "Y"), ("Z", "Z"),
}

#: Control-qubit collisions whose basis-change gates cancel exactly.
MATCHING_CONTROL_COLLISIONS = {("X", "X"), ("Y", "Y"), ("Z", "Z")}

#: A Pauli string together with its chosen target qubit.
TargetedString = Tuple[PauliString, int]


def interface_cnot_reduction(
    first: PauliString,
    first_target: int,
    second: PauliString,
    second_target: int,
) -> int:
    """CNOT gates saved by implementing ``second`` right after ``first``.

    Implements the ω-rule of Sec. III-B as whole-register bit operations on
    the symplectic masks.  Both targets must lie in the support of their
    respective strings; a mismatch in targets yields zero savings.
    """
    x1, z1 = first.x_mask, first.z_mask
    x2, z2 = second.x_mask, second.z_mask
    support1 = x1 | z1
    support2 = x2 | z2
    if first_target < 0 or not (support1 >> first_target) & 1:
        raise ValueError(
            f"target {first_target} not in support of {first.to_label()}"
        )
    if second_target < 0 or not (support2 >> second_target) & 1:
        raise ValueError(
            f"target {second_target} not in support of {second.to_label()}"
        )
    if first.n_qubits != second.n_qubits:
        raise ValueError("strings must act on the same register size")
    if first_target != second_target:
        return 0

    target = first_target
    # ω = 1 per qubit where both strings are non-identity (target excluded) ...
    both = (support1 & support2) & ~(1 << target)
    saved = both.bit_count()
    # ... plus 1 more per matching collision when the target collision is
    # "good": both strings carry an X component there, or both are exactly Z.
    x1t, z1t = (x1 >> target) & 1, (z1 >> target) & 1
    x2t, z2t = (x2 >> target) & 1, (z2 >> target) & 1
    target_good = (x1t and x2t) or (z1t and not x1t and z2t and not x2t)
    if target_good:
        saved += (both & ~((x1 ^ x2) | (z1 ^ z2))).bit_count()
    # The saving can never exceed the CNOTs present at the interface.
    interface_cnots = (first.weight - 1) + (second.weight - 1)
    return min(saved, max(interface_cnots, 0))


def pair_cnot_count(
    first: PauliString,
    first_target: int,
    second: PauliString,
    second_target: int,
) -> int:
    """Total CNOTs for the back-to-back pair, after interface cancellation."""
    return (
        pauli_exponential_cnot_count(first)
        + pauli_exponential_cnot_count(second)
        - interface_cnot_reduction(first, first_target, second, second_target)
    )


def sequence_cnot_count(
    sequence: Sequence[TargetedString], cyclic: bool = False
) -> int:
    """CNOT count of an ordered sequence of targeted Pauli exponentials.

    Parameters
    ----------
    sequence:
        Ordered ``(PauliString, target)`` pairs.
    cyclic:
        If True, also credit the cancellation between the last and first
        element (the GTSP tour cost); circuits are linear, so the default is
        the path cost.
    """
    if not sequence:
        return 0
    total = sum(pauli_exponential_cnot_count(string) for string, _ in sequence)
    for (p1, t1), (p2, t2) in zip(sequence, sequence[1:]):
        total -= interface_cnot_reduction(p1, t1, p2, t2)
    if cyclic and len(sequence) > 1:
        p_last, t_last = sequence[-1]
        p_first, t_first = sequence[0]
        total -= interface_cnot_reduction(p_last, t_last, p_first, t_first)
    return total


def best_sequence_from_cycle(
    cycle: Sequence[TargetedString],
) -> Tuple[Tuple[TargetedString, ...], int]:
    """Convert a GTSP cycle into the cheapest linear sequence.

    The GTSP solver returns a closed tour; a circuit is a path, so the tour is
    cut at the edge with the smallest cancellation.  Returns the rotated
    sequence and its path CNOT count.
    """
    if not cycle:
        return tuple(), 0
    n = len(cycle)
    if n == 1:
        return tuple(cycle), sequence_cnot_count(cycle)
    # Find the edge (i, i+1) with the least saving and cut there.
    worst_edge = 0
    worst_saving = None
    for i in range(n):
        p1, t1 = cycle[i]
        p2, t2 = cycle[(i + 1) % n]
        saving = interface_cnot_reduction(p1, t1, p2, t2)
        if worst_saving is None or saving < worst_saving:
            worst_saving = saving
            worst_edge = i
    rotated = tuple(cycle[(worst_edge + 1 + k) % n] for k in range(n))
    return rotated, sequence_cnot_count(rotated)
