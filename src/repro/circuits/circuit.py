"""Quantum circuit container with CNOT accounting.

The circuit is a flat, ordered list of :class:`~repro.circuits.gates.Gate`
objects on a fixed register size.  The figure of merit throughout the paper is
the number of CNOT gates, exposed here as :attr:`Circuit.cnot_count`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import Gate


class Circuit:
    """An ordered sequence of gates on ``n_qubits`` qubits."""

    __slots__ = ("n_qubits", "_gates")

    def __init__(self, n_qubits: int, gates: Optional[Iterable[Gate]] = None):
        if n_qubits <= 0:
            raise ValueError("n_qubits must be positive")
        self.n_qubits = int(n_qubits)
        self._gates: List[Gate] = []
        if gates:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append a gate, validating its qubits fit in the register."""
        if not isinstance(gate, Gate):
            raise TypeError(f"expected Gate, got {type(gate).__name__}")
        if any(q >= self.n_qubits or q < 0 for q in gate.qubits):
            raise ValueError(
                f"gate {gate} acts outside a register of {self.n_qubits} qubits"
            )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append every gate from an iterable."""
        for gate in gates:
            self.append(gate)
        return self

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("cannot compose circuits on different register sizes")
        return Circuit(self.n_qubits, list(self._gates) + list(other._gates))

    def inverse(self) -> "Circuit":
        """Return the inverse circuit (reversed order of inverted gates)."""
        return Circuit(self.n_qubits, [gate.inverse() for gate in reversed(self._gates)])

    def copy(self) -> "Circuit":
        return Circuit(self.n_qubits, list(self._gates))

    def __add__(self, other: "Circuit") -> "Circuit":
        return self.compose(other)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable tuple."""
        return tuple(self._gates)

    @property
    def cnot_count(self) -> int:
        """Number of CNOT gates — the paper's primary cost metric."""
        return sum(1 for gate in self._gates if gate.is_cnot)

    @property
    def two_qubit_count(self) -> int:
        """Number of two-qubit gates of any kind."""
        return sum(1 for gate in self._gates if gate.is_two_qubit)

    @property
    def single_qubit_count(self) -> int:
        """Number of single-qubit gates."""
        return sum(1 for gate in self._gates if gate.is_single_qubit)

    def count(self, name: str) -> int:
        """Number of gates with the given name."""
        name = name.upper()
        return sum(1 for gate in self._gates if gate.name == name)

    def _critical_path(self, two_qubit_only: bool) -> int:
        frontier = [0] * self.n_qubits
        for gate in self._gates:
            if two_qubit_only and not gate.is_two_qubit:
                continue
            layer = 1 + max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = layer
        return max(frontier, default=0)

    def depth(self) -> int:
        """Circuit depth assuming gates on disjoint qubits run in parallel."""
        return self._critical_path(two_qubit_only=False)

    def two_qubit_depth(self) -> int:
        """Depth counting only two-qubit gates (single-qubit gates are free).

        The critical-path length over CNOT/CZ/SWAP layers — the figure that
        dominates execution time and decoherence on hardware, reported by the
        routing benchmarks alongside :attr:`cnot_count`.
        """
        return self._critical_path(two_qubit_only=True)

    def gate_histogram(self) -> dict:
        """Gate counts by name, e.g. ``{"CNOT": 12, "H": 4, "RZ": 3}``."""
        histogram: dict = {}
        for gate in self._gates:
            histogram[gate.name] = histogram.get(gate.name, 0) + 1
        return histogram

    def qubits_used(self) -> Tuple[int, ...]:
        """Sorted tuple of qubits touched by at least one gate."""
        return tuple(sorted({q for gate in self._gates for q in gate.qubits}))

    def parameters(self) -> Tuple[float, ...]:
        """All rotation angles, in gate order."""
        return tuple(g.parameter for g in self._gates if g.parameter is not None)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Circuit(self.n_qubits, self._gates[index])
        return self._gates[index]

    # ------------------------------------------------------------------
    # Simulation / verification
    # ------------------------------------------------------------------
    def to_unitary(self) -> np.ndarray:
        """Dense unitary of the circuit (qubit 0 is the most significant bit).

        Intended for verification on small registers; the cost is
        ``O(4**n_qubits)`` memory.
        """
        dim = 2 ** self.n_qubits
        unitary = np.eye(dim, dtype=complex)
        for gate in self._gates:
            unitary = self._embed(gate) @ unitary
        return unitary

    def _embed(self, gate: Gate) -> np.ndarray:
        """Embed a gate matrix into the full register."""
        dim = 2 ** self.n_qubits
        small = gate.matrix()
        k = len(gate.qubits)
        embedded = np.zeros((dim, dim), dtype=complex)
        other_qubits = [q for q in range(self.n_qubits) if q not in gate.qubits]
        for basis in range(dim):
            bits = [(basis >> (self.n_qubits - 1 - q)) & 1 for q in range(self.n_qubits)]
            col_sub = 0
            for q in gate.qubits:
                col_sub = (col_sub << 1) | bits[q]
            for row_sub in range(2 ** k):
                amplitude = small[row_sub, col_sub]
                if amplitude == 0:
                    continue
                new_bits = list(bits)
                for position, q in enumerate(gate.qubits):
                    new_bits[q] = (row_sub >> (k - 1 - position)) & 1
                row = 0
                for q in range(self.n_qubits):
                    row = (row << 1) | new_bits[q]
                embedded[row, basis] += amplitude
        return embedded

    def apply_to_statevector(self, state: np.ndarray) -> np.ndarray:
        """Apply the circuit to a statevector of length ``2**n_qubits``."""
        state = np.asarray(state, dtype=complex).reshape([2] * self.n_qubits)
        for gate in self._gates:
            state = _apply_gate_to_tensor(state, gate, self.n_qubits)
        return state.reshape(-1)

    def equals_up_to_global_phase(self, other: "Circuit", tolerance: float = 1e-8) -> bool:
        """True if the two circuits implement the same unitary up to global phase."""
        if other.n_qubits != self.n_qubits:
            return False
        u, v = self.to_unitary(), other.to_unitary()
        product = u.conj().T @ v
        phase = product[0, 0]
        if abs(abs(phase) - 1.0) > tolerance:
            return False
        return np.allclose(product, phase * np.eye(product.shape[0]), atol=tolerance)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Circuit(n_qubits={self.n_qubits}, gates={len(self._gates)}, "
            f"cnots={self.cnot_count})"
        )

    def summary(self) -> str:
        """One gate per line, for debugging and documentation examples."""
        return "\n".join(repr(gate) for gate in self._gates)


def _apply_gate_to_tensor(state: np.ndarray, gate: Gate, n_qubits: int) -> np.ndarray:
    """Apply a gate to a state stored as an n-dimensional tensor of shape (2,)*n."""
    axes = gate.qubits
    k = len(axes)
    matrix = gate.matrix().reshape([2] * (2 * k))
    # Contract the gate's input legs with the state's axes; tensordot places
    # the gate's output legs first, followed by the untouched state axes in
    # their original relative order.
    state = np.tensordot(matrix, state, axes=(list(range(k, 2 * k)), list(axes)))
    # Build the permutation that puts the new axes (0..k-1) back at `axes`.
    permutation = []
    rest = iter(range(k, n_qubits))
    for qubit in range(n_qubits):
        if qubit in axes:
            permutation.append(axes.index(qubit))
        else:
            permutation.append(next(rest))
    return np.transpose(state, permutation)
